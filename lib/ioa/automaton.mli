(** Builder for state-deterministic I/O automata from a pure state
    type, a transition function implementing pre/postconditions, and
    an enabled-outputs function. *)

val make :
  name:string ->
  is_input:(Action.t -> bool) ->
  is_output:(Action.t -> bool) ->
  state:'s ->
  transition:('s -> Action.t -> 's option) ->
  enabled:('s -> Action.t list) ->
  ?pp:('s -> string) ->
  unit ->
  Component.t
(** [make ~name ~is_input ~is_output ~state ~transition ~enabled ()]
    ties the knot into a {!Component.t}.  The input condition is
    enforced dynamically: an input whose [transition] yields [None] is
    treated as a no-op (matching automata whose inputs have no
    preconditions but possibly empty postconditions). *)
