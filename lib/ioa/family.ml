(** Families: one component hosting a set of same-shaped automata
    whose {e names are computed at run time}.

    The transaction tree contains a name for every transaction that
    might ever be invoked; most of our automata are instantiated
    statically from scripts.  But some transactions' names embed
    values computed during execution — e.g. the reconfiguration
    coordinators of Section 4, whose parameters (version numbers,
    target configurations) come out of a preceding query.  A family
    models the (conceptually infinite) set of all such automata as a
    single component: it lazily instantiates a member's state at its
    CREATE and routes every later operation to it by name.

    Composition-wise this is sound: the family's signature is the
    union of its members' signatures (given by static name patterns),
    members' signatures are disjoint from each other by naming, and a
    member automaton that has not yet been created has no enabled
    outputs (all our automata sleep until CREATE). *)

type 'state member_spec = {
  init : Txn.t -> 'state;  (** member's start state, from its name *)
  transition : 'state -> Action.t -> 'state option;
  enabled : 'state -> Action.t list;
  m_is_input : Txn.t -> Action.t -> bool;
      (** is [a] an input of the member named [t]? *)
  m_is_output : Txn.t -> Action.t -> bool;
}

(** [member_of_action ~member a] finds which family member an
    operation concerns: the operation's transaction if it is itself a
    member, else its parent (covering a member's child accesses). *)
let member_of_action ~(member : Txn.t -> bool) (a : Action.t) : Txn.t option
    =
  let t = Action.txn a in
  if member t then Some t
  else if (not (Txn.is_root t)) && member (Txn.parent t) then
    Some (Txn.parent t)
  else None

type 'state family_state = 'state Txn.Map.t

let make ~name ~(member : Txn.t -> bool) (spec : 'state member_spec) :
    Component.t =
  let is_input a =
    match member_of_action ~member a with
    | Some m -> spec.m_is_input m a
    | None -> false
  in
  let is_output a =
    match member_of_action ~member a with
    | Some m -> spec.m_is_output m a
    | None -> false
  in
  let transition (st : 'state family_state) (a : Action.t) =
    match member_of_action ~member a with
    | None -> None
    | Some m ->
        let sub =
          match Txn.Map.find_opt m st with
          | Some s -> s
          | None -> spec.init m
        in
        Option.map (fun s' -> Txn.Map.add m s' st) (spec.transition sub a)
  in
  let enabled (st : 'state family_state) =
    Txn.Map.fold (fun _ sub acc -> spec.enabled sub @ acc) st []
  in
  Automaton.make ~name ~is_input ~is_output
    ~state:(Txn.Map.empty : 'state family_state)
    ~transition ~enabled
    ~pp:(fun st -> Fmt.str "family %s: %d live members" name (Txn.Map.cardinal st))
    ()
