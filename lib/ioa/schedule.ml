(** Schedules: finite sequences of operations, with projections.

    A schedule is the operation subsequence of an execution
    (Section 2.1).  [project] implements the paper's [sigma|A]
    notation: the subsequence of operations belonging to a component
    (or satisfying any predicate). *)

type t = Action.t list

let empty : t = []
let length = List.length

(** [project p sched] keeps the operations satisfying [p] — the
    paper's "restricted to" operator. *)
let project (p : Action.t -> bool) (sched : t) : t = List.filter p sched

(** [project_component c sched] is [sched|c]: the operations in [c]'s
    signature. *)
let project_component (c : Component.t) (sched : t) : t =
  project (Component.has_action c) sched

(** [project_txn t sched] keeps the operations about transaction [t]
    itself (not its descendants). *)
let project_txn (t : Txn.t) (sched : t) : t =
  project (fun a -> Txn.equal (Action.txn a) t) sched

(** [view_of t sched] is the "view" of transaction automaton [t]: the
    operations of the transaction automaton for [t], i.e. CREATE(T),
    returns of children of [T], and T's own requests.  This is the
    projection used in Theorem 10's condition 2 and in serial
    correctness. *)
let view_of (t : Txn.t) (sched : t) : t =
  let belongs a =
    let u = Action.txn a in
    match a with
    | Action.Create _ | Action.Request_commit _ -> Txn.equal u t
    | Action.Request_create _ ->
        (not (Txn.is_root u)) && Txn.equal (Txn.parent u) t
    | Action.Commit _ | Action.Abort _ ->
        (not (Txn.is_root u)) && Txn.equal (Txn.parent u) t
  in
  project belongs sched

let equal (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 Action.equal a b

let pp ppf (s : t) = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Action.pp) s
let to_string s = Fmt.str "%a" pp s

(** Operations of transactions that are (reflexive) descendants of [t]. *)
let project_subtree (t : Txn.t) (sched : t) : t =
  project (fun a -> Txn.is_ancestor t (Action.txn a)) sched

(** Drop operations whose transaction satisfies [p] — used by the
    Theorem 10 construction, which removes all operations of replica
    accesses. *)
let erase (p : Txn.t -> bool) (sched : t) : t =
  project (fun a -> not (p (Action.txn a))) sched
