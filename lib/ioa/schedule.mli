(** Schedules — finite sequences of operations — with the projection
    operators of the paper ([sigma|A] and friends). *)

type t = Action.t list

val empty : t
val length : t -> int

val project : (Action.t -> bool) -> t -> t
(** Keep the operations satisfying the predicate. *)

val project_component : Component.t -> t -> t
(** [sched|c]: the operations in [c]'s signature. *)

val project_txn : Txn.t -> t -> t
(** Operations about the given transaction itself. *)

val view_of : Txn.t -> t -> t
(** The "view" of a transaction automaton: its CREATE, its own
    requests, and its children's returns — the projection Theorem 10's
    condition 2 compares. *)

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val project_subtree : Txn.t -> t -> t
(** Operations of (reflexive) descendants. *)

val erase : (Txn.t -> bool) -> t -> t
(** Drop operations whose transaction satisfies the predicate — the
    Theorem 10 construction. *)
