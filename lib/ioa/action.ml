(** The operations (actions) of nested transaction systems.

    Section 2.2 fixes five operation families.  For a transaction [T]:
    - [REQUEST_CREATE(T)] -- output of [parent(T)], input of the scheduler;
    - [CREATE(T)] -- output of the scheduler, input of [T] (or of the
      basic object holding [T] when [T] is an access);
    - [REQUEST_COMMIT(T,v)] -- output of [T] (or of its object), input
      of the scheduler;
    - [COMMIT(T,v)] -- output of the scheduler, input of [parent(T)];
    - [ABORT(T)] -- output of the scheduler, input of [parent(T)].

    [COMMIT(T,v)] and [ABORT(T)] are the {e return operations} for [T]. *)

type t =
  | Request_create of Txn.t
  | Create of Txn.t
  | Request_commit of Txn.t * Value.t
  | Commit of Txn.t * Value.t
  | Abort of Txn.t

(** The transaction an operation is about. *)
let txn = function
  | Request_create t | Create t -> t
  | Request_commit (t, _) | Commit (t, _) -> t
  | Abort t -> t

(** Is this a return operation (COMMIT or ABORT) for [t]? *)
let is_return_for t = function
  | Commit (t', _) | Abort t' -> Txn.equal t t'
  | Request_create _ | Create _ | Request_commit _ -> false

let is_return = function
  | Commit _ | Abort _ -> true
  | Request_create _ | Create _ | Request_commit _ -> false

let equal a b =
  match (a, b) with
  | Request_create t, Request_create u -> Txn.equal t u
  | Create t, Create u -> Txn.equal t u
  | Request_commit (t, v), Request_commit (u, w) ->
      Txn.equal t u && Value.equal v w
  | Commit (t, v), Commit (u, w) -> Txn.equal t u && Value.equal v w
  | Abort t, Abort u -> Txn.equal t u
  | (Request_create _ | Create _ | Request_commit _ | Commit _ | Abort _), _
    ->
      false

let compare = Stdlib.compare

let pp ppf = function
  | Request_create t -> Fmt.pf ppf "REQUEST_CREATE(%a)" Txn.pp t
  | Create t -> Fmt.pf ppf "CREATE(%a)" Txn.pp t
  | Request_commit (t, v) ->
      Fmt.pf ppf "REQUEST_COMMIT(%a, %a)" Txn.pp t Value.pp v
  | Commit (t, v) -> Fmt.pf ppf "COMMIT(%a, %a)" Txn.pp t Value.pp v
  | Abort t -> Fmt.pf ppf "ABORT(%a)" Txn.pp t

let to_string a = Fmt.str "%a" pp a
