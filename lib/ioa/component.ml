(** I/O automaton components, encoded as immutable step machines.

    An I/O automaton (Section 2.1) has states, start states, disjoint
    input and output operation sets, and a transition relation subject
    to the {e input condition}: every input operation is enabled in
    every state.

    We encode a component in "Mealy" style: a value of type {!t}
    represents an automaton {e together with its current state}; each
    [step] returns a new component.  This keeps executions replayable
    and lets checkers re-run schedules without mutation.  All the
    automata we define are state-deterministic in the paper's sense
    (the state is a function of the schedule), so one successor per
    step suffices; the nondeterminism of the model lives in the
    *choice* of the next operation, which {!System} resolves with a
    seeded PRNG. *)

type t = {
  name : string;  (** for diagnostics only *)
  is_input : Action.t -> bool;  (** input signature [in(A)] *)
  is_output : Action.t -> bool;  (** output signature [out(A)] *)
  step : Action.t -> t option;
      (** [step pi] is [Some c'] when the operation is in the
          signature and (for outputs) its precondition holds; [None]
          when an output's precondition fails.  By the input
          condition, [step] never returns [None] on an input. *)
  enabled : unit -> Action.t list;
      (** the output operations enabled in the current state.  For
          automata with infinitely many enabled outputs this is a
          finite, generator-chosen sample (a restriction of
          nondeterminism only -- see DESIGN.md Section 5). *)
  describe : unit -> string;  (** current-state rendering, for debug *)
}

let name c = c.name
let is_input c a = c.is_input a
let is_output c a = c.is_output a

(** An operation is in the component's signature if it is an input or
    an output of the component. *)
let has_action c a = c.is_input a || c.is_output a

let step c a = c.step a
let enabled c = c.enabled ()
let describe c = c.describe ()
