(** Well-formedness of operation sequences (Section 2.2).

    The paper defines well-formedness recursively, separately for
    sequences of operations of a (non-access) transaction and for
    sequences of operations of a basic object, and proves (via
    [Lynch-Merritt]) that all serial schedules are well-formed
    (Lemma 5 instantiates this for system B).  We implement both
    definitions as incremental checkers, plus a whole-schedule checker
    that projects onto every primitive, so Lemma 5 can be validated
    mechanically on generated executions. *)

(** {1 Transaction well-formedness}

    For a sequence of operations of transaction [T]:
    - CREATE(T) occurs at most once;
    - a return for child [T'] requires a prior REQUEST_CREATE(T') and
      no prior return for [T'];
    - REQUEST_CREATE(T') occurs at most once per child, only after
      CREATE(T), and not after a REQUEST_COMMIT for [T];
    - REQUEST_COMMIT for [T] occurs at most once, after CREATE(T). *)

module Txn_check = struct
  type t = {
    who : Txn.t;
    created : bool;
    requested_commit : bool;
    req_created : Txn.Set.t;  (** children whose creation was requested *)
    returned : Txn.Set.t;  (** children that have returned *)
  }

  let init who =
    {
      who;
      created = false;
      requested_commit = false;
      req_created = Txn.Set.empty;
      returned = Txn.Set.empty;
    }

  let fail fmt = Fmt.kstr (fun s -> Error s) fmt

  let step (st : t) (a : Action.t) : (t, string) result =
    let t = st.who in
    match a with
    | Action.Create t' when Txn.equal t t' ->
        if st.created then fail "%a created twice" Txn.pp t
        else Ok { st with created = true }
    | Action.Commit (c, _) | Action.Abort c ->
        if Txn.is_root c || not (Txn.equal (Txn.parent c) t) then
          fail "return for %a delivered to non-parent %a" Txn.pp c Txn.pp t
        else if not (Txn.Set.mem c st.req_created) then
          fail "return for unrequested child %a at %a" Txn.pp c Txn.pp t
        else if Txn.Set.mem c st.returned then
          fail "second return for child %a at %a" Txn.pp c Txn.pp t
        else Ok { st with returned = Txn.Set.add c st.returned }
    | Action.Request_create c ->
        if Txn.is_root c || not (Txn.equal (Txn.parent c) t) then
          fail "%a requested creation of non-child %a" Txn.pp t Txn.pp c
        else if Txn.Set.mem c st.req_created then
          fail "%a requested child %a twice" Txn.pp t Txn.pp c
        else if st.requested_commit then
          fail "%a requested child %a after its own REQUEST_COMMIT" Txn.pp t
            Txn.pp c
        else if not st.created then
          fail "%a requested child %a before being created" Txn.pp t Txn.pp c
        else Ok { st with req_created = Txn.Set.add c st.req_created }
    | Action.Request_commit (t', _) when Txn.equal t t' ->
        if st.requested_commit then
          fail "%a requested commit twice" Txn.pp t
        else if not st.created then
          fail "%a requested commit before being created" Txn.pp t
        else Ok { st with requested_commit = true }
    | Action.Create _ | Action.Request_commit _ ->
        fail "operation %a not of transaction %a" Action.pp a Txn.pp t
end

(** {1 Basic object well-formedness}

    Schedules of a basic object alternate CREATE and REQUEST_COMMIT
    starting with a CREATE, each (CREATE, REQUEST_COMMIT) pair names
    the same access, and each access is created at most once. *)

module Object_check = struct
  type t = {
    obj : string;
    pending : Txn.t option;  (** access created but not yet committed *)
    created : Txn.Set.t;  (** all accesses ever created *)
  }

  let init obj = { obj; pending = None; created = Txn.Set.empty }

  let fail fmt = Fmt.kstr (fun s -> Error s) fmt

  let step (st : t) (a : Action.t) : (t, string) result =
    match a with
    | Action.Create t -> (
        match st.pending with
        | Some p ->
            fail "object %s: CREATE(%a) while %a is pending" st.obj Txn.pp t
              Txn.pp p
        | None ->
            if Txn.Set.mem t st.created then
              fail "object %s: access %a created twice" st.obj Txn.pp t
            else
              Ok
                {
                  st with
                  pending = Some t;
                  created = Txn.Set.add t st.created;
                })
    | Action.Request_commit (t, _) -> (
        match st.pending with
        | Some p when Txn.equal p t -> Ok { st with pending = None }
        | Some p ->
            fail "object %s: REQUEST_COMMIT(%a) but pending access is %a"
              st.obj Txn.pp t Txn.pp p
        | None ->
            fail "object %s: REQUEST_COMMIT(%a) with no pending access" st.obj
              Txn.pp t)
    | Action.Request_create _ | Action.Commit _ | Action.Abort _ ->
        fail "object %s: operation %a not an object operation" st.obj
          Action.pp a
end

(** {1 Whole-schedule well-formedness}

    A sequence of operations of a system is well-formed iff its
    projection at every primitive (every transaction automaton and
    every basic object) is well-formed.  The caller supplies
    [is_access], the system-type information saying which transaction
    names are accesses (leaves handled by objects) in this system. *)

type state = {
  is_access : Txn.t -> bool;
  txns : Txn_check.t Txn.Map.t;
  objs : (string * Object_check.t) list;
}

let init ~is_access = { is_access; txns = Txn.Map.empty; objs = [] }

let ( let* ) = Result.bind

let txn_step st who a =
  let chk =
    match Txn.Map.find_opt who st.txns with
    | Some c -> c
    | None -> Txn_check.init who
  in
  let* chk = Txn_check.step chk a in
  Ok { st with txns = Txn.Map.add who chk st.txns }

let obj_step st obj a =
  let chk =
    match List.assoc_opt obj st.objs with
    | Some c -> c
    | None -> Object_check.init obj
  in
  let* chk = Object_check.step chk a in
  Ok { st with objs = (obj, chk) :: List.remove_assoc obj st.objs }

(** Route one operation to every primitive whose signature contains
    it, stepping each projection checker. *)
let step (st : state) (a : Action.t) : (state, string) result =
  let t = Action.txn a in
  match a with
  | Action.Request_create _ ->
      (* Output of parent(t); parent is always a non-access txn. *)
      if Txn.is_root t then Error "REQUEST_CREATE of the root"
      else txn_step st (Txn.parent t) a
  | Action.Create _ ->
      if st.is_access t then
        match Txn.obj_of t with
        | Some obj -> obj_step st obj a
        | None -> Error (Fmt.str "access %a has no object" Txn.pp t)
      else txn_step st t a
  | Action.Request_commit _ ->
      if st.is_access t then
        match Txn.obj_of t with
        | Some obj -> obj_step st obj a
        | None -> Error (Fmt.str "access %a has no object" Txn.pp t)
      else txn_step st t a
  | Action.Commit _ | Action.Abort _ ->
      (* Input of parent(t): only meaningful when the parent is a
         non-access transaction (always true in our systems). *)
      if Txn.is_root t then Error "return operation for the root"
      else
        let p = Txn.parent t in
        if st.is_access p then
          Error (Fmt.str "return for %a delivered to access parent" Txn.pp t)
        else txn_step st p a

(** [check ~is_access sched] validates a whole schedule; [Ok ()] means
    every primitive projection is well-formed. *)
let check ~is_access (sched : Schedule.t) : (unit, string) result =
  let rec go st = function
    | [] -> Ok ()
    | a :: rest ->
        let* st = step st a in
        go st rest
  in
  go (init ~is_access) sched
