(** I/O automaton components, encoded as immutable step machines: a
    value of type {!t} is an automaton {e together with its current
    state}; stepping returns a new component.  See the implementation
    notes for how this realizes the Section 2.1 model. *)

type t = {
  name : string;  (** for diagnostics only *)
  is_input : Action.t -> bool;  (** input signature [in(A)] *)
  is_output : Action.t -> bool;  (** output signature [out(A)] *)
  step : Action.t -> t option;
      (** [Some c'] when the operation is in the signature and (for
          outputs) its precondition holds; [None] when an output's
          precondition fails.  Never [None] on an input (input
          condition). *)
  enabled : unit -> Action.t list;
      (** the output operations enabled in the current state (a
          finite, generator-chosen sample when infinitely many are
          enabled) *)
  describe : unit -> string;  (** current-state rendering, for debug *)
}

val name : t -> string
val is_input : t -> Action.t -> bool
val is_output : t -> Action.t -> bool

val has_action : t -> Action.t -> bool
(** In the component's signature (input or output). *)

val step : t -> Action.t -> t option
val enabled : t -> Action.t list
val describe : t -> string
