(** Transaction names and the transaction tree.

    The system type (Section 2.2) organizes transaction names into a
    tree by a [parent] mapping with root [T0].  We realize the naming
    scheme structurally: a transaction name is the path of segments
    from the root, so [parent] is "drop the last segment" and the tree
    relations (ancestor, descendant, lca, siblings) are computable
    from names alone -- exactly the "predefined naming scheme for all
    possible transactions" the paper postulates.

    Two kinds of segments exist:

    - [Seg name] and [Param (name, v)]: ordinary (non-access)
      transaction names.  [Param] carries an input parameter, following
      the paper's footnote 1: "we consider transactions that have
      different input parameters to be different transactions".
    - [Access] segments name accesses in the sense of Section 2.3's
      read-write objects: the named object, the access kind
      (read/write), and -- for writes -- the data to be written.  The
      attributes [kind(T)] and [data(T)] of the paper are thus
      functions of the transaction name, as required (a basic object
      sees only [CREATE(T)] and must determine its behaviour from [T]).
      The [seq] field distinguishes repeated accesses by the same
      parent to the same object, reflecting that the tree contains a
      distinct name for every access that might ever be invoked.

    A central trick of the repository: the transaction managers of the
    replicated system B are named with [Access] segments whose [obj]
    is the *logical* data item.  In system B these names denote
    internal (non-access) transactions; in the derived system A the
    very same names denote accesses to the single read-write object
    implementing the item.  The mapping [7_BA] of the paper is then
    the identity on names, which makes the Theorem 10 simulation check
    a plain projection-and-replay. *)

type kind = Read | Write

type seg =
  | Seg of string
  | Param of string * Value.t
  | Access of { obj : string; kind : kind; data : Value.t; seq : int }

(** A transaction name: path of segments from the root.  The root
    transaction [T0] is the empty path. *)
type t = seg list

let root : t = []
let is_root t = t = []

let seg_equal a b =
  match (a, b) with
  | Seg x, Seg y -> String.equal x y
  | Param (x, v), Param (y, w) -> String.equal x y && Value.equal v w
  | Access a, Access b ->
      String.equal a.obj b.obj && a.kind = b.kind && a.seq = b.seq
      && Value.equal a.data b.data
  | (Seg _ | Param _ | Access _), _ -> false

let equal (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 seg_equal a b

let compare (a : t) (b : t) = Stdlib.compare a b

(** [parent t] is the paper's [parent] mapping.  Undefined on the root. *)
let parent (t : t) : t =
  match t with
  | [] -> invalid_arg "Txn.parent: the root transaction has no parent"
  | _ -> List.filteri (fun i _ -> i < List.length t - 1) t

let child (t : t) (s : seg) : t = t @ [ s ]

let last_seg (t : t) : seg option =
  match List.rev t with [] -> None | s :: _ -> Some s

let depth = List.length

(** [is_ancestor a t]: is [a] an ancestor of [t]?  Per the paper's
    convention a transaction is its own ancestor. *)
let is_ancestor (a : t) (t : t) =
  let rec prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> seg_equal x y && prefix xs' ys'
    | _ :: _, [] -> false
  in
  prefix a t

let is_descendant t a = is_ancestor a t

(** [is_proper_ancestor a t] excludes the reflexive case. *)
let is_proper_ancestor a t = is_ancestor a t && not (equal a t)

(** Least common ancestor of two names. *)
let lca (a : t) (b : t) : t =
  let rec go xs ys acc =
    match (xs, ys) with
    | x :: xs', y :: ys' when seg_equal x y -> go xs' ys' (x :: acc)
    | _ -> List.rev acc
  in
  go a b []

(** Two distinct transactions with the same parent. *)
let are_siblings a b =
  (not (equal a b)) && (not (is_root a)) && (not (is_root b))
  && equal (parent a) (parent b)

(** [is_access t] holds when the name's final segment is an [Access]
    segment, i.e. [t] names a leaf that directly accesses an object.
    Whether such a name is an access *in a given system* additionally
    depends on the system type (see {!Serial}); in system B the TM
    names carry [Access] segments but are internal transactions. *)
let access_info (t : t) =
  match last_seg t with
  | Some (Access a) -> Some (a.obj, a.kind, a.data, a.seq)
  | Some (Seg _ | Param _) | None -> None

let obj_of (t : t) =
  match access_info t with Some (o, _, _, _) -> Some o | None -> None

let kind_of (t : t) =
  match access_info t with Some (_, k, _, _) -> Some k | None -> None

let data_of (t : t) =
  match access_info t with Some (_, _, d, _) -> Some d | None -> None

let pp_seg ppf = function
  | Seg s -> Fmt.string ppf s
  | Param (s, v) -> Fmt.pf ppf "%s(%a)" s Value.pp v
  | Access { obj; kind; data; seq } ->
      let k = match kind with Read -> "r" | Write -> "w" in
      Fmt.pf ppf "%s:%s%d(%a)" obj k seq Value.pp data

let pp ppf (t : t) =
  if t = [] then Fmt.string ppf "T0"
  else Fmt.pf ppf "T0/%a" Fmt.(list ~sep:(any "/") pp_seg) t

let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
