(** Families: one component hosting a set of same-shaped automata
    whose names are computed at run time (e.g. the Section 4
    coordinators, whose parameters come out of a preceding query).
    Members are lazily instantiated at their CREATE and routed to by
    name. *)

type 'state member_spec = {
  init : Txn.t -> 'state;  (** member's start state, from its name *)
  transition : 'state -> Action.t -> 'state option;
  enabled : 'state -> Action.t list;
  m_is_input : Txn.t -> Action.t -> bool;
      (** is the action an input of the member named [t]? *)
  m_is_output : Txn.t -> Action.t -> bool;
}

val member_of_action : member:(Txn.t -> bool) -> Action.t -> Txn.t option
(** Which family member an operation concerns: the operation's
    transaction if it is itself a member, else its parent (covering a
    member's child accesses). *)

val make : name:string -> member:(Txn.t -> bool) -> 'state member_spec -> Component.t
(** The family as a single component whose signature is the union of
    its members' signatures. *)
