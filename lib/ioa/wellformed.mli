(** Well-formedness of operation sequences (paper Section 2.2):
    incremental checkers for transaction projections, basic-object
    projections, and whole schedules. *)

(** Per-transaction well-formedness: created at most once, no repeated
    or conflicting child returns, no requests before creation or after
    the own REQUEST_COMMIT, etc. *)
module Txn_check : sig
  type t

  val init : Txn.t -> t
  val step : t -> Action.t -> (t, string) result
end

(** Per-basic-object well-formedness: alternating CREATE /
    REQUEST_COMMIT pairs naming the same access, each access created
    at most once. *)
module Object_check : sig
  type t

  val init : string -> t
  val step : t -> Action.t -> (t, string) result
end

type state
(** Whole-schedule checker state: one projection checker per primitive
    encountered. *)

val init : is_access:(Txn.t -> bool) -> state
(** [is_access] is the system-type information saying which names are
    accesses (handled by objects) in this system. *)

val step : state -> Action.t -> (state, string) result
(** Route one operation to every primitive whose signature contains
    it. *)

val check : is_access:(Txn.t -> bool) -> Schedule.t -> (unit, string) result
(** Validate a whole schedule: every primitive projection well-formed. *)
