(** Builder for state-deterministic I/O automata.

    Concrete automata in this repository are given by a pure state
    type plus:
    - a [transition] function implementing the pre/postconditions of
      the paper's definitions ([None] = precondition fails);
    - an [enabled] function listing the currently enabled outputs.

    [make] ties the knot into a {!Component.t}.  It enforces the input
    condition dynamically: an input whose [transition] yields [None]
    is treated as a no-op (state unchanged), which matches the
    paper's automata where inputs never have preconditions but may
    have empty postconditions (e.g. ABORT at a read-TM). *)

let make ~name ~is_input ~is_output ~(state : 's)
    ~(transition : 's -> Action.t -> 's option)
    ~(enabled : 's -> Action.t list) ?(pp : ('s -> string) option) () :
    Component.t =
  let pp_state = match pp with Some f -> f | None -> fun _ -> "<state>" in
  let rec of_state (s : 's) : Component.t =
    {
      Component.name;
      is_input;
      is_output;
      step =
        (fun a ->
          if is_output a then
            match transition s a with
            | Some s' -> Some (of_state s')
            | None -> None
          else if is_input a then
            match transition s a with
            | Some s' -> Some (of_state s')
            | None -> Some (of_state s) (* input condition: always accept *)
          else None);
      enabled = (fun () -> List.filter is_output (enabled s));
      describe = (fun () -> pp_state s);
    }
  in
  of_state state
