(** The value domain [V] of a nested transaction system type.

    The paper (Section 2.2) fixes a set [V] of values that may be
    returned by transactions, containing a distinguished undefined
    value [nil].  We use one concrete, structural value type for the
    whole repository so that schedules are directly comparable across
    systems (the Theorem 10 simulation compares COMMIT values of
    same-named transactions in systems A and B).

    Two constructors exist specifically for the replication algorithm:
    - [Versioned] is the domain [D_x = N x V_x] of data managers
      (Section 3.1): a (version-number, value) pair.
    - [Recon_state] and [Gen_config] belong to the reconfiguration
      variant (Section 4), where replicas additionally carry a
      configuration and a generation number, and where write accesses
      may update either the data part or the configuration part. *)

type t =
  | Nil  (** the distinguished undefined value required to be in [V] *)
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Versioned of int * t
      (** DM domain element: (version-number, value); Section 3.1 *)
  | Config of config
      (** a quorum configuration, returned by reconfiguration reads *)
  | Recon_state of recon_state
      (** full state of a reconfigurable replica; Section 4 *)
  | Gen_config of gen_config
      (** a (generation-number, configuration) pair, the payload of a
          configuration-write access; Section 4 *)

(** A configuration is a set of read-quorums and a set of
    write-quorums, each quorum being a set of DM names (Section 2.3,
    following Barbara and Garcia-Molina).  Quorums are kept as sorted
    string lists so that structural equality is meaningful. *)
and config = { read_quorums : string list list; write_quorums : string list list }

(** The state of a reconfigurable replica (Section 4): data with its
    version number, plus a configuration with its generation number. *)
and recon_state = { version : int; data : t; generation : int; config : config }

and gen_config = { gen : int; cfg : config }

let rec pp ppf = function
  | Nil -> Fmt.string ppf "nil"
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs
  | Versioned (n, v) -> Fmt.pf ppf "<vn=%d, %a>" n pp v
  | Config c -> pp_config ppf c
  | Recon_state { version; data; generation; config } ->
      Fmt.pf ppf "<vn=%d, %a, gen=%d, %a>" version pp data generation pp_config
        config
  | Gen_config { gen; cfg } ->
      Fmt.pf ppf "<gen=%d, %a>" gen pp_config cfg

and pp_config ppf { read_quorums; write_quorums } =
  let quorum ppf q = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") string) q in
  Fmt.pf ppf "cfg(r=[%a]; w=[%a])"
    Fmt.(list ~sep:(any " ") quorum)
    read_quorums
    Fmt.(list ~sep:(any " ") quorum)
    write_quorums

let to_string v = Fmt.str "%a" pp v

let rec equal a b =
  match (a, b) with
  | Nil, Nil | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Versioned (n, v), Versioned (m, w) -> n = m && equal v w
  | Config c, Config d -> config_equal c d
  | Recon_state a, Recon_state b ->
      a.version = b.version && equal a.data b.data
      && a.generation = b.generation
      && config_equal a.config b.config
  | Gen_config a, Gen_config b ->
      a.gen = b.gen && config_equal a.cfg b.cfg
  | ( ( Nil | Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Versioned _
      | Config _ | Recon_state _ | Gen_config _ ),
      _ ) ->
      false

and config_equal c d =
  let ql_equal a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> List.compare String.compare x y = 0) a b
  in
  ql_equal c.read_quorums d.read_quorums
  && ql_equal c.write_quorums d.write_quorums

let compare = Stdlib.compare
