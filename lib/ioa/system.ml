(** Composition of I/O automata, and an execution driver.

    A set of automata with disjoint output sets composes into a
    system, itself an automaton (Section 2.1): states are tuples of
    component states; an operation is a step iff every component
    having the operation in its signature takes a step and the rest
    stay put.  An operation is an output of the composition iff it is
    the output of (exactly one) component.

    The driver resolves the model's nondeterminism with a seeded PRNG:
    at each step it collects the enabled output operations of all
    components and applies a strategy to pick one.  Because every
    component's inputs are always enabled (input condition), an
    enabled output of one component is always a step of the whole
    composition, so the driver never backtracks. *)

type t = { components : Component.t list }

let compose components = { components }
let components t = t.components

let find_component t name =
  List.find_opt (fun c -> String.equal (Component.name c) name) t.components

(** The enabled output operations of the composition: the union of
    the components' enabled outputs. *)
let enabled (t : t) : Action.t list =
  List.concat_map Component.enabled t.components

(** [owners t a] is the list of components having [a] as an output
    (well-formed systems have at most one). *)
let owners (t : t) (a : Action.t) =
  List.filter (fun c -> Component.is_output c a) t.components

(** [apply t a] performs one step of the composition.  Fails when [a]
    is the output of zero or several components, or when the owner's
    precondition does not hold. *)
let apply (t : t) (a : Action.t) : (t, string) result =
  match owners t a with
  | [] ->
      Error (Fmt.str "%a is not the output of any component" Action.pp a)
  | _ :: _ :: _ ->
      Error (Fmt.str "%a is the output of several components" Action.pp a)
  | [ _owner ] -> (
      let step_one (acc : (Component.t list, string) result) c =
        match acc with
        | Error _ as e -> e
        | Ok done_ ->
            if Component.has_action c a then
              match Component.step c a with
              | Some c' -> Ok (c' :: done_)
              | None ->
                  if Component.is_output c a then
                    Error
                      (Fmt.str "precondition of %a fails at component %s"
                         Action.pp a (Component.name c))
                  else
                    Error
                      (Fmt.str "input %a rejected by component %s (bug)"
                         Action.pp a (Component.name c))
            else Ok (c :: done_)
      in
      match List.fold_left step_one (Ok []) t.components with
      | Ok rev -> Ok { components = List.rev rev }
      | Error _ as e -> e)

(** [replay t sched] applies a whole schedule; [Ok t'] iff [sched] is
    a schedule of [t].  This is the executable meaning of "[alpha] is
    a schedule of system A" used by the Theorem 10 checker. *)
let replay (t : t) (sched : Schedule.t) : (t, string) result =
  let rec go t i = function
    | [] -> Ok t
    | a :: rest -> (
        match apply t a with
        | Ok t' -> go t' (i + 1) rest
        | Error e -> Error (Fmt.str "at step %d: %s" i e))
  in
  go t 0 sched

(** A strategy picks the next operation among the enabled outputs. *)
type strategy = Qc_util.Prng.t -> Action.t list -> Action.t

(** Uniform choice over enabled outputs. *)
let uniform : strategy = fun rng actions -> Qc_util.Prng.choose rng actions

(** A strategy biased toward completing work: REQUEST_COMMIT / COMMIT
    operations are preferred with probability [bias], which keeps long
    random executions from ballooning the set of live transactions. *)
let completion_biased ?(bias = 0.7) () : strategy =
 fun rng actions ->
  let finishing =
    List.filter
      (function
        | Action.Request_commit _ | Action.Commit _ -> true
        | Action.Request_create _ | Action.Create _ | Action.Abort _ -> false)
      actions
  in
  match finishing with
  | [] -> Qc_util.Prng.choose rng actions
  | _ ->
      if Qc_util.Prng.float rng < bias then Qc_util.Prng.choose rng finishing
      else Qc_util.Prng.choose rng actions

type run_result = {
  final : t;
  schedule : Schedule.t;
  quiescent : bool;  (** true when the run stopped with nothing enabled *)
}

(** [run ~rng ?strategy ?max_steps ?tracer t] drives the composition
    until quiescence or the step bound, returning the schedule
    produced.  Each operation picked is validated through {!apply}, so
    the result is by construction a schedule of the composition.

    With a [tracer], every step fires an instant event (category
    "ioa", timestamped with the step index, the rendered operation in
    the args) — when a downstream check fails, the trace holds the
    exact action trail that produced the schedule. *)
let run ?(max_steps = 10_000) ?(strategy = uniform) ?tracer ~rng (t : t) :
    run_result =
  let trace_step n a menu =
    match tracer with
    | Some tr when Obs.Trace.enabled tr ->
        Obs.Trace.instant tr ~cat:"ioa" ~name:"step" ~track:"scheduler"
          ~ts:(float_of_int n)
          ~args:
            [
              ("i", Obs.Trace.Int n);
              ("action", Obs.Trace.Str (Fmt.str "%a" Action.pp a));
              ("enabled", Obs.Trace.Int menu);
            ]
          ()
    | _ -> ()
  in
  let trace_stop n reason =
    match tracer with
    | Some tr when Obs.Trace.enabled tr ->
        Obs.Trace.instant tr ~cat:"ioa" ~name:reason ~track:"scheduler"
          ~ts:(float_of_int n)
          ~args:[ ("steps", Obs.Trace.Int n) ]
          ()
    | _ -> ()
  in
  let rec go t acc n =
    if n >= max_steps then begin
      trace_stop n "step_bound";
      { final = t; schedule = List.rev acc; quiescent = false }
    end
    else
      match enabled t with
      | [] ->
          trace_stop n "quiescent";
          { final = t; schedule = List.rev acc; quiescent = true }
      | actions -> (
          let a = strategy rng actions in
          trace_step n a (List.length actions);
          match apply t a with
          | Ok t' -> go t' (a :: acc) (n + 1)
          | Error e ->
              invalid_arg
                (Fmt.str "System.run: enabled operation failed to apply: %s" e))
  in
  go t [] 0
