(** Composition of I/O automata (paper Section 2.1) and a seeded
    execution driver resolving the model's nondeterminism. *)

type t
(** A composed system. *)

val compose : Component.t list -> t
(** Compose components.  Output-set disjointness is enforced at
    {!apply} time (an operation owned by several components is
    rejected). *)

val components : t -> Component.t list
val find_component : t -> string -> Component.t option

val enabled : t -> Action.t list
(** The enabled output operations of the composition. *)

val owners : t -> Action.t -> Component.t list
(** Components having the operation as an output (at most one in a
    well-formed system). *)

val apply : t -> Action.t -> (t, string) result
(** One step: every component with the operation in its signature
    steps; the rest stay put.  Fails when the operation has zero or
    several owners, or the owner's precondition fails. *)

val replay : t -> Schedule.t -> (t, string) result
(** Apply a whole sequence; [Ok] iff it is a schedule of the system —
    the executable meaning of "is a schedule of" used by the
    Theorem 10 checker. *)

type strategy = Qc_util.Prng.t -> Action.t list -> Action.t
(** Picks the next operation among the enabled outputs. *)

val uniform : strategy

val completion_biased : ?bias:float -> unit -> strategy
(** Prefers REQUEST_COMMIT / COMMIT operations with probability
    [bias], keeping long random executions from ballooning. *)

type run_result = {
  final : t;
  schedule : Schedule.t;
  quiescent : bool;  (** stopped with nothing enabled *)
}

val run :
  ?max_steps:int ->
  ?strategy:strategy ->
  ?tracer:Obs.Trace.t ->
  rng:Qc_util.Prng.t ->
  t ->
  run_result
(** Drive to quiescence or the step bound; the result is by
    construction a schedule of the composition.  With a [tracer],
    every step fires an instant event (category "ioa", timestamped
    with the step index, the rendered operation in the args), so a
    failed check downstream can dump the exact action trail. *)
