(** The operations (actions) of nested transaction systems
    (paper Section 2.2): the five operation families relating a
    transaction, its parent, and the scheduler. *)

type t =
  | Request_create of Txn.t  (** output of [parent(T)] *)
  | Create of Txn.t  (** output of the scheduler, "wakes up" [T] *)
  | Request_commit of Txn.t * Value.t  (** output of [T] (or its object) *)
  | Commit of Txn.t * Value.t  (** output of the scheduler, input of the parent *)
  | Abort of Txn.t  (** output of the scheduler, input of the parent *)

val txn : t -> Txn.t
(** The transaction the operation is about. *)

val is_return_for : Txn.t -> t -> bool
(** Is this a return operation (COMMIT or ABORT) for the given
    transaction? *)

val is_return : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string
