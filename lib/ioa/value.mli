(** The value domain [V] of a nested transaction system type
    (paper Section 2.2), shared by every system in the repository so
    that schedules are directly comparable across systems. *)

type t =
  | Nil  (** the distinguished undefined value required to be in [V] *)
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Versioned of int * t
      (** DM domain element: (version-number, value); Section 3.1 *)
  | Config of config
      (** a quorum configuration, returned by reconfiguration reads *)
  | Recon_state of recon_state
      (** full state of a reconfigurable replica; Section 4 *)
  | Gen_config of gen_config
      (** a (generation-number, configuration) pair, the payload of a
          configuration-write access; Section 4 *)

(** A configuration: a set of read-quorums and a set of write-quorums,
    each quorum a sorted set of DM names (Section 2.3). *)
and config = { read_quorums : string list list; write_quorums : string list list }

(** The state of a reconfigurable replica (Section 4). *)
and recon_state = { version : int; data : t; generation : int; config : config }

and gen_config = { gen : int; cfg : config }

val pp : t Fmt.t
val pp_config : config Fmt.t
val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality. *)

val config_equal : config -> config -> bool
val compare : t -> t -> int
