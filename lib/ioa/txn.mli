(** Transaction names and the transaction tree (paper Section 2.2).

    A name is the path of segments from the root [T0] (the empty
    path), so the tree relations are computable from names alone —
    the "predefined naming scheme for all possible transactions" the
    paper postulates.  [Access] segments carry the access attributes
    [kind(T)] and [data(T)]; [Param] segments carry input parameters
    of internal transactions (transactions with different parameters
    are different transactions, per the paper's footnote 1). *)

type kind = Read | Write

type seg =
  | Seg of string
  | Param of string * Value.t
  | Access of { obj : string; kind : kind; data : Value.t; seq : int }

type t = seg list
(** A transaction name: path of segments from the root. *)

val root : t
(** [T0], the root transaction modelling the environment. *)

val is_root : t -> bool
val seg_equal : seg -> seg -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val parent : t -> t
(** The paper's [parent] mapping.
    @raise Invalid_argument on the root. *)

val child : t -> seg -> t
val last_seg : t -> seg option
val depth : t -> int

val is_ancestor : t -> t -> bool
(** [is_ancestor a t]: reflexive ancestor relation. *)

val is_descendant : t -> t -> bool
val is_proper_ancestor : t -> t -> bool

val lca : t -> t -> t
(** Least common ancestor. *)

val are_siblings : t -> t -> bool
(** Distinct transactions with the same parent. *)

val access_info : t -> (string * kind * Value.t * int) option
(** The access attributes carried by the final segment, if any:
    (object, kind, data, sequence number). *)

val obj_of : t -> string option
val kind_of : t -> kind option
val data_of : t -> Value.t option

val pp_seg : seg Fmt.t
val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
