(** The fault-schedule DSL: a cluster-test scenario as data.

    A script is a list of steps.  Most steps are timed one-shots —
    partition these sides at t, crash this node, install a drop filter
    on that link, heal everything — and two are seeded stochastic
    processes lifted from the old ad-hoc nemesis knobs: the random
    bipartition storm ([Bipartition_storm], the former
    [Cluster.params.partitions]) and the exponential crash/recover
    process ([Crash_storm], the former [failures]).  The legacy knobs
    are now thin constructors over scripts ({!of_partitions},
    {!of_failures}, {!of_shard_kill}), and compiling them through the
    interpreter reproduces the historical runs byte for byte.

    Scripts print to and parse from a compact one-line format, so a
    failing fuzzer seed turns into a copy-pasteable repro:

    {v @120 partition r0,r1/r2,r3,r4; @180 heal; storm mean=150 v}

    Times are relative to the moment the script is installed (time 0
    in a cluster run). *)

module Net = Sim.Net

type action =
  | Partition of string list list
      (** cut every link between nodes of distinct sides; nodes in no
          side keep all their links *)
  | Heal  (** heal every link cut and clear every link filter *)
  | Crash of string
  | Recover of string
  | Link_filter of { src : string; dst : string; spec : Net.drop_spec }
      (** directed per-link fault filter (see {!Sim.Net.drop_spec}) *)
  | Link_clear of { src : string; dst : string }
  | Loss of float  (** set the network-wide loss probability *)
  | Pause_shard of int  (** crash every replica of the shard *)
  | Resume_shard of int  (** recover every replica of the shard *)
  | Kill_shard of int
      (** crash every replica of the shard for good (the legacy
          [shard_kill] nemesis — no later resume is scheduled, though a
          [Resume_shard] step may still revive it) *)

type step =
  | At of float * action  (** fire the action at this virtual time *)
  | Bipartition_storm of { mean : float; cycles : int }
      (** every ~[mean] time units, cut the replicas along a random
          bipartition (clients follow one side) and heal half a period
          later, for [cycles] cycles — the legacy [partitions] nemesis,
          seeded from the run seed *)
  | Crash_storm of Sim.Failure.spec
      (** exponential crash/recover processes on every replica (MTBF
          up, MTTR down) — the legacy [failures] nemesis *)

type t = step list

(* ---------- labels and printing ---------- *)

let float_str f = Fmt.str "%.12g" f

let action_label = function
  | Partition sides ->
      Fmt.str "partition %s"
        (String.concat "/" (List.map (String.concat ",") sides))
  | Heal -> "heal"
  | Crash n -> Fmt.str "crash %s" n
  | Recover n -> Fmt.str "recover %s" n
  | Link_filter { src; dst; spec } ->
      Fmt.str "filter %s>%s %s" src dst (Net.drop_spec_label spec)
  | Link_clear { src; dst } -> Fmt.str "unfilter %s>%s" src dst
  | Loss p -> Fmt.str "loss %s" (float_str p)
  | Pause_shard s -> Fmt.str "pause-shard %d" s
  | Resume_shard s -> Fmt.str "resume-shard %d" s
  | Kill_shard s -> Fmt.str "kill-shard %d" s

let step_label = function
  | At (t, a) -> Fmt.str "@%s %s" (float_str t) (action_label a)
  | Bipartition_storm { mean; cycles } ->
      Fmt.str "storm mean=%s cycles=%d" (float_str mean) cycles
  | Crash_storm { Sim.Failure.mtbf; mttr } ->
      Fmt.str "faults mtbf=%s mttr=%s" (float_str mtbf) (float_str mttr)

let to_string (s : t) = String.concat "; " (List.map step_label s)
let pp ppf s = Fmt.string ppf (to_string s)

(* ---------- parsing ---------- *)

let parse_float what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Fmt.str "%s must be a finite number (got %S)" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Fmt.str "%s must be an integer (got %S)" what s)

let ( let* ) = Result.bind

let parse_spec s =
  if s = "all" then Ok Net.Drop_all
  else
    match String.index_opt s ':' with
    | Some i -> (
        let kind = String.sub s 0 i in
        let arg = String.sub s (i + 1) (String.length s - i - 1) in
        match kind with
        | "first" ->
            let* n = parse_int "filter first count" arg in
            Ok (Net.Drop_first n)
        | "prob" ->
            let* p = parse_float "filter probability" arg in
            Ok (Net.Drop_prob p)
        | _ -> Error (Fmt.str "unknown filter spec %S" s))
    | None -> Error (Fmt.str "unknown filter spec %S (all|first:N|prob:P)" s)

let parse_link what s =
  match String.index_opt s '>' with
  | Some i when i > 0 && i < String.length s - 1 ->
      Ok
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
  | _ -> Error (Fmt.str "%s must look like SRC>DST (got %S)" what s)

let parse_kv what key s =
  let pre = key ^ "=" in
  let n = String.length pre in
  if String.length s > n && String.sub s 0 n = pre then
    parse_float (Fmt.str "%s %s" what key) (String.sub s n (String.length s - n))
  else Error (Fmt.str "%s expects %s=VALUE (got %S)" what key s)

let parse_action = function
  | [ "partition"; sides ] ->
      let sides =
        String.split_on_char '/' sides
        |> List.map (String.split_on_char ',')
      in
      Ok (Partition sides)
  | [ "heal" ] -> Ok Heal
  | [ "crash"; n ] -> Ok (Crash n)
  | [ "recover"; n ] -> Ok (Recover n)
  | [ "filter"; link; spec ] ->
      let* src, dst = parse_link "filter link" link in
      let* spec = parse_spec spec in
      Ok (Link_filter { src; dst; spec })
  | [ "unfilter"; link ] ->
      let* src, dst = parse_link "unfilter link" link in
      Ok (Link_clear { src; dst })
  | [ "loss"; p ] ->
      let* p = parse_float "loss" p in
      Ok (Loss p)
  | [ "pause-shard"; s ] ->
      let* s = parse_int "pause-shard" s in
      Ok (Pause_shard s)
  | [ "resume-shard"; s ] ->
      let* s = parse_int "resume-shard" s in
      Ok (Resume_shard s)
  | [ "kill-shard"; s ] ->
      let* s = parse_int "kill-shard" s in
      Ok (Kill_shard s)
  | tokens ->
      Error (Fmt.str "unknown action %S" (String.concat " " tokens))

let parse_step s =
  let tokens =
    String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "")
  in
  match tokens with
  | [] -> Ok None
  | first :: rest when String.length first > 1 && first.[0] = '@' ->
      let* t =
        parse_float "step time" (String.sub first 1 (String.length first - 1))
      in
      let* a = parse_action rest in
      Ok (Some (At (t, a)))
  | "storm" :: args ->
      let* mean, cycles =
        match args with
        | [ m ] ->
            let* m = parse_kv "storm" "mean" m in
            Ok (m, 64)
        | [ m; c ] ->
            let* m = parse_kv "storm" "mean" m in
            let* c = parse_kv "storm" "cycles" c in
            Ok (m, int_of_float c)
        | _ -> Error "storm expects mean=M [cycles=K]"
      in
      Ok (Some (Bipartition_storm { mean; cycles }))
  | "faults" :: args ->
      let* mtbf, mttr =
        match args with
        | [ a; b ] ->
            let* a = parse_kv "faults" "mtbf" a in
            let* b = parse_kv "faults" "mttr" b in
            Ok (a, b)
        | _ -> Error "faults expects mtbf=A mttr=B"
      in
      Ok (Some (Crash_storm { Sim.Failure.mtbf; mttr }))
  | _ -> Error (Fmt.str "cannot parse step %S" (String.trim s))

let of_string s : (t, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
        match parse_step chunk with
        | Error e -> Error e
        | Ok None -> go acc rest
        | Ok (Some step) -> go (step :: acc) rest)
  in
  go [] (String.split_on_char ';' s)

(* ---------- validation ---------- *)

let valid_name n =
  n <> ""
  && String.for_all
       (fun c -> not (List.mem c [ ' '; ','; '/'; '>'; ';'; '@' ]))
       n

let validate_action = function
  | Partition sides ->
      if List.length sides < 2 then Error "partition needs >= 2 sides"
      else if List.exists (fun side -> side = []) sides then
        Error "partition sides must be non-empty"
      else if
        not (List.for_all (List.for_all valid_name) sides)
      then Error "partition: invalid node name"
      else
        let all = List.concat sides in
        if List.length (List.sort_uniq String.compare all) <> List.length all
        then
          Error "partition sides must be disjoint"
        else Ok ()
  | Heal -> Ok ()
  | Crash n | Recover n ->
      if valid_name n then Ok () else Error (Fmt.str "invalid node name %S" n)
  | Link_filter { src; dst; spec } ->
      if not (valid_name src && valid_name dst) then
        Error "filter: invalid node name"
      else (
        match spec with
        | Net.Drop_first n when n < 0 -> Error "filter first count must be >= 0"
        | Net.Drop_prob p when not (p >= 0.0 && p <= 1.0) ->
            Error "filter probability must be in [0, 1]"
        | _ -> Ok ())
  | Link_clear { src; dst } ->
      if valid_name src && valid_name dst then Ok ()
      else Error "unfilter: invalid node name"
  | Loss p ->
      if p >= 0.0 && p < 1.0 then Ok () else Error "loss must be in [0, 1)"
  | Pause_shard s | Resume_shard s | Kill_shard s ->
      if s >= 0 then Ok () else Error "shard index must be >= 0"

let validate_step = function
  | At (t, a) ->
      if not (Float.is_finite t && t >= 0.0) then
        Error (Fmt.str "step time must be finite and >= 0 (got %s)" (float_str t))
      else validate_action a
  | Bipartition_storm { mean; cycles } ->
      if not (Float.is_finite mean && mean > 0.0) then
        Error "storm mean must be > 0"
      else if cycles < 0 then Error "storm cycles must be >= 0"
      else Ok ()
  | Crash_storm { Sim.Failure.mtbf; mttr } ->
      if Float.is_finite mtbf && mtbf > 0.0 && Float.is_finite mttr && mttr > 0.0
      then Ok ()
      else Error "faults mtbf and mttr must be > 0"

let validate (s : t) =
  let rec go i = function
    | [] -> Ok ()
    | step :: rest -> (
        match validate_step step with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Fmt.str "step %d (%s): %s" i (step_label step) e))
  in
  go 0 s

(* ---------- the legacy knobs as thin constructors ---------- *)

let of_partitions mean : t = [ Bipartition_storm { mean; cycles = 64 } ]
let of_failures spec : t = [ Crash_storm spec ]
let of_shard_kill (s, at) : t = [ At (at, Kill_shard s) ]

(* Order matters for byte-identity: the pre-script cluster installed
   failures, then partitions, then shard_kill, so the compiled steps
   keep that order. *)
let of_legacy ?failures ?partitions ?shard_kill () : t =
  (match failures with Some s -> of_failures s | None -> [])
  @ (match partitions with Some m -> of_partitions m | None -> [])
  @ (match shard_kill with Some k -> of_shard_kill k | None -> [])

(* ---------- shape queries ---------- *)

let disruptive = function
  | Partition _ | Crash _ | Link_filter _ | Pause_shard _ | Kill_shard _ ->
      true
  | Loss p -> p > 0.0
  | Heal | Recover _ | Link_clear _ | Resume_shard _ -> false

(** The virtual time after which the script leaves the cluster healed
    — the last step is restorative ([Heal], [Recover], [Resume_shard],
    [Link_clear], [Loss 0]) and nothing disruptive or stochastic fires
    later.  [None] when the script never settles (storms, a
    [Kill_shard], a [Crash] without a later [Recover]...). *)
let quiesces_at (s : t) : float option =
  let has_storm =
    List.exists
      (function Bipartition_storm _ | Crash_storm _ -> true | At _ -> false)
      s
  in
  if has_storm then None
  else
    let timed =
      List.filter_map (function At (t, a) -> Some (t, a) | _ -> None) s
    in
    match timed with
    | [] -> None
    | _ ->
        let t_max =
          List.fold_left (fun m (t, _) -> Float.max m t) neg_infinity timed
        in
        (* after t_max nothing fires; the run is settled iff no fault
           installed at any time is still standing: every crash/pause
           has a later recover/resume/heal-equivalent, every cut a
           heal, every filter a clear or heal, loss ends <= 0 *)
        let settled =
          List.for_all
            (fun (t, a) ->
              if not (disruptive a) then true
              else
                List.exists
                  (fun (t', a') ->
                    t' >= t
                    && (t', a') <> (t, a)
                    &&
                    match (a, a') with
                    | Partition _, Heal -> true
                    | Crash n, Recover n' -> n = n'
                    | Link_filter { src; dst; _ }, Link_clear l ->
                        l.src = src && l.dst = dst
                    | Link_filter _, Heal -> true
                    | Pause_shard x, Resume_shard y -> x = y
                    | Loss _, Loss p' -> Float.equal p' 0.0
                    | _ -> false)
                  timed)
            timed
        in
        if settled then Some t_max else None

(* ---------- shrinking ---------- *)

(** Strictly smaller candidate scripts, for failure minimization:
    each step dropped; storms with halved cycles; heals pulled
    earlier (shorter partitions).  Every candidate is by construction
    shorter or cheaper than the input, so greedy shrinking
    terminates. *)
let shrink (s : t) : t list =
  let n = List.length s in
  let drop i = List.filteri (fun j _ -> j <> i) s in
  let removals = List.init n drop in
  let cheaper =
    List.concat
      (List.mapi
         (fun i step ->
           match step with
           | Bipartition_storm { mean; cycles } when cycles > 1 ->
               [
                 List.mapi
                   (fun j st ->
                     if j = i then Bipartition_storm { mean; cycles = cycles / 2 }
                     else st)
                   s;
               ]
           | At (t_heal, Heal) ->
               (* pull the heal toward the latest earlier disruptive
                  step: a strictly shorter fault window *)
               let t_prev =
                 List.fold_left
                   (fun acc st ->
                     match st with
                     | At (t, a) when disruptive a && t < t_heal ->
                         Float.max acc t
                     | _ -> acc)
                   neg_infinity s
               in
               if Float.is_finite t_prev && t_heal -. t_prev > 1.0 then
                 [
                   List.mapi
                     (fun j st ->
                       if j = i then
                         At (t_prev +. ((t_heal -. t_prev) /. 2.0), Heal)
                       else st)
                     s;
                 ]
               else []
           | _ -> [])
         s)
  in
  removals @ cheaper
