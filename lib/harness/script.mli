(** The fault-schedule DSL: a cluster-test scenario as data.

    A script is a list of steps — timed one-shot actions plus the two
    seeded stochastic processes lifted from the old ad-hoc nemesis
    knobs.  Scripts validate, print to and parse from a compact
    one-line text format (so a failing fuzzer seed becomes a
    copy-pasteable repro), and shrink for failure minimization:

    {v @120 partition r0,r1/r2,r3,r4; @180 heal; storm mean=150 v}

    Times are relative to the moment the script is installed. *)

module Net = Sim.Net

type action =
  | Partition of string list list
      (** cut every link between nodes of distinct sides *)
  | Heal  (** heal every cut link and clear every link filter *)
  | Crash of string
  | Recover of string
  | Link_filter of { src : string; dst : string; spec : Net.drop_spec }
      (** directed per-link fault filter (see {!Sim.Net.drop_spec}) *)
  | Link_clear of { src : string; dst : string }
  | Loss of float  (** set the network-wide loss probability *)
  | Pause_shard of int  (** crash every replica of the shard *)
  | Resume_shard of int  (** recover every replica of the shard *)
  | Kill_shard of int
      (** crash every replica of the shard for good (the legacy
          [shard_kill] nemesis) *)

type step =
  | At of float * action  (** fire the action at this virtual time *)
  | Bipartition_storm of { mean : float; cycles : int }
      (** the legacy [partitions] nemesis: every ~[mean] time units cut
          the replicas along a random bipartition, heal half a period
          later, for [cycles] cycles; seeded from the run seed *)
  | Crash_storm of Sim.Failure.spec
      (** the legacy [failures] nemesis: exponential crash/recover
          processes on every replica *)

type t = step list

val action_label : action -> string
val step_label : step -> string

val to_string : t -> string
val pp : t Fmt.t

val of_string : string -> (t, string) result
(** Parse the printed form; [to_string] and [of_string] round-trip. *)

val validate : t -> (unit, string) result
(** Well-formedness: finite non-negative times, disjoint non-empty
    partition sides, probabilities in range, legal node names. *)

val of_partitions : float -> t
(** The legacy [partitions = Some mean] knob as a script. *)

val of_failures : Sim.Failure.spec -> t
(** The legacy [failures = Some spec] knob as a script. *)

val of_shard_kill : int * float -> t
(** The legacy [shard_kill = Some (shard, at)] knob as a script. *)

val of_legacy :
  ?failures:Sim.Failure.spec ->
  ?partitions:float ->
  ?shard_kill:int * float ->
  unit ->
  t
(** All three legacy knobs, compiled in the order the pre-script
    cluster installed them (failures, partitions, shard kill) — the
    order byte-identical replay depends on. *)

val disruptive : action -> bool
(** Does the action introduce a fault (as opposed to repairing one)? *)

val quiesces_at : t -> float option
(** The virtual time after which the script provably leaves the
    cluster healed: every disruptive step is undone by a later
    restorative one and nothing fires afterwards.  [None] when the
    script never settles (storms, a [Kill_shard], a [Crash] without a
    matching [Recover], ...). *)

val shrink : t -> t list
(** Strictly smaller candidate scripts for failure minimization: each
    step dropped, storm cycles halved, heals pulled earlier.  Greedy
    shrinking with these moves terminates. *)
