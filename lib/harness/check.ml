(** Reusable cluster-correctness predicates: the single-writer
    consistency audit, static quorum-intersection checks, and
    liveness-after-heal.

    The audit is the oracle of every nemesis test and of the seed
    swarm.  It exploits the single-writer-per-key discipline of the
    workload: per key, completed writes carry strictly increasing
    version numbers, and every successful read must return a version
    at least as new as the newest write completed before the read
    began, with the value actually written at that version.  Quorum
    intersection is exactly what makes this hold across failures; a
    configuration without intersection (or a protocol bug) fails the
    audit.  The violation strings are part of the golden-digest
    surface — they render into {!Store.Cluster.digest} — so their
    wording is frozen. *)

type entry = { vn : int; value : int; completed_at : float }

(** Audit state: per-key completed-write history plus the violation
    log (newest first, the historical order). *)
type audit = {
  completed_writes : (string, entry list) Hashtbl.t;
  mutable violations : string list;
}

let audit () = { completed_writes = Hashtbl.create 64; violations = [] }

let note a fmt = Fmt.kstr (fun s -> a.violations <- s :: a.violations) fmt

(** Check one successful read: [started] is when the read was issued,
    [vn]/[value] what it returned. *)
let read_ok a ~key ~started ~vn ~value =
  (* audit: newest write completed before we started *)
  let prior =
    List.filter
      (fun e -> e.completed_at <= started)
      (Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key))
  in
  let newest = List.fold_left (fun m e -> max m e.vn) 0 prior in
  if vn < newest then
    note a "stale read of %s: returned vn %d < completed vn %d" key vn newest;
  (* the value must be what was written at that vn *)
  if vn > 0 then
    match
      List.find_opt
        (fun e -> e.vn = vn)
        (Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key))
    with
    | Some e when e.value <> value ->
        note a "corrupt read of %s: vn %d has %d, read %d" key vn e.value value
    | _ -> ()

(** Record one successful write completing at [now] with version [vn]
    of [value]. *)
let write_ok a ~key ~vn ~value ~now =
  let prev =
    Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key)
  in
  (* single-writer-per-key: versions must increase *)
  List.iter
    (fun e ->
      if e.vn >= vn then
        note a "non-monotonic write to %s: vn %d after %d" key vn e.vn)
    prev;
  Hashtbl.replace a.completed_writes key
    ({ vn; value; completed_at = now } :: prev)

let violations a = a.violations

(* ---------- multi-key transaction audit ---------- *)

type txn_report = {
  t_txid : string;
  t_started : float;
  t_completed : float;
  t_reads : (string * int * int) list;  (** (key, vn, value) snapshot *)
  t_writes : (string * int * int) list;  (** (key, vn, value) installed *)
}

(** Audit state for multi-key transaction histories.  Two sources
    feed it: {e decided} commits (the replica-side decision hook —
    authoritative, covers transactions whose coordinator died after
    the decision was chosen) and {e acked} commits (the client saw
    the commit complete — these carry the read snapshots and anchor
    the recency check).  Acked is a subset of decided. *)
type txn_audit = {
  mutable acked : txn_report list;  (** newest first *)
  decided_w : (string, (string * int * int) list) Hashtbl.t;
      (** txid -> committed write set *)
  mutable txn_violations : string list;
}

let txn_audit () =
  { acked = []; decided_w = Hashtbl.create 64; txn_violations = [] }

let txn_note a fmt =
  Fmt.kstr (fun s -> a.txn_violations <- s :: a.txn_violations) fmt

(** Record a decision learned at some replica.  Aborts are ignored;
    duplicate commit records (every participant fires the hook) must
    agree on the write set. *)
let txn_decided a ~txid ~commit ~writes =
  if commit then
    match Hashtbl.find_opt a.decided_w txid with
    | None -> Hashtbl.replace a.decided_w txid writes
    | Some prior ->
        if prior <> writes then
          txn_note a "txn %s decided with two write sets" txid

(** Record a client-acked commit. *)
let txn_committed a ~txid ~started ~now ~reads ~writes =
  a.acked <-
    {
      t_txid = txid;
      t_started = started;
      t_completed = now;
      t_reads = reads;
      t_writes = writes;
    }
    :: a.acked

(** Run the end-of-run transaction checks, appending to the violation
    log: acked ⊆ decided, per-key version uniqueness across decided
    commits, read validity (every read snapshot names a version some
    decided commit installed, with its value), recency (an acked
    commit is visible to every acked transaction that starts later),
    and acyclicity of the serialization graph (ww edges by version
    order, wr read-from edges, rw anti-dependency edges). *)
let txn_check a =
  let acked = List.rev a.acked in
  (* acked commits must have been decided, with the acked write set *)
  List.iter
    (fun r ->
      match Hashtbl.find_opt a.decided_w r.t_txid with
      | None -> txn_note a "acked txn %s was never decided" r.t_txid
      | Some w ->
          if w <> r.t_writes then
            txn_note a "acked txn %s: acked writes differ from decided"
              r.t_txid)
    acked;
  (* committed versions per key, each installed by exactly one txn *)
  let versions : (string, (int * int * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let decided =
    (* lint: order-insensitive *)
    Hashtbl.fold (fun txid w acc -> (txid, w) :: acc) a.decided_w []
    |> List.sort (fun (x, _) (y, _) -> String.compare x y)
  in
  List.iter
    (fun (txid, writes) ->
      List.iter
        (fun (k, vn, v) ->
          let r =
            match Hashtbl.find_opt versions k with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace versions k r;
                r
          in
          (match
             List.find_opt (fun (vn', _, _) -> vn' = vn) !r
           with
          | Some (_, _, other) ->
              txn_note a "duplicate version %d of %s (txns %s and %s)" vn k
                other txid
          | None -> ());
          r := (vn, v, txid) :: !r)
        writes)
    decided;
  let writer k vn =
    match Hashtbl.find_opt versions k with
    | None -> None
    | Some r -> List.find_opt (fun (vn', _, _) -> vn' = vn) !r
  in
  (* read validity + recency *)
  List.iter
    (fun r ->
      List.iter
        (fun (k, vn, v) ->
          (if vn = 0 then begin
             if v <> 0 then
               txn_note a "txn %s read unwritten %s as %d" r.t_txid k v
           end
           else
             match writer k vn with
             | None ->
                 txn_note a "txn %s read %s at unknown version %d" r.t_txid k
                   vn
             | Some (_, v', _) ->
                 if v' <> v then
                   txn_note a "corrupt txn read of %s: vn %d has %d, read %d"
                     k vn v' v);
          List.iter
            (fun w ->
              if w.t_completed <= r.t_started then
                List.iter
                  (fun (k', wvn, _) ->
                    if String.equal k' k && vn < wvn then
                      txn_note a
                        "stale txn read of %s: vn %d < committed vn %d" k vn
                        wvn)
                  w.t_writes)
            acked)
        r.t_reads)
    acked;
  (* serialization graph over decided commits (reads known only for
     acked ones): ww by version order, wr read-from, rw
     anti-dependency; a cycle breaks serializability *)
  let succs : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let nodes = List.map fst decided in
  List.iter (fun n -> Hashtbl.replace succs n (ref [])) nodes;
  let edge x y =
    if not (String.equal x y) then
      match Hashtbl.find_opt succs x with
      | Some r -> if not (List.exists (String.equal y) !r) then r := y :: !r
      | None -> ()
  in
  let keys =
    (* lint: order-insensitive *)
    Hashtbl.fold (fun k _ acc -> k :: acc) versions []
    |> List.sort String.compare
  in
  List.iter
    (fun k ->
      let chain =
        List.sort
          (fun (a', _, _) (b, _, _) -> Int.compare a' b)
          !(Hashtbl.find versions k)
      in
      let rec ww = function
        | (_, _, t1) :: ((_, _, t2) :: _ as rest) ->
            edge t1 t2;
            ww rest
        | _ -> ()
      in
      ww chain)
    keys;
  List.iter
    (fun r ->
      List.iter
        (fun (k, vn, _) ->
          (* wr: the version's writer happens before the reader *)
          (match writer k vn with
          | Some (_, _, w) -> edge w r.t_txid
          | None -> ());
          (* rw: the reader happens before every later writer *)
          match Hashtbl.find_opt versions k with
          | None -> ()
          | Some vr ->
              List.iter
                (fun (vn', _, w') -> if vn' > vn then edge r.t_txid w')
                !vr)
        r.t_reads)
    acked;
  (* DFS cycle detection, nodes in sorted order for determinism *)
  let color : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 64 in
  let cycle = ref None in
  let rec visit n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Grey -> if !cycle = None then cycle := Some n
    | None ->
        Hashtbl.replace color n `Grey;
        (match Hashtbl.find_opt succs n with
        | Some r -> List.iter visit (List.sort String.compare !r)
        | None -> ());
        Hashtbl.replace color n `Black
  in
  List.iter visit nodes;
  match !cycle with
  | Some n -> txn_note a "serialization graph cycle through txn %s" n
  | None -> ()

let txn_violations a = a.txn_violations
let txn_acked_count a = List.length a.acked
let txn_decided_count a = Hashtbl.length a.decided_w

(* ---------- static quorum sanity ---------- *)

(** Does the configuration pass the static lint gate — legal
    read/write intersection and a minimization that preserves it?
    Swarm runs check this up front so a fuzzing campaign on a broken
    configuration fails fast with a structural message rather than a
    pile of stale reads. *)
let quorum_ok ~name (config : Quorum.Config.t) : (unit, string) result =
  let v = Lint.Quorum_check.check_config ~name config in
  if not v.Lint.Quorum_check.legal_rw then
    Error
      (Fmt.str "%s: read/write quorums do not all intersect (R=%d, W=%d)" name
         v.Lint.Quorum_check.n_read v.Lint.Quorum_check.n_write)
  else if not v.Lint.Quorum_check.minimize_preserves then
    Error (Fmt.str "%s: minimization does not preserve intersection" name)
  else Ok ()

(* ---------- liveness after heal ---------- *)

(** After a script that provably settles ({!Script.quiesces_at}), the
    cluster must make progress again: among operations completing
    after the quiesce time, at least one must succeed.  [completions]
    is the run's chronological [(finished_at, ok)] log.  Vacuously [Ok]
    when the script never settles or nothing completes afterwards
    (the workload may simply have finished first). *)
let liveness_after_heal ~script ~completions : (unit, string) result =
  match Script.quiesces_at script with
  | None -> Ok ()
  | Some t ->
      let after = List.filter (fun (at, _) -> at > t) completions in
      if after = [] then Ok ()
      else if List.exists (fun (_, ok) -> ok) after then Ok ()
      else
        Error
          (Fmt.str
             "no operation succeeded after the script healed at %.12g (%d \
              completions, all failed)"
             t (List.length after))
