(** Reusable cluster-correctness predicates: the single-writer
    consistency audit, static quorum-intersection checks, and
    liveness-after-heal.

    The audit is the oracle of every nemesis test and of the seed
    swarm.  It exploits the single-writer-per-key discipline of the
    workload: per key, completed writes carry strictly increasing
    version numbers, and every successful read must return a version
    at least as new as the newest write completed before the read
    began, with the value actually written at that version.  Quorum
    intersection is exactly what makes this hold across failures; a
    configuration without intersection (or a protocol bug) fails the
    audit.  The violation strings are part of the golden-digest
    surface — they render into {!Store.Cluster.digest} — so their
    wording is frozen. *)

type entry = { vn : int; value : int; completed_at : float }

(** Audit state: per-key completed-write history plus the violation
    log (newest first, the historical order). *)
type audit = {
  completed_writes : (string, entry list) Hashtbl.t;
  mutable violations : string list;
}

let audit () = { completed_writes = Hashtbl.create 64; violations = [] }

let note a fmt = Fmt.kstr (fun s -> a.violations <- s :: a.violations) fmt

(** Check one successful read: [started] is when the read was issued,
    [vn]/[value] what it returned. *)
let read_ok a ~key ~started ~vn ~value =
  (* audit: newest write completed before we started *)
  let prior =
    List.filter
      (fun e -> e.completed_at <= started)
      (Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key))
  in
  let newest = List.fold_left (fun m e -> max m e.vn) 0 prior in
  if vn < newest then
    note a "stale read of %s: returned vn %d < completed vn %d" key vn newest;
  (* the value must be what was written at that vn *)
  if vn > 0 then
    match
      List.find_opt
        (fun e -> e.vn = vn)
        (Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key))
    with
    | Some e when e.value <> value ->
        note a "corrupt read of %s: vn %d has %d, read %d" key vn e.value value
    | _ -> ()

(** Record one successful write completing at [now] with version [vn]
    of [value]. *)
let write_ok a ~key ~vn ~value ~now =
  let prev =
    Option.value ~default:[] (Hashtbl.find_opt a.completed_writes key)
  in
  (* single-writer-per-key: versions must increase *)
  List.iter
    (fun e ->
      if e.vn >= vn then
        note a "non-monotonic write to %s: vn %d after %d" key vn e.vn)
    prev;
  Hashtbl.replace a.completed_writes key
    ({ vn; value; completed_at = now } :: prev)

let violations a = a.violations

(* ---------- static quorum sanity ---------- *)

(** Does the configuration pass the static lint gate — legal
    read/write intersection and a minimization that preserves it?
    Swarm runs check this up front so a fuzzing campaign on a broken
    configuration fails fast with a structural message rather than a
    pile of stale reads. *)
let quorum_ok ~name (config : Quorum.Config.t) : (unit, string) result =
  let v = Lint.Quorum_check.check_config ~name config in
  if not v.Lint.Quorum_check.legal_rw then
    Error
      (Fmt.str "%s: read/write quorums do not all intersect (R=%d, W=%d)" name
         v.Lint.Quorum_check.n_read v.Lint.Quorum_check.n_write)
  else if not v.Lint.Quorum_check.minimize_preserves then
    Error (Fmt.str "%s: minimization does not preserve intersection" name)
  else Ok ()

(* ---------- liveness after heal ---------- *)

(** After a script that provably settles ({!Script.quiesces_at}), the
    cluster must make progress again: among operations completing
    after the quiesce time, at least one must succeed.  [completions]
    is the run's chronological [(finished_at, ok)] log.  Vacuously [Ok]
    when the script never settles or nothing completes afterwards
    (the workload may simply have finished first). *)
let liveness_after_heal ~script ~completions : (unit, string) result =
  match Script.quiesces_at script with
  | None -> Ok ()
  | Some t ->
      let after = List.filter (fun (at, _) -> at > t) completions in
      if after = [] then Ok ()
      else if List.exists (fun (_, ok) -> ok) after then Ok ()
      else
        Error
          (Fmt.str
             "no operation succeeded after the script healed at %.12g (%d \
              completions, all failed)"
             t (List.length after))
