(** Randomized script generation for the seed swarm.

    Every draw comes from a {!Qc_util.Prng} generator, so one integer
    seed fully determines the script — the property the fuzzer's
    replayable repro lines rest on.  Generated scripts are built from
    fault {e episodes}: a disruptive step paired with the restorative
    step that undoes it, so every script settles
    ({!Script.quiesces_at} is [Some _]) and the liveness predicate
    applies on top of the audit. *)

module Prng = Qc_util.Prng

(** A random fault episode over [horizon]: returns the steps plus the
    episode's end time. *)
let episode ?(txn = false) rng ~groups ~clients ~horizon =
  let replicas =
    Array.to_list groups |> List.concat_map Array.to_list
  in
  let n_shards = Array.length groups in
  let t0 = Prng.float rng *. horizon *. 0.8 in
  let dur = (0.05 +. (Prng.float rng *. 0.25)) *. horizon in
  let t1 = t0 +. dur in
  let nodes = replicas @ clients in
  let kinds = if txn && clients <> [] then 6 else 5 in
  match Prng.int rng kinds with
  | 0 ->
      (* random non-trivial bipartition of the replicas, healed later *)
      let shuffled = Prng.shuffle rng replicas in
      let k = 1 + Prng.int rng (List.length replicas - 1) in
      let side_a = List.filteri (fun i _ -> i < k) shuffled in
      let side_b = List.filteri (fun i _ -> i >= k) shuffled in
      [ Script.At (t0, Script.Partition [ side_a; side_b ]);
        Script.At (t1, Script.Heal) ]
  | 1 ->
      let node = Prng.choose rng replicas in
      [ Script.At (t0, Script.Crash node);
        Script.At (t1, Script.Recover node) ]
  | 2 ->
      let src = Prng.choose rng nodes in
      let dst = Prng.choose rng (List.filter (( <> ) src) nodes) in
      let spec =
        match Prng.int rng 3 with
        | 0 -> Script.Net.Drop_all
        | 1 -> Script.Net.Drop_first (1 + Prng.int rng 8)
        | _ -> Script.Net.Drop_prob (0.2 +. (Prng.float rng *. 0.7))
      in
      [ Script.At (t0, Script.Link_filter { src; dst; spec });
        Script.At (t1, Script.Link_clear { src; dst }) ]
  | 3 ->
      let p = 0.05 +. (Prng.float rng *. 0.4) in
      [ Script.At (t0, Script.Loss p); Script.At (t1, Script.Loss 0.0) ]
  | 4 ->
      if n_shards < 2 then
        (* pausing the only shard stalls everything; crash one node *)
        let node = Prng.choose rng replicas in
        [ Script.At (t0, Script.Crash node);
          Script.At (t1, Script.Recover node) ]
      else
        let s = Prng.int rng n_shards in
        [ Script.At (t0, Script.Pause_shard s);
          Script.At (t1, Script.Resume_shard s) ]
  | _ ->
      (* coordinator kill: crash a client mid-run, inside the commit
         window of whatever transaction it is driving — the episode
         that separates blocking 2PC from Paxos Commit.  Drawn only
         with [~txn:true], so legacy scripts are byte-identical. *)
      let c = Prng.choose rng clients in
      let tc = (0.1 +. (Prng.float rng *. 0.6)) *. horizon in
      [ Script.At (tc, Script.Crash c);
        Script.At (tc +. dur, Script.Recover c) ]

(** A random settling script: 1-4 episodes over [horizon], closed by a
    final [Heal] after the last episode ends. *)
let script ?(txn = false) rng ~groups ~clients ~horizon : Script.t =
  let n = 1 + Prng.int rng 4 in
  let episodes =
    List.concat
      (List.init n (fun _ -> episode ~txn rng ~groups ~clients ~horizon))
  in
  let t_end =
    List.fold_left
      (fun m -> function Script.At (t, _) -> Float.max m t | _ -> m)
      0.0 episodes
  in
  episodes @ [ Script.At (t_end +. 1.0, Script.Heal) ]
