(** The script interpreter: compile a {!Script.t} onto the simulation
    primitives — {!Sim.Net} link cuts and fault filters,
    {!Sim.Failure} injectors — against a running cluster environment.

    Byte-identity contract: the two storm steps and [Kill_shard] are
    the legacy nemesis knobs, and installing them reproduces the
    pre-script code paths draw for draw — same PRNG streams (the
    bipartition storm derives its generator from [seed lxor 0x9a97],
    the crash storm draws from the simulation PRNG via
    {!Sim.Failure.attach}), same [Core.schedule] call order, same trace
    instants.  Seeded runs of legacy configurations digest identically
    before and after the script refactor; golden tests pin this.

    Timed generic steps are new behaviour and emit their own
    ["nemesis.step"] instants; they drive node health through
    {!Sim.Failure} injector handles so up/down time stays accounted. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

type 'msg env = {
  sim : Core.t;
  net : 'msg Net.t;
  groups : string array array;  (** replica names, one row per shard *)
  clients : string list;
  seed : int;  (** the run seed storms derive their generators from *)
}

let replicas env =
  Array.to_list env.groups |> List.concat_map Array.to_list

(* ---------- the legacy bipartition storm, verbatim ---------- *)

let install_storm env ~mean ~cycles =
  let { sim; net; seed; clients = client_names; _ } = env in
  let tracer = Core.tracer sim in
  let replica_names = replicas env in
  let n_total_replicas = List.length replica_names in
  let nrng = Prng.create (seed lxor 0x9a97) in
  let cut_between side_a side_b =
    List.iter
      (fun a -> List.iter (fun b -> Net.cut_link net a b) side_b)
      side_a
  in
  let heal_between side_a side_b =
    List.iter
      (fun a -> List.iter (fun b -> Net.heal_link net a b) side_b)
      side_a
  in
  (* bounded cycles so the event queue eventually drains (the
     workload finishes long before) *)
  let rec nemesis cycles =
    if cycles > 0 then
      Core.schedule sim ~delay:(Prng.exponential nrng ~mean) (fun () ->
          (* random non-trivial bipartition of the replicas *)
          let shuffled = Prng.shuffle nrng replica_names in
          let k = 1 + Prng.int nrng (n_total_replicas - 1) in
          let side_a = List.filteri (fun i _ -> i < k) shuffled in
          let side_b = List.filteri (fun i _ -> i >= k) shuffled in
          (* clients land on a random side *)
          let client_side, other_side =
            if Prng.bool nrng then (side_a, side_b) else (side_b, side_a)
          in
          ignore client_side;
          if Obs.Trace.enabled tracer then
            Obs.Trace.instant tracer ~cat:"store" ~name:"nemesis.partition"
              ~track:"nemesis"
              ~args:
                [
                  ("side_a", Obs.Trace.Str (String.concat "," side_a));
                  ("side_b", Obs.Trace.Str (String.concat "," side_b));
                ]
              ();
          cut_between side_a side_b;
          List.iter (fun c -> cut_between [ c ] other_side) client_names;
          Core.schedule sim ~delay:(mean /. 2.0) (fun () ->
              if Obs.Trace.enabled tracer then
                Obs.Trace.instant tracer ~cat:"store" ~name:"nemesis.heal"
                  ~track:"nemesis" ();
              heal_between side_a side_b;
              List.iter (fun c -> heal_between [ c ] other_side) client_names;
              nemesis (cycles - 1)))
  in
  nemesis cycles

(* ---------- generic timed actions ---------- *)

let shard_group env what s =
  if s < 0 || s >= Array.length env.groups then
    invalid_arg
      (Fmt.str "Harness.Run.install: %s shard %d out of range" what s)
  else env.groups.(s)

let fire env injector (action : Script.action) =
  let { sim; net; _ } = env in
  let tracer = Core.tracer sim in
  (match action with
  (* the legacy shard-kill emits only its historical instant *)
  | Script.Kill_shard _ -> ()
  | _ ->
      if Obs.Trace.enabled tracer then
        Obs.Trace.instant tracer ~cat:"harness" ~name:"nemesis.step"
          ~track:"nemesis"
          ~args:[ ("step", Obs.Trace.Str (Script.action_label action)) ]
          ());
  match action with
  | Script.Partition sides ->
      let rec cut = function
        | [] -> ()
        | side :: rest ->
            List.iter
              (fun a ->
                List.iter
                  (fun b -> List.iter (fun other -> Net.cut_link net a other) b)
                  rest)
              side;
            cut rest
      in
      cut sides
  | Script.Heal ->
      Net.heal_all_links net;
      Net.clear_link_filters net
  | Script.Crash node ->
      Sim.Failure.set_health (injector node) ~net ~now:(Core.now sim) ~up:false
  | Script.Recover node ->
      Sim.Failure.set_health (injector node) ~net ~now:(Core.now sim) ~up:true
  | Script.Link_filter { src; dst; spec } -> Net.set_link_filter net ~src ~dst spec
  | Script.Link_clear { src; dst } -> Net.clear_link_filter net ~src ~dst
  | Script.Loss p -> Net.set_loss net p
  | Script.Pause_shard s ->
      Array.iter (fun r -> Net.crash net r) (shard_group env "pause" s)
  | Script.Resume_shard s ->
      Array.iter (fun r -> Net.recover net r) (shard_group env "resume" s)
  | Script.Kill_shard s ->
      let group = shard_group env "kill" s in
      if Obs.Trace.enabled tracer then
        Obs.Trace.instant tracer ~cat:"store" ~name:"nemesis.shard_kill"
          ~track:"nemesis"
          ~args:[ ("shard", Obs.Trace.Int s) ]
          ();
      Array.iter (fun r -> Net.crash net r) group

(** Install the script against the environment: timed steps schedule
    their actions, storms start their legacy processes.  Returns every
    {!Sim.Failure} injector handle the script created (one per node
    under a [Crash_storm], one per node a scripted [Crash]/[Recover]
    touches), so callers can inspect realized up-fractions. *)
let install (env : 'msg env) (script : Script.t) : Sim.Failure.t list =
  (match Script.validate script with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "Harness.Run.install: %s" e));
  (* validate shard references eagerly — a bad index should fail at
     install, not minutes into a run *)
  List.iter
    (function
      | Script.At (_, (Script.Pause_shard s | Script.Resume_shard s))
        when s >= Array.length env.groups ->
          invalid_arg
            (Fmt.str "Harness.Run.install: shard %d out of range" s)
      | Script.At (_, Script.Kill_shard s) when s >= Array.length env.groups ->
          invalid_arg
            (Fmt.str "Harness.Run.install: shard %d out of range" s)
      | _ -> ())
    script;
  let scripted : (string, Sim.Failure.t) Hashtbl.t = Hashtbl.create 4 in
  let scripted_order = ref [] in
  let injector node =
    match Hashtbl.find_opt scripted node with
    | Some t -> t
    | None ->
        (* a node can already be down (a crash from an earlier install,
           a REPL `crash`): the injector must mirror the real state or
           a scripted Recover would be an idempotent no-op *)
        let t =
          Sim.Failure.create ~up:(Net.is_up env.net node) ~node
            ~now:(Core.now env.sim) ()
        in
        Hashtbl.replace scripted node t;
        scripted_order := t :: !scripted_order;
        t
  in
  (* create scripted injectors up front, in first-mention order, so
     their accounting clocks all start at install time *)
  List.iter
    (function
      | Script.At (_, (Script.Crash n | Script.Recover n)) ->
          ignore (injector n)
      | _ -> ())
    script;
  let stochastic = ref [] in
  List.iter
    (fun step ->
      match step with
      | Script.At (t, action) ->
          Core.schedule env.sim ~delay:t (fun () -> fire env injector action)
      | Script.Bipartition_storm { mean; cycles } ->
          install_storm env ~mean ~cycles
      | Script.Crash_storm spec ->
          List.iter
            (fun node ->
              let inj =
                Sim.Failure.attach ~sim:env.sim ~net:env.net ~node ~spec
                  ~until:1e9 ()
              in
              stochastic := inj :: !stochastic)
            (replicas env))
    script;
  List.rev !scripted_order @ List.rev !stochastic
