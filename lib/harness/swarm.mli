(** The seed-swarm fuzzer: sweep seeds through randomized fault
    scripts, audit every run, minimize failures, emit replayable
    repro lines and a JSON report.  Parameterized over a [run]
    callback so the library stays below the store layer. *)

type outcome = { seed : int; script : Script.t; violations : string list }

type report = {
  seeds : int;
  seed0 : int;
  failures : outcome list;  (** in seed order *)
  minimized : outcome list;  (** same order, scripts shrunk *)
}

type run_fn = seed:int -> Script.t -> string list
(** Run one seed under a script, returning audit violations (empty =
    clean).  Must be deterministic in [(seed, script)]. *)

type gen_fn = seed:int -> Script.t

val sweep :
  run:run_fn ->
  gen:gen_fn ->
  seeds:int ->
  seed0:int ->
  ?max_failures:int ->
  ?progress:(seed:int -> failed:bool -> unit) ->
  unit ->
  outcome list
(** Sweep seeds [seed0 .. seed0 + seeds - 1], collecting failing
    outcomes (stopping after [max_failures]). *)

val minimize : run:run_fn -> outcome -> outcome
(** Greedy shrink to a fixpoint: commit to the first {!Script.shrink}
    candidate that still fails, repeat.  The result's violations come
    from an actual run of the shrunk script. *)

val bisect_seed_range : fails:(int -> bool) -> lo:int -> hi:int -> int option
(** Narrow [lo, hi) down to one failing seed by halving, probing the
    lower half first; [None] when no seed fails. *)

val repro_line : ?extra:string -> outcome -> string
(** The copy-pasteable [swarm repro ...] one-liner; [extra] appends
    the caller's cluster-shape flags. *)

val outcome_json : ?extra:string -> outcome -> string
val report_json : ?extra:string -> report -> string
(** The machine-readable swarm report (the CI artifact). *)
