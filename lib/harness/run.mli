(** The script interpreter: compile a {!Script.t} onto {!Sim.Net} and
    {!Sim.Failure} against a cluster environment.

    Installing the legacy steps ([Bipartition_storm], [Crash_storm],
    [Kill_shard]) reproduces the pre-script nemesis code paths draw
    for draw — same PRNG streams, schedule call order and trace
    instants — so seeded legacy runs digest identically.  Generic
    timed steps are new behaviour and emit their own ["nemesis.step"]
    instants. *)

module Core = Sim.Core
module Net = Sim.Net

type 'msg env = {
  sim : Core.t;
  net : 'msg Net.t;
  groups : string array array;  (** replica names, one row per shard *)
  clients : string list;
  seed : int;  (** the run seed storms derive their generators from *)
}

val replicas : 'msg env -> string list
(** Every replica name, groups flattened in shard order. *)

val install : 'msg env -> Script.t -> Sim.Failure.t list
(** Install the script: timed steps schedule their actions at their
    (relative) times, storms start their stochastic processes.
    Returns the {!Sim.Failure} injector handles the script created —
    one per replica under a [Crash_storm], one per node touched by a
    scripted [Crash]/[Recover] — for up-fraction inspection.

    @raise Invalid_argument on a script that fails {!Script.validate}
    or references a shard out of range. *)
