(** Randomized script generation for the seed swarm.  Every draw
    comes from the given {!Qc_util.Prng} generator, so one integer
    seed fully determines the script. *)

module Prng = Qc_util.Prng

val episode :
  ?txn:bool ->
  Prng.t ->
  groups:string array array ->
  clients:string list ->
  horizon:float ->
  Script.t
(** One random fault episode (a disruptive step paired with the
    restorative step that undoes it): a replica bipartition, a node
    crash, a link filter, a lossy window, or a shard pause.  With
    [~txn:true] a sixth kind joins the draw — a coordinator kill that
    crashes a client inside the commit window and recovers it later,
    the episode that separates blocking 2PC from Paxos Commit.  The
    default [false] keeps legacy scripts byte-identical. *)

val script :
  ?txn:bool ->
  Prng.t ->
  groups:string array array ->
  clients:string list ->
  horizon:float ->
  Script.t
(** A random settling script: 1-4 episodes over [horizon] closed by a
    final [Heal], so {!Script.quiesces_at} holds and liveness checks
    apply on top of the audit.  [?txn] is forwarded to {!episode}. *)
