(** The seed-swarm fuzzer: sweep a range of seeds through randomized
    fault scripts, audit every run, and when a seed fails, minimize
    the script and emit a replayable repro line.

    The module is parameterized over a [run] callback ([seed ->
    script -> violations]) so the library stays below the store: the
    [swarm] executable wires in {!Store.Cluster.run} plus the audit
    and liveness checks.  Everything here is deterministic in
    [seed0]/[seeds] given a deterministic callback. *)

(** One failing seed: the script it ran and the violations the audit
    raised (newest first). *)
type outcome = { seed : int; script : Script.t; violations : string list }

type report = {
  seeds : int;  (** seeds swept *)
  seed0 : int;
  failures : outcome list;  (** as found, in seed order *)
  minimized : outcome list;  (** same order, scripts shrunk *)
}

type run_fn = seed:int -> Script.t -> string list
type gen_fn = seed:int -> Script.t

(** Sweep seeds [seed0 .. seed0 + seeds - 1]: generate each seed's
    script, run it, collect the failing outcomes (stopping after
    [max_failures] of them). *)
let sweep ~(run : run_fn) ~(gen : gen_fn) ~seeds ~seed0
    ?(max_failures = max_int) ?(progress = fun ~seed:_ ~failed:_ -> ()) () :
    outcome list =
  let rec go acc i =
    if i >= seeds || List.length acc >= max_failures then List.rev acc
    else
      let seed = seed0 + i in
      let script = gen ~seed in
      let violations = run ~seed script in
      progress ~seed ~failed:(violations <> []);
      let acc =
        if violations = [] then acc else { seed; script; violations } :: acc
      in
      go acc (i + 1)
  in
  go [] 0

(** Greedy script minimization: repeatedly try {!Script.shrink}
    candidates, committing to the first one that still fails, until
    none does.  Every shrink move is strictly smaller, so this
    terminates; the result still reproduces (its violations are from
    an actual run). *)
let minimize ~(run : run_fn) (o : outcome) : outcome =
  let rec fixpoint current =
    let candidates = Script.shrink current.script in
    let reproduced =
      List.find_map
        (fun script ->
          match run ~seed:current.seed script with
          | [] -> None
          | violations -> Some { current with script; violations })
        candidates
    in
    match reproduced with
    | Some smaller -> fixpoint smaller
    | None -> current
  in
  fixpoint o

(** Narrow a seed range down to one failing seed by halving: probe the
    lower half (early-exit scan through [fails]), recurse into
    whichever half contains a failure.  [None] when no seed in
    [lo, hi) fails. *)
let bisect_seed_range ~(fails : int -> bool) ~lo ~hi : int option =
  let scan lo hi =
    let rec go s = if s >= hi then None else if fails s then Some s else go (s + 1) in
    go lo
  in
  let rec bisect lo hi =
    if hi - lo <= 1 then scan lo hi
    else
      let mid = lo + ((hi - lo) / 2) in
      match bisect lo mid with Some s -> Some s | None -> bisect mid hi
  in
  bisect lo hi

(* ---------- repro lines and the JSON report ---------- *)

(** The copy-pasteable one-liner replaying the failure; [extra] carries
    the cluster-shape flags of the caller's CLI. *)
let repro_line ?(extra = "") (o : outcome) : string =
  Fmt.str "swarm repro --seed %d --script %S%s%s" o.seed
    (Script.to_string o.script)
    (if extra = "" then "" else " ")
    extra

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let outcome_json ?extra (o : outcome) : string =
  Fmt.str
    "{\"seed\": %d, \"script\": \"%s\", \"violations\": [%s], \"repro\": \
     \"%s\"}"
    o.seed
    (json_escape (Script.to_string o.script))
    (String.concat ", "
       (List.map (fun v -> Fmt.str "\"%s\"" (json_escape v)) o.violations))
    (json_escape (repro_line ?extra o))

(** The machine-readable swarm report (CI uploads this artifact). *)
let report_json ?extra (r : report) : string =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"seeds\": %d,\n" r.seeds;
  add "  \"seed0\": %d,\n" r.seed0;
  add "  \"failing_seeds\": %d,\n" (List.length r.failures);
  add "  \"failures\": [\n";
  add "%s\n"
    (String.concat ",\n"
       (List.map (fun o -> "    " ^ outcome_json ?extra o) r.failures));
  add "  ],\n";
  add "  \"minimized\": [\n";
  add "%s\n"
    (String.concat ",\n"
       (List.map (fun o -> "    " ^ outcome_json ?extra o) r.minimized));
  add "  ]\n";
  add "}\n";
  Buffer.contents b
