(** Reusable cluster-correctness predicates: the single-writer
    consistency audit (the oracle of nemesis tests and the seed
    swarm), static quorum-intersection checks, and
    liveness-after-heal.  The audit's violation strings render into
    {!Store.Cluster.digest}, so their wording is frozen. *)

type audit
(** Per-key completed-write history plus the violation log. *)

val audit : unit -> audit

val read_ok :
  audit -> key:string -> started:float -> vn:int -> value:int -> unit
(** Check one successful read issued at [started]: it must return a
    version at least as new as the newest write completed before
    [started], carrying the value written at that version. *)

val write_ok : audit -> key:string -> vn:int -> value:int -> now:float -> unit
(** Record one successful write completing at [now]; versions per key
    must be strictly increasing (single-writer-per-key). *)

val violations : audit -> string list
(** Violations so far, newest first (the historical order). *)

type txn_audit
(** Audit state for multi-key transaction histories: decided commits
    (the replica-side decision hook — authoritative) and client-acked
    commits (which carry read snapshots and anchor recency). *)

val txn_audit : unit -> txn_audit

val txn_decided :
  txn_audit ->
  txid:string ->
  commit:bool ->
  writes:(string * int * int) list ->
  unit
(** Record a decision learned at a replica.  Aborts are ignored;
    duplicate commit records must agree on the write set. *)

val txn_committed :
  txn_audit ->
  txid:string ->
  started:float ->
  now:float ->
  reads:(string * int * int) list ->
  writes:(string * int * int) list ->
  unit
(** Record a client-acked commit with its prepare-time read snapshot
    ((key, vn, value) per read) and installed writes. *)

val txn_check : txn_audit -> unit
(** Run the end-of-run checks, appending violations: acked ⊆ decided,
    per-key version uniqueness across decided commits, read validity,
    recency of acked commits, and acyclicity of the serialization
    graph (ww/wr/rw edges). *)

val txn_violations : txn_audit -> string list
(** Violations so far, newest first. *)

val txn_acked_count : txn_audit -> int
val txn_decided_count : txn_audit -> int

val quorum_ok : name:string -> Quorum.Config.t -> (unit, string) result
(** Static gate: legal read/write intersection and
    intersection-preserving minimization, via {!Lint.Quorum_check}. *)

val liveness_after_heal :
  script:Script.t -> completions:(float * bool) list -> (unit, string) result
(** After a script that settles ({!Script.quiesces_at}), at least one
    of the operations completing later must succeed.  [completions]
    is the run's chronological [(finished_at, ok)] log.  Vacuously
    [Ok] when the script never settles or nothing completes after the
    heal. *)
