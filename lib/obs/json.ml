(** A minimal JSON tree, emitter and recursive-descent parser.  The
    repo deliberately depends on no JSON library; the exporters need a
    deterministic emitter (byte-identical output for identical traces)
    and the tests and the CI smoke job need a well-formedness check,
    which is all this provides. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Deterministic number formatting: integers without a fractional
   part, everything else via %.9g (shortest-ish, stable).  nan/inf are
   not JSON; they degrade to null rather than corrupt the output. *)
let number_to_string x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of string * int

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* keep it simple: store the code point as UTF-8 *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf
                           (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end);
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> Num x
    | None -> fail ("bad number: " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

(* ---------- accessors (for tests and validators) ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num x -> Some x | _ -> None
