(** A causal trace context: the identity an operation carries through
    every layer it touches.  The client mints one per logical
    operation — [op] is a run-unique human-readable id like ["c0#12"],
    [parent] is the span id of the operation's root span — and the
    context rides inside protocol requests, so the RPC engine, the
    batch coalescer and the replica apply pipeline can stamp their own
    spans and instants with the originating operation.

    The stamp is two trace args: [("op", Str op)] on every event, and
    [("parent", Int parent)] on child events (the root span itself
    carries only [op], which is how queries tell roots from children).
    Everything is opt-in: layers only consult a context when one is
    present, so default runs emit byte-identical traces. *)

type t = {
  op : string;  (** run-unique operation id, e.g. ["c0#12"] *)
  parent : int;  (** span id of the operation's root span *)
}

let make ~op ~parent = { op; parent }
let op t = t.op
let parent t = t.parent

(** The trace args a child event stamps: [op], plus [parent] when the
    context has one ([parent = 0] — no root span — stamps only [op]). *)
let args t =
  ("op", Trace.Str t.op)
  :: (if t.parent <> 0 then [ ("parent", Trace.Int t.parent) ] else [])
