(** Critical-path latency attribution: decompose each completed
    operation's wall latency into named phases, from its stamped trace
    (see {!Ctx}).

    The decomposition is exact by construction.  The operation's
    [start, stop] interval is cut at every boundary of every stamped
    child interval (batch-window waits, retry backoff gaps, replica
    queue/apply/fsync spans), plus two thresholds (first hedge
    instant, last replica-side event); each resulting segment is
    classified once, by priority:

      fsync > apply > queue > batch > backoff > reply > hedge > net

    where [reply] is residual time after the last replica-side event
    (the final answer's flight home), [hedge] is residual time after
    the first hedge fan-out, and [net] is every other uncovered
    segment (request flight, scheduling).  Segments partition the
    interval, so the phase durations sum to the measured wall latency
    up to float addition error — the invariant the acceptance test
    pins.

    Overlap across replicas is resolved by the same priority: if any
    replica is fsyncing during a segment, the segment counts as fsync
    even if another replica is still queueing — the phases answer
    "what was the operation waiting on", not "what was each replica
    doing". *)

type phase = Net | Backoff | Hedge | Batch | Queue | Apply | Fsync | Reply

let phases = [ Net; Backoff; Hedge; Batch; Queue; Apply; Fsync; Reply ]

let phase_label = function
  | Net -> "net"
  | Backoff -> "backoff"
  | Hedge -> "hedge"
  | Batch -> "batch"
  | Queue -> "queue"
  | Apply -> "apply"
  | Fsync -> "fsync"
  | Reply -> "reply"

type breakdown = {
  op : string;  (** operation id, e.g. ["c0#12"] *)
  op_name : string;  (** root span name: read / write / install *)
  track : string;  (** the issuing client *)
  shard : int option;  (** root span's shard stamp, if sharded *)
  ok : bool;
  start : float;
  stop : float;
  by_phase : (phase * float) list;  (** every phase, in {!phases} order *)
}

let wall b = b.stop -. b.start

let phase_duration b p =
  match List.assoc_opt p b.by_phase with Some d -> d | None -> 0.0

(* clamp an interval to [lo, hi]; None when empty after clamping *)
let clamp ~lo ~hi (a, b) =
  let a = Float.max lo a and b = Float.min hi b in
  if a < b then Some (a, b) else None

let span_names_replica = [ "replica.queue"; "replica.apply"; "replica.fsync" ]

(* the intervals of the op's child spans with a given name *)
let intervals_of (children : Query.span list) name =
  List.filter_map
    (fun (s : Query.span) ->
      if String.equal s.Query.name name then Some (s.Query.start, s.Query.stop)
      else None)
    children

(* backoff gaps: between consecutive attempts of the same rid, the
   time from one attempt span's end to the next one's begin *)
let backoff_intervals (children : Query.span list) =
  let attempts =
    List.filter (fun (s : Query.span) -> String.equal s.Query.name "attempt")
      children
  in
  let keyed =
    List.map
      (fun (s : Query.span) ->
        ( Option.value ~default:(-1) (Query.arg_int s.Query.args "rid"),
          Option.value ~default:0 (Query.arg_int s.Query.args "attempt"),
          s ))
      attempts
  in
  let sorted =
    List.sort
      (fun (r1, a1, _) (r2, a2, _) ->
        match compare r1 r2 with 0 -> compare a1 a2 | c -> c)
      keyed
  in
  let rec gaps = function
    | (r1, _, s1) :: ((r2, _, s2) :: _ as rest) ->
        if r1 = r2 && s1.Query.stop < s2.Query.start then
          (s1.Query.stop, s2.Query.start) :: gaps rest
        else gaps rest
    | _ -> []
  in
  gaps sorted

let inside x (a, b) = a <= x && x < b

let of_root (root : Query.span) (spans : Query.span list)
    (events : Trace.event list) : breakdown =
  let op = Option.value ~default:"" (Query.op_of root) in
  let children =
    List.filter (fun s -> not (Query.is_root s)) (Query.spans_of_op spans ~op)
  in
  let op_events = Query.events_of_op events ~op in
  let lo = root.Query.start and hi = root.Query.stop in
  let cl = List.filter_map (clamp ~lo ~hi) in
  let fsync_iv = cl (intervals_of children "replica.fsync") in
  let apply_iv = cl (intervals_of children "replica.apply") in
  let queue_iv = cl (intervals_of children "replica.queue") in
  let batch_iv = cl (intervals_of children "batchq") in
  let backoff_iv = cl (backoff_intervals children) in
  (* the last moment a replica was visibly working for this op:
     query/install instants, and the close of any replica-side span *)
  let last_replica =
    List.fold_left
      (fun acc (e : Trace.event) ->
        let replica_instant =
          e.Trace.ph = Trace.I
          && (String.equal e.Trace.name "query"
             || String.equal e.Trace.name "install")
        in
        let replica_span_edge =
          List.exists (String.equal e.Trace.name) span_names_replica
        in
        if replica_instant || replica_span_edge then Float.max acc e.Trace.ts
        else acc)
      neg_infinity op_events
  in
  let first_hedge =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if e.Trace.ph = Trace.I && String.equal e.Trace.name "hedge" then
          Float.min acc e.Trace.ts
        else acc)
      infinity op_events
  in
  (* cut the wall interval at every boundary *)
  let cuts =
    List.concat_map
      (fun (a, b) -> [ a; b ])
      (fsync_iv @ apply_iv @ queue_iv @ batch_iv @ backoff_iv)
  in
  let cuts =
    (if Float.is_finite last_replica then [ last_replica ] else [])
    @ (if Float.is_finite first_hedge then [ first_hedge ] else [])
    @ cuts
  in
  let bounds =
    List.sort_uniq Float.compare
      (lo :: hi :: List.filter (fun x -> lo < x && x < hi) cuts)
  in
  let totals = Array.make (List.length phases) 0.0 in
  let index p =
    let rec go i = function
      | [] -> 0
      | q :: rest -> if q = p then i else go (i + 1) rest
    in
    go 0 phases
  in
  let add p d = totals.(index p) <- totals.(index p) +. d in
  let rec segments = function
    | a :: (b :: _ as rest) ->
        let m = (a +. b) /. 2.0 in
        let phase =
          if List.exists (inside m) fsync_iv then Fsync
          else if List.exists (inside m) apply_iv then Apply
          else if List.exists (inside m) queue_iv then Queue
          else if List.exists (inside m) batch_iv then Batch
          else if List.exists (inside m) backoff_iv then Backoff
          else if Float.is_finite last_replica && m >= last_replica then Reply
          else if Float.is_finite first_hedge && m >= first_hedge then Hedge
          else Net
        in
        add phase (b -. a);
        segments rest
    | _ -> ()
  in
  segments bounds;
  {
    op;
    op_name = root.Query.name;
    track = root.Query.track;
    shard = Query.arg_int root.Query.args "shard";
    ok = Option.value ~default:false (Query.arg_bool root.Query.args "ok");
    start = lo;
    stop = hi;
    by_phase = List.mapi (fun i p -> (p, totals.(i))) phases;
  }

(** Breakdowns of every completed (root span begun and ended) stamped
    operation in the trace, in root-span-id order. *)
let of_events (events : Trace.event list) : breakdown list =
  let spans = Query.spans events in
  List.map (fun root -> of_root root spans events) (Query.roots spans)

(* ---------- aggregation ---------- *)

let shards (bs : breakdown list) : int option list =
  let known =
    List.sort_uniq Int.compare (List.filter_map (fun b -> b.shard) bs)
  in
  let unknown = List.exists (fun b -> b.shard = None) bs in
  (if unknown then [ None ] else []) @ List.map (fun s -> Some s) known

let mean_by_phase (bs : breakdown list) : (phase * float) list =
  let n = List.length bs in
  List.map
    (fun p ->
      let total =
        List.fold_left (fun acc b -> acc +. phase_duration b p) 0.0 bs
      in
      (p, if n = 0 then 0.0 else total /. float_of_int n))
    phases

(** Register (or re-fetch) one [attr.phase_ms] histogram per (shard,
    phase) and feed every breakdown's phase durations into it — the
    per-shard phase histograms of the metrics registry.  Registration
    order is shard-sorted then {!phases}-ordered, so dumps are
    deterministic. *)
let observe (m : Metrics.t) (bs : breakdown list) : unit =
  let shard_label = function
    | Some s -> string_of_int s
    | None -> "-"
  in
  List.iter
    (fun shard ->
      let mine = List.filter (fun b -> b.shard = shard) bs in
      List.iter
        (fun p ->
          let h =
            Metrics.histogram m
              ~labels:
                [
                  ("shard", shard_label shard); ("phase", phase_label p);
                ]
              "attr.phase"
          in
          List.iter (fun b -> Metrics.observe h (phase_duration b p)) mine)
        phases)
    (shards bs)

(* ---------- JSON report ---------- *)

let num_or_null v = if Float.is_nan v then Json.Null else Json.Num v

let breakdown_to_json (b : breakdown) : Json.t =
  Json.Obj
    [
      ("op", Json.Str b.op);
      ("name", Json.Str b.op_name);
      ("track", Json.Str b.track);
      ( "shard",
        match b.shard with Some s -> Json.Num (float_of_int s) | None -> Json.Null
      );
      ("ok", Json.Bool b.ok);
      ("start", Json.Num b.start);
      ("stop", Json.Num b.stop);
      ("wall", Json.Num (wall b));
      ( "phases",
        Json.Obj
          (List.map (fun (p, d) -> (phase_label p, Json.Num d)) b.by_phase) );
    ]

(** The machine-readable attribution report: op count and per-shard
    mean phase decomposition (time units per op). *)
let report_to_json (bs : breakdown list) : Json.t =
  let shard_obj shard =
    let mine = List.filter (fun b -> b.shard = shard) bs in
    let means = mean_by_phase mine in
    Json.Obj
      [
        ( "shard",
          match shard with
          | Some s -> Json.Num (float_of_int s)
          | None -> Json.Null );
        ("ops", Json.Num (float_of_int (List.length mine)));
        ( "wall_mean",
          num_or_null
            (match List.length mine with
            | 0 -> nan
            | n ->
                List.fold_left (fun acc b -> acc +. wall b) 0.0 mine
                /. float_of_int n) );
        ( "phase_means",
          Json.Obj (List.map (fun (p, d) -> (phase_label p, Json.Num d)) means)
        );
      ]
  in
  Json.Obj
    [
      ("ops", Json.Num (float_of_int (List.length bs)));
      ("shards", Json.List (List.map shard_obj (shards bs)));
    ]
