(** Trace exporters.

    - {!jsonl}: one JSON object per event per line — grep-able,
      diff-able, and byte-identical across runs with the same seed
      (the determinism regression the tests pin).
    - {!chrome}: the Chrome [trace_event] array format, loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.
      Tracks map to thread ids, with [thread_name] metadata so the UI
      shows node names; one virtual time unit is rendered as 1ms. *)

let json_of_arg : Trace.arg -> Json.t = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_of_args args =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)

(* ---------- JSONL ---------- *)

let jsonl_event (e : Trace.event) : Json.t =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.Trace.seq));
      ("ts", Json.Num e.Trace.ts);
      ("cat", Json.Str e.Trace.cat);
      ("name", Json.Str e.Trace.name);
      ("track", Json.Str e.Trace.track);
      ("ph", Json.Str (Trace.phase_label e.Trace.ph));
      ("id", Json.Num (float_of_int e.Trace.id));
      ("args", json_of_args e.Trace.args);
    ]

let jsonl (t : Trace.t) : string =
  let buf = Buffer.create 4096 in
  Trace.iter t (fun e ->
      Json.emit buf (jsonl_event e);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* ---------- Chrome trace_event ---------- *)

(* Stable track -> tid assignment by order of first appearance. *)
let track_ids (t : Trace.t) : (string, int) Hashtbl.t * string list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Trace.iter t (fun e ->
      if not (Hashtbl.mem tbl e.Trace.track) then begin
        Hashtbl.add tbl e.Trace.track (Hashtbl.length tbl + 1);
        order := e.Trace.track :: !order
      end);
  (tbl, List.rev !order)

let chrome_event tids (e : Trace.event) : Json.t =
  let tid = Hashtbl.find tids e.Trace.track in
  let base =
    [
      ("name", Json.Str e.Trace.name);
      ("cat", Json.Str e.Trace.cat);
      ("ph", Json.Str (Trace.phase_label e.Trace.ph));
      (* 1 virtual time unit -> 1ms (ts is in microseconds) *)
      ("ts", Json.Num (e.Trace.ts *. 1000.0));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let scope =
    (* instants need an explicit scope; "t" = thread *)
    if e.Trace.ph = Trace.I then [ ("s", Json.Str "t") ] else []
  in
  let extra =
    (* keep the sequence number, and the span id for B/E pairing *)
    ("seq", Trace.Int e.Trace.seq)
    :: (if e.Trace.id <> 0 then [ ("id", Trace.Int e.Trace.id) ] else [])
  in
  let args = [ ("args", json_of_args (e.Trace.args @ extra)) ] in
  Json.Obj (base @ scope @ args)

let chrome (t : Trace.t) : string =
  let tids, order = track_ids t in
  let metadata =
    List.map
      (fun track ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.0);
            ("tid", Json.Num (float_of_int (Hashtbl.find tids track)));
            ("args", Json.Obj [ ("name", Json.Str track) ]);
          ])
      order
  in
  let events = ref [] in
  Trace.iter t (fun e -> events := chrome_event tids e :: !events);
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (metadata @ List.rev !events));
         ("displayTimeUnit", Json.Str "ms");
       ])

(* ---------- files ---------- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_jsonl path t = write_file path (jsonl t)
let write_chrome path t = write_file path (chrome t)

(* ---------- well-formedness ---------- *)

(** Check the Chrome export parses as JSON and every span-begin has a
    matching end (and vice versa), pairing B/E by span id. *)
let check_chrome (s : string) : (unit, string) result =
  match Json.parse s with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "no traceEvents array"
      | Some evs ->
          let begins = Hashtbl.create 64 and bad = ref None in
          List.iter
            (fun ev ->
              match
                ( Option.bind (Json.member "ph" ev) Json.to_string_opt,
                  Option.bind (Json.member "args" ev) (Json.member "id")
                  |> Fun.flip Option.bind Json.to_float_opt )
              with
              | Some "B", Some id -> Hashtbl.replace begins id ()
              | Some "E", Some id ->
                  if Hashtbl.mem begins id then Hashtbl.remove begins id
                  else if !bad = None then
                    bad := Some (Printf.sprintf "E without B (span %g)" id)
              | _ -> ())
            evs;
          (match !bad with
          | Some e -> Error e
          | None ->
              if Hashtbl.length begins > 0 then
                Error
                  (Printf.sprintf "%d B events without matching E"
                     (Hashtbl.length begins))
              else Ok ()))
