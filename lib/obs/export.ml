(** Trace exporters and the JSONL importer.

    - {!jsonl}: one JSON object per event per line — grep-able,
      diff-able, and byte-identical across runs with the same seed
      (the determinism regression the tests pin).
    - {!chrome}: the Chrome [trace_event] array format, loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.
      Tracks map to thread ids, with [thread_name] metadata so the UI
      shows node names; one virtual time unit is rendered as 1ms.
      End events whose begin was evicted by ring-buffer wraparound are
      skipped, so the export stays well-formed on truncated traces.
    - {!parse_jsonl}: the strict inverse of {!jsonl}, for offline
      tools that re-load a dumped trace; any unparsable or
      wrongly-shaped line is a hard error, never a partial trace. *)

let json_of_arg : Trace.arg -> Json.t = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float f -> Json.Num f
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let json_of_args args =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)

(* ---------- JSONL ---------- *)

let jsonl_event (e : Trace.event) : Json.t =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.Trace.seq));
      ("ts", Json.Num e.Trace.ts);
      ("cat", Json.Str e.Trace.cat);
      ("name", Json.Str e.Trace.name);
      ("track", Json.Str e.Trace.track);
      ("ph", Json.Str (Trace.phase_label e.Trace.ph));
      ("id", Json.Num (float_of_int e.Trace.id));
      ("args", json_of_args e.Trace.args);
    ]

let jsonl_of_events (events : Trace.event list) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.emit buf (jsonl_event e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let jsonl (t : Trace.t) : string =
  let buf = Buffer.create 4096 in
  Trace.iter t (fun e ->
      Json.emit buf (jsonl_event e);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* ---------- JSONL import ---------- *)

let phase_of_label = function
  | "B" -> Some Trace.B
  | "E" -> Some Trace.E
  | "I" -> Some Trace.I
  | "C" -> Some Trace.C
  | _ -> None

let int_of_num f =
  (* JSON has no integer type; trace ints survive as integral floats *)
  if Float.is_integer f && Float.abs f <= 2. ** 52. then
    Some (int_of_float f)
  else None

let arg_of_json : Json.t -> Trace.arg option = function
  | Json.Num f -> (
      (* Int and Float emit identical bytes for integral values, so
         reconstructing integral numbers as Int keeps a
         parse-then-re-export round trip byte-stable *)
      match int_of_num f with
      | Some i -> Some (Trace.Int i)
      | None -> Some (Trace.Float f))
  | Json.Str s -> Some (Trace.Str s)
  | Json.Bool b -> Some (Trace.Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let event_of_json (j : Json.t) : (Trace.event, string) result =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int k = Option.bind (num k) int_of_num in
  match
    ( int "seq",
      num "ts",
      str "cat",
      str "name",
      str "track",
      Option.bind (str "ph") phase_of_label,
      int "id",
      Json.member "args" j )
  with
  | Some seq, Some ts, Some cat, Some name, Some track, Some ph, Some id,
    Some (Json.Obj kvs) -> (
      let args =
        List.fold_left
          (fun acc (k, v) ->
            match (acc, arg_of_json v) with
            | Error _, _ -> acc
            | Ok l, Some a -> Ok ((k, a) :: l)
            | Ok _, None -> Error (Fmt.str "arg %S is not a scalar" k))
          (Ok []) kvs
      in
      match args with
      | Error e -> Error e
      | Ok rev ->
          Ok { Trace.seq; ts; cat; name; track; ph; id; args = List.rev rev })
  | _ -> Error "missing or mistyped event field"

(** Parse a {!jsonl} export back into events.  Strict: every non-empty
    line must be a well-formed event object, or the whole parse fails
    with the offending line number — no partial traces. *)
let parse_jsonl (s : string) : (Trace.event list, string) result =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        if String.length (String.trim l) = 0 then go (lineno + 1) acc rest
        else
          let parsed =
            match Json.parse l with
            | Error e -> Error e
            | Ok j -> event_of_json j
          in
          (match parsed with
          | Error e -> Error (Fmt.str "line %d: %s" lineno e)
          | Ok ev -> go (lineno + 1) (ev :: acc) rest)
  in
  go 1 [] lines

(* ---------- Chrome trace_event ---------- *)

(* Stable track -> tid assignment by order of first appearance. *)
let track_ids (events : Trace.event list) : (string, int) Hashtbl.t * string list
    =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if not (Hashtbl.mem tbl e.Trace.track) then begin
        Hashtbl.add tbl e.Trace.track (Hashtbl.length tbl + 1);
        order := e.Trace.track :: !order
      end)
    events;
  (tbl, List.rev !order)

let chrome_event tids (e : Trace.event) : Json.t =
  let tid = Hashtbl.find tids e.Trace.track in
  let base =
    [
      ("name", Json.Str e.Trace.name);
      ("cat", Json.Str e.Trace.cat);
      ("ph", Json.Str (Trace.phase_label e.Trace.ph));
      (* 1 virtual time unit -> 1ms (ts is in microseconds) *)
      ("ts", Json.Num (e.Trace.ts *. 1000.0));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let scope =
    (* instants need an explicit scope; "t" = thread *)
    if e.Trace.ph = Trace.I then [ ("s", Json.Str "t") ] else []
  in
  let extra =
    (* keep the sequence number, and the span id for B/E pairing *)
    ("seq", Trace.Int e.Trace.seq)
    :: (if e.Trace.id <> 0 then [ ("id", Trace.Int e.Trace.id) ] else [])
  in
  let args = [ ("args", json_of_args (e.Trace.args @ extra)) ] in
  Json.Obj (base @ scope @ args)

let chrome_of_events (events : Trace.event list) : string =
  let tids, order = track_ids events in
  let metadata =
    List.map
      (fun track ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.0);
            ("tid", Json.Num (float_of_int (Hashtbl.find tids track)));
            ("args", Json.Obj [ ("name", Json.Str track) ]);
          ])
      order
  in
  (* ring wraparound can evict a span's B while its E survives; an
     orphan E would render as an unbalanced Chrome trace, so E events
     whose begin is not in the export are dropped *)
  let begun = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ph = Trace.B then Hashtbl.replace begun e.Trace.id ())
    events;
  let out = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.ph <> Trace.E || Hashtbl.mem begun e.Trace.id then
        out := chrome_event tids e :: !out)
    events;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (metadata @ List.rev !out));
         ("displayTimeUnit", Json.Str "ms");
       ])

let chrome (t : Trace.t) : string = chrome_of_events (Trace.events t)

(* ---------- files ---------- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_jsonl path t = write_file path (jsonl t)
let write_chrome path t = write_file path (chrome t)

(* ---------- well-formedness ---------- *)

(** Check the Chrome export parses as JSON and every span-begin has a
    matching end (and vice versa), pairing B/E by span id. *)
let check_chrome (s : string) : (unit, string) result =
  match Json.parse s with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "no traceEvents array"
      | Some evs ->
          let begins = Hashtbl.create 64 and bad = ref None in
          List.iter
            (fun ev ->
              match
                ( Option.bind (Json.member "ph" ev) Json.to_string_opt,
                  Option.bind (Json.member "args" ev) (Json.member "id")
                  |> Fun.flip Option.bind Json.to_float_opt )
              with
              | Some "B", Some id -> Hashtbl.replace begins id ()
              | Some "E", Some id ->
                  if Hashtbl.mem begins id then Hashtbl.remove begins id
                  else if !bad = None then
                    bad := Some (Printf.sprintf "E without B (span %g)" id)
              | _ -> ())
            evs;
          (match !bad with
          | Some e -> Error e
          | None ->
              if Hashtbl.length begins > 0 then
                Error
                  (Printf.sprintf "%d B events without matching E"
                     (Hashtbl.length begins))
              else Ok ()))
