(** Rolling-window health monitoring, per shard, on virtual time.

    Completed operations are {!record}ed as they finish; {!sample}
    prunes everything older than the window and distils each shard
    into a snapshot — op rate, read fraction, success rate, p99
    latency (nearest-rank over the window's successful ops), and an
    instantaneous apply-queue depth probed from the caller-provided
    hook.  Subscribers registered with {!subscribe} see every sample
    — the feed a live dashboard (the REPL's [top]) or a
    workload-aware quorum optimizer consumes.

    Deterministic: no wall clock, no allocation-order dependence —
    records arrive in virtual-time order and snapshots are pure
    functions of the recorded window plus the probe.  Statistics are
    computed inline (nearest-rank percentile over a sorted copy)
    because [lib/obs] sits below [lib/sim] in the dependency order. *)

type record = {
  r_at : float;
  r_read : bool;
  r_ok : bool;
  r_latency : float;
}

type snapshot = {
  at : float;  (** sample time *)
  shard : int;
  window : float;
  ops : int;  (** operations completed inside the window *)
  rate : float;  (** ops per time unit over the window *)
  read_fraction : float;  (** [nan] when the window is empty *)
  success_rate : float;  (** [nan] when the window is empty *)
  p99 : float;
      (** nearest-rank p99 latency of the window's successful ops;
          [nan] when there were none *)
  queue_depth : float;  (** probed at sample time; [nan] without a probe *)
}

type t = {
  hwindow : float;
  n_shards : int;
  queue_depth : (int -> float) option;
  shards : record Queue.t array;  (** per shard, in arrival order *)
  mutable subs : (snapshot list -> unit) list;  (** reversed *)
}

let create ~window ~n_shards ?queue_depth () =
  if (not (Float.is_finite window)) || window <= 0.0 then
    invalid_arg "Health.create: window must be finite and > 0";
  if n_shards < 1 then invalid_arg "Health.create: n_shards must be >= 1";
  {
    hwindow = window;
    n_shards;
    queue_depth;
    shards = Array.init n_shards (fun _ -> Queue.create ());
    subs = [];
  }

let window t = t.hwindow
let n_shards t = t.n_shards
let subscribe t f = t.subs <- f :: t.subs

let record t ~at ~shard ~read ~ok ~latency =
  if shard < 0 || shard >= t.n_shards then
    invalid_arg (Fmt.str "Health.record: shard %d out of range" shard);
  Queue.add
    { r_at = at; r_read = read; r_ok = ok; r_latency = latency }
    t.shards.(shard)

(* records arrive in virtual-time order, so pruning pops from the
   front until the window's left edge *)
let prune q ~at ~window =
  let cutoff = at -. window in
  let rec go () =
    match Queue.peek_opt q with
    | Some r when r.r_at <= cutoff ->
        ignore (Queue.pop q);
        go ()
    | _ -> ()
  in
  go ()

let nearest_rank_p99 (latencies : float list) =
  match latencies with
  | [] -> nan
  | _ ->
      let a = Array.of_list latencies in
      Array.sort Float.compare a;
      let n = Array.length a in
      let rank = int_of_float (Float.ceil (0.99 *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let snapshot_shard t ~at shard =
  let q = t.shards.(shard) in
  prune q ~at ~window:t.hwindow;
  let ops = Queue.length q in
  let reads = ref 0 and oks = ref 0 and lats = ref [] in
  Queue.iter
    (fun r ->
      if r.r_read then incr reads;
      if r.r_ok then begin
        incr oks;
        lats := r.r_latency :: !lats
      end)
    q;
  let f = float_of_int in
  {
    at;
    shard;
    window = t.hwindow;
    ops;
    rate = f ops /. t.hwindow;
    read_fraction = (if ops = 0 then nan else f !reads /. f ops);
    success_rate = (if ops = 0 then nan else f !oks /. f ops);
    p99 = nearest_rank_p99 !lats;
    queue_depth =
      (match t.queue_depth with Some probe -> probe shard | None -> nan);
  }

(** One snapshot per shard (ascending), pruning the window as a side
    effect and notifying every subscriber in subscription order. *)
let sample t ~at =
  let snaps = List.init t.n_shards (snapshot_shard t ~at) in
  List.iter (fun f -> f snaps) (List.rev t.subs);
  snaps

(* Like [snapshot_shard] but pure: scans past stale records instead of
   popping them and touches no subscriber — a read-only probe. *)
let peek_shard t ~at shard =
  let cutoff = at -. t.hwindow in
  let ops = ref 0 and reads = ref 0 and oks = ref 0 and lats = ref [] in
  Queue.iter
    (fun r ->
      if r.r_at > cutoff then begin
        incr ops;
        if r.r_read then incr reads;
        if r.r_ok then begin
          incr oks;
          lats := r.r_latency :: !lats
        end
      end)
    t.shards.(shard);
  let f = float_of_int in
  let ops = !ops in
  {
    at;
    shard;
    window = t.hwindow;
    ops;
    rate = f ops /. t.hwindow;
    read_fraction = (if ops = 0 then nan else f !reads /. f ops);
    success_rate = (if ops = 0 then nan else f !oks /. f ops);
    p99 = nearest_rank_p99 !lats;
    queue_depth =
      (match t.queue_depth with Some probe -> probe shard | None -> nan);
  }

(** One snapshot per shard like {!sample}, but with no side effects:
    nothing pruned, no subscriber notified.  The read-only probe a
    tuning inspector uses between sampling rounds. *)
let peek t ~at = List.init t.n_shards (peek_shard t ~at)

(* ---------- rendering ---------- *)

let cell fmt v = if Float.is_nan v then "-" else Fmt.str fmt v

(** A fixed-width table of one sampling round — what the REPL's [top]
    prints.  Deterministic given the snapshots, so tests pin it. *)
let render (snaps : snapshot list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Fmt.str "%5s %6s %8s %6s %6s %8s %6s@\n" "shard" "ops" "rate" "read%"
       "ok%" "p99" "queue");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Fmt.str "%5d %6d %8s %6s %6s %8s %6s@\n" s.shard s.ops
           (cell "%.3f" s.rate)
           (cell "%.1f" (s.read_fraction *. 100.0))
           (cell "%.1f" (s.success_rate *. 100.0))
           (cell "%.2f" s.p99)
           (cell "%.2f" s.queue_depth)))
    snaps;
  Buffer.contents buf

(* ---------- JSON export ---------- *)

let num_or_null v = if Float.is_nan v then Json.Null else Json.Num v

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [
      ("at", Json.Num s.at);
      ("shard", Json.Num (float_of_int s.shard));
      ("window", Json.Num s.window);
      ("ops", Json.Num (float_of_int s.ops));
      ("rate", num_or_null s.rate);
      ("read_fraction", num_or_null s.read_fraction);
      ("success_rate", num_or_null s.success_rate);
      ("p99", num_or_null s.p99);
      ("queue_depth", num_or_null s.queue_depth);
    ]

(** The machine-readable feed for the quorum optimizer: a JSON array
    of snapshots, chronological. *)
let to_json (snaps : snapshot list) : Json.t =
  Json.List (List.map snapshot_to_json snaps)
