(** A metrics registry: named counters, gauges, and fixed-bucket
    histograms with labels.  The same (name, labels) pair always
    yields the same instrument; [dump] output follows registration
    order, so deterministic runs dump deterministically. *)

type labels = (string * string) list

type counter
type gauge
type histogram

type t

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
val gauge : t -> ?labels:labels -> string -> gauge

val default_buckets : float array

val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram
(** [buckets] are ascending upper bounds; an implicit +inf bucket
    catches the rest.  Default: 1, 2, 5, ..., 500 (latency-ish). *)

val inc : ?by:int -> counter -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** (upper bound, count) pairs; the final bound is [infinity]. *)

val quantile : histogram -> float -> float
(** Conservative bucket-quantile estimate: upper bound of the first
    bucket whose cumulative count reaches [q * total]. *)

val dump : t -> string
(** One line per instrument, registration order. *)

val snapshot : t -> Trace.t -> unit
(** Emit every instrument's current value as counter-sample trace
    events. *)
