(** A causal trace context — root operation id plus causal parent —
    minted per logical operation by the client and carried through
    protocol requests, so every layer (engine attempts, batch
    coalescing, replica queue/apply/fsync) can stamp its events with
    the originating operation.  Opt-in: absent contexts leave traces
    byte-identical. *)

type t = {
  op : string;  (** run-unique operation id, e.g. ["c0#12"] *)
  parent : int;  (** span id of the operation's root span; [0] = none *)
}

val make : op:string -> parent:int -> t
val op : t -> string
val parent : t -> int

val args : t -> (string * Trace.arg) list
(** The args a stamped child event carries: [("op", Str op)], plus
    [("parent", Int parent)] when [parent <> 0]. *)
