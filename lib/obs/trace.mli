(** The trace core: typed events (span begin/end, instants, counter
    samples) stamped with an injected clock — in simulations, the
    virtual clock of [Sim.Core] — plus a monotonic sequence number,
    collected into a bounded in-memory ring buffer.  Deterministic
    given the inputs: two runs from the same seed produce identical
    traces. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = B  (** span begin *) | E  (** span end *) | I  (** instant *)
           | C  (** counter sample *)

val phase_label : phase -> string

type event = {
  seq : int;  (** monotonic per-tracer sequence number *)
  ts : float;  (** virtual time *)
  cat : string;  (** layer: "sim", "net", "store", "ioa", ... *)
  name : string;
  track : string;  (** node / client / component the event belongs to *)
  ph : phase;
  id : int;  (** span id pairing B with E; 0 for I and C events *)
  args : (string * arg) list;
}

type span
(** Handle returned by {!begin_span}; pass it to {!end_span}. *)

val span_id : span -> int
(** The span's id — the value pairing its B and E events, [0] for the
    null span of a disabled tracer.  Ids are allocated monotonically
    per tracer, so on a shared tracer they are unique across the whole
    run and can serve as causal-parent references. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** A tracer with a ring buffer of [capacity] events (default 65536).
    [capacity = 0] or [enabled = false] gives a tracer on which every
    emission is a cheap no-op. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_clock : t -> (unit -> float) -> unit
(** Install the timestamp source (e.g. the simulator's virtual [now]).
    Defaults to a clock stuck at [0.0]. *)

val length : t -> int
val capacity : t -> int

val overwritten : t -> int
(** Events lost to ring-buffer wraparound. *)

val clear : t -> unit

val instant :
  t -> cat:string -> name:string -> ?track:string -> ?ts:float ->
  ?args:(string * arg) list -> unit -> unit

val counter :
  t -> cat:string -> name:string -> ?track:string -> ?ts:float ->
  value:float -> unit -> unit

val begin_span :
  t -> cat:string -> name:string -> ?track:string -> ?ts:float ->
  ?args:(string * arg) list -> unit -> span

val end_span : t -> span -> ?ts:float -> ?args:(string * arg) list -> unit -> unit

val with_span :
  t -> cat:string -> name:string -> ?track:string ->
  ?args:(string * arg) list -> (unit -> 'a) -> 'a
(** Synchronous convenience: begin, run, end (even on exceptions). *)

val events : t -> event list
(** Emission order, oldest first. *)

val iter : t -> (event -> unit) -> unit

val pp_arg : arg Fmt.t
val pp_event : event Fmt.t
