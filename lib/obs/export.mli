(** Trace exporters: JSONL (one event per line, byte-identical across
    same-seed runs, with a strict importer) and Chrome [trace_event]
    JSON (loadable in [chrome://tracing] / Perfetto; end events whose
    begin was lost to ring wraparound are dropped, so the export stays
    well-formed). *)

val jsonl_event : Trace.event -> Json.t
val jsonl : Trace.t -> string
val jsonl_of_events : Trace.event list -> string

val parse_jsonl : string -> (Trace.event list, string) result
(** The strict inverse of {!jsonl}: every non-empty line must be a
    well-formed event object, or the parse fails with the offending
    line number — never a partial trace.  Integral numbers round-trip
    as [Int] args, so parse-then-re-export is byte-stable. *)

val chrome : Trace.t -> string
val chrome_of_events : Trace.event list -> string

val write_jsonl : string -> Trace.t -> unit
val write_chrome : string -> Trace.t -> unit

val check_chrome : string -> (unit, string) result
(** Well-formedness of a Chrome export: valid JSON, a [traceEvents]
    array, and balanced span begin/end events (paired by span id). *)
