(** Trace exporters: JSONL (one event per line, byte-identical across
    same-seed runs) and Chrome [trace_event] JSON (loadable in
    [chrome://tracing] / Perfetto). *)

val jsonl_event : Trace.event -> Json.t
val jsonl : Trace.t -> string

val chrome : Trace.t -> string

val write_jsonl : string -> Trace.t -> unit
val write_chrome : string -> Trace.t -> unit

val check_chrome : string -> (unit, string) result
(** Well-formedness of a Chrome export: valid JSON, a [traceEvents]
    array, and balanced span begin/end events (paired by span id). *)
