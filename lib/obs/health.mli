(** Rolling-window per-shard health monitoring on virtual time:
    record completed operations, sample snapshots (op rate, read
    fraction, success rate, p99, apply-queue depth), subscribe to the
    sample feed, render a live table, export JSON for the quorum
    optimizer.  Deterministic given the records and the probe. *)

type snapshot = {
  at : float;  (** sample time *)
  shard : int;
  window : float;
  ops : int;  (** operations completed inside the window *)
  rate : float;  (** ops per time unit over the window *)
  read_fraction : float;  (** [nan] when the window is empty *)
  success_rate : float;  (** [nan] when the window is empty *)
  p99 : float;
      (** nearest-rank p99 latency of the window's successful ops;
          [nan] when there were none *)
  queue_depth : float;  (** probed at sample time; [nan] without a probe *)
}

type t

val create : window:float -> n_shards:int -> ?queue_depth:(int -> float) ->
  unit -> t
(** A monitor over [n_shards] shards with a rolling [window] of
    virtual time.  [queue_depth shard] is probed at each sample — wire
    it to the shard's replica apply queues.
    @raise Invalid_argument on a non-positive window or shard count. *)

val window : t -> float
val n_shards : t -> int

val record :
  t -> at:float -> shard:int -> read:bool -> ok:bool -> latency:float -> unit
(** One completed operation.  Records must arrive in non-decreasing
    [at] order (virtual time does).
    @raise Invalid_argument on an out-of-range shard. *)

val sample : t -> at:float -> snapshot list
(** One snapshot per shard (ascending), pruning records older than the
    window and notifying every subscriber in subscription order. *)

val peek : t -> at:float -> snapshot list
(** Like {!sample} but side-effect free: one snapshot per shard
    without pruning the window or notifying subscribers.  What a
    tuning inspector calls between sampling rounds. *)

val subscribe : t -> (snapshot list -> unit) -> unit

val render : snapshot list -> string
(** Fixed-width table of one sampling round (the REPL's [top]);
    deterministic, so tests pin it. *)

val snapshot_to_json : snapshot -> Json.t

val to_json : snapshot list -> Json.t
(** JSON array of snapshots — [nan]s export as [null]. *)
