(** The trace core: typed events (span begin/end, instants, counter
    samples) stamped with a pluggable clock — in simulations, the
    virtual clock of [Sim.Core] — plus a monotonic sequence number, so
    a trace totally orders what the float timestamps only partially
    order.  Events land in a bounded ring buffer: tracing an arbitrary
    long run costs bounded memory, the newest events win, and the
    number of overwritten events is reported.

    Everything here is deterministic given the inputs: sequence
    numbers and span ids are allocated in emission order, timestamps
    come from the injected clock, and no wall-clock or global state is
    consulted — two runs from the same seed produce byte-identical
    traces. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase = B | E | I | C

let phase_label = function B -> "B" | E -> "E" | I -> "I" | C -> "C"

type event = {
  seq : int;  (** monotonic per-tracer sequence number *)
  ts : float;  (** virtual time (or whatever the clock yields) *)
  cat : string;  (** layer: "sim", "net", "store", "ioa", ... *)
  name : string;
  track : string;  (** node / client / component the event belongs to *)
  ph : phase;
  id : int;  (** span id pairing B with E; 0 for I and C events *)
  args : (string * arg) list;
}

type span = {
  span_id : int;
  span_cat : string;
  span_name : string;
  span_track : string;
}

(** A span handle that never records anything (disabled tracer). *)
let null_span = { span_id = 0; span_cat = ""; span_name = ""; span_track = "" }

let span_id s = s.span_id

type t = {
  mutable enabled : bool;
  mutable clock : unit -> float;
  capacity : int;
  ring : event array;  (** length [capacity]; a circular buffer *)
  mutable len : int;
  mutable head : int;  (** index of the oldest event when [len > 0] *)
  mutable next_seq : int;
  mutable next_span : int;
  mutable overwritten : int;
}

let dummy_event =
  { seq = -1; ts = 0.0; cat = ""; name = ""; track = ""; ph = I; id = 0; args = [] }

let create ?(capacity = 65536) ?(enabled = true) () =
  {
    enabled = enabled && capacity > 0;
    clock = (fun () -> 0.0);
    capacity;
    ring = Array.make (max capacity 1) dummy_event;
    len = 0;
    head = 0;
    next_seq = 0;
    next_span = 1;
    overwritten = 0;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b && t.capacity > 0
let set_clock t clock = t.clock <- clock
let length t = t.len
let overwritten t = t.overwritten
let capacity t = t.capacity

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.next_seq <- 0;
  t.next_span <- 1;
  t.overwritten <- 0

let push t ev =
  if t.len < t.capacity then begin
    t.ring.((t.head + t.len) mod t.capacity) <- ev;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest *)
    t.ring.(t.head) <- ev;
    t.head <- (t.head + 1) mod t.capacity;
    t.overwritten <- t.overwritten + 1
  end

let emit t ~cat ~name ~track ~ph ~id ?ts ~args () =
  if t.enabled then begin
    let ts = match ts with Some x -> x | None -> t.clock () in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    push t { seq; ts; cat; name; track; ph; id; args }
  end

let instant t ~cat ~name ?(track = "main") ?ts ?(args = []) () =
  emit t ~cat ~name ~track ~ph:I ~id:0 ?ts ~args ()

let counter t ~cat ~name ?(track = "main") ?ts ~value () =
  emit t ~cat ~name ~track ~ph:C ~id:0 ?ts ~args:[ ("value", Float value) ] ()

let begin_span t ~cat ~name ?(track = "main") ?ts ?(args = []) () =
  if not t.enabled then null_span
  else begin
    let id = t.next_span in
    t.next_span <- id + 1;
    emit t ~cat ~name ~track ~ph:B ~id ?ts ~args ();
    { span_id = id; span_cat = cat; span_name = name; span_track = track }
  end

let end_span t span ?ts ?(args = []) () =
  if span.span_id <> 0 then
    emit t ~cat:span.span_cat ~name:span.span_name ~track:span.span_track
      ~ph:E ~id:span.span_id ?ts ~args ()

let with_span t ~cat ~name ?track ?(args = []) f =
  let s = begin_span t ~cat ~name ?track ~args () in
  Fun.protect ~finally:(fun () -> end_span t s ()) f

(** Events in emission order, oldest first. *)
let events t =
  List.init t.len (fun i -> t.ring.((t.head + i) mod t.capacity))

let iter t f =
  for i = 0 to t.len - 1 do
    f t.ring.((t.head + i) mod t.capacity)
  done

let pp_arg ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b

let pp_event ppf e =
  Fmt.pf ppf "#%d %.3f [%s] %s/%s %s%a" e.seq e.ts (phase_label e.ph) e.cat
    e.name e.track
    Fmt.(list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%a" k pp_arg v))
    e.args
