(** Critical-path latency attribution: decompose each completed
    stamped operation's wall latency into named phases — exact by
    construction (segments partition the wall interval, so the phases
    sum to the measured latency up to float addition error).

    Classification priority over each segment:
    fsync > apply > queue > batch > backoff > reply > hedge > net,
    where [reply] is residual time after the last replica-side event,
    [hedge] residual time after the first hedge fan-out, and [net]
    every other uncovered segment. *)

type phase = Net | Backoff | Hedge | Batch | Queue | Apply | Fsync | Reply

val phases : phase list
(** Fixed order, used everywhere phases are enumerated. *)

val phase_label : phase -> string

type breakdown = {
  op : string;  (** operation id, e.g. ["c0#12"] *)
  op_name : string;  (** root span name: read / write / install *)
  track : string;  (** the issuing client *)
  shard : int option;  (** root span's shard stamp, if sharded *)
  ok : bool;
  start : float;
  stop : float;
  by_phase : (phase * float) list;  (** every phase, in {!phases} order *)
}

val wall : breakdown -> float
val phase_duration : breakdown -> phase -> float

val of_events : Trace.event list -> breakdown list
(** Breakdowns of every completed stamped operation in the trace, in
    root-span-id order. *)

val shards : breakdown list -> int option list
(** The shard stamps present, [None] (unsharded) first, then
    ascending. *)

val mean_by_phase : breakdown list -> (phase * float) list
(** Mean time units per operation spent in each phase. *)

val observe : Metrics.t -> breakdown list -> unit
(** Aggregate per-shard phase histograms ([attr.phase], labels
    [shard]/[phase]) into the registry, in deterministic registration
    order. *)

val breakdown_to_json : breakdown -> Json.t

val report_to_json : breakdown list -> Json.t
(** Machine-readable report: total op count plus per-shard op counts,
    mean wall latency, and mean phase decomposition. *)
