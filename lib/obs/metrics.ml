(** A metrics registry: named counters, gauges, and fixed-bucket
    histograms, each optionally labelled (replica name, operation
    kind, ...).  Requesting the same (name, labels) pair twice returns
    the same instrument, so independently wired components share
    counters naturally.  [dump] lists instruments in registration
    order — deterministic output for deterministic runs. *)

type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (** upper bounds, ascending; a final +inf
                             bucket is implicit *)
  counts : int array;  (** length [Array.length bounds + 1] *)
  mutable sum : float;
  mutable count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type key = { name : string; labels : labels }

type t = {
  tbl : (key, instrument) Hashtbl.t;
  mutable order : key list;  (** reverse registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let compare_label (k1, v1) (k2, v2) =
  let c = String.compare k1 k2 in
  if c <> 0 then c else String.compare v1 v2

let canonical labels = List.sort compare_label labels

let find_or_add t ~name ~labels make classify =
  let key = { name; labels = canonical labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some i -> (
      match classify i with
      | Some v -> v
      | None ->
          invalid_arg
            (Fmt.str "Metrics: %s re-registered as a different instrument kind"
               name))
  | None ->
      let v, i = make () in
      Hashtbl.replace t.tbl key i;
      t.order <- key :: t.order;
      v

let counter t ?(labels = []) name : counter =
  find_or_add t ~name ~labels
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t ?(labels = []) name : gauge =
  find_or_add t ~name ~labels
    (fun () ->
      let g = { g = 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let default_buckets = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 |]

let histogram t ?(labels = []) ?(buckets = default_buckets) name : histogram =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly ascending")
    buckets;
  find_or_add t ~name ~labels
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.0;
          count = 0;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* ---------- operations ---------- *)

let inc ?(by = 1) (c : counter) = c.c <- c.c + by
let value (c : counter) = c.c

let set (g : gauge) x = g.g <- x
let gauge_value (g : gauge) = g.g

let bucket_index (h : histogram) x =
  let n = Array.length h.bounds in
  let rec go i = if i >= n then n else if x <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe (h : histogram) x =
  h.counts.(bucket_index h x) <- h.counts.(bucket_index h x) + 1;
  h.sum <- h.sum +. x;
  h.count <- h.count + 1

let hist_count (h : histogram) = h.count
let hist_sum (h : histogram) = h.sum
let hist_mean (h : histogram) =
  if h.count = 0 then nan else h.sum /. float_of_int h.count

(** (upper bound, count) pairs, the final pair with bound [infinity]. *)
let bucket_counts (h : histogram) : (float * int) list =
  List.init
    (Array.length h.counts)
    (fun i ->
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (bound, h.counts.(i)))

(** Estimate the [q]-quantile from bucket counts: the upper bound of
    the first bucket whose cumulative count reaches [q * total] (the
    conservative histogram-quantile estimate). *)
let quantile (h : histogram) q =
  if h.count = 0 then nan
  else
    let target =
      int_of_float (ceil (q *. float_of_int h.count -. 1e-9)) |> max 1
    in
    let rec go i acc =
      if i >= Array.length h.counts then infinity
      else
        let acc = acc + h.counts.(i) in
        if acc >= target then
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        else go (i + 1) acc
    in
    go 0 0

(* ---------- dump ---------- *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        labels

let dump t : string =
  let buf = Buffer.create 256 in
  let ppf = Fmt.with_buffer buf in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some (Counter c) ->
          Fmt.pf ppf "%s%a %d@." key.name pp_labels key.labels c.c
      | Some (Gauge g) ->
          Fmt.pf ppf "%s%a %g@." key.name pp_labels key.labels g.g
      | Some (Histogram h) ->
          Fmt.pf ppf "%s%a count=%d sum=%g%a@." key.name pp_labels key.labels
            h.count h.sum
            Fmt.(
              list ~sep:nop (fun ppf (b, c) ->
                  if b = infinity then Fmt.pf ppf " le_inf=%d" c
                  else Fmt.pf ppf " le_%g=%d" b c))
            (bucket_counts h))
    (List.rev t.order);
  Fmt.flush ppf ();
  Buffer.contents buf

(** Snapshot every instrument into counter-sample trace events (one
    per counter/gauge, one per histogram count), stamped with the
    tracer's clock. *)
let snapshot t (tr : Trace.t) =
  List.iter
    (fun key ->
      let track =
        match List.assoc_opt "replica" key.labels with
        | Some r -> r
        | None -> (
            match List.assoc_opt "client" key.labels with
            | Some c -> c
            | None -> "metrics")
      in
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some (Counter c) ->
          Trace.counter tr ~cat:"metrics" ~name:key.name ~track
            ~value:(float_of_int c.c) ()
      | Some (Gauge g) ->
          Trace.counter tr ~cat:"metrics" ~name:key.name ~track ~value:g.g ()
      | Some (Histogram h) ->
          Trace.counter tr ~cat:"metrics" ~name:(key.name ^ ".count") ~track
            ~value:(float_of_int h.count) ())
    (List.rev t.order)
