(** A minimal JSON tree, deterministic emitter, and parser — enough
    for the trace exporters and the well-formedness checks; the repo
    depends on no JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, deterministic: identical trees give identical bytes. *)

val emit : Buffer.t -> t -> unit
val number_to_string : float -> string

val parse : string -> (t, string) result

val member : string -> t -> t option
val to_list : t -> t list option
val to_string_opt : t -> string option
val to_float_opt : t -> float option
