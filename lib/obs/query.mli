(** Trace query API: spans from begin/end pairs, filters by
    name/category/track/time window, durations, arg lookups, and a
    balance check. *)

type span = {
  cat : string;
  name : string;
  track : string;
  id : int;
  start : float;
  stop : float;
  args : (string * Trace.arg) list;  (** begin args then end args *)
}

val duration : span -> float

val spans : Trace.event list -> span list
(** Pair B/E by span id, sorted by id (begin order).  Unfinished
    spans are dropped. *)

val filter :
  ?cat:string -> ?name:string -> ?track:string -> ?since:float ->
  ?until:float -> span list -> span list

val filter_events :
  ?cat:string -> ?name:string -> ?track:string -> ?ph:Trace.phase ->
  ?since:float -> ?until:float -> Trace.event list -> Trace.event list

val durations : span list -> float list

val find_arg : (string * Trace.arg) list -> string -> Trace.arg option
val arg_int : (string * Trace.arg) list -> string -> int option
val arg_str : (string * Trace.arg) list -> string -> string option
val arg_bool : (string * Trace.arg) list -> string -> bool option

val events_within : span -> Trace.event list -> Trace.event list
(** Instants inside the span's time window on the span's track. *)

val check_balanced : Trace.event list -> (unit, string) result
(** Every E pairs with a preceding B, no B left open. *)
