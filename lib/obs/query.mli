(** Trace query API: spans from begin/end pairs, filters by
    name/category/track/time window, durations, arg lookups, and a
    balance check. *)

type span = {
  cat : string;
  name : string;
  track : string;
  id : int;
  start : float;
  stop : float;
  args : (string * Trace.arg) list;  (** begin args then end args *)
}

val duration : span -> float

val spans : Trace.event list -> span list
(** Pair B/E by span id, sorted by id (begin order).  Unfinished
    spans are dropped. *)

val filter :
  ?cat:string -> ?name:string -> ?track:string -> ?since:float ->
  ?until:float -> span list -> span list

val filter_events :
  ?cat:string -> ?name:string -> ?track:string -> ?ph:Trace.phase ->
  ?since:float -> ?until:float -> Trace.event list -> Trace.event list

val durations : span list -> float list

val find_arg : (string * Trace.arg) list -> string -> Trace.arg option
val arg_int : (string * Trace.arg) list -> string -> int option
val arg_str : (string * Trace.arg) list -> string -> string option
val arg_bool : (string * Trace.arg) list -> string -> bool option

val events_within : span -> Trace.event list -> Trace.event list
(** Instants inside the span's time window on the span's track. *)

val op_of : span -> string option
(** The span's operation stamp ([("op", Str _)] arg, see {!Ctx}). *)

val parent_of : span -> int option
(** The span's causal-parent stamp ([("parent", Int _)] arg). *)

val is_root : span -> bool
(** Stamped with an operation but no parent: the client-side root span
    of a logical operation. *)

val roots : span list -> span list

val spans_of_op : span list -> op:string -> span list
(** The operation's causal tree, flattened: the root span (if it
    completed) first, stamped children after it in span-id order. *)

val events_of_op : Trace.event list -> op:string -> Trace.event list
(** Every event stamped with the operation — replica query/install
    instants, engine reply/hedge instants, child span begin/ends. *)

val children : span list -> id:int -> span list
(** The spans whose [parent] stamp names span [id]. *)

val check_balanced : Trace.event list -> (unit, string) result
(** Every E pairs with a preceding B, no B left open. *)
