(** Trace query API: reconstruct spans from begin/end event pairs,
    filter by name / category / track / time window, and extract
    durations — the layer tests use to assert on behaviour ("every
    successful read span contains at least a read quorum of reply
    events") and to feed span durations into [Sim.Stats]. *)

type span = {
  cat : string;
  name : string;
  track : string;
  id : int;
  start : float;
  stop : float;
  args : (string * Trace.arg) list;
      (** begin args followed by end args *)
}

let duration s = s.stop -. s.start

(** Pair up B/E events by span id, in begin order.  Unfinished spans
    (B without E — e.g. an operation still in flight when the trace
    was cut, or a begin lost to ring wraparound) are dropped. *)
let spans (events : Trace.event list) : span list =
  let open_spans : (int, Trace.event) Hashtbl.t = Hashtbl.create 64 in
  let finished = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ph with
      | Trace.B -> Hashtbl.replace open_spans e.Trace.id e
      | Trace.E -> (
          match Hashtbl.find_opt open_spans e.Trace.id with
          | None -> ()
          | Some b ->
              Hashtbl.remove open_spans e.Trace.id;
              finished :=
                {
                  cat = b.Trace.cat;
                  name = b.Trace.name;
                  track = b.Trace.track;
                  id = b.Trace.id;
                  start = b.Trace.ts;
                  stop = e.Trace.ts;
                  args = b.Trace.args @ e.Trace.args;
                }
                :: !finished)
      | Trace.I | Trace.C -> ())
    events;
  List.sort (fun a b -> compare a.id b.id) !finished

let matches ?cat ?name ?track ~cat':c ~name':n ~track':t () =
  (match cat with Some x -> String.equal x c | None -> true)
  && (match name with Some x -> String.equal x n | None -> true)
  && match track with Some x -> String.equal x t | None -> true

(** Keep the spans matching every given criterion; [since]/[until]
    select spans whose whole [start, stop] interval intersects the
    window. *)
let filter ?cat ?name ?track ?since ?until (ss : span list) : span list =
  List.filter
    (fun s ->
      matches ?cat ?name ?track ~cat':s.cat ~name':s.name ~track':s.track ()
      && (match since with Some t -> s.stop >= t | None -> true)
      && match until with Some t -> s.start <= t | None -> true)
    ss

(** Keep the events matching every given criterion. *)
let filter_events ?cat ?name ?track ?ph ?since ?until
    (events : Trace.event list) : Trace.event list =
  List.filter
    (fun (e : Trace.event) ->
      matches ?cat ?name ?track ~cat':e.Trace.cat ~name':e.Trace.name
        ~track':e.Trace.track ()
      && (match ph with Some p -> e.Trace.ph = p | None -> true)
      && (match since with Some t -> e.Trace.ts >= t | None -> true)
      && match until with Some t -> e.Trace.ts <= t | None -> true)
    events

let durations (ss : span list) : float list = List.map duration ss

let find_arg (args : (string * Trace.arg) list) key = List.assoc_opt key args

let arg_int args key =
  match find_arg args key with Some (Trace.Int i) -> Some i | _ -> None

let arg_str args key =
  match find_arg args key with Some (Trace.Str s) -> Some s | _ -> None

let arg_bool args key =
  match find_arg args key with Some (Trace.Bool b) -> Some b | _ -> None

(** Instants lying inside the span's [start, stop] window on the same
    track — "what happened during this operation". *)
let events_within (s : span) (events : Trace.event list) : Trace.event list =
  filter_events ~track:s.track ~since:s.start ~until:s.stop events

(* ---------- causal stitching by operation id ---------- *)

let op_of (s : span) = arg_str s.args "op"
let parent_of (s : span) = arg_int s.args "parent"

(** A root span carries an [op] stamp but no causal [parent] — the
    client-side span of a logical operation (see {!Ctx}). *)
let is_root (s : span) = op_of s <> None && parent_of s = None

let roots (ss : span list) : span list = List.filter is_root ss

(** The spans stamped with operation [op], the root (if completed)
    first, children after it in span-id order — the operation's causal
    tree flattened. *)
let spans_of_op (ss : span list) ~op : span list =
  let mine =
    List.filter
      (fun s ->
        match op_of s with Some o -> String.equal o op | None -> false)
      ss
  in
  let root, rest = List.partition is_root mine in
  root @ rest

(** The events stamped with operation [op] (replica query/install
    instants, engine reply/hedge instants, child span begin/ends). *)
let events_of_op (events : Trace.event list) ~op : Trace.event list =
  List.filter
    (fun (e : Trace.event) ->
      match arg_str e.Trace.args "op" with
      | Some o -> String.equal o op
      | None -> false)
    events

(** The direct causal children of span [id] — spans whose [parent]
    stamp names it. *)
let children (ss : span list) ~id : span list =
  List.filter (fun s -> match parent_of s with
      | Some p -> p = id
      | None -> false)
    ss

(** Balanced-span check on raw events: every E has a preceding B with
    the same id, and no B is left unmatched.  The JSONL-level twin of
    [Export.check_chrome]. *)
let check_balanced (events : Trace.event list) : (unit, string) result =
  let open_spans = Hashtbl.create 64 in
  let bad = ref None in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ph with
      | Trace.B -> Hashtbl.replace open_spans e.Trace.id ()
      | Trace.E ->
          if Hashtbl.mem open_spans e.Trace.id then
            Hashtbl.remove open_spans e.Trace.id
          else if !bad = None then
            bad := Some (Fmt.str "span end %d without begin" e.Trace.id)
      | Trace.I | Trace.C -> ())
    events;
  match !bad with
  | Some e -> Error e
  | None ->
      if Hashtbl.length open_spans > 0 then
        Error (Fmt.str "%d unfinished spans" (Hashtbl.length open_spans))
      else Ok ()
