(** Read-write objects (Section 2.3), the fully-specified basic
    objects used to model replicas and non-replicated data items.

    A read-write object [O] over domain [D] with initial value [d]
    has state (active, data): [active] holds the name of the current
    access (initially nil = [None]); [data] holds an element of [D].
    Each access [T] to [O] carries the attributes [kind(T)] in
    {read, write} and, for writes, [data(T)] in [D]; in this
    repository those attributes are read off the access's name (see
    {!Ioa.Txn}).

    On a read access the object returns its data; on a write access
    it returns [nil] and installs the access's data.  The [merge]
    parameter generalizes the install step for the reconfigurable
    replicas of Section 4, whose write accesses may update only the
    data part or only the configuration part of the state; the default
    [merge] replaces the state wholesale, which is exactly the paper's
    Section 2.3 object. *)

open Ioa

type state = { active : Txn.t option; data : Value.t }

(* An access belongs to this object when its final name segment is an
   Access segment naming the object. *)
let is_access_of obj t =
  match Txn.obj_of t with Some o -> String.equal o obj | None -> false

let transition ~merge obj (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when is_access_of obj t -> Some { st with active = Some t }
  | Action.Request_commit (t, v) when is_access_of obj t -> (
      match st.active with
      | Some t' when Txn.equal t t' -> (
          match Txn.kind_of t with
          | Some Txn.Read ->
              if Value.equal v st.data then Some { active = None; data = st.data }
              else None
          | Some Txn.Write ->
              if Value.equal v Value.Nil then
                let written =
                  match Txn.data_of t with Some d -> d | None -> Value.Nil
                in
                Some { active = None; data = merge ~current:st.data written }
              else None
          | None -> None)
      | Some _ | None -> None)
  | Action.Create _ | Action.Request_commit _ | Action.Request_create _
  | Action.Commit _ | Action.Abort _ ->
      None

let enabled (st : state) : Action.t list =
  match st.active with
  | None -> []
  | Some t -> (
      match Txn.kind_of t with
      | Some Txn.Read -> [ Action.Request_commit (t, st.data) ]
      | Some Txn.Write -> [ Action.Request_commit (t, Value.Nil) ]
      | None -> [])

let replace ~current:_ written = written

(** [make ~name ~initial ()] builds the Section 2.3 read-write object.
    [merge] defaults to replacement. *)
let make ~name ~initial ?(merge = replace) () : Component.t =
  Automaton.make
    ~name:(Fmt.str "object:%s" name)
    ~is_input:(fun a ->
      match a with Action.Create t -> is_access_of name t | _ -> false)
    ~is_output:(fun a ->
      match a with
      | Action.Request_commit (t, _) -> is_access_of name t
      | _ -> false)
    ~state:{ active = None; data = initial }
    ~transition:(transition ~merge name) ~enabled
    ~pp:(fun st ->
      Fmt.str "object %s: data=%a active=%a" name Value.pp st.data
        Fmt.(option ~none:(any "-") Txn.pp)
        st.active)
    ()

(** Recompute a read-write object's data after a schedule: the data
    written by the last write access to [name] with a REQUEST_COMMIT
    in the schedule, or [initial] if none.  Used by the invariant
    checkers, which work from schedules alone. *)
let data_after ~name ~initial ?(merge = replace) (sched : Schedule.t) :
    Value.t =
  List.fold_left
    (fun acc a ->
      match a with
      | Action.Request_commit (t, _)
        when is_access_of name t && Txn.kind_of t = Some Txn.Write -> (
          match Txn.data_of t with
          | Some d -> merge ~current:acc d
          | None -> acc)
      | _ -> acc)
    initial sched
