(** The serial scheduler (Section 2.2), transcribed verbatim.

    The serial scheduler is the one fully-specified automaton of a
    serial system.  It runs the transaction tree as a depth-first
    traversal: a transaction is created only if its creation was
    requested, it was not yet created or aborted, and all its created
    siblings have returned; it commits only after all its
    create-requested children have returned; and it may
    nondeterministically abort any transaction whose creation was
    requested but which has not yet been created (the semantics of
    ABORT(T) being that [T] never ran).

    State components and pre/postconditions follow the paper exactly:

    - create_requested (initially [{T0}]), created, aborted, returned:
      sets of transaction names;
    - commit_requested: a set of (transaction, value) pairs.

    Input operations: REQUEST_CREATE(T), REQUEST_COMMIT(T,v) for all T.
    Output operations: CREATE(T), COMMIT(T,v), ABORT(T) for all T. *)

open Ioa

type state = {
  create_requested : Txn.Set.t;
  created : Txn.Set.t;
  commit_requested : (Txn.t * Value.t) list;
  committed : (Txn.t * Value.t) list;
  aborted : Txn.Set.t;
  returned : Txn.Set.t;
}

let initial_state =
  {
    create_requested = Txn.Set.singleton Txn.root;
    created = Txn.Set.empty;
    commit_requested = [];
    committed = [];
    aborted = Txn.Set.empty;
    returned = Txn.Set.empty;
  }

(* created siblings of [t] — members of [created] with the same
   parent, other than [t] itself. *)
let created_siblings st t =
  if Txn.is_root t then Txn.Set.empty
  else Txn.Set.filter (fun u -> Txn.are_siblings t u) st.created

(* children of [t] whose creation has been requested. *)
let create_requested_children st t =
  Txn.Set.filter
    (fun u -> (not (Txn.is_root u)) && Txn.equal (Txn.parent u) t)
    st.create_requested

let subset = Txn.Set.subset

(* Precondition of CREATE(T). *)
let can_create st t =
  Txn.Set.mem t st.create_requested
  && (not (Txn.Set.mem t st.created))
  && (not (Txn.Set.mem t st.aborted))
  && subset (created_siblings st t) st.returned

(* Precondition of ABORT(T).  Identical candidate set to CREATE: the
   serial scheduler only aborts transactions that were never created.
   The root models the environment and may neither commit nor abort. *)
let can_abort st t = (not (Txn.is_root t)) && can_create st t

(* Precondition of COMMIT(T,v). *)
let can_commit st (t, _v) =
  (not (Txn.Set.mem t st.returned))
  && subset (create_requested_children st t) st.returned

let transition (st : state) (a : Action.t) : state option =
  match a with
  | Action.Request_create t ->
      Some { st with create_requested = Txn.Set.add t st.create_requested }
  | Action.Request_commit (t, v) ->
      Some { st with commit_requested = (t, v) :: st.commit_requested }
  | Action.Create t ->
      if can_create st t then Some { st with created = Txn.Set.add t st.created }
      else None
  | Action.Commit (t, v) ->
      if
        List.exists
          (fun (t', v') -> Txn.equal t t' && Value.equal v v')
          st.commit_requested
        && can_commit st (t, v)
      then
        Some
          {
            st with
            committed = (t, v) :: st.committed;
            returned = Txn.Set.add t st.returned;
          }
      else None
  | Action.Abort t ->
      if can_abort st t then
        Some
          {
            st with
            aborted = Txn.Set.add t st.aborted;
            returned = Txn.Set.add t st.returned;
          }
      else None

let enabled (st : state) : Action.t list =
  let creates =
    Txn.Set.fold
      (fun t acc -> if can_create st t then Action.Create t :: acc else acc)
      st.create_requested []
  in
  let aborts =
    Txn.Set.fold
      (fun t acc -> if can_abort st t then Action.Abort t :: acc else acc)
      st.create_requested []
  in
  let commits =
    List.filter_map
      (fun (t, v) ->
        if can_commit st (t, v) then Some (Action.Commit (t, v)) else None)
      st.commit_requested
  in
  creates @ commits @ aborts

let pp_state st =
  Fmt.str "scheduler: created=%d returned=%d aborted=%d pending_commit=%d"
    (Txn.Set.cardinal st.created)
    (Txn.Set.cardinal st.returned)
    (Txn.Set.cardinal st.aborted)
    (List.length st.commit_requested)

let is_input = function
  | Action.Request_create _ | Action.Request_commit _ -> true
  | Action.Create _ | Action.Commit _ | Action.Abort _ -> false

let is_output a = not (is_input a)

(** The serial scheduler as a component. *)
let make () : Component.t =
  Automaton.make ~name:"serial-scheduler" ~is_input ~is_output
    ~state:initial_state ~transition ~enabled ~pp:pp_state ()
