(** Read-write objects (paper Section 2.3): the fully-specified basic
    objects modelling replicas and non-replicated data.  Access
    attributes are read off the access's name; the [merge] parameter
    generalizes the install step for the Section 4 reconfigurable
    replicas (partial updates), defaulting to plain replacement. *)

open Ioa

val replace : current:Value.t -> Value.t -> Value.t
(** The default merge: the written value replaces the state. *)

val make :
  name:string ->
  initial:Value.t ->
  ?merge:(current:Value.t -> Value.t -> Value.t) ->
  unit ->
  Component.t
(** The Section 2.3 read-write object named [name]. *)

val data_after :
  name:string ->
  initial:Value.t ->
  ?merge:(current:Value.t -> Value.t -> Value.t) ->
  Schedule.t ->
  Value.t
(** Recompute the object's data from a schedule: fold the committed
    write accesses.  Used by the invariant checkers, which work from
    schedules alone. *)
