(** Scripted user-transaction automata.

    The paper leaves transaction automata "largely unspecified",
    requiring only that they preserve well-formedness.  For executable
    systems we instantiate them with {e scripts}: a user transaction
    requests the creation of a statically-known list of children
    (nested sub-transactions, logical accesses, or raw object
    accesses), collects their returns, and finally requests to commit
    with a value computed from the collected outcomes.

    Scripts deliberately exercise the model's permissiveness:
    - [ordered = false] children may be requested in any order, the
      driver's PRNG choosing (the serial scheduler still serializes
      their execution);
    - the returned value is an arbitrary function of the children's
      outcomes, so two systems agree on a user transaction's view iff
      they agree on every child return — exactly what Theorem 10's
      condition 2 compares.

    The same script denotes the same automaton in the replicated
    system B and the non-replicated system A: child names are shared
    (see {!Ioa.Txn}), and whether an [Access]-named child is a
    transaction manager or a genuine access is a property of the
    surrounding system, invisible to the parent. *)

open Ioa

type outcome = Committed of Value.t | Aborted

(** One child of a scripted transaction. *)
type node =
  | Access_child of Txn.seg
      (** an [Access]-named child: a logical access (TM in system B,
          access in system A) or a raw access to a basic object *)
  | Sub of string * script  (** a nested user transaction *)

and script = {
  children : node list;
  ordered : bool;
      (** request children strictly in list order, each after the
          previous one's return; otherwise any order *)
  eager : bool;
      (** may request to commit at any time after creation, without
          waiting for (or even requesting) its children — the paper
          explicitly allows this ("the model allows a transaction to
          request to commit without discovering the fate of all
          subtransactions whose creation it has requested") *)
  returns : (Txn.seg * outcome) list -> Value.t;
      (** the REQUEST_COMMIT value, from outcomes in child-list order *)
}

let seg_of_node = function
  | Access_child s -> s
  | Sub (name, _) -> Txn.Seg name

(** Canned return functions. *)
let return_nil (_ : (Txn.seg * outcome) list) = Value.Nil

(** Return the list of child outcomes: committed values verbatim,
    aborts as [Nil].  Makes the commit value a fingerprint of the
    transaction's entire view, strengthening cross-system checks. *)
let return_all (outs : (Txn.seg * outcome) list) =
  Value.List
    (List.map
       (function _, Committed v -> v | _, Aborted -> Value.Nil)
       outs)

type state = {
  self : Txn.t;
  children : Txn.seg list;
  ordered : bool;
  eager : bool;
  no_commit : bool;
  created : bool;
  requested : int list;  (** indices of requested children *)
  outcomes : (int * outcome) list;
  requested_commit : bool;
}

let child_name st i = Txn.child st.self (List.nth st.children i)

let index_of_child st (t : Txn.t) =
  if Txn.is_root t || not (Txn.equal (Txn.parent t) st.self) then None
  else
    match Txn.last_seg t with
    | None -> None
    | Some seg ->
        let rec find i = function
          | [] -> None
          | s :: rest ->
              if Txn.seg_equal s seg then Some i else find (i + 1) rest
        in
        find 0 st.children

let all_returned st =
  List.length st.outcomes = List.length st.children
  && List.length st.requested = List.length st.children

(* May the transaction request to commit now?  Eager transactions may
   do so any time after creation; patient ones wait for every child
   to return. *)
let may_commit st =
  st.created && (not st.requested_commit) && (not st.no_commit)
  && (st.eager || all_returned st)

(* Which child indices may be requested now? *)
let requestable st =
  if (not st.created) || st.requested_commit then []
  else
    let n = List.length st.children in
    let unrequested =
      List.filter
        (fun i -> not (List.mem i st.requested))
        (List.init n (fun i -> i))
    in
    if not st.ordered then unrequested
    else
      (* strictly in order: the smallest unrequested index, and only
         once every smaller index has returned *)
      match unrequested with
      | [] -> []
      | i :: _ ->
          let prior_returned =
            List.for_all
              (fun j -> j >= i || List.mem_assoc j st.outcomes)
              (List.init n (fun j -> j))
          in
          if prior_returned then [ i ] else []

let commit_value ~returns st =
  let outs =
    List.mapi
      (fun i seg ->
        match List.assoc_opt i st.outcomes with
        | Some o -> (seg, o)
        | None -> (seg, Aborted))
      st.children
  in
  returns outs

let transition ~returns (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when Txn.equal t st.self -> Some { st with created = true }
  | Action.Commit (c, v) -> (
      match index_of_child st c with
      | Some i -> Some { st with outcomes = (i, Committed v) :: st.outcomes }
      | None -> None)
  | Action.Abort c -> (
      match index_of_child st c with
      | Some i -> Some { st with outcomes = (i, Aborted) :: st.outcomes }
      | None -> None)
  | Action.Request_create c -> (
      match index_of_child st c with
      | Some i when List.mem i (requestable st) ->
          Some { st with requested = i :: st.requested }
      | Some _ | None -> None)
  | Action.Request_commit (t, v) when Txn.equal t st.self ->
      if may_commit st && Value.equal v (commit_value ~returns st) then
        Some { st with requested_commit = true }
      else None
  | Action.Create _ | Action.Request_commit _ -> None

let enabled ~returns (st : state) : Action.t list =
  let reqs =
    List.map (fun i -> Action.Request_create (child_name st i)) (requestable st)
  in
  let commit =
    if may_commit st then
      [ Action.Request_commit (st.self, commit_value ~returns st) ]
    else []
  in
  reqs @ commit

(** [make ~self script] builds the transaction automaton for the
    script at name [self].  [no_commit] is used for the root
    transaction, which models the environment and never commits. *)
let make ?(no_commit = false) ~(self : Txn.t) (script : script) : Component.t
    =
  let children = List.map seg_of_node script.children in
  let state =
    {
      self;
      children;
      ordered = script.ordered;
      eager = script.eager;
      no_commit;
      created = false;
      requested = [];
      outcomes = [];
      requested_commit = false;
    }
  in
  let is_child t =
    (not (Txn.is_root t))
    && Txn.equal (Txn.parent t) self
    && List.exists
         (fun s ->
           match Txn.last_seg t with
           | Some seg -> Txn.seg_equal s seg
           | None -> false)
         children
  in
  Automaton.make
    ~name:(Fmt.str "txn:%s" (Txn.to_string self))
    ~is_input:(fun a ->
      match a with
      | Action.Create t -> Txn.equal t self
      | Action.Commit (c, _) | Action.Abort c -> is_child c
      | Action.Request_create _ | Action.Request_commit _ -> false)
    ~is_output:(fun a ->
      match a with
      | Action.Request_create c -> is_child c
      | Action.Request_commit (t, _) -> Txn.equal t self
      | Action.Create _ | Action.Commit _ | Action.Abort _ -> false)
    ~state
    ~transition:(transition ~returns:script.returns)
    ~enabled:(enabled ~returns:script.returns)
    ~pp:(fun st ->
      Fmt.str "txn %a: created=%b requested=%d returned=%d done=%b"
        Txn.pp st.self st.created (List.length st.requested)
        (List.length st.outcomes) st.requested_commit)
    ()

(** Build automata for a script tree rooted at [self]: the automaton
    for [self] plus, recursively, automata for all [Sub] descendants.
    [Access_child]ren get no automaton here — the enclosing system
    decides whether they are TMs (system B) or accesses (system A). *)
let rec make_tree ?(no_commit = false) ~(self : Txn.t) (script : script) :
    Component.t list =
  let here = make ~no_commit ~self script in
  let subs =
    List.concat_map
      (function
        | Access_child _ -> []
        | Sub (name, sub) ->
            make_tree ~self:(Txn.child self (Txn.Seg name)) sub)
      script.children
  in
  here :: subs

(** All [Access_child] names in a script tree, with their full names. *)
let rec access_children ~(self : Txn.t) (script : script) :
    Txn.t list =
  List.concat_map
    (function
      | Access_child seg -> [ Txn.child self seg ]
      | Sub (name, sub) ->
          access_children ~self:(Txn.child self (Txn.Seg name)) sub)
    script.children
