(** The serial scheduler (paper Section 2.2), transcribed verbatim:
    runs the transaction tree as a depth-first traversal, may
    nondeterministically abort any transaction not yet created, and
    commits a transaction only after all its create-requested children
    have returned. *)

open Ioa

type state = {
  create_requested : Txn.Set.t;
  created : Txn.Set.t;
  commit_requested : (Txn.t * Value.t) list;
  committed : (Txn.t * Value.t) list;
  aborted : Txn.Set.t;
  returned : Txn.Set.t;
}

val initial_state : state
(** [create_requested = {T0}], everything else empty. *)

val transition : state -> Action.t -> state option
(** The paper's pre/postconditions; [None] = precondition fails. *)

val enabled : state -> Action.t list
(** Currently-enabled CREATE / COMMIT / ABORT operations. *)

val pp_state : state -> string

val is_input : Action.t -> bool
(** REQUEST_CREATE and REQUEST_COMMIT, for all transactions. *)

val is_output : Action.t -> bool
(** CREATE, COMMIT and ABORT, for all transactions. *)

val make : unit -> Component.t
(** The serial scheduler as a component. *)
