(** Scripted user-transaction automata: a transaction requests a
    statically-known list of children (nested subtransactions, logical
    accesses, raw object accesses), collects their returns, and
    requests to commit with a value computed from the outcomes.  The
    same script denotes the same automaton in the replicated system B
    and the non-replicated system A (child names are shared). *)

open Ioa

type outcome = Committed of Value.t | Aborted

(** One child of a scripted transaction. *)
type node =
  | Access_child of Txn.seg
      (** an [Access]-named child: logical access (TM in system B,
          access in system A) or raw access to a basic object *)
  | Sub of string * script  (** a nested user transaction *)

and script = {
  children : node list;
  ordered : bool;
      (** request children strictly in order, each after the previous
          one's return; otherwise any order (sibling concurrency in
          non-serial systems) *)
  eager : bool;
      (** may request to commit at any time after creation, without
          waiting for (or requesting) its children — permitted by the
          model; the serial scheduler still delays the COMMIT until
          every requested child has returned *)
  returns : (Txn.seg * outcome) list -> Value.t;
      (** the REQUEST_COMMIT value, from outcomes in child-list order *)
}

val seg_of_node : node -> Txn.seg

val return_nil : (Txn.seg * outcome) list -> Value.t
(** Always [Nil]. *)

val return_all : (Txn.seg * outcome) list -> Value.t
(** The list of child outcomes (committed values verbatim, aborts as
    [Nil]) — a fingerprint of the transaction's entire view,
    strengthening cross-system comparisons. *)

val make : ?no_commit:bool -> self:Txn.t -> script -> Component.t
(** The transaction automaton for the script at name [self];
    [no_commit] is used for the root, which never commits. *)

val make_tree : ?no_commit:bool -> self:Txn.t -> script -> Component.t list
(** The automaton for [self] plus, recursively, automata for all [Sub]
    descendants ([Access_child]ren get no automaton here). *)

val access_children : self:Txn.t -> script -> Txn.t list
(** All [Access_child] names in a script tree, fully qualified. *)
