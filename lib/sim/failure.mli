(** Failure injection: nodes alternate exponentially-distributed up
    (MTBF) and down (MTTR) periods — the classic model behind per-site
    availability [p = mtbf / (mtbf + mttr)]. *)

type spec = { mtbf : float; mttr : float }

val availability : spec -> float
(** Long-run availability under the spec. *)

val attach :
  sim:Core.t -> net:'msg Net.t -> node:string -> spec:spec -> until:float ->
  unit -> unit
(** Attach a crash/recover process for the node, running until the
    given virtual time. *)
