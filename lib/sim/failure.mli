(** Failure injection: injector handles on node health.  The classic
    stochastic process ({!attach}) alternates exponentially-distributed
    up (MTBF) and down (MTTR) periods — the model behind per-site
    availability [p = mtbf / (mtbf + mttr)] — and injectors can also
    be driven externally ({!create} + {!set_health}), which is how
    scripted nemesis steps flip health.  Either way the handle
    accounts cumulative up/down time. *)

type spec = { mtbf : float; mttr : float }

val availability : spec -> float
(** Long-run availability under the spec. *)

type t
(** A handle on one node's health, with up/down-time accounting. *)

val node : t -> string
val is_up : t -> bool
val transitions : t -> int
(** Health flips so far (externally driven or stochastic). *)

val create : ?up:bool -> node:string -> now:float -> unit -> t
(** An externally driven injector, initially up — pass [~up:false]
    when the node is already down (an injector installed over an
    existing fault must reflect the node's real state, or a scripted
    [Recover] would be an idempotent no-op). *)

val set_health : t -> net:'msg Net.t -> now:float -> up:bool -> unit
(** Drive a health transition from outside: flips the node on the
    network and accounts the elapsed phase.  Idempotent — setting the
    current state only advances the accounting clock. *)

val up_fraction : t -> now:float -> float
(** Fraction of the time since creation the node has been up — for
    long stochastic runs this converges to {!availability}. *)

val attach :
  sim:Core.t -> net:'msg Net.t -> node:string -> spec:spec -> until:float ->
  unit -> t
(** Attach the stochastic crash/recover process for the node, running
    until the given virtual time; returns the injector handle.
    Durations draw from the simulation's PRNG — identical seeds give
    identical schedules. *)
