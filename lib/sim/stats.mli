(** Latency samples with percentile summaries (nearest-rank
    definition, [Float.compare] ordering). *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val of_list : float list -> t
(** E.g. to summarize span durations from [Obs.Query.durations]. *)

val merge : t -> t -> t
(** Combine two sample sets (per-replica stats) into a fresh one. *)

val percentile : t -> float -> float
(** Nearest-rank: the value at rank [ceil (p * n)] of the sorted
    samples. *)

val summarize : t -> summary

val pp_summary : summary Fmt.t
(** Stable format (does not print p95/p999). *)
