(** Latency samples with percentile summaries. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val summarize : t -> summary
val pp_summary : summary Fmt.t
