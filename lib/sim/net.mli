(** A simulated message-passing network: per-message latency from a
    pluggable distribution, probabilistic loss, node crashes, link
    cuts.  No delivery guarantees — the asynchronous environment
    quorum consensus is built for.  Drops are attributed to a reason
    and every send/deliver/drop lands in the simulator's tracer. *)

module Prng = Qc_util.Prng

type latency = Prng.t -> src:string -> dst:string -> float

type drop_reason = Sender_down | Dest_down | Link_cut | Loss | Filtered

val drop_reason_label : drop_reason -> string
val pp_drop_reason : drop_reason Fmt.t

type drop_spec = Drop_all | Drop_first of int | Drop_prob of float
(** What a per-link fault filter does to messages crossing the link:
    swallow everything, swallow the next [n], or flip a per-message
    coin on the simulation PRNG. *)

val drop_spec_label : drop_spec -> string

type 'msg t

val uniform_latency : lo:float -> hi:float -> latency
val lognormal_latency : mu:float -> sigma:float -> latency
(** Heavy-tailed, the realistic default. *)

val create :
  sim:Core.t -> nodes:string list -> ?latency:latency -> ?loss:float -> unit ->
  'msg t

val sim : 'msg t -> Core.t
val tracer : 'msg t -> Obs.Trace.t
(** The simulator's tracer — for layers that only hold the network. *)

val register : 'msg t -> node:string -> (src:string -> 'msg -> unit) -> unit
(** Install the node's message handler (replaces any previous one). *)

val set_loss : 'msg t -> float -> unit
(** Change the loss probability mid-run (e.g. a lossy episode). *)

val is_up : 'msg t -> string -> bool
val crash : 'msg t -> string -> unit
val recover : 'msg t -> string -> unit
val cut_link : 'msg t -> string -> string -> unit
val heal_link : 'msg t -> string -> string -> unit
val link_cut : 'msg t -> string -> string -> bool

val heal_all_links : 'msg t -> unit
(** Remove every link cut (filters are separate — see
    {!clear_link_filters}). *)

val set_link_filter : 'msg t -> src:string -> dst:string -> drop_spec -> unit
(** Install a fault filter on the directed link [src -> dst],
    replacing any previous one (and resetting its drop counter).
    Filters act after cut checks and before the loss coin, so a
    filtered link consumes no loss draws for the messages it
    swallows. *)

val clear_link_filter : 'msg t -> src:string -> dst:string -> unit
val clear_link_filters : 'msg t -> unit

val link_filter : 'msg t -> src:string -> dst:string -> drop_spec option
val link_filter_drops : 'msg t -> src:string -> dst:string -> int
(** Messages swallowed by the link's current filter (0 without one). *)

val filtered_links : 'msg t -> ((string * string) * drop_spec * int) list
(** Every installed filter with its drop counter, sorted by link. *)

val send :
  'msg t -> src:string -> dst:string -> ?payloads:int -> 'msg -> unit
(** Dropped when the sender is down at send time, the destination is
    down at delivery time, the link is cut, or the loss coin fires.
    [payloads] (default 1) is the number of logical requests the
    message carries — batch frames pass their batch size so the
    payload counters keep counting logical work. *)

type counters = {
  sent : int;
  delivered : int;
  payload_sent : int;
      (** logical requests sent — equals [sent] unless batching wraps
          several payloads into one wire message *)
  payload_delivered : int;
  dropped : int;  (** total over every reason *)
  drop_sender_down : int;
  drop_dest_down : int;
  drop_link_cut : int;
  drop_loss : int;
  drop_filtered : int;
}

val counters : 'msg t -> counters

val drop_breakdown : counters -> (drop_reason * int) list
