(** A binary min-heap, the event queue of the discrete-event
    simulator.  Keys are (time, sequence-number) pairs; the sequence
    number breaks ties FIFO so simultaneous events run in scheduling
    order, keeping runs deterministic. *)

type 'a t = {
  mutable data : (float * int * 'a) array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let key (t, s, _) = (t, s)

let less a b = key a < key b

let grow h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap (0.0, 0, (let (_, _, x) = h.data.(0) in x)) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let push h time seq v =
  if Array.length h.data = 0 then h.data <- Array.make 16 (time, seq, v);
  grow h;
  h.data.(h.size) <- (time, seq, v);
  h.size <- h.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less h.data.(i) h.data.(p) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(p);
        h.data.(p) <- tmp;
        up p
      end
    end
  in
  up (h.size - 1)

let pop h : (float * int * 'a) option =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      (* sift down *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest =
          if l < h.size && less h.data.(l) h.data.(i) then l else i
        in
        let smallest =
          if r < h.size && less h.data.(r) h.data.(smallest) then r
          else smallest
        in
        if smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(smallest);
          h.data.(smallest) <- tmp;
          down smallest
        end
      in
      down 0
    end;
    Some top
  end

let peek h = if h.size = 0 then None else Some h.data.(0)
