(** A storage-device model for replicas: every write and every fsync
    costs virtual time, and the device executes one request at a time.
    Requests submitted while the device is busy queue behind
    [busy_until] — exactly the serialization a single disk (or a
    single WAL) imposes — so a replica that fsyncs per install pays the
    full cost serially, while one that groups installs behind a shared
    fsync amortizes it.

    Costs of zero are legal (the device becomes a same-instant
    pass-through, still scheduled on the simulator so completion order
    is preserved).  All time comes from the virtual clock and no PRNG
    is consulted: runs remain deterministic from the seed. *)

type t = {
  sim : Core.t;
  name : string;
  write_cost : float;  (** virtual time units per applied write *)
  fsync_cost : float;  (** virtual time units per fsync *)
  mutable busy_until : float;  (** device frees up at this time *)
  mutable writes : int;
  mutable fsyncs : int;
}

let check_cost what c =
  if (not (Float.is_finite c)) || c < 0.0 then
    invalid_arg (Fmt.str "Sim.Storage.create: %s must be finite and >= 0" what)

let create ~sim ~name ?(write_cost = 0.0) ?(fsync_cost = 0.0) () =
  check_cost "write_cost" write_cost;
  check_cost "fsync_cost" fsync_cost;
  { sim; name; write_cost; fsync_cost; busy_until = 0.0; writes = 0; fsyncs = 0 }

(* Serialize one request through the device: it starts when the device
   frees up and holds it for [cost]; the continuation runs at
   completion, in virtual time. *)
let exec t ~cost k =
  let now = Core.now t.sim in
  let start = Float.max now t.busy_until in
  let finish = start +. cost in
  t.busy_until <- finish;
  Core.schedule t.sim ~delay:(finish -. now) k

let submit t ~writes k =
  if writes < 0 then invalid_arg "Sim.Storage.submit: writes must be >= 0";
  exec t ~cost:(float_of_int writes *. t.write_cost) (fun () ->
      t.writes <- t.writes + writes;
      let tr = Core.tracer t.sim in
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"sim" ~name:"storage.write" ~track:t.name
          ~args:[ ("writes", Obs.Trace.Int writes) ]
          ();
      k ())

let fsync t k =
  exec t ~cost:t.fsync_cost (fun () ->
      t.fsyncs <- t.fsyncs + 1;
      let tr = Core.tracer t.sim in
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"sim" ~name:"storage.fsync" ~track:t.name ();
      k ())

let writes t = t.writes
let fsyncs t = t.fsyncs
let busy_until t = t.busy_until
let write_cost t = t.write_cost
let fsync_cost t = t.fsync_cost
let name t = t.name
