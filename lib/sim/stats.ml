(** Run-time statistics: latency samples with percentile summaries.

    Samples accumulate in a growable float array (no per-sample boxing
    or list cells), sorting uses [Float.compare] (total order, correct
    on every float), and percentiles follow the nearest-rank
    definition: the p-th percentile of n sorted samples is the value
    at rank [ceil (p * n)] (1-based), computed with an epsilon guard
    so binary float noise cannot push the rank off by one. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type t = { mutable data : float array; mutable n : int }

let create () = { data = Array.make 16 0.0; n = 0 }

let add t x =
  if t.n = Array.length t.data then begin
    let grown = Array.make (2 * t.n) 0.0 in
    Array.blit t.data 0 grown 0 t.n;
    t.data <- grown
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1

let count t = t.n

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

(** Combine two sample sets (e.g. per-replica stats) into a fresh one;
    the inputs are not mutated. *)
let merge a b =
  let t = { data = Array.make (max 16 (a.n + b.n)) 0.0; n = a.n + b.n } in
  Array.blit a.data 0 t.data 0 a.n;
  Array.blit b.data 0 t.data a.n b.n;
  t

(* Nearest-rank percentile of a sorted array: rank ceil(p*n), 1-based.
   The 1e-9 slack keeps e.g. 0.29 *. 100. = 28.999999... from landing
   on rank 29 when the exact product is 29. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else if p <= 0.0 then sorted.(0)
  else if p >= 1.0 then sorted.(n - 1)
  else
    let rank = int_of_float (ceil ((p *. float_of_int n) -. 1e-9)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let sorted_samples t =
  let a = Array.sub t.data 0 t.n in
  Array.sort Float.compare a;
  a

(** Nearest-rank percentile of the current samples. *)
let percentile t p = percentile_sorted (sorted_samples t) p

let summarize t : summary =
  let a = sorted_samples t in
  let n = Array.length a in
  if n = 0 then
    {
      count = 0;
      mean = nan;
      p50 = nan;
      p90 = nan;
      p95 = nan;
      p99 = nan;
      p999 = nan;
      max = nan;
    }
  else
    {
      count = n;
      mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
      p50 = percentile_sorted a 0.50;
      p90 = percentile_sorted a 0.90;
      p95 = percentile_sorted a 0.95;
      p99 = percentile_sorted a 0.99;
      p999 = percentile_sorted a 0.999;
      max = a.(n - 1);
    }

(* The output format predates p95/p999 and stays stable for existing
   callers (tables.exe columns, EXPERIMENTS.md). *)
let pp_summary ppf s =
  if s.count = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f" s.count
      s.mean s.p50 s.p90 s.p99 s.max
