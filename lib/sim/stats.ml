(** Run-time statistics: counters and latency samples with percentile
    summaries. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type t = { mutable samples : float list; mutable n : int }

let create () = { samples = []; n = 0 }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1

let count t = t.n

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let summarize t : summary =
  let a = Array.of_list t.samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then { count = 0; mean = nan; p50 = nan; p90 = nan; p99 = nan; max = nan }
  else
    {
      count = n;
      mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
      p50 = percentile a 0.50;
      p90 = percentile a 0.90;
      p99 = percentile a 0.99;
      max = a.(n - 1);
    }

let pp_summary ppf s =
  if s.count = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f" s.count
      s.mean s.p50 s.p90 s.p99 s.max
