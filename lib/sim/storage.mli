(** A deterministic storage-device model: writes and fsyncs cost
    virtual time and execute one at a time, serialized through the
    device.  Submitting while the device is busy queues behind the
    in-flight request — the serialization a single disk or WAL
    imposes — which is what makes fsync amortization measurable: a
    per-install fsync pays [write_cost + fsync_cost] serially per
    install, a group commit pays one fsync for the whole group.
    No PRNG draws; completion times are pure functions of submission
    times and costs. *)

type t

val create :
  sim:Core.t ->
  name:string ->
  ?write_cost:float ->
  ?fsync_cost:float ->
  unit ->
  t
(** A device on [sim]'s virtual clock.  Both costs default to [0.0]
    (a same-instant pass-through).  [name] labels the device's trace
    instants ([storage.write], [storage.fsync]).
    @raise Invalid_argument if a cost is negative or not finite. *)

val submit : t -> writes:int -> (unit -> unit) -> unit
(** Apply [writes] writes (cost [writes * write_cost], serialized
    through the device) and run the continuation at completion.
    @raise Invalid_argument if [writes < 0]. *)

val fsync : t -> (unit -> unit) -> unit
(** One fsync (cost [fsync_cost], serialized through the device); the
    continuation runs once it completes — durability point. *)

val writes : t -> int
(** Writes completed so far. *)

val fsyncs : t -> int
(** Fsyncs completed so far. *)

val busy_until : t -> float
(** Virtual time at which the device frees up. *)

val write_cost : t -> float
val fsync_cost : t -> float
val name : t -> string
