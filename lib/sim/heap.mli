(** A binary min-heap over (time, sequence-number) keys — the event
    queue of the discrete-event simulator.  Sequence numbers break
    ties FIFO, keeping runs deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> int -> 'a -> unit
val pop : 'a t -> (float * int * 'a) option
val peek : 'a t -> (float * int * 'a) option
