(** The discrete-event simulation core: a virtual clock and an event
    queue of callbacks.  Deterministic given the seed — all randomness
    flows through the simulation's own PRNG. *)

module Prng = Qc_util.Prng

type t = {
  mutable now : float;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  rng : Prng.t;
  mutable executed : int;
}

let create ~seed =
  { now = 0.0; queue = Heap.create (); seq = 0; rng = Prng.create seed; executed = 0 }

let now t = t.now
let rng t = t.rng
let executed_events t = t.executed

(** [schedule t ~delay f] runs [f] at [now + delay] (clamped to now). *)
let schedule t ~delay (f : unit -> unit) =
  let time = t.now +. Float.max 0.0 delay in
  t.seq <- t.seq + 1;
  Heap.push t.queue time t.seq f

(** Run events until the queue empties or virtual time passes
    [until]. *)
let run ?(until = infinity) ?(max_events = max_int) t =
  let rec loop () =
    if t.executed >= max_events then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some (time, _, _) when time > until -> t.now <- until
      | Some _ -> (
          match Heap.pop t.queue with
          | Some (time, _, f) ->
              t.now <- time;
              t.executed <- t.executed + 1;
              f ();
              loop ()
          | None -> ())
  in
  loop ()
