(** The discrete-event simulation core: a virtual clock and an event
    queue of callbacks.  Deterministic given the seed — all randomness
    flows through the simulation's own PRNG.

    Every simulator carries an [Obs.Trace.t] whose clock is wired to
    the virtual time; by default it is disabled (zero-cost no-op
    emissions).  Pass an enabled tracer to [create] and every layer
    built on the simulator — network, store, failure injectors — logs
    into the same buffer, on the same clock. *)

module Prng = Qc_util.Prng

type t = {
  mutable now : float;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  rng : Prng.t;
  mutable executed : int;
  mutable tracer : Obs.Trace.t;
}

let create ~seed =
  {
    now = 0.0;
    queue = Heap.create ();
    seq = 0;
    rng = Prng.create seed;
    executed = 0;
    tracer = Obs.Trace.create ~capacity:0 ~enabled:false ();
  }

let now t = t.now
let rng t = t.rng
let executed_events t = t.executed
let tracer t = t.tracer

(** Make [tr] the simulator's trace sink and wire its clock to the
    virtual time. *)
let attach_tracer t tr =
  t.tracer <- tr;
  Obs.Trace.set_clock tr (fun () -> t.now)

(** [schedule t ~delay f] runs [f] at [now + delay] (clamped to now). *)
let schedule t ~delay (f : unit -> unit) =
  let time = t.now +. Float.max 0.0 delay in
  t.seq <- t.seq + 1;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.instant t.tracer ~cat:"sim" ~name:"schedule" ~track:"sim"
      ~args:[ ("seq", Obs.Trace.Int t.seq); ("at", Obs.Trace.Float time) ]
      ();
  Heap.push t.queue time t.seq f

(** Run events until the queue empties or virtual time passes
    [until]. *)
let run ?(until = infinity) ?(max_events = max_int) t =
  let trace_on = Obs.Trace.enabled t.tracer in
  let rec loop () =
    if t.executed >= max_events then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some (time, _, _) when time > until -> t.now <- until
      | Some _ -> (
          match Heap.pop t.queue with
          | Some (time, seq, f) ->
              t.now <- time;
              t.executed <- t.executed + 1;
              if trace_on then
                Obs.Trace.instant t.tracer ~cat:"sim" ~name:"exec" ~track:"sim"
                  ~args:[ ("seq", Obs.Trace.Int seq) ]
                  ();
              f ();
              loop ()
          | None -> ())
  in
  loop ()
