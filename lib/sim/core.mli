(** The discrete-event simulation core: a virtual clock and an event
    queue of callbacks.  Deterministic given the seed. *)

type t

val create : seed:int -> t
val now : t -> float
val rng : t -> Qc_util.Prng.t
val executed_events : t -> int

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback at [now + delay] (clamped to now). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events until the queue empties or virtual time passes
    [until]. *)
