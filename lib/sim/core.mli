(** The discrete-event simulation core: a virtual clock and an event
    queue of callbacks.  Deterministic given the seed. *)

type t

val create : seed:int -> t
(** Starts with a disabled tracer: every emission is a no-op until
    {!attach_tracer}. *)

val now : t -> float
val rng : t -> Qc_util.Prng.t
val executed_events : t -> int

val tracer : t -> Obs.Trace.t
(** The simulator's trace sink, shared by every layer built on it. *)

val attach_tracer : t -> Obs.Trace.t -> unit
(** Install a trace sink and wire its clock to the virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback at [now + delay] (clamped to now). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events until the queue empties or virtual time passes
    [until]. *)
