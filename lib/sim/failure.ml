(** Failure injection: crash/recover processes driving node liveness.

    Each injector is a handle on one node's health.  The classic
    stochastic process ({!attach}) alternates up and down periods with
    exponentially distributed durations (MTBF up, MTTR down), the
    model behind per-site availability [p = mtbf / (mtbf + mttr)].
    Injectors can also be driven externally ({!create} +
    {!set_health}) — this is what the cluster harness's scripted
    [Crash]/[Recover] steps use — and either way they account
    cumulative up/down time, so tests can check the realized
    up-fraction against the analytic availability. *)

module Prng = Qc_util.Prng

type spec = { mtbf : float; mttr : float }

(** Long-run availability of a node under [spec]. *)
let availability s = s.mtbf /. (s.mtbf +. s.mttr)

(** A handle on one node's health: current state plus cumulative
    up/down accounting since the injector was created. *)
type t = {
  node : string;
  mutable up : bool;
  mutable up_time : float;
  mutable down_time : float;
  mutable last_change : float;  (** virtual time of the last transition *)
  mutable transitions : int;
}

let node t = t.node
let is_up t = t.up
let transitions t = t.transitions

(** An externally driven injector for [node] with the clock starting
    at [now].  [up] (default true) must reflect the node's real state:
    an injector created over an already-down node with [up = true]
    would make the next [set_health ~up:true] an idempotent no-op. *)
let create ?(up = true) ~node ~now () =
  { node; up; up_time = 0.0; down_time = 0.0; last_change = now;
    transitions = 0 }

let account t ~now =
  let dt = now -. t.last_change in
  if t.up then t.up_time <- t.up_time +. dt
  else t.down_time <- t.down_time +. dt;
  t.last_change <- now

(** Drive a health transition from outside (a scripted nemesis step, a
    REPL command): flips the node on the network and accounts the
    elapsed phase.  Idempotent — setting the current state only
    advances the accounting clock. *)
let set_health t ~(net : 'msg Net.t) ~now ~up =
  account t ~now;
  if up <> t.up then begin
    t.transitions <- t.transitions + 1;
    t.up <- up;
    if up then Net.recover net t.node else Net.crash net t.node
  end

(** Fraction of the time since creation the node has been up (1.0
    before any time has passed). *)
let up_fraction t ~now =
  account t ~now;
  let total = t.up_time +. t.down_time in
  if total <= 0.0 then 1.0 else t.up_time /. total

(** Attach the classic stochastic crash/recover process for [node] to
    the network, running until virtual time [until]; returns the
    injector handle.  Durations draw from the simulation's own PRNG,
    so identical seeds give identical schedules. *)
let attach ~(sim : Core.t) ~(net : 'msg Net.t) ~node ~(spec : spec) ~until () =
  let rng = Core.rng sim in
  let t = create ~node ~now:(Core.now sim) () in
  let rec up_phase () =
    let dt = Prng.exponential rng ~mean:spec.mtbf in
    Core.schedule sim ~delay:dt (fun () ->
        if Core.now sim < until then begin
          set_health t ~net ~now:(Core.now sim) ~up:false;
          down_phase ()
        end)
  and down_phase () =
    let dt = Prng.exponential rng ~mean:spec.mttr in
    Core.schedule sim ~delay:dt (fun () ->
        if Core.now sim < until then begin
          set_health t ~net ~now:(Core.now sim) ~up:true;
          up_phase ()
        end)
  in
  up_phase ();
  t
