(** Failure injection: crash/recover processes driving node liveness.

    Each node alternates up and down periods with exponentially
    distributed durations (MTBF up, MTTR down), the classic model
    behind per-site availability [p = mtbf / (mtbf + mttr)]. *)

module Prng = Qc_util.Prng

type spec = { mtbf : float; mttr : float }

(** Long-run availability of a node under [spec]. *)
let availability s = s.mtbf /. (s.mtbf +. s.mttr)

(** Attach a crash/recover process for [node] to the network.  Runs
    until virtual time [until]. *)
let attach ~(sim : Core.t) ~(net : 'msg Net.t) ~node ~(spec : spec) ~until () =
  let rng = Core.rng sim in
  let rec up_phase () =
    let dt = Prng.exponential rng ~mean:spec.mtbf in
    Core.schedule sim ~delay:dt (fun () ->
        if Core.now sim < until then begin
          Net.crash net node;
          down_phase ()
        end)
  and down_phase () =
    let dt = Prng.exponential rng ~mean:spec.mttr in
    Core.schedule sim ~delay:dt (fun () ->
        if Core.now sim < until then begin
          Net.recover net node;
          up_phase ()
        end)
  in
  up_phase ()
