(** A simulated message-passing network with per-message latency,
    loss, node crashes and link cuts.

    Messages are typed ['msg]; each node registers one handler.
    Delivery rules: a message is dropped when the sender is down at
    send time, the destination is down at delivery time, the link is
    cut, or the loss coin says so — there are no delivery guarantees,
    exactly the asynchronous environment quorum consensus is built
    for. *)

module Prng = Qc_util.Prng

type latency = Prng.t -> src:string -> dst:string -> float

type 'msg t = {
  sim : Core.t;
  latency : latency;
  mutable loss : float;
  handlers : (string, src:string -> 'msg -> unit) Hashtbl.t;
  up : (string, bool) Hashtbl.t;
  cut_links : (string * string, bool) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

(** Uniform latency on [lo, hi]. *)
let uniform_latency ~lo ~hi : latency =
 fun rng ~src:_ ~dst:_ -> lo +. ((hi -. lo) *. Prng.float rng)

(** Log-normal latency (heavy tail, the realistic default). *)
let lognormal_latency ~mu ~sigma : latency =
 fun rng ~src:_ ~dst:_ -> Prng.lognormal rng ~mu ~sigma

let create ~(sim : Core.t) ~nodes ?(latency = uniform_latency ~lo:1.0 ~hi:5.0)
    ?(loss = 0.0) () : 'msg t =
  let t =
    {
      sim;
      latency;
      loss;
      handlers = Hashtbl.create 16;
      up = Hashtbl.create 16;
      cut_links = Hashtbl.create 16;
      sent = 0;
      delivered = 0;
      dropped = 0;
    }
  in
  List.iter (fun n -> Hashtbl.replace t.up n true) nodes;
  t

let register t ~node handler = Hashtbl.replace t.handlers node handler

let is_up t node = Option.value ~default:false (Hashtbl.find_opt t.up node)

let crash t node = Hashtbl.replace t.up node false
let recover t node = Hashtbl.replace t.up node true

let cut_link t a b =
  Hashtbl.replace t.cut_links (a, b) true;
  Hashtbl.replace t.cut_links (b, a) true

let heal_link t a b =
  Hashtbl.remove t.cut_links (a, b);
  Hashtbl.remove t.cut_links (b, a)

let link_cut t a b = Hashtbl.mem t.cut_links (a, b)

(** Send a message; it may or may not arrive. *)
let send t ~src ~dst (msg : 'msg) =
  t.sent <- t.sent + 1;
  let rng = Core.rng t.sim in
  if (not (is_up t src)) || link_cut t src dst || Prng.float rng < t.loss then
    t.dropped <- t.dropped + 1
  else
    let delay = t.latency rng ~src ~dst in
    Core.schedule t.sim ~delay (fun () ->
        if is_up t dst then (
          match Hashtbl.find_opt t.handlers dst with
          | Some h ->
              t.delivered <- t.delivered + 1;
              h ~src msg
          | None -> t.dropped <- t.dropped + 1)
        else t.dropped <- t.dropped + 1)

type counters = { sent : int; delivered : int; dropped : int }

let counters (t : 'msg t) =
  { sent = t.sent; delivered = t.delivered; dropped = t.dropped }
