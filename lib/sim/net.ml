(** A simulated message-passing network with per-message latency,
    loss, node crashes and link cuts.

    Messages are typed ['msg]; each node registers one handler.
    Delivery rules: a message is dropped when the sender is down at
    send time, the destination is down at delivery time, the link is
    cut, or the loss coin says so — there are no delivery guarantees,
    exactly the asynchronous environment quorum consensus is built
    for.  Every drop is attributed to its reason, so nemesis
    experiments can tell partition drops from loss drops, and every
    send/deliver/drop is logged to the simulator's tracer. *)

module Prng = Qc_util.Prng

type latency = Prng.t -> src:string -> dst:string -> float

(** Why a message did not arrive. *)
type drop_reason = Sender_down | Dest_down | Link_cut | Loss | Filtered

let drop_reason_label = function
  | Sender_down -> "sender_down"
  | Dest_down -> "dest_down"
  | Link_cut -> "link_cut"
  | Loss -> "loss"
  | Filtered -> "filtered"

let pp_drop_reason ppf r = Fmt.string ppf (drop_reason_label r)

(** A per-link fault filter: what a directed link does to the messages
    crossing it.  [Drop_all] swallows everything (a one-way cut),
    [Drop_first n] swallows the next [n] messages then passes the rest
    (the classic "lose the prepare, deliver the retry" scenario), and
    [Drop_prob p] flips a per-message coin on the simulation's PRNG. *)
type drop_spec = Drop_all | Drop_first of int | Drop_prob of float

let drop_spec_label = function
  | Drop_all -> "all"
  | Drop_first n -> Fmt.str "first:%d" n
  | Drop_prob p -> Fmt.str "prob:%.12g" p

type link_filter = {
  spec : drop_spec;
  mutable remaining : int;  (** for [Drop_first]: drops left to spend *)
  mutable filter_dropped : int;  (** messages this filter swallowed *)
}

type 'msg t = {
  sim : Core.t;
  latency : latency;
  mutable loss : float;
  handlers : (string, src:string -> 'msg -> unit) Hashtbl.t;
  up : (string, bool) Hashtbl.t;
  cut_links : (string * string, bool) Hashtbl.t;
  filters : (string * string, link_filter) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable payload_sent : int;
  mutable payload_delivered : int;
  mutable drop_sender_down : int;
  mutable drop_dest_down : int;
  mutable drop_link_cut : int;
  mutable drop_loss : int;
  mutable drop_filtered : int;
}

(** Uniform latency on [lo, hi]. *)
let uniform_latency ~lo ~hi : latency =
 fun rng ~src:_ ~dst:_ -> lo +. ((hi -. lo) *. Prng.float rng)

(** Log-normal latency (heavy tail, the realistic default). *)
let lognormal_latency ~mu ~sigma : latency =
 fun rng ~src:_ ~dst:_ -> Prng.lognormal rng ~mu ~sigma

let create ~(sim : Core.t) ~nodes ?(latency = uniform_latency ~lo:1.0 ~hi:5.0)
    ?(loss = 0.0) () : 'msg t =
  let t =
    {
      sim;
      latency;
      loss;
      handlers = Hashtbl.create 16;
      up = Hashtbl.create 16;
      cut_links = Hashtbl.create 16;
      filters = Hashtbl.create 16;
      sent = 0;
      delivered = 0;
      payload_sent = 0;
      payload_delivered = 0;
      drop_sender_down = 0;
      drop_dest_down = 0;
      drop_link_cut = 0;
      drop_loss = 0;
      drop_filtered = 0;
    }
  in
  List.iter (fun n -> Hashtbl.replace t.up n true) nodes;
  t

let sim t = t.sim
let tracer t = Core.tracer t.sim

let register t ~node handler = Hashtbl.replace t.handlers node handler
let set_loss t p = t.loss <- p

let is_up t node = Option.value ~default:false (Hashtbl.find_opt t.up node)

let crash t node =
  Hashtbl.replace t.up node false;
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"net" ~name:"crash" ~track:node ()

let recover t node =
  Hashtbl.replace t.up node true;
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"net" ~name:"recover" ~track:node ()

let cut_link t a b =
  Hashtbl.replace t.cut_links (a, b) true;
  Hashtbl.replace t.cut_links (b, a) true

let heal_link t a b =
  Hashtbl.remove t.cut_links (a, b);
  Hashtbl.remove t.cut_links (b, a)

let link_cut t a b = Hashtbl.mem t.cut_links (a, b)

let heal_all_links t = Hashtbl.reset t.cut_links

(** Install a fault filter on the directed link [src -> dst],
    replacing any previous one (and its drop counter). *)
let set_link_filter t ~src ~dst spec =
  let remaining = match spec with Drop_first n -> n | _ -> 0 in
  Hashtbl.replace t.filters (src, dst) { spec; remaining; filter_dropped = 0 }

let clear_link_filter t ~src ~dst = Hashtbl.remove t.filters (src, dst)
let clear_link_filters t = Hashtbl.reset t.filters

let link_filter t ~src ~dst =
  Option.map (fun f -> f.spec) (Hashtbl.find_opt t.filters (src, dst))

let link_filter_drops t ~src ~dst =
  match Hashtbl.find_opt t.filters (src, dst) with
  | Some f -> f.filter_dropped
  | None -> 0

(* canonical order at the Hashtbl boundary, like the rest of the repo *)
let filtered_links t =
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun (src, dst) f acc -> ((src, dst), f.spec, f.filter_dropped) :: acc)
    t.filters []
  |> List.sort (fun ((a, b), _, _) ((c, d), _, _) ->
         match String.compare a c with 0 -> String.compare b d | n -> n)

(* Does the filter swallow this message?  [Drop_prob] draws from the
   simulation PRNG — one extra draw per filtered-link message, none on
   unfiltered links, so filter-free runs keep their historical PRNG
   stream. *)
let filter_fires t f =
  match f.spec with
  | Drop_all -> true
  | Drop_first _ ->
      if f.remaining > 0 then begin
        f.remaining <- f.remaining - 1;
        true
      end
      else false
  | Drop_prob p -> Prng.float (Core.rng t.sim) < p

let drop t ~src ~dst reason =
  (match reason with
  | Sender_down -> t.drop_sender_down <- t.drop_sender_down + 1
  | Dest_down -> t.drop_dest_down <- t.drop_dest_down + 1
  | Link_cut -> t.drop_link_cut <- t.drop_link_cut + 1
  | Loss -> t.drop_loss <- t.drop_loss + 1
  | Filtered -> t.drop_filtered <- t.drop_filtered + 1);
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"net" ~name:"drop" ~track:dst
      ~args:
        [
          ("src", Obs.Trace.Str src);
          ("dst", Obs.Trace.Str dst);
          ("reason", Obs.Trace.Str (drop_reason_label reason));
        ]
      ()

(** Send a message; it may or may not arrive.  [payloads] is the
    number of logical requests the message carries — 1 for ordinary
    messages, the batch size for batch frames — so experiments can
    report wire messages and logical payloads separately. *)
let send t ~src ~dst ?(payloads = 1) (msg : 'msg) =
  t.sent <- t.sent + 1;
  t.payload_sent <- t.payload_sent + payloads;
  let rng = Core.rng t.sim in
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"net" ~name:"send" ~track:src
      ~args:[ ("dst", Obs.Trace.Str dst) ]
      ();
  (* reason checks in the original short-circuit order, so the PRNG
     draws exactly when it always did; the link filter slots in after
     the cut check and touches the PRNG only on filtered links *)
  if not (is_up t src) then drop t ~src ~dst Sender_down
  else if link_cut t src dst then drop t ~src ~dst Link_cut
  else if
    match Hashtbl.find_opt t.filters (src, dst) with
    | Some f when filter_fires t f ->
        f.filter_dropped <- f.filter_dropped + 1;
        true
    | _ -> false
  then drop t ~src ~dst Filtered
  else if Prng.float rng < t.loss then drop t ~src ~dst Loss
  else
    let delay = t.latency rng ~src ~dst in
    Core.schedule t.sim ~delay (fun () ->
        if is_up t dst then (
          match Hashtbl.find_opt t.handlers dst with
          | Some h ->
              t.delivered <- t.delivered + 1;
              t.payload_delivered <- t.payload_delivered + payloads;
              if Obs.Trace.enabled tr then
                Obs.Trace.instant tr ~cat:"net" ~name:"deliver" ~track:dst
                  ~args:
                    [
                      ("src", Obs.Trace.Str src);
                      ("latency", Obs.Trace.Float delay);
                    ]
                  ();
              h ~src msg
          | None -> drop t ~src ~dst Dest_down)
        else drop t ~src ~dst Dest_down)

type counters = {
  sent : int;
  delivered : int;
  payload_sent : int;
      (** logical requests sent — equals [sent] unless batching wraps
          several payloads into one wire message *)
  payload_delivered : int;
  dropped : int;  (** total over every reason *)
  drop_sender_down : int;
  drop_dest_down : int;
  drop_link_cut : int;
  drop_loss : int;
  drop_filtered : int;
}

let counters (t : 'msg t) =
  {
    sent = t.sent;
    delivered = t.delivered;
    payload_sent = t.payload_sent;
    payload_delivered = t.payload_delivered;
    dropped =
      t.drop_sender_down + t.drop_dest_down + t.drop_link_cut + t.drop_loss
      + t.drop_filtered;
    drop_sender_down = t.drop_sender_down;
    drop_dest_down = t.drop_dest_down;
    drop_link_cut = t.drop_link_cut;
    drop_loss = t.drop_loss;
    drop_filtered = t.drop_filtered;
  }

let drop_breakdown (c : counters) =
  [
    (Sender_down, c.drop_sender_down);
    (Dest_down, c.drop_dest_down);
    (Link_cut, c.drop_link_cut);
    (Loss, c.drop_loss);
    (Filtered, c.drop_filtered);
  ]
