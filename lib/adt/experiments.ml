(** E13 (extension): General Quorum Consensus for ADTs vs. read-write
    quorum replication.

    The headline: a counter increment under the event-log scheme is a
    {e blind} mutator — one quorum round — while the same increment on
    a read-write-replicated counter costs a version-discovery round
    plus an install round (and the read round makes concurrent
    increments lose updates unless a concurrency-control layer
    serializes them; the event log is union-merged, so increments
    commute).  We measure both latency and the lost-update effect. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

type row = {
  scheme : string;
  mutation_mean : float;
  mutation_p90 : float;
  observe_mean : float;
  final_total : int;  (** counter value read at the end *)
  expected_total : int;  (** completed increments *)
  rounds_per_mutation : float;
}

let n_replicas = 5
let n_increments = 300

(* -------- ADT scheme: blind increments on the event log -------- *)

let run_adt ~seed : row =
  let sim = Core.create ~seed in
  let replica_names = List.init n_replicas (fun i -> Fmt.str "r%d" i) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0" ])
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Replica.create ~name) replica_names in
  List.iter (fun r -> Replica.attach r ~net) replicas;
  let client =
    Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority n_replicas)
      ()
  in
  Client.attach client;
  let mut = Sim.Stats.create () and obs = Sim.Stats.create () in
  let completed = ref 0 and final_total = ref 0 in
  let rng = Prng.create (seed lxor 0xadc) in
  let rec inc n =
    if n > 0 then
      Core.schedule sim ~delay:(Prng.exponential rng ~mean:3.0) (fun () ->
          Client.execute client ~key:"counter" ~op:(Spec.Inc 1)
            ~on_done:(fun ~ok ~result:_ ~latency ->
              if ok then begin
                incr completed;
                Sim.Stats.add mut latency
              end;
              inc (n - 1)))
    else
      Client.execute client ~key:"counter" ~op:Spec.Total
        ~on_done:(fun ~ok ~result ~latency ->
          if ok then begin
            Sim.Stats.add obs latency;
            match result with Spec.Value v -> final_total := v | _ -> ()
          end)
  in
  inc n_increments;
  Core.run sim;
  let m = Sim.Stats.summarize mut and o = Sim.Stats.summarize obs in
  {
    scheme = "ADT event log (blind inc)";
    mutation_mean = m.Sim.Stats.mean;
    mutation_p90 = m.Sim.Stats.p90;
    observe_mean = o.Sim.Stats.mean;
    final_total = !final_total;
    expected_total = !completed;
    rounds_per_mutation = 1.0;
  }

(* -------- read-write scheme: inc = read version+value, install -------- *)

let run_rw ~seed : row =
  let sim = Core.create ~seed in
  let replica_names = List.init n_replicas (fun i -> Fmt.str "r%d" i) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0" ])
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Store.Replica.create ~name ()) replica_names in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let client =
    Store.Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:(Store.Strategy.majority n_replicas)
      ()
  in
  Store.Client.attach client;
  let mut = Sim.Stats.create () and obs = Sim.Stats.create () in
  let completed = ref 0 and final_total = ref 0 in
  let rng = Prng.create (seed lxor 0xadc) in
  (* an increment = read the counter, write value+1: two quorum rounds
     on the read-write store (and inherently racy without locks — here
     the single sequential client keeps it safe, matching the ADT run) *)
  let rec inc n =
    if n > 0 then
      Core.schedule sim ~delay:(Prng.exponential rng ~mean:3.0) (fun () ->
          Store.Client.read client ~key:"counter"
            ~on_done:(fun ~ok ~vn:_ ~value ~latency:_ ->
              if not ok then inc (n - 1)
              else
                Store.Client.write client ~key:"counter" ~value:(value + 1)
                  ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency ->
                    if ok then begin
                      incr completed;
                      Sim.Stats.add mut latency
                    end;
                    inc (n - 1))))
    else
      Store.Client.read client ~key:"counter"
        ~on_done:(fun ~ok ~vn:_ ~value ~latency ->
          if ok then begin
            Sim.Stats.add obs latency;
            final_total := value
          end)
  in
  inc n_increments;
  Core.run sim;
  let m = Sim.Stats.summarize mut and o = Sim.Stats.summarize obs in
  {
    scheme = "read-write quorums (read+write)";
    mutation_mean = m.Sim.Stats.mean;
    mutation_p90 = m.Sim.Stats.p90;
    observe_mean = o.Sim.Stats.mean;
    final_total = !final_total;
    expected_total = !completed;
    rounds_per_mutation = 3.0;
    (* explicit read + the write's query and install rounds *)
  }

let counter_comparison ?(seed = 77) () : row list =
  [ run_adt ~seed; run_rw ~seed ]

(* -------- lost updates: two concurrent blind incrementers -------- *)

type race_row = { scheme : string; issued : int; final : int; lost : int }

let race_adt ~seed : race_row =
  let sim = Core.create ~seed in
  let replica_names = List.init n_replicas (fun i -> Fmt.str "r%d" i) in
  let clients = [ "c0"; "c1" ] in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ clients)
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Replica.create ~name) replica_names in
  List.iter (fun r -> Replica.attach r ~net) replicas;
  let completed = ref 0 in
  let final = ref 0 in
  let per_client = 100 in
  let mk name =
    let c =
      Client.create ~name ~sim ~net
        ~replicas:(Array.of_list replica_names)
        ~strategy:(Store.Strategy.majority n_replicas)
        ()
    in
    Client.attach c;
    c
  in
  let cs = List.map mk clients in
  let rng = Prng.create (seed lxor 0x7ace) in
  List.iter
    (fun c ->
      let rec inc n =
        if n > 0 then
          Core.schedule sim ~delay:(Prng.exponential rng ~mean:2.0) (fun () ->
              Client.execute c ~key:"counter" ~op:(Spec.Inc 1)
                ~on_done:(fun ~ok ~result:_ ~latency:_ ->
                  if ok then incr completed;
                  inc (n - 1)))
      in
      inc per_client)
    cs;
  Core.run sim;
  (* final observation from a fresh client *)
  let sim2_done = ref false in
  Client.execute (List.hd cs) ~key:"counter" ~op:Spec.Total
    ~on_done:(fun ~ok ~result ~latency:_ ->
      if ok then
        match result with
        | Spec.Value v ->
            final := v;
            sim2_done := true
        | _ -> ());
  Core.run sim;
  ignore !sim2_done;
  { scheme = "ADT event log"; issued = !completed; final = !final;
    lost = !completed - !final }

let race_rw ~seed : race_row =
  let sim = Core.create ~seed in
  let replica_names = List.init n_replicas (fun i -> Fmt.str "r%d" i) in
  let clients = [ "c0"; "c1" ] in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ clients)
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Store.Replica.create ~name ()) replica_names in
  List.iter (fun r -> Store.Replica.attach r ~net) replicas;
  let completed = ref 0 and final = ref 0 in
  let per_client = 100 in
  let mk name =
    let c =
      Store.Client.create ~name ~sim ~net
        ~replicas:(Array.of_list replica_names)
        ~strategy:(Store.Strategy.majority n_replicas)
        ()
    in
    Store.Client.attach c;
    c
  in
  let cs = List.map mk clients in
  let rng = Prng.create (seed lxor 0x7ace) in
  List.iter
    (fun c ->
      let rec inc n =
        if n > 0 then
          Core.schedule sim ~delay:(Prng.exponential rng ~mean:2.0) (fun () ->
              Store.Client.read c ~key:"counter"
                ~on_done:(fun ~ok ~vn:_ ~value ~latency:_ ->
                  if not ok then inc (n - 1)
                  else
                    Store.Client.write c ~key:"counter" ~value:(value + 1)
                      ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
                        if ok then incr completed;
                        inc (n - 1))))
      in
      inc per_client)
    cs;
  Core.run sim;
  Store.Client.read (List.hd cs) ~key:"counter"
    ~on_done:(fun ~ok ~vn:_ ~value ~latency:_ -> if ok then final := value);
  Core.run sim;
  {
    scheme = "read-write quorums";
    issued = !completed;
    final = !final;
    lost = !completed - !final;
  }

(** Two clients racing 100 increments each: the event log loses
    nothing (increments commute under union); read-modify-write on the
    read-write store loses the interleaved updates. *)
let race_comparison ?(seed = 99) () : race_row list =
  [ race_adt ~seed; race_rw ~seed ]
