(** The General Quorum Consensus client: an optional initial round
    (merge logs from a read quorum — skipped entirely by blind
    mutators such as counter increments), sequential replay to compute
    the result, and for mutators a final round pushing the appended
    log to a write quorum.  Runs on {!Rpc.Engine} for request
    mechanics, retries and hedging. *)

val needs_initial : Spec.op -> bool

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Replica.msg Sim.Net.t ->
  replicas:string array ->
  strategy:Store.Strategy.t ->
  ?timeout:float ->
  ?policy:Rpc.Policy.t ->
  unit ->
  t

val set_policy : t -> Rpc.Policy.t -> unit
(** Swap the retry/hedge policy for operations issued after the call.
    @raise Invalid_argument on an invalid policy. *)

val policy : t -> Rpc.Policy.t

val attach : t -> unit

val execute :
  t ->
  key:string ->
  op:Spec.op ->
  on_done:(ok:bool -> result:Spec.result -> latency:float -> unit) ->
  unit
(** Execute an operation; [on_done] receives success, the result
    (meaningful for observers), and the latency. *)
