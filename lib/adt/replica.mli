(** Event-log replicas: per object, a grow-only set of timestamped
    operations; [Pull] returns it, [Push] union-merges into it.
    Merging is idempotent and commutative, so replicas converge to the
    union of what they were sent. *)

type entry = { ts : Timestamp.t; op : Spec.op }

type msg =
  | Pull of { rid : int; key : string }
  | Entries of { rid : int; key : string; entries : entry list }
  | Push of { rid : int; key : string; entries : entry list }
  | Ack of { rid : int; key : string }

val rid : msg -> int

type t

val create : name:string -> t
val log : t -> string -> entry list

val merge : entry list -> entry list -> entry list
(** Union of two timestamp-sorted entry lists. *)

val attach : t -> net:msg Sim.Net.t -> unit
