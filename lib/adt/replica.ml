(** Event-log replicas for General Quorum Consensus.

    A replica stores, per object, a {e set} of timestamped log
    entries.  Messages:
    - [Pull]: send back your entries (the initial/read round);
    - [Push]: merge these entries into your set and acknowledge (the
      final/write round).

    Merging is set union keyed by timestamp (timestamps are unique by
    construction: client id + sequence number), so pushes are
    idempotent and replicas converge to the union of what they were
    sent — the standard grow-only-log construction Herlihy's scheme
    rests on. *)

type entry = { ts : Timestamp.t; op : Spec.op }

type msg =
  | Pull of { rid : int; key : string }
  | Entries of { rid : int; key : string; entries : entry list }
  | Push of { rid : int; key : string; entries : entry list }
  | Ack of { rid : int; key : string }

let rid = function
  | Pull { rid; _ } | Entries { rid; _ } | Push { rid; _ } | Ack { rid; _ } ->
      rid

type t = {
  name : string;
  logs : (string, entry list) Hashtbl.t;  (** ts-sorted, per key *)
  mutable pulls : int;
  mutable pushes : int;
}

let create ~name = { name; logs = Hashtbl.create 16; pulls = 0; pushes = 0 }

let log t key = Option.value ~default:[] (Hashtbl.find_opt t.logs key)

(** Union-merge two ts-sorted entry lists. *)
let merge (a : entry list) (b : entry list) : entry list =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
        let c = Timestamp.compare x.ts y.ts in
        if c < 0 then go a' b (x :: acc)
        else if c > 0 then go a b' (y :: acc)
        else go a' b' (x :: acc)
  in
  go a b []

let attach t ~(net : msg Sim.Net.t) =
  Sim.Net.register net ~node:t.name (fun ~src m ->
      match m with
      | Pull { rid; key } ->
          t.pulls <- t.pulls + 1;
          Sim.Net.send net ~src:t.name ~dst:src
            (Entries { rid; key; entries = log t key })
      | Push { rid; key; entries } ->
          t.pushes <- t.pushes + 1;
          Hashtbl.replace t.logs key (merge (log t key) entries);
          Sim.Net.send net ~src:t.name ~dst:src (Ack { rid; key })
      | Entries _ | Ack _ -> ())
