(** Abstract data type specifications for General Quorum Consensus
    (Herlihy [12], named by the paper's Section 5 as the natural next
    target for the nesting treatment).

    An ADT is a sequential specification: a state, operations, and a
    transition function.  Replication keeps a log of timestamped
    operations; the state at any point is the fold of the log in
    timestamp order.  The payoff over value/version replication is
    that operations declare {e how much} of the log they need:

    - a {e mutator} that returns nothing (counter increment, queue
      enqueue, blind append) needs {b no read round at all} — it
      appends its entry to a final quorum;
    - an {e observer} (read, total, dequeue-front) reads an initial
      quorum that intersects every mutator's final quorum, so the
      merged log contains every completed operation.

    Three classic instances are provided: a counter, a last-writer
    register, and a FIFO queue. *)

type op =
  | Inc of int  (** counter: add n *)
  | Total  (** counter: observe the total *)
  | Set of int  (** register: write *)
  | Get  (** register: read *)
  | Enq of int  (** queue: enqueue *)
  | Deq  (** queue: dequeue the front *)

type result = Unit | Value of int | Empty

let pp_op ppf = function
  | Inc n -> Fmt.pf ppf "inc(%d)" n
  | Total -> Fmt.string ppf "total"
  | Set n -> Fmt.pf ppf "set(%d)" n
  | Get -> Fmt.string ppf "get"
  | Enq n -> Fmt.pf ppf "enq(%d)" n
  | Deq -> Fmt.string ppf "deq"

let pp_result ppf = function
  | Unit -> Fmt.string ppf "()"
  | Value n -> Fmt.int ppf n
  | Empty -> Fmt.string ppf "empty"

(** Does the operation modify the abstract state (and therefore need
    to be logged), and does it observe it (and therefore need an
    initial read round)?

    Note [Deq] both observes and mutates: it must read the log to know
    the front, and be logged so later dequeues skip it. *)
let mutates = function
  | Inc _ | Set _ | Enq _ | Deq -> true
  | Total | Get -> false

let observes = function
  | Total | Get | Deq -> true
  | Inc _ | Set _ | Enq _ -> false

(** {1 Sequential semantics: fold a timestamp-ordered operation list} *)

type state = { total : int; reg : int option; queue : int list }

let initial = { total = 0; reg = None; queue = [] }

(** [apply st op] returns the next state and the operation's result.
    Queue semantics: [Deq] removes the oldest not-yet-dequeued
    element. *)
let apply (st : state) (op : op) : state * result =
  match op with
  | Inc n -> ({ st with total = st.total + n }, Unit)
  | Total -> (st, Value st.total)
  | Set n -> ({ st with reg = Some n }, Unit)
  | Get -> (st, (match st.reg with Some n -> Value n | None -> Empty))
  | Enq n -> ({ st with queue = st.queue @ [ n ] }, Unit)
  | Deq -> (
      match st.queue with
      | [] -> (st, Empty)
      | x :: rest -> ({ st with queue = rest }, Value x))

(** Replay a log (already sorted by timestamp) from the initial
    state; returns the final state. *)
let replay (ops : op list) : state =
  List.fold_left (fun st op -> fst (apply st op)) initial ops
