(** Totally ordered Lamport-style logical timestamps for replicated
    event logs: (logical time, client id, per-client sequence number).
    Clients advance their clocks past everything observed in merged
    logs, so operations beginning after another completed get larger
    timestamps. *)

type t = { time : int; client : string; seq : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

type clock

val clock : id:string -> clock
val observe : clock -> t -> unit
(** Advance past an observed timestamp (on log merge). *)

val fresh : clock -> t
