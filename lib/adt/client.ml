(** The General Quorum Consensus client.

    Executing operation [op] on object [key]:

    1. {e initial round} (only if the operation needs one): Pull from
       all replicas, merge the returned logs, until the replies cover
       the read quorum.  Blind mutators — counter increments,
       enqueues — skip this round entirely; that is the scheme's
       advantage over value/version replication, where every write
       pays a version-discovery round.
    2. {e compute}: sort the merged log by timestamp, replay the
       sequential specification, apply [op] for its result.
    3. {e final round} (mutators only): append the new entry (with a
       timestamp past everything observed) and Push to all replicas
       until acknowledgements cover the write quorum.

    Consistency rests on the usual intersection: an observer's initial
    quorum meets every completed mutator's final quorum, so the merged
    log contains every completed operation.  Request mechanics (rids,
    pending table, deadline, retries, hedging) come from
    {!Rpc.Engine}. *)

module Core = Sim.Core
module Net = Sim.Net
module Strategy = Store.Strategy
module Engine = Rpc.Engine

(* Which rounds does an operation need?  [Set] is a mutator that needs
   the initial round anyway: last-writer-wins requires its timestamp
   to dominate previously completed sets. *)
let needs_initial (op : Spec.op) =
  Spec.observes op || match op with Spec.Set _ -> true | _ -> false

type phase = Initial | Final

type pending = {
  key : string;
  op : Spec.op;
  mutable phase : phase;
  mutable mask : int;
  mutable merged : Replica.entry list;
  mutable result : Spec.result;
  eop : Engine.op;
  on_done : ok:bool -> result:Spec.result -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Replica.msg Net.t;
  eng : Replica.msg Engine.t;
  replicas : string array;
  strategy : Strategy.t;
  clock : Timestamp.clock;
  timeout : float;
}

let create ~name ~sim ~net ~replicas ~strategy ?(timeout = 100.0) ?policy () =
  {
    name;
    sim;
    net;
    eng =
      Engine.create ~name ~sim ~net ~rid_of:Replica.rid ?policy ~cat:"adt" ();
    replicas;
    strategy;
    clock = Timestamp.clock ~id:name;
    timeout;
  }

let set_policy t p = Engine.set_policy t.eng p
let policy t = Engine.policy t.eng

let replica_index t name =
  let rec go i =
    if i >= Array.length t.replicas then None
    else if String.equal t.replicas.(i) name then Some i
    else go (i + 1)
  in
  go 0

let finish t (p : pending) ~ok =
  if Engine.op_live p.eop then begin
    Engine.finish_op t.eng p.eop;
    p.on_done ~ok ~result:p.result
      ~latency:(Core.now t.sim -. Engine.op_started p.eop)
  end

let gather t (p : pending) ~quorum_ok ~make ~on_quorum =
  ignore
    (Engine.call t.eng ~op:p.eop ~targets:(Array.to_list t.replicas) ~make
       ~on_reply:(fun ~src msg ->
         match (msg, replica_index t src) with
         | Replica.Entries { key; entries; _ }, Some i
           when String.equal key p.key && p.phase = Initial ->
             p.mask <- p.mask lor (1 lsl i);
             p.merged <- Replica.merge p.merged entries;
             if quorum_ok p.mask then begin
               on_quorum ();
               Engine.Done
             end
             else Engine.Continue
         | Replica.Ack { key; _ }, Some i
           when String.equal key p.key && p.phase = Final ->
             p.mask <- p.mask lor (1 lsl i);
             if quorum_ok p.mask then begin
               on_quorum ();
               Engine.Done
             end
             else Engine.Continue
         | _ -> Engine.Continue)
       ())

(* Compute the result and, for mutators, start the final round. *)
let compute_and_finalize t (p : pending) =
  List.iter (fun (e : Replica.entry) -> Timestamp.observe t.clock e.ts) p.merged;
  let state = Spec.replay (List.map (fun (e : Replica.entry) -> e.op) p.merged) in
  let _, result = Spec.apply state p.op in
  p.result <- result;
  if Spec.mutates p.op then begin
    let entry = { Replica.ts = Timestamp.fresh t.clock; op = p.op } in
    p.phase <- Final;
    p.mask <- 0;
    p.merged <- Replica.merge p.merged [ entry ];
    let entries = p.merged in
    gather t p ~quorum_ok:t.strategy.Strategy.write_ok
      ~make:(fun rid -> Replica.Push { rid; key = p.key; entries })
      ~on_quorum:(fun () -> finish t p ~ok:true)
  end
  else finish t p ~ok:true

let attach t = Engine.attach t.eng

(** Execute [op] on [key]; [on_done] receives success, the
    operation's result (meaningful for observers), and the latency. *)
let execute t ~key ~(op : Spec.op) ~on_done =
  let p_ref = ref None in
  let eop =
    Engine.start_op t.eng ~timeout:t.timeout ~on_timeout:(fun () ->
        match !p_ref with None -> () | Some p -> finish t p ~ok:false)
  in
  let p =
    {
      key;
      op;
      phase = Initial;
      mask = 0;
      merged = [];
      result = Spec.Unit;
      eop;
      on_done;
    }
  in
  p_ref := Some p;
  if needs_initial op then
    gather t p ~quorum_ok:t.strategy.Strategy.read_ok
      ~make:(fun rid -> Replica.Pull { rid; key })
      ~on_quorum:(fun () -> compute_and_finalize t p)
  else
    (* blind mutator: no initial round at all *)
    compute_and_finalize t p
