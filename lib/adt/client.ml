(** The General Quorum Consensus client.

    Executing operation [op] on object [key]:

    1. {e initial round} (only if the operation needs one): Pull from
       all replicas, merge the returned logs, until the replies cover
       the read quorum.  Blind mutators — counter increments,
       enqueues — skip this round entirely; that is the scheme's
       advantage over value/version replication, where every write
       pays a version-discovery round.
    2. {e compute}: sort the merged log by timestamp, replay the
       sequential specification, apply [op] for its result.
    3. {e final round} (mutators only): append the new entry (with a
       timestamp past everything observed) and Push to all replicas
       until acknowledgements cover the write quorum.

    Consistency rests on the usual intersection: an observer's initial
    quorum meets every completed mutator's final quorum, so the merged
    log contains every completed operation. *)

module Core = Sim.Core
module Net = Sim.Net
module Strategy = Store.Strategy

(* Which rounds does an operation need?  [Set] is a mutator that needs
   the initial round anyway: last-writer-wins requires its timestamp
   to dominate previously completed sets. *)
let needs_initial (op : Spec.op) =
  Spec.observes op || match op with Spec.Set _ -> true | _ -> false

type phase = Initial | Final

type pending = {
  key : string;
  op : Spec.op;
  mutable rid : int;
  mutable phase : phase;
  mutable mask : int;
  mutable merged : Replica.entry list;
  mutable result : Spec.result;
  mutable live : bool;
  started : float;
  on_done : ok:bool -> result:Spec.result -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Replica.msg Net.t;
  replicas : string array;
  strategy : Strategy.t;
  clock : Timestamp.clock;
  mutable next_rid : int;
  pending : (int, pending) Hashtbl.t;
  timeout : float;
}

let create ~name ~sim ~net ~replicas ~strategy ?(timeout = 100.0) () =
  {
    name;
    sim;
    net;
    replicas;
    strategy;
    clock = Timestamp.clock ~id:name;
    next_rid = 0;
    pending = Hashtbl.create 16;
    timeout;
  }

let replica_index t name =
  let rec go i =
    if i >= Array.length t.replicas then None
    else if String.equal t.replicas.(i) name then Some i
    else go (i + 1)
  in
  go 0

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let broadcast t msg_of_rid ~rid =
  Array.iter
    (fun r -> Net.send t.net ~src:t.name ~dst:r (msg_of_rid rid))
    t.replicas

let finish t (p : pending) ~ok =
  if p.live then begin
    p.live <- false;
    Hashtbl.remove t.pending p.rid;
    p.on_done ~ok ~result:p.result ~latency:(Core.now t.sim -. p.started)
  end

let arm_timeout t (p : pending) =
  Core.schedule t.sim ~delay:t.timeout (fun () ->
      if p.live then finish t p ~ok:false)

(* Compute the result and, for mutators, start the final round. *)
let compute_and_finalize t (p : pending) =
  List.iter (fun (e : Replica.entry) -> Timestamp.observe t.clock e.ts) p.merged;
  let state = Spec.replay (List.map (fun (e : Replica.entry) -> e.op) p.merged) in
  let _, result = Spec.apply state p.op in
  p.result <- result;
  if Spec.mutates p.op then begin
    let entry = { Replica.ts = Timestamp.fresh t.clock; op = p.op } in
    let rid = fresh_rid t in
    p.phase <- Final;
    p.rid <- rid;
    p.mask <- 0;
    p.merged <- Replica.merge p.merged [ entry ];
    Hashtbl.replace t.pending rid p;
    let entries = p.merged in
    broadcast t ~rid (fun rid -> Replica.Push { rid; key = p.key; entries })
  end
  else finish t p ~ok:true

let handle t ~src msg =
  let rid = Replica.rid msg in
  match Hashtbl.find_opt t.pending rid with
  | None -> ()
  | Some p when not p.live -> ()
  | Some p -> (
      match (msg, replica_index t src) with
      | Replica.Entries { key; entries; _ }, Some i
        when String.equal key p.key && p.phase = Initial ->
          p.mask <- p.mask lor (1 lsl i);
          p.merged <- Replica.merge p.merged entries;
          if t.strategy.Strategy.read_ok p.mask then begin
            Hashtbl.remove t.pending rid;
            compute_and_finalize t p
          end
      | Replica.Ack { key; _ }, Some i
        when String.equal key p.key && p.phase = Final ->
          p.mask <- p.mask lor (1 lsl i);
          if t.strategy.Strategy.write_ok p.mask then finish t p ~ok:true
      | _ -> ())

let attach t = Net.register t.net ~node:t.name (fun ~src msg -> handle t ~src msg)

(** Execute [op] on [key]; [on_done] receives success, the
    operation's result (meaningful for observers), and the latency. *)
let execute t ~key ~(op : Spec.op) ~on_done =
  let p =
    {
      key;
      op;
      rid = 0;
      phase = Initial;
      mask = 0;
      merged = [];
      result = Spec.Unit;
      live = true;
      started = Core.now t.sim;
      on_done;
    }
  in
  arm_timeout t p;
  if needs_initial op then begin
    let rid = fresh_rid t in
    p.rid <- rid;
    Hashtbl.replace t.pending rid p;
    broadcast t ~rid (fun rid -> Replica.Pull { rid; key })
  end
  else
    (* blind mutator: no initial round at all *)
    compute_and_finalize t p
