(** Totally ordered logical timestamps for replicated event logs.

    Herlihy's General Quorum Consensus replicates an abstract data
    type as a log of timestamped operations; correctness needs a total
    order on log entries consistent with real-time completion order.
    We use Lamport-style timestamps: (logical time, client id, per-
    client sequence number).  Each client advances its logical time
    past the highest it has observed in any log it merged, so an
    operation that begins after another completed gets a larger
    timestamp. *)

type t = { time : int; client : string; seq : int }

let compare a b =
  match Int.compare a.time b.time with
  | 0 -> (
      match String.compare a.client b.client with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf t = Fmt.pf ppf "%d.%s.%d" t.time t.client t.seq

(** A per-client timestamp generator. *)
type clock = { id : string; mutable now : int; mutable next_seq : int }

let clock ~id = { id; now = 0; next_seq = 0 }

(** Advance past an observed timestamp (on log merge). *)
let observe c (t : t) = if t.time > c.now then c.now <- t.time

let fresh c =
  c.now <- c.now + 1;
  c.next_seq <- c.next_seq + 1;
  { time = c.now; client = c.id; seq = c.next_seq }
