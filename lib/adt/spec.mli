(** Sequential ADT specifications for General Quorum Consensus
    (Herlihy [12], the paper's Section 5 extension target): counter,
    last-writer register, FIFO queue — states, operations, and the
    fold defining replay semantics over timestamp-ordered logs. *)

type op =
  | Inc of int  (** counter: add n (blind mutator) *)
  | Total  (** counter: observe the total *)
  | Set of int  (** register: write *)
  | Get  (** register: read *)
  | Enq of int  (** queue: enqueue (blind mutator) *)
  | Deq  (** queue: dequeue the front (observes and mutates) *)

type result = Unit | Value of int | Empty

val pp_op : op Fmt.t
val pp_result : result Fmt.t

val mutates : op -> bool
(** Modifies the abstract state (must be logged). *)

val observes : op -> bool
(** Observes the state (needs an initial read round). *)

type state = { total : int; reg : int option; queue : int list }

val initial : state
val apply : state -> op -> state * result
val replay : op list -> state
(** Fold a timestamp-ordered operation list from the initial state. *)
