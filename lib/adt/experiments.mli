(** E13: General Quorum Consensus for ADTs vs. read-write quorum
    replication — blind-mutator latency and the lost-update effect. *)

type row = {
  scheme : string;
  mutation_mean : float;
  mutation_p90 : float;
  observe_mean : float;
  final_total : int;
  expected_total : int;
  rounds_per_mutation : float;
}

val counter_comparison : ?seed:int -> unit -> row list
(** Sequential increments: event-log (1 round) vs read-write
    (read + query + install). *)

type race_row = { scheme : string; issued : int; final : int; lost : int }

val race_comparison : ?seed:int -> unit -> race_row list
(** Two racing incrementers: union-merged increments commute (0 lost)
    while read-modify-write over the plain store loses interleaved
    updates. *)
