(** AIMD control of the engine's multi-key batching window.

    Closes the loop the static window leaves open: each flush reports
    the peak per-destination batch size it coalesced, and the
    controller widens the window additively while frames are actually
    forming (peak >= [busy]) and shrinks it multiplicatively when they
    are not — bursts widen toward [max_window], idle traffic collapses
    toward [min_window] (with the default [min_window = 0.0], to a
    same-instant flush that adds no latency at all). *)

type config = {
  min_window : float;  (** floor; [0.0] = fire-immediately when idle *)
  max_window : float;  (** ceiling on the coalescing delay *)
  initial : float;  (** starting window *)
  add : float;  (** additive increase per busy flush *)
  mult : float;  (** multiplicative decrease factor per idle flush *)
  busy : int;  (** peak per-destination batch size that counts as busy *)
}

val default_config : config
(** [min 0, max 8, initial 0, +1.0, x0.5, busy >= 2]. *)

val validate : config -> (unit, string) result

type t

val create : config -> t
(** @raise Invalid_argument if the config fails {!validate}. *)

val window : t -> float
(** The current coalescing window. *)

val config : t -> config

val observe : t -> peak:int -> unit
(** Report one flush's peak per-destination batch size and adjust the
    window: additive increase when [peak >= busy], multiplicative
    decrease otherwise (snapping to [min_window] within epsilon). *)

val widenings : t -> int
(** Busy flushes observed (additive increases). *)

val shrinkings : t -> int
(** Idle flushes observed (multiplicative decreases). *)

val pp_config : config Fmt.t
