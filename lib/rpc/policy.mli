(** Retry / backoff / hedging policy for replication RPC calls.

    A call under the {e default} policy behaves exactly like the
    historical fire-once clients: one wave of messages, no per-attempt
    timer, no hedge timer — the only clock running against the
    operation is its overall deadline.  Every knob beyond that is
    opt-in, so seeded runs that do not use it are bit-for-bit
    unchanged. *)

type t = {
  max_attempts : int;
      (** total send waves per call; 1 = fire once (no retries) *)
  attempt_timeout : float;
      (** virtual time units before an unfinished attempt triggers a
          retry; only armed when [max_attempts > 1] *)
  backoff : float;
      (** extra delay before the second attempt; grows by
          [backoff_mult] per further attempt *)
  backoff_mult : float;  (** exponential backoff multiplier, >= 1 *)
  jitter : float;
      (** fraction in [0, 1): each backoff delay is scaled by a
          deterministic factor in [1 - jitter, 1 + jitter] drawn from
          the engine's own PRNG, so retry storms de-synchronize while
          runs stay seed-reproducible *)
  hedge_delay : float option;
      (** after this delay without completion, fan the request out to
          every candidate beyond the initial wave; [None] disables
          hedging *)
}

val default : t
(** Fire once: [max_attempts = 1], no hedging. *)

val retries : t -> int
(** [max_attempts - 1]. *)

val with_retries :
  ?attempt_timeout:float -> ?backoff:float -> ?backoff_mult:float ->
  ?jitter:float -> int -> t
(** [with_retries n] is [default] with [n] retries ([n + 1] attempts). *)

val with_hedge : ?base:t -> float -> t
(** [with_hedge d] enables hedging after [d] time units. *)

val validate : t -> (unit, string) result
(** Every numeric field finite and in range; the error names the
    offending field. *)

val retry_delay : t -> attempt:int -> u:float -> float
(** Backoff delay scheduled before [attempt] (2-based), jittered by
    the uniform draw [u] in [0, 1):
    [backoff * mult^(attempt - 2) * (1 + jitter * (2u - 1))].
    Exposed pure so tests can pin the bounds. *)

val pp : t Fmt.t
(** One-line rendering, e.g.
    [retries=2 attempt_timeout=25 backoff=5x2 jitter=0.2 hedge=10]. *)
