(** The shared replication RPC engine — see the interface for the
    contract.  The hot path (default policy) is deliberately identical
    to the historical hand-rolled clients: one pending-table insert,
    one deadline timer armed at [start_op], one send wave in target
    order, one "reply" instant per dispatched reply.  Retry, backoff
    and hedge timers only ever get scheduled when the policy asks for
    them, so enabling the engine does not move a single PRNG draw or
    heap entry in existing seeded runs. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng

type verdict = Continue | Done

(** Multi-key batching: how to wrap several outgoing requests for one
    destination into a single wire message, and how to recognise and
    split an incoming batch reply.  The window is the coalescing
    delay: the first enqueued send arms a flush timer, and everything
    queued for the same destination before it fires travels in one
    frame. *)
type 'msg batching = {
  window : float;
  wrap : rid:int -> 'msg list -> 'msg;
  unwrap : 'msg -> 'msg list option;
}

type op = {
  mutable o_live : bool;
  o_started : float;
  mutable o_calls : packed_call list;
  o_ctx : Obs.Ctx.t option;
      (** causal trace context: when present, the engine stamps the
          op's attempt spans, reply/hedge instants and batch-queue
          spans with the originating operation — and carries nothing
          (and emits nothing extra) when absent, keeping default
          traces byte-identical *)
}

and packed_call = Call : 'msg call -> packed_call

and 'msg call = {
  rid : int;
  stamp : int;  (** unique per call — distinguishes a closing call
                    from a successor that reused its rid *)
  c_op : op;
  targets : string array;
  heard : bool array;  (** per-target: a reply arrived (skip on resend) *)
  mutable sent_upto : int;  (** targets.[0 .. sent_upto-1] have been sent *)
  mutable attempt : int;  (** 1-based *)
  mutable closed : bool;
  make : int -> 'msg;
  on_reply : src:string -> 'msg -> verdict;
  on_exhausted : unit -> unit;
  mutable span : Obs.Trace.span option;  (** current attempt span *)
  pol : Policy.t;  (** policy captured at call start *)
}

type 'msg t = {
  name : string;
  sim : Core.t;
  net : 'msg Net.t;
  rid_of : 'msg -> int;
  mutable policy : Policy.t;
  cat : string;
  rng : Prng.t;
      (** jitter only — never the simulator's PRNG, so retry schedules
          cannot perturb loss/latency draws elsewhere *)
  mutable next_rid : int;
  mutable next_stamp : int;
  pending : (int, 'msg call) Hashtbl.t;
  metrics : Obs.Metrics.t;
  labels : (string * string) list;
  m_retries : Obs.Metrics.counter;
  m_hedges : Obs.Metrics.counter;
  m_exhausted : Obs.Metrics.counter;
  m_op_timeouts : Obs.Metrics.counter;
  mutable batching : 'msg batching option;
  mutable unbatch : ('msg -> 'msg list option) option;
      (** retained after batching is switched off, so batch replies
          still in flight keep unwrapping *)
  mutable outq : (string * 'msg * Obs.Trace.span option) list;
      (** reversed send queue; the span — present only for sends under
          a trace context — measures the batch-window wait *)
  mutable flush_armed : bool;
  mutable m_batch_size : Obs.Metrics.histogram option;
      (** created lazily on first enable — a never-batching engine
          registers no extra instruments *)
  mutable wctl : Window.t option;
      (** adaptive window controller: when present, its current window
          replaces the static [batching.window] as the flush delay, and
          every flush feeds it the peak per-destination batch size *)
  mutable m_window : Obs.Metrics.gauge option;
      (** [rpc.window] — created lazily with the controller *)
}

let check_policy p =
  match Policy.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "Rpc.Engine: invalid policy: %s" e)

let create ~name ~sim ~net ~rid_of ?(policy = Policy.default) ?(cat = "rpc")
    ?(seed = 1) ?metrics ?(extra_labels = []) () =
  check_policy policy;
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let labels = ("client", name) :: extra_labels in
  {
    name;
    sim;
    net;
    rid_of;
    policy;
    cat;
    rng = Prng.create seed;
    next_rid = 0;
    next_stamp = 0;
    pending = Hashtbl.create 16;
    metrics;
    labels;
    m_retries = Obs.Metrics.counter metrics ~labels "rpc.retries";
    m_hedges = Obs.Metrics.counter metrics ~labels "rpc.hedges";
    m_exhausted = Obs.Metrics.counter metrics ~labels "rpc.exhausted";
    m_op_timeouts = Obs.Metrics.counter metrics ~labels "rpc.op_timeouts";
    batching = None;
    unbatch = None;
    outq = [];
    flush_armed = false;
    m_batch_size = None;
    wctl = None;
    m_window = None;
  }

let name t = t.name
let policy t = t.policy

let set_policy t p =
  check_policy p;
  t.policy <- p

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let pending_count t = Hashtbl.length t.pending
let tracer t = Core.tracer t.sim

(* ---------- batching ---------- *)

let flush t =
  t.flush_armed <- false;
  let queued = List.rev t.outq in
  t.outq <- [];
  (* close every batch-queue-wait span at the flush instant, before
     any send — all queued messages leave now *)
  List.iter
    (fun (_, _, sp) ->
      match sp with
      | Some sp -> Obs.Trace.end_span (tracer t) sp ()
      | None -> ())
    queued;
  match t.batching with
  | None ->
      (* batching switched off with sends still queued: let them go
         out unwrapped rather than stranding them, each accounted as a
         single-message frame *)
      List.iter
        (fun (dst, m, _) ->
          (match t.m_batch_size with
          | Some h -> Obs.Metrics.observe h 1.0
          | None -> ());
          Net.send t.net ~src:t.name ~dst m)
        queued
  | Some b ->
      (* group per destination, preserving first-appearance order so
         the flush is deterministic *)
      let order = ref [] in
      let by_dst : (string, 'msg list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (dst, m, _) ->
          match Hashtbl.find_opt by_dst dst with
          | Some l -> l := m :: !l
          | None ->
              Hashtbl.replace by_dst dst (ref [ m ]);
              order := dst :: !order)
        queued;
      let peak = ref 0 in
      List.iter
        (fun dst ->
          let msgs = List.rev !(Hashtbl.find by_dst dst) in
          peak := max !peak (List.length msgs);
          (match t.m_batch_size with
          | Some h -> Obs.Metrics.observe h (float_of_int (List.length msgs))
          | None -> ());
          match msgs with
          | [ m ] -> Net.send t.net ~src:t.name ~dst m
          | ms ->
              let rid = fresh_rid t in
              let tr = tracer t in
              if Obs.Trace.enabled tr then
                Obs.Trace.instant tr ~cat:t.cat ~name:"batch" ~track:t.name
                  ~args:
                    [
                      ("dst", Obs.Trace.Str dst);
                      ("size", Obs.Trace.Int (List.length ms));
                      ("rid", Obs.Trace.Int rid);
                    ]
                  ();
              Net.send t.net ~src:t.name ~dst ~payloads:(List.length ms)
                (b.wrap ~rid ms))
        (List.rev !order);
      (* close the loop: the peak per-destination batch size tells the
         controller whether the window is earning its queue delay *)
      (match t.wctl with
      | Some c when queued <> [] ->
          Window.observe c ~peak:!peak;
          (match t.m_window with
          | Some g -> Obs.Metrics.set g (Window.window c)
          | None -> ())
      | _ -> ())

(* Every outgoing request funnels through here: with batching off it
   is exactly the historical [Net.send]; with batching on the send is
   queued and the first enqueue arms one flush timer per window.  A
   trace context opens a [batchq] span per queued send — the
   batch-window wait the attribution layer charges to the op. *)
let dispatch t ?ctx ~dst msg =
  match t.batching with
  | None -> Net.send t.net ~src:t.name ~dst msg
  | Some b ->
      let sp =
        match ctx with
        | Some cx when Obs.Trace.enabled (tracer t) ->
            Some
              (Obs.Trace.begin_span (tracer t) ~cat:t.cat ~name:"batchq"
                 ~track:t.name
                 ~args:(("dst", Obs.Trace.Str dst) :: Obs.Ctx.args cx)
                 ())
        | _ -> None
      in
      t.outq <- (dst, msg, sp) :: t.outq;
      if not t.flush_armed then begin
        t.flush_armed <- true;
        let window =
          match t.wctl with Some c -> Window.window c | None -> b.window
        in
        Core.schedule t.sim ~delay:window (fun () -> flush t)
      end

let batching t = t.batching

let set_batching t b =
  match b with
  | Some bb ->
      if (not (Float.is_finite bb.window)) || bb.window < 0.0 then
        invalid_arg "Rpc.Engine.set_batching: window must be finite and >= 0";
      t.unbatch <- Some bb.unwrap;
      (match t.m_batch_size with
      | Some _ -> ()
      | None ->
          t.m_batch_size <-
            Some
              (Obs.Metrics.histogram t.metrics ~labels:t.labels
                 ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]
                 "rpc.batch_size"));
      t.batching <- b
  | None ->
      t.batching <- None;
      (* a mid-flight disable must not strand queued sends until the
         already-armed timer fires: flush them now, unwrapped (the
         orphaned timer later finds an empty queue and sends nothing) *)
      if t.outq <> [] then flush t

let set_adaptive_window t w =
  (match w with
  | Some c ->
      (match t.m_window with
      | Some g -> Obs.Metrics.set g (Window.window c)
      | None ->
          let g = Obs.Metrics.gauge t.metrics ~labels:t.labels "rpc.window" in
          Obs.Metrics.set g (Window.window c);
          t.m_window <- Some g)
  | None -> ());
  t.wctl <- w

let adaptive_window t = t.wctl

(* Attempt spans exist to see retries and hedges; a fire-once call
   emits nothing, keeping default-policy traces byte-identical. *)
let instrumented (c : 'msg call) =
  c.pol.Policy.max_attempts > 1 || c.pol.Policy.hedge_delay <> None

(* the op's causal stamp, appended to the engine's own event args —
   empty (and allocation-free) without a context *)
let ctx_args (c : 'msg call) =
  match c.c_op.o_ctx with None -> [] | Some cx -> Obs.Ctx.args cx

let begin_attempt_span t (c : 'msg call) =
  let tr = tracer t in
  if instrumented c && Obs.Trace.enabled tr then
    c.span <-
      Some
        (Obs.Trace.begin_span tr ~cat:t.cat ~name:"attempt" ~track:t.name
           ~args:
             ([ ("rid", Obs.Trace.Int c.rid);
                ("attempt", Obs.Trace.Int c.attempt) ]
             @ ctx_args c)
           ())

let end_attempt_span t (c : 'msg call) ~outcome =
  match c.span with
  | None -> ()
  | Some span ->
      c.span <- None;
      Obs.Trace.end_span (tracer t) span
        ~args:[ ("outcome", Obs.Trace.Str outcome) ]
        ()

let close_call t (c : 'msg call) ~outcome =
  if not c.closed then begin
    c.closed <- true;
    (* remove only our own binding: a caller may reuse the rid for a
       successor call registered before this one closes *)
    (match Hashtbl.find_opt t.pending c.rid with
    | Some c' when c'.stamp = c.stamp -> Hashtbl.remove t.pending c.rid
    | _ -> ());
    end_attempt_span t c ~outcome
  end

(* ---------- operations ---------- *)

let start_op ?ctx t ~timeout ~on_timeout =
  let op =
    { o_live = true; o_started = Core.now t.sim; o_calls = []; o_ctx = ctx }
  in
  Core.schedule t.sim ~delay:timeout (fun () ->
      if op.o_live then begin
        Obs.Metrics.inc t.m_op_timeouts;
        on_timeout ()
      end);
  op

let op_live op = op.o_live
let op_started op = op.o_started
let op_ctx op = op.o_ctx

let finish_op t op =
  if op.o_live then begin
    op.o_live <- false;
    List.iter
      (fun (Call c) -> close_call t c ~outcome:"abandoned")
      op.o_calls;
    op.o_calls <- []
  end

(* ---------- calls ---------- *)

let call_live (c : 'msg call) = (not c.closed) && c.c_op.o_live

let send_range t (c : 'msg call) lo hi =
  for i = lo to hi - 1 do
    if not c.heard.(i) then
      dispatch t ?ctx:c.c_op.o_ctx ~dst:c.targets.(i) (c.make c.rid)
  done

let rec arm_attempt_timer t (c : 'msg call) =
  if c.pol.Policy.max_attempts > 1 then
    Core.schedule t.sim ~delay:c.pol.Policy.attempt_timeout (fun () ->
        if call_live c then
          if c.attempt >= c.pol.Policy.max_attempts then begin
            end_attempt_span t c ~outcome:"exhausted";
            Obs.Metrics.inc t.m_exhausted;
            c.on_exhausted ()
          end
          else begin
            end_attempt_span t c ~outcome:"timeout";
            let next = c.attempt + 1 in
            let delay =
              Policy.retry_delay c.pol ~attempt:next ~u:(Prng.float t.rng)
            in
            Core.schedule t.sim ~delay (fun () ->
                if call_live c then begin
                  c.attempt <- next;
                  Obs.Metrics.inc t.m_retries;
                  begin_attempt_span t c;
                  send_range t c 0 c.sent_upto;
                  arm_attempt_timer t c
                end)
          end)

let arm_hedge_timer t (c : 'msg call) =
  match c.pol.Policy.hedge_delay with
  | Some d when c.sent_upto < Array.length c.targets ->
      Core.schedule t.sim ~delay:d (fun () ->
          if call_live c && c.sent_upto < Array.length c.targets then begin
            Obs.Metrics.inc t.m_hedges;
            let tr = tracer t in
            if Obs.Trace.enabled tr then
              Obs.Trace.instant tr ~cat:t.cat ~name:"hedge" ~track:t.name
                ~args:
                  ([
                     ("rid", Obs.Trace.Int c.rid);
                     ( "extra",
                       Obs.Trace.Int (Array.length c.targets - c.sent_upto) );
                   ]
                  @ ctx_args c)
                ();
            let lo = c.sent_upto in
            c.sent_upto <- Array.length c.targets;
            send_range t c lo c.sent_upto
          end)
  | _ -> ()

let call t ~op ?rid ~targets ?fanout ~make ~on_reply
    ?(on_exhausted = fun () -> ()) () =
  let rid = match rid with Some r -> r | None -> fresh_rid t in
  let targets = Array.of_list targets in
  let n = Array.length targets in
  let fanout = match fanout with Some f -> max 1 (min f n) | None -> n in
  let stamp = t.next_stamp in
  t.next_stamp <- stamp + 1;
  let c =
    {
      rid;
      stamp;
      c_op = op;
      targets;
      heard = Array.make n false;
      sent_upto = fanout;
      attempt = 1;
      closed = false;
      make;
      on_reply;
      on_exhausted;
      span = None;
      pol = t.policy;
    }
  in
  Hashtbl.replace t.pending rid c;
  op.o_calls <- Call c :: op.o_calls;
  begin_attempt_span t c;
  send_range t c 0 fanout;
  arm_attempt_timer t c;
  arm_hedge_timer t c;
  rid

(* ---------- reply dispatch ---------- *)

let target_index (c : 'msg call) src =
  let rec go i =
    if i >= Array.length c.targets then None
    else if String.equal c.targets.(i) src then Some i
    else go (i + 1)
  in
  go 0

let handle_one t ~src msg =
  match Hashtbl.find_opt t.pending (t.rid_of msg) with
  | None -> () (* stale reply for a finished or superseded call *)
  | Some c when not (call_live c) -> ()
  | Some c -> (
      let tr = tracer t in
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:t.cat ~name:"reply" ~track:t.name
          ~args:
            ([ ("rid", Obs.Trace.Int c.rid); ("from", Obs.Trace.Str src) ]
            @ ctx_args c)
          ();
      (match target_index c src with
      | Some i -> c.heard.(i) <- true
      | None -> ());
      match c.on_reply ~src msg with
      | Continue -> ()
      | Done -> close_call t c ~outcome:"done")

(* Batch replies split into their per-key parts; each part dispatches
   against the pending table under its own original rid. *)
let rec handle t ~src msg =
  match t.unbatch with
  | Some unwrap -> (
      match unwrap msg with
      | Some inner -> List.iter (fun m -> handle t ~src m) inner
      | None -> handle_one t ~src msg)
  | None -> handle_one t ~src msg

let attach t =
  Net.register t.net ~node:t.name (fun ~src msg -> handle t ~src msg)
