(** The shared replication RPC engine.

    All three replicated-store clients (read-write quorums, virtual
    partitions, ADT event logs) run the same loop from the paper's
    Section 3.1 TM algorithm: allocate a request id, send a wave of
    messages, accumulate replies until a quorum predicate is
    satisfied, fail on a deadline.  The engine owns that loop once —
    rid allocation, the pending table, reply dispatch, the operation
    deadline — and adds the robustness machinery the hand-rolled
    clients never had: per-attempt timeouts with bounded retry,
    exponential backoff with deterministic jitter, and hedged requests
    (late fan-out beyond the initial wave).

    {2 Determinism rules}

    - Under {!Policy.default} the engine schedules exactly one timer
      per operation (the deadline) and sends exactly one wave per
      call, in target order — byte-identical to the historical
      clients for any seed.
    - Jitter draws come from the engine's {e own} PRNG (seeded at
      creation), never from the simulator's: enabling retries on one
      client cannot perturb message-loss or latency draws elsewhere,
      and runs stay reproducible from the seed.

    {2 Hygiene invariant}

    Every completed or timed-out operation removes all of its pending
    entries and closes its open attempt spans: after the simulator
    drains, [pending_count] is [0].  Tests assert this. *)

type verdict =
  | Continue  (** keep gathering replies *)
  | Done  (** the accumulated reply set satisfies the predicate *)

type 'msg batching = {
  window : float;
      (** coalescing window in simulated time units; the first send
          queued arms one flush timer, everything queued before it
          fires shares the wave *)
  wrap : rid:int -> 'msg list -> 'msg;
      (** build the batch frame around [>= 2] requests for one
          destination; the rid is fresh and identifies the frame, the
          wrapped requests keep their own rids *)
  unwrap : 'msg -> 'msg list option;
      (** split an incoming batch reply into its per-request parts;
          [None] for ordinary messages *)
}
(** Multi-key batching (see {!set_batching}): distinct calls' requests
    to the same destination inside one window travel as a single wire
    message, and each wrapped reply still completes its own call
    through the pending table.  Latency cost: up to [window] of queue
    delay per request.  Message gain: one frame per destination per
    window, however many keys are in flight. *)

type 'msg t

type op
(** An operation context: one user-visible operation (which may span
    several calls — e.g. a write's version query then install), under
    a single overall deadline. *)

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:'msg Sim.Net.t ->
  rid_of:('msg -> int) ->
  ?policy:Policy.t ->
  ?cat:string ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  ?extra_labels:(string * string) list ->
  unit ->
  'msg t
(** An engine for node [name] on [net].  [rid_of] projects the request
    id out of a reply so the engine can dispatch it.  [cat] is the
    trace category for the engine's events (default ["rpc"]; the store
    client passes ["store"] so its traces keep their historical
    shape).  [seed] seeds the jitter PRNG.  [metrics] defaults to a
    private registry.  [extra_labels] are appended to the engine's
    metric labels after [("client", name)] — e.g. a shard label when
    several engines serve one logical client.
    @raise Invalid_argument if [policy] fails {!Policy.validate}. *)

val attach : 'msg t -> unit
(** Register the engine's reply dispatcher as [name]'s net handler. *)

val handle : 'msg t -> src:string -> 'msg -> unit
(** Dispatch one incoming message by hand — for layers (e.g. a shard
    router) that own the node's net handler and demultiplex to several
    engines.  Batch replies are split and dispatched per part. *)

val set_batching : 'msg t -> 'msg batching option -> unit
(** Enable ([Some b]) or disable ([None]) multi-key batching for sends
    issued after the call.  The default is off, which keeps the send
    path byte-identical to historical runs; enabling registers an
    [rpc.batch_size] histogram.  Disabling keeps the unwrap function,
    so batch replies still in flight complete normally, and flushes any
    still-queued sends immediately (unwrapped) rather than stranding
    them until the already-armed window timer.
    @raise Invalid_argument if the window is negative or not finite. *)

val batching : 'msg t -> 'msg batching option

val set_adaptive_window : 'msg t -> Window.t option -> unit
(** Install ([Some c]) or remove ([None]) an adaptive window
    controller.  While installed — and batching is enabled — the
    controller's current window replaces the static [batching.window]
    as the coalescing delay, and every flush reports its peak
    per-destination batch size to {!Window.observe}; an [rpc.window]
    gauge tracks the window.  Removing it falls back to the static
    window. *)

val adaptive_window : 'msg t -> Window.t option

val name : 'msg t -> string
val policy : 'msg t -> Policy.t

val set_policy : 'msg t -> Policy.t -> unit
(** Applies to calls started after the change.
    @raise Invalid_argument if the policy fails {!Policy.validate}. *)

val fresh_rid : 'msg t -> int
(** Allocate a request id.  Exposed for fire-and-forget sends (e.g.
    read repair) and for callers that need the rid before {!call}
    (trace span arguments); pass it back via [?rid]. *)

val pending_count : 'msg t -> int
(** Outstanding calls in the pending table; [0] at quiescence. *)

val start_op :
  ?ctx:Obs.Ctx.t -> 'msg t -> timeout:float -> on_timeout:(unit -> unit) -> op
(** Begin an operation and arm its overall deadline: after [timeout]
    time units, if the operation is still live, [on_timeout] runs (it
    should fail the operation and call {!finish_op}).

    When [ctx] is supplied, every trace event the engine emits for the
    operation's calls — attempt spans, reply and hedge instants, and
    the per-send [batchq] coalescing-wait spans — carries the context's
    causal stamp ([op] id and [parent] span), so {!Obs.Query} can
    stitch client- and replica-side spans into one causal tree.  With
    no [ctx] (the default) the emitted events are byte-identical to
    historical runs. *)

val op_live : op -> bool
val op_started : op -> float

val op_ctx : op -> Obs.Ctx.t option
(** The causal stamp the operation was started with, for forwarding
    into request frames. *)

val finish_op : 'msg t -> op -> unit
(** Mark the operation dead and drop its outstanding calls from the
    pending table, closing their attempt spans.  Idempotent; late
    replies and timers for the operation become no-ops. *)

val call :
  'msg t ->
  op:op ->
  ?rid:int ->
  targets:string list ->
  ?fanout:int ->
  make:(int -> 'msg) ->
  on_reply:(src:string -> 'msg -> verdict) ->
  ?on_exhausted:(unit -> unit) ->
  unit ->
  int
(** The quorum-gather combinator.  Sends [make rid] to the first
    [fanout] of [targets] (default: all — broadcast), then accumulates
    replies: each reply to this rid is handed to [on_reply], and the
    call completes when it returns [Done].  Returns the rid.

    Under the engine's policy:
    - if [max_attempts > 1], an unfinished attempt times out after
      [attempt_timeout] and is retried — the wave is retransmitted to
      the targets not yet heard from, after an exponentially growing,
      jittered backoff delay; when attempts are exhausted,
      [on_exhausted] runs (default: keep waiting for the operation
      deadline);
    - if [hedge_delay] is [Some d], after [d] time units without
      completion the request fans out to the remaining targets beyond
      [fanout] — broadcast and targeted-quorum routing are the two
      extremes ([fanout = |targets|] hedges nothing; [fanout] = one
      minimal quorum with a small [d] approaches broadcast latency at
      quorum message cost).

    Replies are matched per target, so duplicate replies (e.g. to a
    retransmission) reach [on_reply] but retransmissions skip targets
    already heard from.  [on_reply] may start further calls or finish
    the operation. *)
