(** Retry / backoff / hedging policy — see the interface for the
    semantics.  The default is fire-once so that existing seeded runs
    are unchanged byte for byte. *)

type t = {
  max_attempts : int;
  attempt_timeout : float;
  backoff : float;
  backoff_mult : float;
  jitter : float;
  hedge_delay : float option;
}

let default =
  {
    max_attempts = 1;
    attempt_timeout = 25.0;
    backoff = 5.0;
    backoff_mult = 2.0;
    jitter = 0.2;
    hedge_delay = None;
  }

let retries p = p.max_attempts - 1

let with_retries ?attempt_timeout ?backoff ?backoff_mult ?jitter n =
  {
    default with
    max_attempts = n + 1;
    attempt_timeout =
      Option.value ~default:default.attempt_timeout attempt_timeout;
    backoff = Option.value ~default:default.backoff backoff;
    backoff_mult = Option.value ~default:default.backoff_mult backoff_mult;
    jitter = Option.value ~default:default.jitter jitter;
  }

let with_hedge ?(base = default) d = { base with hedge_delay = Some d }

let finite_pos name v =
  if Float.is_finite v && v > 0.0 then Ok ()
  else Error (Fmt.str "%s must be a finite positive number (got %g)" name v)

let validate p =
  let ( let* ) = Result.bind in
  let* () =
    if p.max_attempts >= 1 then Ok ()
    else Error (Fmt.str "max_attempts must be >= 1 (got %d)" p.max_attempts)
  in
  let* () = finite_pos "attempt_timeout" p.attempt_timeout in
  let* () =
    if Float.is_finite p.backoff && p.backoff >= 0.0 then Ok ()
    else Error (Fmt.str "backoff must be finite and >= 0 (got %g)" p.backoff)
  in
  let* () =
    if Float.is_finite p.backoff_mult && p.backoff_mult >= 1.0 then Ok ()
    else
      Error (Fmt.str "backoff_mult must be finite and >= 1 (got %g)" p.backoff_mult)
  in
  let* () =
    if Float.is_finite p.jitter && p.jitter >= 0.0 && p.jitter < 1.0 then Ok ()
    else Error (Fmt.str "jitter must be in [0, 1) (got %g)" p.jitter)
  in
  match p.hedge_delay with
  | None -> Ok ()
  | Some d -> finite_pos "hedge_delay" d

let retry_delay p ~attempt ~u =
  let base = p.backoff *. (p.backoff_mult ** float_of_int (attempt - 2)) in
  base *. (1.0 +. (p.jitter *. ((2.0 *. u) -. 1.0)))

let pp ppf p =
  Fmt.pf ppf "retries=%d attempt_timeout=%g backoff=%gx%g jitter=%g hedge=%s"
    (retries p) p.attempt_timeout p.backoff p.backoff_mult p.jitter
    (match p.hedge_delay with None -> "off" | Some d -> Fmt.str "%g" d)
