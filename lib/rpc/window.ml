(** AIMD control of the engine's batching window.

    The signal is the peak per-destination batch size observed at each
    flush: a peak of [busy] or more means distinct requests are
    actually sharing frames, so widening the window buys more
    coalescing per message — additive increase.  A peak below [busy]
    means the window is only adding queue delay — multiplicative
    decrease, collapsing toward [min_window] (with [min_window = 0.0]
    an idle client fires immediately, adding no virtual-time latency
    at all, since a zero-delay flush runs in the same instant as the
    enqueue).

    Peak per destination — not raw queue depth — is deliberate: a
    broadcast client always has one message per replica in the queue,
    so depth alone reads every operation as a burst; frames only form
    when several {e requests} target the same destination. *)

type config = {
  min_window : float;  (** floor; [0.0] = fire-immediately when idle *)
  max_window : float;  (** ceiling on the coalescing delay *)
  initial : float;  (** starting window *)
  add : float;  (** additive increase per busy flush *)
  mult : float;  (** multiplicative decrease factor per idle flush *)
  busy : int;  (** peak per-destination batch size that counts as busy *)
}

let default_config =
  {
    min_window = 0.0;
    max_window = 8.0;
    initial = 0.0;
    add = 1.0;
    mult = 0.5;
    busy = 4;
  }

let validate c =
  let fin x = Float.is_finite x in
  if (not (fin c.min_window)) || c.min_window < 0.0 then
    Error "min_window must be finite and >= 0"
  else if (not (fin c.max_window)) || c.max_window < c.min_window then
    Error "max_window must be finite and >= min_window"
  else if
    (not (fin c.initial)) || c.initial < c.min_window || c.initial > c.max_window
  then Error "initial must lie in [min_window, max_window]"
  else if (not (fin c.add)) || c.add <= 0.0 then
    Error "add must be finite and > 0"
  else if (not (fin c.mult)) || c.mult < 0.0 || c.mult >= 1.0 then
    Error "mult must lie in [0, 1)"
  else if c.busy < 1 then Error "busy must be >= 1"
  else Ok ()

type t = {
  cfg : config;
  mutable window : float;
  mutable widenings : int;
  mutable shrinkings : int;
}

let create cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Rpc.Window.create: " ^ e));
  { cfg; window = cfg.initial; widenings = 0; shrinkings = 0 }

let window t = t.window
let config t = t.cfg
let widenings t = t.widenings
let shrinkings t = t.shrinkings

let observe t ~peak =
  if peak >= t.cfg.busy then begin
    t.window <- Float.min t.cfg.max_window (t.window +. t.cfg.add);
    t.widenings <- t.widenings + 1
  end
  else begin
    (* snap to the floor once the window shrinks well below the
       additive step: a window that small coalesces nothing the next
       widening wouldn't rebuild, and min_window = 0 must really reach
       fire-immediately instead of decaying forever *)
    let w = t.window *. t.cfg.mult in
    t.window <-
      (if w <= t.cfg.min_window +. (0.125 *. t.cfg.add) then t.cfg.min_window
       else w);
    t.shrinkings <- t.shrinkings + 1
  end

let pp_config ppf c =
  Fmt.pf ppf "aimd window=[%g, %g] initial=%g +%g x%g busy>=%d" c.min_window
    c.max_window c.initial c.add c.mult c.busy
