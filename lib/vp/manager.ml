(** The view manager: executes view changes.

    A view change to membership [members]:
    1. requires [members] to be a majority of all replicas (otherwise
       it is refused — a minority partition can never form a primary
       view, which is exactly what keeps the two sides of a partition
       from diverging);
    2. collects the full state of every proposed member and merges it
       keeping the highest version per key — since the previous
       primary view wrote to all its members and any two majorities
       intersect, the merge contains every committed write;
    3. installs the new view (fresh id) and merged state at every
       member, completing when all have acknowledged.

    The request mechanics — rid allocation, the pending table, reply
    dispatch, the overall deadline — come from {!Rpc.Engine}, the same
    engine the store and ADT clients use; the manager supplies only
    the two gather phases and the merge.  Under the default fire-once
    policy the wire behaviour is the historical one: one State_req
    wave, one Install wave, one deadline timer.  A retrying or hedged
    policy gives reconfiguration the same robustness as data
    operations — replicas tolerate duplicate State_reqs (idempotent
    reads) and duplicate Installs (same view id, nacked as stale only
    after a newer view installs).

    Failure detection is deliberately out of scope (it is orthogonal;
    in the experiments the test harness triggers view changes when it
    reconfigures the network). *)

module Core = Sim.Core
module Net = Sim.Net
module Engine = Rpc.Engine

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  all_replicas : string list;
  eng : Protocol.msg Engine.t;
  mutable next_view_id : int;
  mutable current : View.t;
  timeout : float;
}

let create ~name ~sim ~net ~all_replicas ?(timeout = 50.0) ?policy () =
  let eng =
    Engine.create ~name ~sim ~net ~rid_of:Protocol.rid ?policy ~cat:"vp" ()
  in
  Engine.attach eng;
  {
    name;
    sim;
    net;
    all_replicas;
    eng;
    next_view_id = 1;
    current = View.initial ~replicas:all_replicas;
    timeout;
  }

let set_policy t p = Engine.set_policy t.eng p
let policy t = Engine.policy t.eng

(* Merge collected replica states keeping the highest version per key. *)
let merge_states (states : (string * (int * int)) list list) :
    (string * (int * int)) list =
  List.fold_left
    (fun acc st ->
      List.fold_left
        (fun acc (key, (vn, value)) ->
          match List.assoc_opt key acc with
          | Some (vn', _) when vn' >= vn -> acc
          | _ -> (key, (vn, value)) :: List.remove_assoc key acc)
        acc st)
    [] states

(** [change_view t ~members ~on_done] runs the protocol.  [on_done]
    receives the installed view on success; failure means [members]
    was not a majority or some member did not respond in time. *)
let change_view t ~members ~on_done =
  let n_total = List.length t.all_replicas in
  if 2 * List.length members <= n_total then
    on_done ~ok:false t.current
  else begin
    let view_id = t.next_view_id in
    t.next_view_id <- view_id + 1;
    let op_ref = ref None in
    let op =
      Engine.start_op t.eng ~timeout:t.timeout ~on_timeout:(fun () ->
          match !op_ref with
          | Some op ->
              Engine.finish_op t.eng op;
              on_done ~ok:false t.current
          | None -> ())
    in
    op_ref := Some op;
    (* phase 2: install the new view and merged state at every member *)
    let install states =
      let merged = merge_states states in
      let heard = Hashtbl.create 8 in
      let awaiting = ref (List.length members) in
      ignore
        (Engine.call t.eng ~op ~targets:members
           ~make:(fun rid ->
             Protocol.Install { rid; view_id; members; state = merged })
           ~on_reply:(fun ~src msg ->
             match msg with
             | Protocol.Install_ack _ when not (Hashtbl.mem heard src) ->
                 Hashtbl.replace heard src ();
                 decr awaiting;
                 if !awaiting = 0 then begin
                   Engine.finish_op t.eng op;
                   t.current <- { View.id = view_id; members };
                   on_done ~ok:true t.current;
                   Engine.Done
                 end
                 else Engine.Continue
             | _ -> Engine.Continue)
           ())
    in
    (* phase 1: collect the full state of every proposed member *)
    let heard = Hashtbl.create 8 in
    let awaiting = ref (List.length members) in
    let states = ref [] in
    ignore
      (Engine.call t.eng ~op ~targets:members
         ~make:(fun rid -> Protocol.State_req { rid })
         ~on_reply:(fun ~src msg ->
           match msg with
           | Protocol.State_rep { state; _ } when not (Hashtbl.mem heard src)
             ->
               Hashtbl.replace heard src ();
               states := state :: !states;
               decr awaiting;
               if !awaiting = 0 then begin
                 install !states;
                 Engine.Done
               end
               else Engine.Continue
           | _ -> Engine.Continue)
         ())
  end
