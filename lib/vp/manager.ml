(** The view manager: executes view changes.

    A view change to membership [members]:
    1. requires [members] to be a majority of all replicas (otherwise
       it is refused — a minority partition can never form a primary
       view, which is exactly what keeps the two sides of a partition
       from diverging);
    2. collects the full state of every proposed member and merges it
       keeping the highest version per key — since the previous
       primary view wrote to all its members and any two majorities
       intersect, the merge contains every committed write;
    3. installs the new view (fresh id) and merged state at every
       member, completing when all have acknowledged.

    Failure detection is deliberately out of scope (it is orthogonal;
    in the experiments the test harness triggers view changes when it
    reconfigures the network). *)

module Core = Sim.Core
module Net = Sim.Net

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  all_replicas : string list;
  mutable next_view_id : int;
  mutable next_rid : int;
  mutable current : View.t;
  timeout : float;
}

let create ~name ~sim ~net ~all_replicas ?(timeout = 50.0) () =
  {
    name;
    sim;
    net;
    all_replicas;
    next_view_id = 1;
    next_rid = 0;
    current = View.initial ~replicas:all_replicas;
    timeout;
  }

(* Merge collected replica states keeping the highest version per key. *)
let merge_states (states : (string * (int * int)) list list) :
    (string * (int * int)) list =
  List.fold_left
    (fun acc st ->
      List.fold_left
        (fun acc (key, (vn, value)) ->
          match List.assoc_opt key acc with
          | Some (vn', _) when vn' >= vn -> acc
          | _ -> (key, (vn, value)) :: List.remove_assoc key acc)
        acc st)
    [] states

(** [change_view t ~members ~on_done] runs the protocol.  [on_done]
    receives the installed view on success; failure means [members]
    was not a majority or some member did not respond in time. *)
let change_view t ~members ~on_done =
  let n_total = List.length t.all_replicas in
  if 2 * List.length members <= n_total then
    on_done ~ok:false t.current
  else begin
    let view_id = t.next_view_id in
    t.next_view_id <- view_id + 1;
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    let awaiting = ref members in
    let states = ref [] in
    let phase = ref `Collect in
    let live = ref true in
    Core.schedule t.sim ~delay:t.timeout (fun () ->
        if !live then begin
          live := false;
          on_done ~ok:false t.current
        end);
    Net.register t.net ~node:t.name (fun ~src msg ->
        if !live && Protocol.rid msg = rid then
          match (msg, !phase) with
          | Protocol.State_rep { state; _ }, `Collect ->
              if List.mem src !awaiting then begin
                awaiting := List.filter (fun r -> r <> src) !awaiting;
                states := state :: !states
              end;
              if !awaiting = [] then begin
                phase := `Install;
                awaiting := members;
                let merged = merge_states !states in
                List.iter
                  (fun r ->
                    Net.send t.net ~src:t.name ~dst:r
                      (Protocol.Install { rid; view_id; members; state = merged }))
                  members
              end
          | Protocol.Install_ack _, `Install ->
              if List.mem src !awaiting then
                awaiting := List.filter (fun r -> r <> src) !awaiting;
              if !awaiting = [] then begin
                live := false;
                t.current <- { View.id = view_id; members };
                on_done ~ok:true t.current
              end
          | _ -> ());
    List.iter
      (fun r -> Net.send t.net ~src:t.name ~dst:r (Protocol.State_req { rid }))
      members
  end
