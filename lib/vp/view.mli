(** Views (virtual partitions, El Abbadi-Toueg [2]): numbered sets of
    replicas believed mutually reachable; a view serves operations
    only when primary (contains a majority), so successive primary
    views intersect and state carries forward. *)

type t = { id : int; members : string list }

val initial : replicas:string list -> t
val is_member : t -> string -> bool
val primary : n_total:int -> t -> bool
val pp : t Fmt.t
