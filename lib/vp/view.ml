(** Views (virtual partitions) — El Abbadi & Toueg's approach [2],
    one of the replication schemes the paper's Section 5 proposes as a
    target for the nested-transaction treatment.

    A {e view} is a numbered set of replicas believed mutually
    reachable.  A view may serve operations only when it is
    {e primary} — here, when it contains a majority of all replicas.
    Because any two majorities intersect, successive primary views
    share a member, and a view change that collects state from a
    majority is guaranteed to see everything the previous primary view
    committed.  Within a stable primary view the protocol is cheap:
    reads go to {e one} member, writes to {e all} members of the view
    (read-one/write-all relative to the view). *)

type t = { id : int; members : string list }

let initial ~replicas = { id = 0; members = replicas }

let is_member v node = List.mem node v.members

(** Primary iff it contains a majority of the full replica set. *)
let primary ~n_total v = 2 * List.length v.members > n_total

let pp ppf v =
  Fmt.pf ppf "view#%d{%a}" v.id Fmt.(list ~sep:(any ",") string) v.members
