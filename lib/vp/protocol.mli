(** Wire protocol of the virtual-partition store.  Data operations
    carry the client's view id; replicas in a different view NACK. *)

type msg =
  | Read_req of { rid : int; view : int; key : string }
  | Read_rep of { rid : int; key : string; vn : int; value : int }
  | Write_req of { rid : int; view : int; key : string; vn : int; value : int }
  | Write_ack of { rid : int; key : string }
  | Nack of { rid : int; current_view : int }
  | State_req of { rid : int }
  | State_rep of { rid : int; state : (string * (int * int)) list }
  | Install of {
      rid : int;
      view_id : int;
      members : string list;
      state : (string * (int * int)) list;
    }
  | Install_ack of { rid : int }

val rid : msg -> int
