(** The view manager: a view change to a membership (refused unless it
    is a majority) collects every member's state, merges keeping the
    highest version per key, and installs the new view and state at
    every member.  Failure detection is out of scope (the experiment
    harness triggers changes when it reconfigures the network). *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Protocol.msg Sim.Net.t ->
  all_replicas:string list ->
  ?timeout:float ->
  unit ->
  t

val merge_states :
  (string * (int * int)) list list -> (string * (int * int)) list

val change_view :
  t -> members:string list -> on_done:(ok:bool -> View.t -> unit) -> unit
(** Run the protocol; [on_done] receives the installed view on
    success.  Failure: non-majority membership, or a member did not
    respond in time. *)
