(** The view manager: a view change to a membership (refused unless it
    is a majority) collects every member's state, merges keeping the
    highest version per key, and installs the new view and state at
    every member.  Request tracking — rids, the pending table, the
    deadline, retries/hedging — comes from {!Rpc.Engine}; under the
    default fire-once policy the wire behaviour is the historical one.
    Failure detection is out of scope (the experiment harness triggers
    changes when it reconfigures the network). *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Protocol.msg Sim.Net.t ->
  all_replicas:string list ->
  ?timeout:float ->
  ?policy:Rpc.Policy.t ->
  unit ->
  t
(** [policy] (default {!Rpc.Policy.default}, fire-once) governs
    retries, backoff and hedging of the collect and install waves.
    @raise Invalid_argument on an invalid policy. *)

val set_policy : t -> Rpc.Policy.t -> unit
val policy : t -> Rpc.Policy.t

val merge_states :
  (string * (int * int)) list list -> (string * (int * int)) list

val change_view :
  t -> members:string list -> on_done:(ok:bool -> View.t -> unit) -> unit
(** Run the protocol; [on_done] receives the installed view on
    success.  Failure: non-majority membership, or a member did not
    respond in time. *)
