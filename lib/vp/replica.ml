(** Virtual-partition replicas.

    State: a (version, value) per key — as in the quorum store — plus
    the current view.  Data operations are served only when the
    request's view id matches the replica's; otherwise the replica
    NACKs, preventing a client stranded in an old view (e.g. on the
    minority side of a partition) from reading stale data or writing
    where the primary view cannot see it. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  mutable view : View.t;
  mutable nacks : int;
}

let create ~name ~initial_view =
  { name; data = Hashtbl.create 32; view = initial_view; nacks = 0 }

let lookup t key = Option.value ~default:(0, 0) (Hashtbl.find_opt t.data key)

(* Canonically sorted by key: hash-bucket order must never reach
   State_rep payloads, traces, or test assertions. *)
let state t =
  (* lint: order-insensitive *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.data []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

let attach t ~(net : Protocol.msg Sim.Net.t) =
  Sim.Net.register net ~node:t.name (fun ~src msg ->
      let reply m = Sim.Net.send net ~src:t.name ~dst:src m in
      match msg with
      | Protocol.Read_req { rid; view; key } ->
          if view <> t.view.View.id then begin
            t.nacks <- t.nacks + 1;
            reply (Protocol.Nack { rid; current_view = t.view.View.id })
          end
          else
            let vn, value = lookup t key in
            reply (Protocol.Read_rep { rid; key; vn; value })
      | Protocol.Write_req { rid; view; key; vn; value } ->
          if view <> t.view.View.id then begin
            t.nacks <- t.nacks + 1;
            reply (Protocol.Nack { rid; current_view = t.view.View.id })
          end
          else begin
            let cur_vn, _ = lookup t key in
            if vn >= cur_vn then Hashtbl.replace t.data key (vn, value);
            reply (Protocol.Write_ack { rid; key })
          end
      | Protocol.State_req { rid } ->
          reply (Protocol.State_rep { rid; state = state t })
      | Protocol.Install { rid; view_id; members; state } ->
          (* adopt the new view; merge state keeping the newest version
             per key (the manager sends the majority-collected state) *)
          t.view <- { View.id = view_id; members };
          List.iter
            (fun (key, (vn, value)) ->
              let cur_vn, _ = lookup t key in
              if vn >= cur_vn then Hashtbl.replace t.data key (vn, value))
            state;
          reply (Protocol.Install_ack { rid })
      | Protocol.Read_rep _ | Protocol.Write_ack _ | Protocol.Nack _
      | Protocol.State_rep _ | Protocol.Install_ack _ ->
          ())
