(** Virtual-partition replicas: (version, value) per key plus the
    current view; data operations carrying a different view id are
    NACKed. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  mutable view : View.t;
  mutable nacks : int;
}

val create : name:string -> initial_view:View.t -> t
val lookup : t -> string -> int * int
val state : t -> (string * (int * int)) list
val attach : t -> net:Protocol.msg Sim.Net.t -> unit
