(** The virtual-partition client.

    Within a primary view, the protocol is read-one/write-all
    {e relative to the view}: a read asks a single (random) view
    member; a write discovers the version from one member and installs
    to every member.  Operations carry the view id; a NACK (replica in
    a different view) or a timeout fails the operation — the caller
    then waits for a view change.

    The read-one fast path is the scheme's selling point over static
    majority quorums; the price is the view-change machinery and the
    loss of minority-side availability. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng

type phase = PRead | PWrite_query of int | PInstall

type pending = {
  key : string;
  mutable rid : int;
  mutable phase : phase;
  mutable awaiting : string list;  (** members still to acknowledge *)
  mutable vn : int;
  mutable value : int;
  mutable live : bool;
  started : float;
  on_done : ok:bool -> vn:int -> value:int -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  rng : Prng.t;
  mutable view : View.t;
  mutable next_rid : int;
  pending : (int, pending) Hashtbl.t;
  timeout : float;
  mutable nacked : int;  (** ops failed by stale-view NACKs *)
}

let create ~name ~sim ~net ~view ?(timeout = 50.0) ~seed () =
  {
    name;
    sim;
    net;
    rng = Prng.create seed;
    view;
    next_rid = 0;
    pending = Hashtbl.create 8;
    timeout;
    nacked = 0;
  }

(** Adopt a new view (after the manager completes a change). *)
let set_view t view = t.view <- view

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let finish t (p : pending) ~ok =
  if p.live then begin
    p.live <- false;
    Hashtbl.remove t.pending p.rid;
    p.on_done ~ok ~vn:p.vn ~value:p.value
      ~latency:(Core.now t.sim -. p.started)
  end

let arm_timeout t (p : pending) =
  Core.schedule t.sim ~delay:t.timeout (fun () ->
      if p.live then finish t p ~ok:false)

let start_install t (p : pending) ~value =
  let rid = fresh_rid t in
  p.phase <- PInstall;
  p.rid <- rid;
  p.vn <- p.vn + 1;
  p.value <- value;
  p.awaiting <- t.view.View.members;
  Hashtbl.replace t.pending rid p;
  List.iter
    (fun r ->
      Net.send t.net ~src:t.name ~dst:r
        (Protocol.Write_req
           { rid; view = t.view.View.id; key = p.key; vn = p.vn; value }))
    t.view.View.members

let handle t ~src msg =
  let rid = Protocol.rid msg in
  match Hashtbl.find_opt t.pending rid with
  | None -> ()
  | Some p when not p.live -> ()
  | Some p -> (
      match msg with
      | Protocol.Nack _ ->
          t.nacked <- t.nacked + 1;
          finish t p ~ok:false
      | Protocol.Read_rep { key; vn; value; _ } when String.equal key p.key
        -> (
          match p.phase with
          | PRead ->
              p.vn <- vn;
              p.value <- value;
              finish t p ~ok:true
          | PWrite_query value' ->
              (* version discovery polls EVERY view member: a write
                 that failed mid-install may have left a higher
                 version on some member, and installing below it
                 would be silently ignored there (non-monotonic
                 histories, stale read-my-writes).  Taking the max
                 over the whole view restores monotonicity. *)
              p.vn <- max p.vn vn;
              p.awaiting <- List.filter (fun r -> r <> src) p.awaiting;
              if p.awaiting = [] then begin
                Hashtbl.remove t.pending rid;
                start_install t p ~value:value'
              end
          | PInstall -> ())
      | Protocol.Write_ack { key; _ } when String.equal key p.key -> (
          match p.phase with
          | PInstall ->
              p.awaiting <- List.filter (fun r -> r <> src) p.awaiting;
              if p.awaiting = [] then finish t p ~ok:true
          | PRead | PWrite_query _ -> ())
      | _ -> ())

let attach t = Net.register t.net ~node:t.name (fun ~src msg -> handle t ~src msg)

let start_op t ~key ~phase ~on_done =
  let rid = fresh_rid t in
  let p =
    {
      key;
      rid;
      phase;
      awaiting = [];
      vn = 0;
      value = 0;
      live = true;
      started = Core.now t.sim;
      on_done;
    }
  in
  Hashtbl.replace t.pending rid p;
  arm_timeout t p;
  rid

(* one random member of the current view *)
let pick_member t = Prng.choose t.rng t.view.View.members

(** Read: one round trip to a single view member. *)
let read t ~key ~on_done =
  let rid = start_op t ~key ~phase:PRead ~on_done in
  Net.send t.net ~src:t.name ~dst:(pick_member t)
    (Protocol.Read_req { rid; view = t.view.View.id; key })

(** Write: version from every view member (see the note in [handle]
    about partially-failed installs), then install at every member. *)
let write t ~key ~value ~on_done =
  let rid = start_op t ~key ~phase:(PWrite_query value) ~on_done in
  (match Hashtbl.find_opt t.pending rid with
  | Some p -> p.awaiting <- t.view.View.members
  | None -> ());
  List.iter
    (fun r ->
      Net.send t.net ~src:t.name ~dst:r
        (Protocol.Read_req { rid; view = t.view.View.id; key }))
    t.view.View.members
