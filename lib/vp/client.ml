(** The virtual-partition client.

    Within a primary view, the protocol is read-one/write-all
    {e relative to the view}: a read asks a single (random) view
    member; a write discovers the version from one member and installs
    to every member.  Operations carry the view id; a NACK (replica in
    a different view) or a timeout fails the operation — the caller
    then waits for a view change.

    The read-one fast path is the scheme's selling point over static
    majority quorums; the price is the view-change machinery and the
    loss of minority-side availability.  Request mechanics (rids,
    pending table, deadline, retries, hedging) come from
    {!Rpc.Engine}; under a hedging policy a stalled read-one falls
    back to the remaining view members — read-one and read-all are the
    two extremes of the same call. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng
module Engine = Rpc.Engine

type phase = PRead | PWrite_query of int | PInstall

type pending = {
  key : string;
  mutable rid : int;
  mutable phase : phase;
  mutable awaiting : string list;  (** members still to acknowledge *)
  mutable vn : int;
  mutable value : int;
  op : Engine.op;
  on_done : ok:bool -> vn:int -> value:int -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  eng : Protocol.msg Engine.t;
  rng : Prng.t;
  mutable view : View.t;
  timeout : float;
  mutable nacked : int;  (** ops failed by stale-view NACKs *)
}

let create ~name ~sim ~net ~view ?(timeout = 50.0) ?policy ~seed () =
  {
    name;
    sim;
    net;
    eng =
      Engine.create ~name ~sim ~net ~rid_of:Protocol.rid ?policy ~cat:"vp"
        ~seed ();
    rng = Prng.create seed;
    view;
    timeout;
    nacked = 0;
  }

(** Adopt a new view (after the manager completes a change). *)
let set_view t view = t.view <- view

let set_policy t p = Engine.set_policy t.eng p
let policy t = Engine.policy t.eng

let finish t (p : pending) ~ok =
  if Engine.op_live p.op then begin
    Engine.finish_op t.eng p.op;
    p.on_done ~ok ~vn:p.vn ~value:p.value
      ~latency:(Core.now t.sim -. Engine.op_started p.op)
  end

let rec on_reply t (p : pending) ~src msg =
  match msg with
  | Protocol.Nack _ ->
      t.nacked <- t.nacked + 1;
      finish t p ~ok:false;
      Engine.Done
  | Protocol.Read_rep { key; vn; value; _ } when String.equal key p.key -> (
      match p.phase with
      | PRead ->
          p.vn <- vn;
          p.value <- value;
          finish t p ~ok:true;
          Engine.Done
      | PWrite_query value' ->
          (* version discovery polls EVERY view member: a write that
             failed mid-install may have left a higher version on some
             member, and installing below it would be silently ignored
             there (non-monotonic histories, stale read-my-writes).
             Taking the max over the whole view restores
             monotonicity. *)
          p.vn <- max p.vn vn;
          p.awaiting <- List.filter (fun r -> r <> src) p.awaiting;
          if p.awaiting = [] then begin
            start_install t p ~value:value';
            Engine.Done
          end
          else Engine.Continue
      | PInstall -> Engine.Continue)
  | Protocol.Write_ack { key; _ } when String.equal key p.key -> (
      match p.phase with
      | PInstall ->
          p.awaiting <- List.filter (fun r -> r <> src) p.awaiting;
          if p.awaiting = [] then begin
            finish t p ~ok:true;
            Engine.Done
          end
          else Engine.Continue
      | PRead | PWrite_query _ -> Engine.Continue)
  | _ -> Engine.Continue

and start_install t (p : pending) ~value =
  let rid = Engine.fresh_rid t.eng in
  p.phase <- PInstall;
  p.rid <- rid;
  p.vn <- p.vn + 1;
  p.value <- value;
  p.awaiting <- t.view.View.members;
  let view = t.view.View.id in
  ignore
    (Engine.call t.eng ~op:p.op ~rid ~targets:t.view.View.members
       ~make:(fun rid ->
         Protocol.Write_req { rid; view; key = p.key; vn = p.vn; value })
       ~on_reply:(fun ~src msg -> on_reply t p ~src msg)
       ())

let attach t = Engine.attach t.eng

let start_op t ~key ~phase ~on_done =
  let rid = Engine.fresh_rid t.eng in
  let p_ref = ref None in
  let op =
    Engine.start_op t.eng ~timeout:t.timeout ~on_timeout:(fun () ->
        match !p_ref with None -> () | Some p -> finish t p ~ok:false)
  in
  let p =
    { key; rid; phase; awaiting = []; vn = 0; value = 0; op; on_done }
  in
  p_ref := Some p;
  p

(* one random member of the current view *)
let pick_member t = Prng.choose t.rng t.view.View.members

(** Read: one round trip to a single view member; the other members
    are the hedge pool (only contacted under a hedging policy). *)
let read t ~key ~on_done =
  let p = start_op t ~key ~phase:PRead ~on_done in
  let first = pick_member t in
  let rest = List.filter (fun r -> r <> first) t.view.View.members in
  let view = t.view.View.id in
  ignore
    (Engine.call t.eng ~op:p.op ~rid:p.rid ~targets:(first :: rest) ~fanout:1
       ~make:(fun rid -> Protocol.Read_req { rid; view; key })
       ~on_reply:(fun ~src msg -> on_reply t p ~src msg)
       ())

(** Write: version from every view member (see the note in [on_reply]
    about partially-failed installs), then install at every member. *)
let write t ~key ~value ~on_done =
  let p = start_op t ~key ~phase:(PWrite_query value) ~on_done in
  p.awaiting <- t.view.View.members;
  let view = t.view.View.id in
  ignore
    (Engine.call t.eng ~op:p.op ~rid:p.rid ~targets:t.view.View.members
       ~make:(fun rid -> Protocol.Read_req { rid; view; key })
       ~on_reply:(fun ~src msg -> on_reply t p ~src msg)
       ())
