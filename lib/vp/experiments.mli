(** E14: virtual partitions vs. static majority quorums — partition
    timeline, read-one fast path, minority refusal, staleness audit. *)

type phase_row = { phase : string; ok : int; failed : int; read_mean : float }

type comparison = {
  vp_read_mean : float;
  majority_read_mean : float;
  phases : phase_row list;
  stale_reads : int;
  minority_view_refused : bool;
}

val compare : ?seed:int -> unit -> comparison
