(** Wire protocol of the virtual-partition store.

    Every data operation carries the client's view id; a replica whose
    current view id differs NACKs, which is how clients (and the view
    manager) learn they are operating on a stale view. *)

type msg =
  | Read_req of { rid : int; view : int; key : string }
  | Read_rep of { rid : int; key : string; vn : int; value : int }
  | Write_req of { rid : int; view : int; key : string; vn : int; value : int }
  | Write_ack of { rid : int; key : string }
  | Nack of { rid : int; current_view : int }
      (** the replica is in a different view *)
  | State_req of { rid : int }  (** view change: send your whole state *)
  | State_rep of { rid : int; state : (string * (int * int)) list }
  | Install of { rid : int; view_id : int; members : string list;
                 state : (string * (int * int)) list }
      (** view change: adopt this view and state *)
  | Install_ack of { rid : int }

let rid = function
  | Read_req { rid; _ } | Read_rep { rid; _ } | Write_req { rid; _ }
  | Write_ack { rid; _ } | Nack { rid; _ } | State_req { rid }
  | State_rep { rid; _ } | Install { rid; _ } | Install_ack { rid } ->
      rid
