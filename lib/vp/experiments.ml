(** E14 (extension): virtual partitions vs. static majority quorums.

    One run, four phases over a 5-replica cluster:
    - A: healthy, view = all five — VP reads cost one round trip to
      one replica; static majority reads need 3 replies;
    - B: the network partitions {r0,r1,r2} | {r3,r4}; before any view
      change, VP operations that touch the wrong side fail (NACK or
      timeout);
    - C: a view change installs the majority side as the new primary
      view — operations resume, still read-one;
    - D: the partition heals; a final view change restores all five.

    Throughout, a single-writer audit checks reads are never stale —
    the view-intersection argument at work across the changes. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng

type phase_row = {
  phase : string;
  ok : int;
  failed : int;
  read_mean : float;
}

type comparison = {
  vp_read_mean : float;
  majority_read_mean : float;
  phases : phase_row list;
  stale_reads : int;
  minority_view_refused : bool;
}

let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i)
let majority_side = [ "r0"; "r1"; "r2" ]
let minority_side = [ "r3"; "r4" ]

let partition net =
  List.iter
    (fun a -> List.iter (fun b -> Net.cut_link net a b) minority_side)
    ("c0" :: "mgr" :: majority_side)

let heal net =
  List.iter
    (fun a -> List.iter (fun b -> Net.heal_link net a b) minority_side)
    ("c0" :: "mgr" :: majority_side)

let run_vp ~seed : phase_row list * int * bool =
  let sim = Core.create ~seed in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0"; "mgr" ])
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let view0 = View.initial ~replicas:replica_names in
  let replicas =
    List.map (fun name -> Replica.create ~name ~initial_view:view0) replica_names
  in
  List.iter (fun r -> Replica.attach r ~net) replicas;
  let mgr = Manager.create ~name:"mgr" ~sim ~net ~all_replicas:replica_names () in
  let client = Client.create ~name:"c0" ~sim ~net ~view:view0 ~seed () in
  Client.attach client;
  let phase = ref "A-healthy" in
  let rows = Hashtbl.create 4 in
  let lat = Hashtbl.create 4 in
  let record ?(is_read = false) ok latency =
    let o, f = Option.value ~default:(0, 0) (Hashtbl.find_opt rows !phase) in
    Hashtbl.replace rows !phase (if ok then (o + 1, f) else (o, f + 1));
    if ok && is_read then
      let s =
        match Hashtbl.find_opt lat !phase with
        | Some s -> s
        | None ->
            let s = Sim.Stats.create () in
            Hashtbl.replace lat !phase s;
            s
      in
      Sim.Stats.add s latency
  in
  (* single-writer audit: a read must return a version at least as
     new as the newest write that completed BEFORE the read began —
     writes overlapping the read may legally serialize on either
     side *)
  let completed_writes : (string, (int * float) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let stale = ref 0 in
  let rng = Prng.create (seed lxor 0xeb) in
  let keys = List.init 6 (fun i -> Fmt.str "k%d" i) in
  let rec traffic n =
    if n > 0 then
      Core.schedule sim ~delay:(Prng.exponential rng ~mean:4.0) (fun () ->
          let key = Prng.choose rng keys in
          if Prng.float rng < 0.7 then begin
            let started = Core.now sim in
            Client.read client ~key ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
                record ~is_read:true ok latency;
                if ok then
                  let prior =
                    List.filter
                      (fun (_, at) -> at <= started)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt completed_writes key))
                  in
                  let newest = List.fold_left (fun m (v, _) -> max m v) 0 prior in
                  if vn < newest then incr stale)
          end
          else begin
            let v = Prng.int rng 100_000 in
            Client.write client ~key ~value:v
              ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
                record ok latency;
                if ok then
                  Hashtbl.replace completed_writes key
                    ((vn, Core.now sim)
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt completed_writes key)))
          end;
          traffic (n - 1))
  in
  traffic 600;
  let minority_refused = ref false in
  (* B: partition at t=600 *)
  Core.schedule sim ~delay:600.0 (fun () ->
      phase := "B-partitioned";
      partition net;
      (* a minority-side view change must be refused *)
      Manager.change_view mgr ~members:minority_side ~on_done:(fun ~ok _ ->
          if not ok then minority_refused := true));
  (* C: view change onto the majority side at t=800 *)
  Core.schedule sim ~delay:800.0 (fun () ->
      Manager.change_view mgr ~members:majority_side ~on_done:(fun ~ok view ->
          if ok then begin
            Client.set_view client view;
            phase := "C-primary-view"
          end));
  (* D: heal and restore the full view at t=1600 *)
  Core.schedule sim ~delay:1600.0 (fun () ->
      heal net;
      Manager.change_view mgr ~members:replica_names ~on_done:(fun ~ok view ->
          if ok then begin
            Client.set_view client view;
            phase := "D-healed"
          end));
  Core.run sim;
  let order = [ "A-healthy"; "B-partitioned"; "C-primary-view"; "D-healed" ] in
  ( List.filter_map
      (fun phase ->
        match Hashtbl.find_opt rows phase with
        | Some (ok, failed) ->
            let read_mean =
              match Hashtbl.find_opt lat phase with
              | Some s -> (Sim.Stats.summarize s).Sim.Stats.mean
              | None -> nan
            in
            Some { phase; ok; failed; read_mean }
        | None -> None)
      order,
    !stale,
    !minority_refused )

(** Baseline: static majority quorums on the plain store, healthy
    network, same workload shape — for the read-latency comparison. *)
let majority_read_mean ~seed =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        strategy = Store.Strategy.majority;
        workload =
          { Store.Workload.default_spec with ops_per_client = 300; read_fraction = 0.7 };
        seed;
      }
  in
  r.Store.Cluster.reads.Sim.Stats.mean

let compare ?(seed = 31) () : comparison =
  let phases, stale_reads, minority_view_refused = run_vp ~seed in
  let vp_read_mean =
    match List.find_opt (fun r -> r.phase = "A-healthy") phases with
    | Some r -> r.read_mean
    | None -> nan
  in
  {
    vp_read_mean;
    majority_read_mean = majority_read_mean ~seed;
    phases;
    stale_reads;
    minority_view_refused;
  }
