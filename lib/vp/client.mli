(** The virtual-partition client: within a primary view, reads go to
    one member (the fast path), writes discover the version from every
    member and install at every member; NACK or timeout fails the
    operation.  Runs on {!Rpc.Engine}; under a hedging policy a
    stalled read-one falls back to the remaining view members. *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Protocol.msg Sim.Net.t ->
  view:View.t ->
  ?timeout:float ->
  ?policy:Rpc.Policy.t ->
  seed:int ->
  unit ->
  t

val set_view : t -> View.t -> unit
(** Adopt a new view (after the manager completes a change). *)

val set_policy : t -> Rpc.Policy.t -> unit
(** Swap the retry/hedge policy for operations issued after the call.
    @raise Invalid_argument on an invalid policy. *)

val policy : t -> Rpc.Policy.t

val attach : t -> unit

val read :
  t -> key:string ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val write :
  t -> key:string -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit
