(** The virtual-partition client: within a primary view, reads go to
    one member (the fast path), writes discover the version from every
    member and install at every member; NACK or timeout fails the
    operation. *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Protocol.msg Sim.Net.t ->
  view:View.t ->
  ?timeout:float ->
  seed:int ->
  unit ->
  t

val set_view : t -> View.t -> unit
(** Adopt a new view (after the manager completes a change). *)

val attach : t -> unit

val read :
  t -> key:string ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val write :
  t -> key:string -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit
