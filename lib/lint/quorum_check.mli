(** Static quorum-intersection checker: exhaustively verifies
    read/write and write/write intersection, coterie minimality and
    non-domination for every configuration family shipped in
    [lib/quorum] — without running the simulator. *)

module Config = Quorum.Config

val accepts : Config.t -> bool
(** Every read-quorum intersects every write-quorum — checked by an
    independent bitmask implementation (cross-validated against the
    list-based {!Quorum.Config.legal} by the checker and by a qcheck
    property). *)

type verdict = {
  name : string;
  universe : int;
  n_read : int;
  n_write : int;
  legal_rw : bool;
  ww_intersects : bool;
  nd : bool option;  (** non-domination, when the write side is a coterie *)
  minimal : bool;
  minimize_preserves : bool;
}

val check_config : name:string -> Config.t -> verdict

type expect = {
  exp_ww : bool option;
  exp_nd : bool option;
  exp_minimal : bool option;
}

val catalog : unit -> (string * expect * Config.t) list
(** Deterministic: all constructor families over small universes plus
    seeded {!Quorum.Gen} samples, with the structural expectations the
    constructions promise. *)

type summary = {
  checked : int;
  verdicts : verdict list;
  violations : string list;
}

val run : unit -> (summary, summary) result
(** [Error] carries the summary with its non-empty [violations]. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_summary : Format.formatter -> summary -> unit
val to_json : summary -> string
