(** Static quorum-intersection checking — the paper's load-bearing
    invariant, verified before any run starts.

    The source paper's correctness argument (and the Lemma 8 checkers
    in {!Quorum.Invariants}) rest on one structural property of every
    configuration: {e every read-quorum intersects every write-quorum}.
    This module verifies that property — plus write/write intersection,
    coterie minimality, and Barbara–Garcia-Molina non-domination —
    exhaustively, for every strategy family shipped in
    {!Quorum.Config} and for seeded samples of {!Quorum.Gen}'s random
    configuration space, {e without running the simulator}.

    The intersection test here is an independent implementation
    (bitmasks over the member universe) of the list-based
    {!Quorum.Config.legal}; the checker cross-checks the two on every
    configuration, and a qcheck property in the test suite does the
    same over random configurations.  Two implementations disagreeing
    is a checker bug surfaced before it can hide a real one. *)

module Config = Quorum.Config
module Coterie = Quorum.Coterie
module Prng = Qc_util.Prng

(* ---------- independent bitmask legality ---------- *)

let masks_of (c : Config.t) =
  let universe = Config.members c in
  let index d =
    let rec go i = function
      | [] -> invalid_arg "Quorum_check: DM outside the member universe"
      | x :: rest -> if String.equal x d then i else go (i + 1) rest
    in
    go 0 universe
  in
  let mask q = List.fold_left (fun m d -> m lor (1 lsl index d)) 0 q in
  ( universe,
    List.map mask c.Config.read_quorums,
    List.map mask c.Config.write_quorums )

(** [accepts c]: every read-quorum intersects every write-quorum, by
    bitmask enumeration — the invariant the replication algorithm
    cannot run without. *)
let accepts (c : Config.t) =
  let _, rs, ws = masks_of c in
  rs <> [] && ws <> []
  && List.for_all (fun r -> List.for_all (fun w -> r land w <> 0) ws) rs

(* ---------- per-configuration verdict ---------- *)

type verdict = {
  name : string;
  universe : int;  (** |members| *)
  n_read : int;
  n_write : int;
  legal_rw : bool;  (** read/write intersection (required) *)
  ww_intersects : bool;  (** write side pairwise intersects *)
  nd : bool option;  (** non-domination of the write coterie, when one *)
  minimal : bool;  (** both sides are antichains without duplicates *)
  minimize_preserves : bool;
      (** coverage predicates unchanged by {!Coterie.minimize_config} *)
}

let subset_mask a b = a land lnot b = 0

let antichain masks =
  let rec go = function
    | [] -> true
    | m :: rest ->
        List.for_all
          (fun m' -> not (subset_mask m m' || subset_mask m' m))
          rest
        && go rest
  in
  go masks

(* Exhaustive: minimization must not change what sets are covered. *)
let minimization_preserves_coverage (c : Config.t) =
  let universe = Config.members c in
  let n = List.length universe in
  if n > 16 then true (* out of enumeration range; catalog stays small *)
  else
    let m = Coterie.minimize_config c in
    let rec subsets acc = function
      | [] -> acc
      | d :: rest ->
          subsets (acc @ List.map (fun s -> d :: s) acc) rest
    in
    List.for_all
      (fun s ->
        Bool.equal (Config.read_covered c s) (Config.read_covered m s)
        && Bool.equal (Config.write_covered c s) (Config.write_covered m s))
      (subsets [ [] ] universe)

let check_config ~name (c : Config.t) : verdict =
  let universe, rs, ws = masks_of c in
  let ww_intersects =
    ws <> []
    && List.for_all (fun a -> List.for_all (fun b -> a land b <> 0) ws) ws
  in
  let nd =
    match Coterie.of_write_side c with
    | Some cot -> Some (Coterie.non_dominated cot)
    | None -> None
  in
  {
    name;
    universe = List.length universe;
    n_read = List.length rs;
    n_write = List.length ws;
    legal_rw = accepts c;
    ww_intersects;
    nd;
    minimal = antichain rs && antichain ws;
    minimize_preserves = minimization_preserves_coverage c;
  }

(* ---------- the shipped catalog ---------- *)

type expect = {
  exp_ww : bool option;
  exp_nd : bool option;
  exp_minimal : bool option;
}

let free = { exp_ww = None; exp_nd = None; exp_minimal = None }

let dms n = List.init n (fun i -> Fmt.str "d%d" i)

(** Every configuration family shipped in [lib/quorum], over small
    universes, with the structural expectations the constructions
    promise; plus seeded samples of the random generator.  The list is
    deterministic — same catalog every run. *)
let catalog () : (string * expect * Config.t) list =
  let named = ref [] in
  let push name expect c = named := (name, expect, c) :: !named in
  for n = 1 to 6 do
    let u = dms n in
    push (Fmt.str "rowa-%d" n)
      {
        exp_ww = Some true;
        (* the single write quorum {U} is dominated by any smaller
           coterie as soon as |U| > 1 *)
        exp_nd = Some (n = 1);
        exp_minimal = Some true;
      }
      (Config.rowa u);
    push (Fmt.str "raow-%d" n)
      {
        (* write side = disjoint singletons: no w/w intersection for
           n > 1 — exactly the generalization beyond coteries the
           paper's algorithm tolerates *)
        exp_ww = Some (n = 1);
        exp_nd = None;
        exp_minimal = Some true;
      }
      (Config.raow u);
    push (Fmt.str "majority-%d" n)
      {
        exp_ww = Some true;
        (* the classic result: majorities are non-dominated exactly
           at odd n *)
        exp_nd = Some (n mod 2 = 1);
        exp_minimal = Some true;
      }
      (Config.majority u)
  done;
  push "weighted-1.1.1-r2w2"
    { exp_ww = Some true; exp_nd = Some true; exp_minimal = Some true }
    (Config.weighted
       ~votes:[ ("d0", 1); ("d1", 1); ("d2", 1) ]
       ~read_threshold:2 ~write_threshold:2);
  push "weighted-2.1.1-r2w3"
    { exp_ww = Some true; exp_nd = Some false; exp_minimal = Some true }
    (Config.weighted
       ~votes:[ ("d0", 2); ("d1", 1); ("d2", 1) ]
       ~read_threshold:2 ~write_threshold:3);
  push "weighted-3.2.1.1-r4w4"
    { free with exp_ww = Some true; exp_minimal = Some true }
    (Config.weighted
       ~votes:[ ("d0", 3); ("d1", 2); ("d2", 1); ("d3", 1) ]
       ~read_threshold:4 ~write_threshold:4);
  List.iter
    (fun (rows, cols) ->
      push
        (Fmt.str "grid-%dx%d" rows cols)
        (* any two write quorums intersect: each contains a full row
           and a one-per-row cover *)
        { free with exp_ww = Some true }
        (Config.grid ~rows ~cols (dms (rows * cols))))
    [ (1, 4); (4, 1); (2, 2); (2, 3); (3, 2); (3, 3) ];
  (* two-level hierarchical (tree) quorums, mirroring
     [Store.Strategy.tree]: the universe splits into [groups]
     contiguous groups (bounds [g*n/groups .. (g+1)*n/groups)], the
     same arithmetic as the strategy); a quorum is a within-group
     majority from each group of a majority of groups.  Any two
     quorums share a group (two group-majorities intersect) and hold
     within-group majorities there, so read=write both sides
     intersect; quorums over distinct group subsets are incomparable
     and same-subset quorums differ only in equal-sized majorities,
     so both sides are antichains. *)
  let tree ~groups n =
    let u = dms n in
    let group g =
      let lo = g * n / groups and hi = (g + 1) * n / groups in
      List.filteri (fun i _ -> i >= lo && i < hi) u
    in
    let group_majorities g =
      let ms = group g in
      Config.subsets_of_size ((List.length ms / 2) + 1) ms
    in
    let quorums =
      Config.subsets_of_size ((groups / 2) + 1) (List.init groups Fun.id)
      |> List.concat_map (fun gs ->
             List.fold_left
               (fun acc g ->
                 List.concat_map
                   (fun q -> List.map (fun m -> q @ m) (group_majorities g))
                   acc)
               [ [] ] gs)
    in
    Config.make ~read_quorums:quorums ~write_quorums:quorums
  in
  List.iter
    (fun (groups, n) ->
      push
        (Fmt.str "tree-%d/%d" groups n)
        { free with exp_ww = Some true; exp_minimal = Some true }
        (tree ~groups n))
    [ (3, 4); (3, 5); (3, 6); (3, 9) ];
  (* seeded samples of the random-generation space: same seeds, same
     configurations, every run *)
  for seed = 0 to 99 do
    let rng = Prng.create seed in
    let n = 1 + Prng.int rng 5 in
    push (Fmt.str "gen-seed%d" seed) free (Quorum.Gen.config rng (dms n))
  done;
  List.rev !named

(* ---------- the checker ---------- *)

type summary = {
  checked : int;
  verdicts : verdict list;
  violations : string list;  (** empty = the catalog is sound *)
}

let check_entry (name, expect, c) (verdicts, violations) =
  let v = check_config ~name c in
  let fail fmt = Fmt.kstr (fun s -> Fmt.str "%s: %s" name s) fmt in
  let expect_bool what expected actual acc =
    match expected with
    | Some e when not (Bool.equal e actual) ->
        fail "%s = %b, construction promises %b" what actual e :: acc
    | _ -> acc
  in
  let violations =
    (if not v.legal_rw then
       [ fail "read/write intersection VIOLATED — illegal configuration" ]
     else [])
    @ (if not (Bool.equal v.legal_rw (Config.legal c)) then
         [
           fail
             "static (bitmask) and dynamic (Config.legal) legality disagree \
              (%b vs %b)"
             v.legal_rw (Config.legal c);
         ]
       else [])
    @ (if not v.minimize_preserves then
         [ fail "minimization changes quorum coverage" ]
       else [])
    @ (match Coterie.of_write_side c with
      | Some cot ->
          let witness = Coterie.domination_witness cot in
          let nd = Coterie.non_dominated cot in
          if Bool.equal nd (Option.is_none witness) then []
          else [ fail "non_dominated and domination_witness disagree" ]
      | None -> [])
    @ expect_bool "write/write intersection" expect.exp_ww v.ww_intersects []
    @ (match (expect.exp_nd, v.nd) with
      | Some e, Some actual when not (Bool.equal e actual) ->
          [ fail "non-domination = %b, construction promises %b" actual e ]
      | Some _, None ->
          [ fail "expected a write-side coterie, found none" ]
      | _ -> [])
    @ expect_bool "minimality" expect.exp_minimal v.minimal []
    @ violations
  in
  (v :: verdicts, violations)

(** Run the full catalog.  [Ok summary] means every configuration
    satisfies read/write intersection, both legality implementations
    agree, minimization preserves coverage, and every structural
    promise of the constructors holds. *)
let run () : (summary, summary) result =
  let verdicts, violations =
    List.fold_right check_entry (catalog ()) ([], [])
  in
  let s =
    { checked = List.length verdicts; verdicts; violations }
  in
  if violations = [] then Ok s else Error s

(* ---------- rendering ---------- *)

let pp_verdict ppf v =
  let bopt = function None -> "-" | Some true -> "yes" | Some false -> "no" in
  Fmt.pf ppf "%-22s |U|=%d r=%-3d w=%-3d rw:%-3s ww:%-3s nd:%-3s min:%-3s"
    v.name v.universe v.n_read v.n_write
    (if v.legal_rw then "yes" else "NO")
    (if v.ww_intersects then "yes" else "no")
    (bopt v.nd)
    (if v.minimal then "yes" else "no")

let pp_summary ppf s =
  Fmt.pf ppf "checked %d configurations@." s.checked;
  List.iter (fun v -> Fmt.pf ppf "  %a@." pp_verdict v) s.verdicts;
  match s.violations with
  | [] -> Fmt.pf ppf "quorum check: OK@."
  | vs ->
      Fmt.pf ppf "quorum check: %d VIOLATION(S)@." (List.length vs);
      List.iter (fun v -> Fmt.pf ppf "  %s@." v) vs

let json_of_verdict v : Obs.Json.t =
  let bopt = function
    | None -> Obs.Json.Null
    | Some b -> Obs.Json.Bool b
  in
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str v.name);
      ("universe", Obs.Json.Num (float_of_int v.universe));
      ("read_quorums", Obs.Json.Num (float_of_int v.n_read));
      ("write_quorums", Obs.Json.Num (float_of_int v.n_write));
      ("legal_rw", Obs.Json.Bool v.legal_rw);
      ("ww_intersects", Obs.Json.Bool v.ww_intersects);
      ("non_dominated", bopt v.nd);
      ("minimal", Obs.Json.Bool v.minimal);
      ("minimize_preserves", Obs.Json.Bool v.minimize_preserves);
    ]

let to_json (s : summary) =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("ok", Obs.Json.Bool (s.violations = []));
         ("checked", Obs.Json.Num (float_of_int s.checked));
         ( "violations",
           Obs.Json.List (List.map (fun v -> Obs.Json.Str v) s.violations) );
         ("entries", Obs.Json.List (List.map json_of_verdict s.verdicts));
       ])
