(** Lint findings and reporters.

    A finding pins one rule violation to an exact [file:line:col].
    Reporters are deterministic: findings are emitted in
    (file, line, col, rule) order, so two runs over the same tree
    produce identical bytes — the reports themselves obey the
    determinism discipline they enforce. *)

type finding = {
  file : string;
  line : int;
  col : int;  (** 0-based, as the compiler counts *)
  rule : string;
  msg : string;
}

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

(* [sort_uniq] over the full record: identical findings (several
   passes or walks discovering the same fact) collapse to one;
   distinct findings that share a location — two rules, or one rule
   with two messages — all survive, in a fixed order. *)
let sort findings = List.sort_uniq compare_finding findings

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let to_text findings =
  Fmt.str "%a"
    Fmt.(list ~sep:(any "@.") pp_finding)
    (sort findings)

let json_of_finding f : Obs.Json.t =
  Obs.Json.Obj
    [
      ("file", Obs.Json.Str f.file);
      ("line", Obs.Json.Num (float_of_int f.line));
      ("col", Obs.Json.Num (float_of_int f.col));
      ("rule", Obs.Json.Str f.rule);
      ("msg", Obs.Json.Str f.msg);
    ]

let to_json findings =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("findings", Obs.Json.List (List.map json_of_finding (sort findings)));
         ("count", Obs.Json.Num (float_of_int (List.length findings)));
       ])
