(** Lock-order discipline ([lock-order]): every iteration whose body
    acquires locks ([Hashtbl.replace]/[add] into a lock-named table)
    must iterate a collection dominated by a canonical
    [List.sort_uniq] — the deadlock-freedom argument of the
    transaction prepare path, proven on code shape.  Silence a line
    with [(* lint: lockorder-ok *)]. *)

val rule : string

val run :
  units:Typed.unit_info list ->
  pragmas_of:(string -> (int * string) list) ->
  Report.finding list
