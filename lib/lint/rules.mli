(** Determinism lint rules: an AST walk (compiler-libs [Pparse] +
    [Ast_iterator]) over the repo's own sources.

    Rules (ids in parentheses):
    - effects ([effect-ban]): [Random.*], [Unix.*], [Sys.time] —
      randomness must flow through the seeded {!Qc_util.Prng}, time
      through the simulator's virtual clock;
    - iteration order ([hashtbl-order]): [Hashtbl.iter] /
      [Hashtbl.fold], whose bucket order is implementation-defined —
      sort at the boundary or silence with
      [(* lint: order-insensitive *)] after review;
    - float comparison ([float-compare]): polymorphic [=] / [<>] /
      [compare] on float expressions, and bare [compare] passed to a
      sort;
    - pragma hygiene ([unknown-pragma], [unused-pragma]): pragmas come
      from a fixed allowlist and must silence something;
    - unreadable/unparsable input ([parse-error]). *)

val rule_effect : string
val rule_hashtbl : string
val rule_float : string
val rule_parse : string
val rule_unknown_pragma : string
val rule_unused_pragma : string

val pragma_allowlist : (string * string) list
(** Pragma token -> the rule it may silence. *)

val analyze_pragmas : (string * string) list
(** Pragma token -> the whole-program analyze rule it silences
    ([taint-ok], [totality-ok], [lockorder-ok]).  Known to the
    per-file lint (never [unknown-pragma] / [unused-pragma]); applied
    by {!Analyze}. *)

val default_exempt : string -> bool
(** The one path allowed ambient effects: [lib/util/prng.ml]. *)

val scan_pragma_lines : string -> (int * string) list
(** The (line, token) lint pragmas of one source file — the shared
    lexical scan the analyzer uses to silence its own findings.
    Unreadable files yield []. *)

val lint_file : ?exempt_effects:bool -> string -> Report.finding list
(** Lint one [.ml] file; [exempt_effects] defaults to
    {!default_exempt} on the path. *)

val lint_paths : string list -> (Report.finding list, string) result
(** Lint every [.ml] under the given files/directories, walked
    recursively in sorted order.  [Error] on a missing path. *)
