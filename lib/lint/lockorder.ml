(** Lock-order discipline.

    The deadlock-freedom argument behind the transaction prepare path
    is classical two-phase locking over a {e canonically ordered}
    footprint: if every multi-key acquisition walks its keys in one
    global order (sorted, deduplicated), two transactions can never
    hold-and-wait in a cycle.  The runtime samples this (the swarm
    never finds the deadlock that cannot happen); this pass proves the
    code shape on every commit.

    What is checked: every iteration ([List.iter]/[iteri]/[fold_left],
    [Array.iter]/[iteri] — resolved by uid, alias-proof) whose body
    acquires a lock — a [Hashtbl.replace]/[Hashtbl.add] into a table
    whose name mentions "lock" — must iterate a collection {e
    dominated by a canonical sort}: the collection expression is a
    [List.sort_uniq]/[List.sort] application, or a variable whose
    definition (followed through [let]-chains in the enclosing scope)
    is one.  Releases ([Hashtbl.remove]) are free: dropping locks in
    any order cannot deadlock.

    A finding line can be silenced with [(* lint: lockorder-ok *)]
    after review — e.g. a single-key loop that cannot interleave. *)

let rule = "lock-order"

let iter_fns = [ "iter"; "iteri"; "fold_left" ]
let acquire_fns = [ "replace"; "add" ]
let sort_fns = [ "sort_uniq"; "sort"; "stable_sort"; "fast_sort" ]

let name_mentions_lock s =
  let s = String.lowercase_ascii s in
  let n = String.length s in
  let rec go i = i + 4 <= n && (String.sub s i 4 = "lock" || go (i + 1)) in
  go 0

(* The "name" of the table expression a Hashtbl operation targets:
   a record field ([t.locks]), a variable ([locks]), or a dotted path
   ([Registry.locks]). *)
let rec table_name (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_field (_, _, lbl) -> Some lbl.Types.lbl_name
  | Typedtree.Texp_ident (p, _, _) -> Some (Path.last p)
  | Typedtree.Texp_apply (f, _) -> table_name f
  | _ -> None

(* positional (unlabelled, present) arguments of an application *)
let positional args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

(* Does this function-argument body acquire a lock?  Returns the name
   of the lock table if so. *)
let acquires (body : Typedtree.expression) : string option =
  let found = ref None in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply (f, args)
      when Typed.resolves_to ~unit_:"Stdlib__Hashtbl" ~names:acquire_fns f -> (
        match positional args with
        | tbl :: _ -> (
            match table_name tbl with
            | Some n when name_mentions_lock n ->
                if !found = None then found := Some n
            | _ -> ())
        | [] -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it body;
  !found

(* Is this collection expression dominated by a canonical sort?
   Either directly an application of List/Array sort, or a variable
   whose visible [let]-definition is (chains followed to a small
   depth). *)
let rec sorted ~env depth (e : Typedtree.expression) =
  depth > 0
  &&
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, _)
    when Typed.resolves_to ~unit_:"Stdlib__List" ~names:sort_fns f
         || Typed.resolves_to ~unit_:"Stdlib__Array" ~names:sort_fns f ->
      true
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
      match List.find_opt (fun (i, _) -> Ident.same i id) env with
      | Some (_, def) -> sorted ~env (depth - 1) def
      | None -> false)
  | _ -> false

let run ~(units : Typed.unit_info list)
    ~(pragmas_of : string -> (int * string) list) : Report.finding list =
  let findings = ref [] in
  List.iter
    (fun (u : Typed.unit_info) ->
      let silenced line =
        List.exists
          (fun (pl, tok) ->
            String.equal tok "lockorder-ok" && (pl = line || pl = line - 1))
          (pragmas_of u.Typed.u_source)
      in
      (* [env] maps let-bound idents in scope to their definitions;
         maintained with save/restore around each [let] body, so
         shadowing and scope exit behave like the language. *)
      let env = ref [] in
      let rec expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_let (_, vbs, body) ->
            List.iter (fun (vb : Typedtree.value_binding) ->
                expr self vb.Typedtree.vb_expr) vbs;
            let saved = !env in
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                | Typedtree.Tpat_var (id, _) ->
                    env := (id, vb.Typedtree.vb_expr) :: !env
                | _ -> ())
              vbs;
            expr self body;
            env := saved
        | Typedtree.Texp_apply (f, args)
          when Typed.resolves_to ~unit_:"Stdlib__List" ~names:iter_fns f
               || Typed.resolves_to ~unit_:"Stdlib__Array"
                    ~names:[ "iter"; "iteri" ] f ->
            let pos = positional args in
            let fn_arg =
              List.find_opt
                (fun (a : Typedtree.expression) ->
                  match a.Typedtree.exp_desc with
                  | Typedtree.Texp_function _ -> true
                  | _ -> false)
                pos
            in
            let coll =
              match pos with [] -> None | _ -> List.nth_opt pos (List.length pos - 1)
            in
            (match (fn_arg, coll) with
            | Some fn, Some coll when not (sorted ~env:!env 8 coll) -> (
                match acquires fn with
                | Some tbl ->
                    let line = Typed.line_of e.Typedtree.exp_loc in
                    if not (silenced line) then
                      findings :=
                        {
                          Report.file = u.Typed.u_source;
                          line;
                          col = Typed.col_of e.Typedtree.exp_loc;
                          rule;
                          msg =
                            Fmt.str
                              "multi-key lock acquisition into %s iterates a \
                               footprint not dominated by a canonical \
                               List.sort_uniq — unsorted acquisition orders \
                               can deadlock under hold-and-wait; sort (and \
                               dedupe) the footprint first"
                              tbl;
                        }
                        :: !findings
                | None -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr self e
        | _ -> Tast_iterator.default_iterator.expr self e
      in
      let it = { Tast_iterator.default_iterator with expr } in
      it.Tast_iterator.structure it u.Typed.u_structure)
    units;
  List.rev !findings
