(** Whole-program call graph over analyzed units: one node per
    structure-level value binding, edges by {!Shape.Uid.t}-resolved
    identifier uses (alias-proof), external references kept with their
    use-site locations for the taint pass. *)

type node = {
  n_unit : string;  (** owning compilation unit *)
  n_name : string;  (** binding path within the unit, e.g. ["M.helper"] *)
  n_source : string;  (** source file of the unit *)
  n_line : int;
  n_col : int;
  mutable n_calls : string list;  (** callee node keys, deduplicated *)
  mutable n_ext : (string * int * int) list;
      (** external refs: (display path, line, col) at the use site *)
}

type t

val key : unit_:string -> name:string -> string
(** Node key: ["<unit>.<binding path>"]. *)

val node : t -> string -> node option
val nodes_in_order : t -> node list
(** All nodes, in deterministic definition order. *)

val pat_vars :
  'k Typedtree.general_pattern -> (Ident.t * Location.t) list
(** Variables bound by a binding pattern, in source order. *)

val build : Typed.unit_info list -> t

val callers : t -> (string, string list) Hashtbl.t
(** Reverse adjacency: callee key -> caller keys, deterministic
    order. *)
