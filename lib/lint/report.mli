(** Lint findings and deterministic text/JSON reporters. *)

type finding = {
  file : string;
  line : int;
  col : int;  (** 0-based, as the compiler counts *)
  rule : string;
  msg : string;
}

val compare_finding : finding -> finding -> int
(** (file, line, col, rule, msg) order — a total order over the whole
    record, so sorting also identifies exact duplicates. *)

val sort : finding list -> finding list
(** Sorted, and deduplicated of {e identical} findings only — report
    order and content never depend on discovery order. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [rule] message]. *)

val to_text : finding list -> string

val to_json : finding list -> string
(** [{"findings": [...], "count": n}], deterministic bytes. *)
