(** Lint findings and deterministic text/JSON reporters. *)

type finding = {
  file : string;
  line : int;
  col : int;  (** 0-based, as the compiler counts *)
  rule : string;
  msg : string;
}

val compare_finding : finding -> finding -> int
(** (file, line, col, rule) order. *)

val sort : finding list -> finding list
(** Sorted and deduplicated — report order never depends on discovery
    order. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [rule] message]. *)

val to_text : finding list -> string

val to_json : finding list -> string
(** [{"findings": [...], "count": n}], deterministic bytes. *)
