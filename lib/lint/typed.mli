(** Typedtree loading for the whole-program passes: reads the [.cmt]
    files dune already produces ([-bin-annot]) instead of
    re-typechecking, and shares the small helpers every pass needs.
    See DESIGN.md section 17. *)

type unit_info = {
  u_name : string;  (** compilation-unit name, e.g. ["Store__Replica"] *)
  u_source : string;  (** source path relative to the build context root *)
  u_structure : Typedtree.structure;
}

val load : build_dir:string -> src_prefixes:string list -> unit_info list
(** Every implementation unit under [build_dir] whose recorded source
    path starts with a prefix (empty list = all), deterministically
    ordered by unit name; unreadable or non-implementation [.cmt]s are
    skipped. *)

val uid_unit : Shape.Uid.t -> string option
(** The compilation unit a definition uid belongs to, when known. *)

val line_of : Location.t -> int
val col_of : Location.t -> int

val resolves_to :
  unit_:string -> names:string list -> Typedtree.expression -> bool
(** Whether an identifier expression resolves — by uid, so through any
    module alias — to one of [names] defined in compilation unit
    [unit_] (e.g. [~unit_:"Stdlib__List" ~names:["iter"]]). *)

val has_attr : Parsetree.attributes -> string -> bool
(** Whether an attribute list carries [lint.<name>]. *)
