(** The whole-program analyzer: orchestrates the typedtree passes.

    [run] loads every compiled unit under the build directory whose
    source lives under the requested prefixes (default [lib/]), builds
    the call graph once, and runs the three passes:

    - {!Taint} — interprocedural effect taint with call chains;
    - {!Totality} — protocol handler/codec totality;
    - {!Lockorder} — canonical-sort domination of lock loops.

    Pragma scanning reuses the lexical scheme of the syntactic lint
    ({!Rules.scan_pragma_lines}): each pass consults the pragma lines
    of the file it is about to report on, through a shared per-file
    cache.  Findings come back sorted and deduplicated by
    {!Report.sort}, so the text and JSON reports are byte-identical
    across runs. *)

let all_rules = [ Taint.rule; Totality.rule; Lockorder.rule ]

(** Resolve a recorded source path against the build dir (dune copies
    sources into the build context, so [_build/default/lib/...] exists
    whenever the cmt does). *)
let source_path ~build_dir src =
  let in_build = Filename.concat build_dir src in
  if Sys.file_exists in_build then Some in_build
  else if Sys.file_exists src then Some src
  else None

let run ?(only = []) ?(exclude = []) ~build_dir ~src_prefixes () :
    (Report.finding list, string) result =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Error
      (Fmt.str "build directory %s not found — run `dune build` first" build_dir)
  else
    let units = Typed.load ~build_dir ~src_prefixes in
    if units = [] then
      Error
        (Fmt.str
           "no compiled units under %s match source prefix%s %s — run `dune \
            build` first"
           build_dir
           (if List.length src_prefixes = 1 then "" else "es")
           (String.concat ", " src_prefixes))
    else begin
      (* shared per-file pragma cache *)
      let cache : (string, (int * string) list) Hashtbl.t = Hashtbl.create 32 in
      let pragmas_of src =
        match Hashtbl.find_opt cache src with
        | Some p -> p
        | None ->
            let p =
              match source_path ~build_dir src with
              | Some path -> Rules.scan_pragma_lines path
              | None -> []
            in
            Hashtbl.add cache src p;
            p
      in
      let graph = Callgraph.build units in
      let wanted rule =
        (only = [] || List.mem rule only) && not (List.mem rule exclude)
      in
      let findings =
        (if wanted Taint.rule then Taint.run ~graph ~pragmas_of else [])
        @ (if wanted Totality.rule then Totality.run ~units ~pragmas_of else [])
        @ if wanted Lockorder.rule then Lockorder.run ~units ~pragmas_of else []
      in
      Ok (Report.sort findings)
    end
