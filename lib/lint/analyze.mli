(** The whole-program analyzer ([lint.exe analyze]): loads typedtrees
    from a build directory and runs the {!Taint}, {!Totality} and
    {!Lockorder} passes.  See DESIGN.md section 17. *)

val all_rules : string list
(** The analyze rule ids: [effect-taint], [handler-totality],
    [lock-order]. *)

val run :
  ?only:string list ->
  ?exclude:string list ->
  build_dir:string ->
  src_prefixes:string list ->
  unit ->
  (Report.finding list, string) result
(** Analyze every compiled unit under [build_dir] whose source path
    starts with one of [src_prefixes] (e.g. [["lib/"]]).  [only] /
    [exclude] filter by rule id.  [Error] when the build directory or
    matching units are missing (run [dune build] first); findings come
    back {!Report.sort}ed. *)
