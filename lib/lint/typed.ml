(** Loading typedtrees for the whole-program passes.

    The analyzer does not re-typecheck anything: dune already compiles
    every module with [-bin-annot], so each compiled unit leaves a
    [.cmt] file carrying its full {!Typedtree.structure}.  This module
    walks a build directory (default [_build/default]), reads every
    [.cmt] with {!Cmt_format.read_cmt}, and keeps the implementation
    units whose recorded source path falls under the requested
    prefixes — the analyzed "program".

    Identity discipline: a unit is named by its compilation-unit name
    ([Store__Replica]); values are resolved across units by their
    {!Shape.Uid.t}, which the typechecker stamps on every definition
    and every use — module aliases ([module E = Rpc.Engine]) and
    library wrapping are already resolved in the uid, so the passes
    never have to guess what a dotted path means. *)

type unit_info = {
  u_name : string;  (** compilation-unit name, e.g. ["Store__Replica"] *)
  u_source : string;
      (** source path as recorded at compile time, relative to the
          build context root, e.g. ["lib/store/replica.ml"] *)
  u_structure : Typedtree.structure;
}

(* Deterministic recursive walk (same discipline as Rules.collect_ml):
   readdir output is sorted, so unit order never depends on the
   filesystem.  Unstat-able entries (broken symlinks, races) are
   skipped — a build tree is not guaranteed tidy. *)
let rec collect_cmt acc path =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      let entries =
        match Sys.readdir path with
        | exception Sys_error _ -> []
        | a -> List.sort String.compare (Array.to_list a)
      in
      List.fold_left
        (fun acc entry ->
          if entry = "" then acc
          else collect_cmt acc (Filename.concat path entry))
        acc entries
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc

let normalize_source s =
  let s =
    if String.length s >= 2 && String.sub s 0 2 = "./" then
      String.sub s 2 (String.length s - 2)
    else s
  in
  s

let under_prefix prefixes src =
  prefixes = []
  || List.exists
       (fun p ->
         let p = normalize_source p in
         let lp = String.length p in
         String.length src >= lp && String.sub src 0 lp = p)
       prefixes

(** Load every implementation unit under [build_dir] whose source path
    starts with one of [src_prefixes] (empty = everything).  Unreadable
    or foreign-version [.cmt] files are skipped silently — they belong
    to other tools; an empty result is the caller's error to raise. *)
let load ~build_dir ~src_prefixes : unit_info list =
  let files = List.rev (collect_cmt [] build_dir) in
  let load_one path =
    match Cmt_format.read_cmt path with
    | exception _ -> None
    | cmt -> (
        match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
        | Cmt_format.Implementation str, Some src ->
            let src = normalize_source src in
            if under_prefix src_prefixes src then
              Some
                { u_name = cmt.Cmt_format.cmt_modname; u_source = src; u_structure = str }
            else None
        | _ -> None)
  in
  let units = List.filter_map load_one files in
  (* the same unit can appear under several object dirs (byte and
     native, or a vendored copy); keep the first in sorted-path order *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun u ->
      if Hashtbl.mem seen u.u_name then false
      else begin
        Hashtbl.add seen u.u_name ();
        true
      end)
    units
    |> List.sort (fun a b -> String.compare a.u_name b.u_name)

(* ---------- small shared typedtree helpers ---------- *)

(** The compilation unit a use-site resolves to, when known. *)
let uid_unit : Shape.Uid.t -> string option = function
  | Shape.Uid.Item { comp_unit; _ } -> Some comp_unit
  | Shape.Uid.Compilation_unit cu -> Some cu
  | Shape.Uid.Internal | Shape.Uid.Predef _ -> None

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let col_of (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

(** [resolves_to ~unit_ ~names e] holds when the identifier [e]
    resolves (by uid — alias-proof) to [unit_.<one of names>]:
    e.g. [module E = List let _ = E.iter] still resolves to
    ["Stdlib__List", "iter"]. *)
let resolves_to ~unit_ ~names (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, vd) -> (
      match uid_unit vd.Types.val_uid with
      | Some cu -> String.equal cu unit_ && List.mem (Path.last p) names
      | None -> false)
  | _ -> false

(** Does an attribute list carry [lint.<name>]? *)
let has_attr attrs name =
  let target = "lint." ^ name in
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.Parsetree.attr_name.Location.txt target)
    attrs
