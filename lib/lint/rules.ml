(** The determinism lint rules: an AST walk over the repo's own
    sources using compiler-libs ([Pparse] + [Ast_iterator]).

    The repo's correctness story leans on byte-identical seeded runs
    (golden trace digests) — these rules reject, before any run
    starts, the constructs that silently rot them:

    - {b effect-ban}: [Random.*], [Unix.*] and [Sys.time] anywhere in
      library code.  All randomness must flow through the seeded
      {!Qc_util.Prng} (the one exempt implementation file) and all
      time through the virtual clock [Sim.Core.now].
    - {b hashtbl-order}: [Hashtbl.iter] / [Hashtbl.fold] — stdlib
      hash-bucket order is implementation-defined, so any result built
      by iteration can leak that order into traces and assertions.
      Sites whose result is genuinely order-insensitive (counts,
      existential checks, per-entry mutation) are silenced with an
      explicit [(* lint: order-insensitive *)] pragma after review;
      everything else must sort at the boundary.
    - {b float-compare}: polymorphic [=] / [<>] / [compare] applied to
      float expressions, and bare [compare] passed to a sort — the
      class of bug that forced the [Sim.Stats] rewrite onto
      [Float.compare] (nan, signed zeros, and polymorphic-compare
      cost).

    Pragmas come from a fixed allowlist; an unknown pragma name and a
    pragma that silences nothing are themselves findings, so stale
    escapes cannot accumulate. *)

(* rule ids *)
let rule_effect = "effect-ban"
let rule_hashtbl = "hashtbl-order"
let rule_float = "float-compare"
let rule_parse = "parse-error"
let rule_unknown_pragma = "unknown-pragma"
let rule_unused_pragma = "unused-pragma"

(** Pragma allowlist: comment token -> the rule it may silence. *)
let pragma_allowlist =
  [
    ("order-insensitive", rule_hashtbl);
    ("effect-ok", rule_effect);
    ("float-eq-ok", rule_float);
  ]

(** Pragmas owned by the whole-program analyzer ([lint.exe analyze]):
    token -> the analyze rule it silences.  The per-file lint accepts
    them as known (no [unknown-pragma]) and never reports them unused
    — whether they silence anything is the analyzer's question, not
    this file walk's. *)
let analyze_pragmas =
  [
    ("taint-ok", "effect-taint");
    ("totality-ok", "handler-totality");
    ("lockorder-ok", "lock-order");
  ]

(* ---------- pragma scanning (comments are not in the AST) ---------- *)

type pragma = { pline : int; pname : string; mutable used : bool }

(* A pragma is a plain comment whose whole text is "lint: NAME".
   Pragmas are recognized lexically — the compiler's lexer yields real
   comments only, so the pattern appearing inside a string literal or
   a docstring is never a pragma.  A comment that starts with "lint:"
   but carries trailing junk surfaces as an unknown pragma rather
   than being silently ignored. *)
let pragma_of_comment (text, (loc : Location.t)) =
  let text = String.trim text in
  let prefix = "lint:" in
  let plen = String.length prefix in
  if String.length text >= plen && String.sub text 0 plen = prefix then
    let name = String.trim (String.sub text plen (String.length text - plen)) in
    if name = "" then None
    else
      Some { pline = loc.Location.loc_start.Lexing.pos_lnum; pname = name; used = false }
  else None

let scan_pragmas source =
  let lexbuf = Lexing.from_string source in
  Lexer.init ();
  (try
     let rec drain () =
       match Lexer.token lexbuf with Parser.EOF -> () | _ -> drain ()
     in
     drain ()
   with _ -> () (* a lexical error resurfaces as a parse-error finding *));
  List.filter_map pragma_of_comment (Lexer.comments ())

(* ---------- the AST walk ---------- *)

open Parsetree

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let ident_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (Longident.flatten txt))
  | _ -> None

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

(* Float.* functions that do NOT return (or compare as) raw floats —
   applying these is not evidence the surrounding comparison is a
   float comparison. *)
let float_mod_nonfloat =
  [
    "compare"; "equal"; "to_int"; "to_string"; "is_nan"; "is_finite";
    "is_integer"; "sign_bit"; "classify_float";
  ]

(* Syntactic "this expression is a float": a float literal, an
   application of a float operator or Float.* producer, a float type
   constraint, or a conditional whose branches are.  A heuristic —
   the lint runs on parse trees, not typed trees — but it covers the
   classes that actually bite (literals and arithmetic). *)
let rec floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some [ op ] when List.mem op float_ops -> true
      | Some [ "float_of_int" ] -> true
      | Some [ "Float"; fn ] when not (List.mem fn float_mod_nonfloat) -> true
      | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ })
    ->
      true
  | Pexp_ifthenelse (_, a, Some b) -> floatish a || floatish b
  | _ -> false

let sort_functions =
  [
    [ "List"; "sort" ]; [ "List"; "stable_sort" ]; [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ];
  ]

let is_bare_compare (e : expression) =
  match ident_path e with Some [ "compare" ] -> true | _ -> false

let poly_eq_names = [ "="; "<>"; "compare" ]

type ctx = {
  file : string;
  exempt_effects : bool;
  mutable found : Report.finding list;
}

let add ctx ~(loc : Location.t) rule msg =
  let p = loc.Location.loc_start in
  ctx.found <-
    {
      Report.file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      msg;
    }
    :: ctx.found

let check_ident ctx ~loc path =
  match path with
  | "Random" :: _ when not ctx.exempt_effects ->
      add ctx ~loc rule_effect
        (Fmt.str "%s: ambient randomness breaks seeded reproducibility — \
                  draw through the seeded Qc_util.Prng"
           (String.concat "." path))
  | "Unix" :: _ when not ctx.exempt_effects ->
      add ctx ~loc rule_effect
        (Fmt.str "%s: real-world effects (wall clocks, processes, fds) are \
                  banned in library code — use the simulator's virtual time"
           (String.concat "." path))
  | [ "Sys"; "time" ] when not ctx.exempt_effects ->
      add ctx ~loc rule_effect
        "Sys.time: wall-clock reads are banned in library code — use \
         Sim.Core.now (virtual time)"
  | [ "Hashtbl"; ("iter" | "fold") ] ->
      add ctx ~loc rule_hashtbl
        (Fmt.str "%s: hash-bucket iteration order is implementation-defined \
                  and must not escape — sort the result at the boundary, or \
                  silence with (* lint: order-insensitive *) after review"
           (String.concat "." path))
  | _ -> ()

let check_apply ctx ~loc f args =
  (match ident_path f with
  | Some [ op ] when List.mem op poly_eq_names ->
      if List.exists (fun (_, a) -> floatish a) args then
        add ctx ~loc rule_float
          (Fmt.str "polymorphic %s on a float expression — use Float.compare \
                    / Float.equal (nan and signed zeros)"
             op)
  | Some path when List.mem path sort_functions -> (
      match args with
      | (_, cmp) :: _ when is_bare_compare cmp ->
          add ctx ~loc rule_float
            (Fmt.str "polymorphic compare passed to %s — use a monomorphic \
                      compare (Float.compare, Int.compare, String.compare, ...)"
               (String.concat "." path))
      | _ -> ())
  | _ -> ())

let iterator ctx =
  let expr (self : Ast_iterator.iterator) (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        check_ident ctx ~loc:e.pexp_loc (strip_stdlib (Longident.flatten txt))
    | Pexp_apply (f, args) -> check_apply ctx ~loc:e.pexp_loc f args
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  { Ast_iterator.default_iterator with expr }

(* ---------- pragma application ---------- *)

(* A pragma on the finding's line or the line above silences it. *)
let apply_pragmas pragmas findings =
  let silences (p : pragma) (f : Report.finding) =
    match List.assoc_opt p.pname pragma_allowlist with
    | Some rule ->
        rule = f.Report.rule
        && (p.pline = f.Report.line || p.pline = f.Report.line - 1)
    | None -> false
  in
  let kept =
    List.filter
      (fun f ->
        match List.find_opt (fun p -> silences p f) pragmas with
        | Some p ->
            p.used <- true;
            false
        | None -> true)
      findings
  in
  (* the caller rewrites [file] on every finding, so "" is fine here *)
  let pragma_findings =
    List.filter_map
      (fun p ->
        if List.mem_assoc p.pname analyze_pragmas then None
        else if not (List.mem_assoc p.pname pragma_allowlist) then
          Some
            {
              Report.file = "";
              line = p.pline;
              col = 0;
              rule = rule_unknown_pragma;
              msg =
                Fmt.str "unknown lint pragma %S — allowed: %s" p.pname
                  (String.concat ", "
                     (List.map fst pragma_allowlist
                     @ List.map fst analyze_pragmas));
            }
        else if not p.used then
          Some
            {
              Report.file = "";
              line = p.pline;
              col = 0;
              rule = rule_unused_pragma;
              msg =
                Fmt.str "pragma %S silences nothing on this or the next line \
                         — remove it"
                  p.pname;
            }
        else None)
      pragmas
  in
  kept @ pragma_findings

(* ---------- entry points ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The one implementation file allowed ambient effects: the seeded
   PRNG itself (lib/util/prng.ml). *)
let default_exempt path =
  Filename.basename path = "prng.ml"
  && Filename.basename (Filename.dirname path) = "util"

(** The (line, token) pragmas of one source file — the lexical scan
    shared with the whole-program analyzer, which anchors its own
    findings to source lines and applies the same silencing scheme.
    Unreadable files have no pragmas. *)
let scan_pragma_lines path =
  match read_file path with
  | source -> List.map (fun p -> (p.pline, p.pname)) (scan_pragmas source)
  | exception Sys_error _ -> []

(** Lint one [.ml] file.  [exempt_effects] disables the effect-ban
    rule (defaults to the {!default_exempt} path test). *)
let lint_file ?exempt_effects path : Report.finding list =
  let exempt_effects =
    match exempt_effects with Some e -> e | None -> default_exempt path
  in
  let ctx = { file = path; exempt_effects; found = [] } in
  let pragmas =
    match read_file path with
    | source -> scan_pragmas source
    | exception Sys_error e ->
        add ctx ~loc:Location.none rule_parse e;
        []
  in
  (match Pparse.parse_implementation ~tool_name:"lint" path with
  | ast ->
      let it = iterator ctx in
      it.Ast_iterator.structure it ast
  | exception e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Fmt.str "%a" Location.print_report err
        | _ -> Printexc.to_string e
      in
      add ctx ~loc:Location.none rule_parse msg);
  let fixed_file f = { f with Report.file = path } in
  Report.sort (List.map fixed_file (apply_pragmas pragmas ctx.found))

(* Deterministic recursive walk: readdir output is sorted before use
   so the report order never depends on the filesystem. *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    let entries = Array.to_list (Sys.readdir path) in
    let entries = List.sort String.compare entries in
    List.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else collect_ml acc (Filename.concat path entry))
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(** Lint every [.ml] file under the given paths (files or directories,
    walked recursively and deterministically). *)
let lint_paths paths : (Report.finding list, string) result =
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then
    Error (Fmt.str "no such file or directory: %s" (String.concat ", " missing))
  else
    let files = List.rev (List.fold_left collect_ml [] paths) in
    Ok (Report.sort (List.concat_map (fun f -> lint_file f) files))
