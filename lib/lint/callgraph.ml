(** Whole-program call graph over the analyzed units.

    Nodes are the structure-level value bindings of every unit
    (including bindings inside nested [module M = struct .. end]
    blocks); everything evaluated inside a binding's expression —
    however many closures deep — is attributed to that binding, which
    is exactly the granularity the taint pass needs to report "this
    function transitively reaches [Random.int]".

    Edges are identifier uses, resolved by {!Shape.Uid.t}: a use whose
    uid points at a structure-level binding of an analyzed unit is an
    internal edge; every other dotted use is recorded as an external
    reference (with its use-site location), which the taint pass
    classifies against the banned-effect list.  Uids see through
    module aliases and library wrapping, so [module E = Rpc.Engine]
    costs nothing in precision.

    Known imprecision, by construction: first-class functions passed
    as values are edges to where they are {e mentioned}, not to every
    call site that later invokes them — for reachability ("does this
    code ever mention the effect?") mentioning is the right question. *)

type node = {
  n_unit : string;  (** owning compilation unit *)
  n_name : string;  (** binding path within the unit, e.g. ["M.helper"] *)
  n_source : string;  (** source file of the unit *)
  n_line : int;
  n_col : int;
  mutable n_calls : string list;  (** callees, as node keys, dedup'd *)
  mutable n_ext : (string * int * int) list;
      (** external refs: (display path, line, col) at the use site *)
}

type t = {
  nodes : (string, node) Hashtbl.t;  (** key -> node *)
  mutable order : string list;  (** keys in deterministic definition order *)
}

let key ~unit_ ~name = unit_ ^ "." ^ name

let node t k = Hashtbl.find_opt t.nodes k

let nodes_in_order t = List.filter_map (node t) t.order

(* pattern variables of a binding pattern, in source order *)
let rec pat_vars : type k. k Typedtree.general_pattern -> (Ident.t * Location.t) list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, s) -> [ (id, s.Location.loc) ]
  | Typedtree.Tpat_alias (inner, id, s) -> (id, s.Location.loc) :: pat_vars inner
  | Typedtree.Tpat_tuple ps | Typedtree.Tpat_construct (_, _, ps, _) ->
      List.concat_map pat_vars ps
  | Typedtree.Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> pat_vars p) fields
  | Typedtree.Tpat_variant (_, Some p, _) -> pat_vars p
  | Typedtree.Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Typedtree.Tpat_value v -> pat_vars (v :> Typedtree.pattern)
  | Typedtree.Tpat_lazy p -> pat_vars p
  | _ -> []

(* The builder walks each unit twice: pass one registers every
   structure-level binding (so intra- and inter-unit edges resolve no
   matter the definition order), pass two walks binding bodies and
   records uses. *)

type builder = {
  graph : t;
  ids : (string, (Ident.t * string) list) Hashtbl.t;
      (** per unit: structure-level binding idents -> node key (uids
          of local [let]s inside bodies share the unit name, so edges
          within a unit resolve by ident stamp, not by uid) *)
}

let register_bindings b ~(u : Typed.unit_info) =
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.Typedtree.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match pat_vars vb.Typedtree.vb_pat with
            | [] -> ()
            | vars ->
                (* one node per binding, named after its first variable;
                   extra pattern variables alias to the same node *)
                let name =
                  String.concat "."
                    (List.rev (Ident.name (fst (List.hd vars)) :: prefix))
                in
                let k = key ~unit_:u.Typed.u_name ~name in
                let loc = snd (List.hd vars) in
                if not (Hashtbl.mem b.graph.nodes k) then begin
                  Hashtbl.add b.graph.nodes k
                    {
                      n_unit = u.Typed.u_name;
                      n_name = name;
                      n_source = u.Typed.u_source;
                      n_line = Typed.line_of loc;
                      n_col = Typed.col_of loc;
                      n_calls = [];
                      n_ext = [];
                    };
                  b.graph.order <- k :: b.graph.order
                end;
                List.iter
                  (fun (id, _) ->
                    Hashtbl.replace b.ids u.Typed.u_name
                      ((id, k)
                      :: (match Hashtbl.find_opt b.ids u.Typed.u_name with
                         | Some l -> l
                         | None -> [])))
                  vars)
          vbs
    | Typedtree.Tstr_module mb -> walk_module prefix mb.Typedtree.mb_id mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            walk_module prefix mb.Typedtree.mb_id mb.Typedtree.mb_expr)
          mbs
    | Typedtree.Tstr_include incl -> walk_module_expr prefix incl.Typedtree.incl_mod
    | _ -> ()
  and walk_module prefix id mexpr =
    let sub =
      match id with Some i -> Ident.name i :: prefix | None -> prefix
    in
    walk_module_expr sub mexpr
  and walk_module_expr prefix (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure str -> walk_structure prefix str
    | Typedtree.Tmod_constraint (me, _, _, _) -> walk_module_expr prefix me
    | Typedtree.Tmod_functor (_, me) -> walk_module_expr prefix me
    | _ -> ()
  in
  walk_structure [] u.Typed.u_structure

(* Pass two: record uses.  Everything inside a structure-level
   binding's expression belongs to that binding's node. *)
let record_uses b ~(u : Typed.unit_info) =
  let unit_ids =
    match Hashtbl.find_opt b.ids u.Typed.u_name with Some l -> l | None -> []
  in
  let lookup_local id =
    List.find_opt (fun (i, _) -> Ident.same i id) unit_ids
  in
  let current = ref None in
  let add_call k =
    match !current with
    | Some (n : node) when not (List.mem k n.n_calls) && k <> key ~unit_:n.n_unit ~name:n.n_name ->
        n.n_calls <- k :: n.n_calls
    | _ -> ()
  in
  let add_ext display loc =
    match !current with
    | Some (n : node) ->
        n.n_ext <- (display, Typed.line_of loc, Typed.col_of loc) :: n.n_ext
    | None -> ()
  in
  let use path (vd : Types.value_description) loc =
    match path with
    | Path.Pident id -> (
        (* same-unit reference: resolve by ident stamp so local [let]s
           (which share the unit's uid namespace) never alias a
           structure-level binding of the same name *)
        match lookup_local id with
        | Some (_, k) -> add_call k
        | None -> () (* a function parameter or body-local binding *))
    | _ -> (
        let name = Path.last path in
        match Typed.uid_unit vd.Types.val_uid with
        | Some cu when Hashtbl.mem b.ids cu -> (
            (* an analyzed unit: edge onto its structure-level binding
               when one matches; module-path prefixes inside the unit
               are searched by suffix *)
            let candidates =
              match Hashtbl.find_opt b.ids cu with Some l -> l | None -> []
            in
            match
              List.find_opt
                (fun (i, _) -> String.equal (Ident.name i) name)
                candidates
            with
            | Some (_, k) -> add_call k
            | None -> add_ext (Path.name path) loc)
        | Some _ | None -> add_ext (Path.name path) loc)
  in
  let expr_iter =
    let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
      (match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, vd) -> use p vd e.Typedtree.exp_loc
      | _ -> ());
      Tast_iterator.default_iterator.expr self e
    in
    { Tast_iterator.default_iterator with expr }
  in
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.Typedtree.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match pat_vars vb.Typedtree.vb_pat with
            | [] -> ()
            | (id0, _) :: _ ->
                let name =
                  String.concat "." (List.rev (Ident.name id0 :: prefix))
                in
                let k = key ~unit_:u.Typed.u_name ~name in
                current := node b.graph k;
                expr_iter.Tast_iterator.expr expr_iter vb.Typedtree.vb_expr;
                current := None)
          vbs
    | Typedtree.Tstr_module mb ->
        let sub =
          match mb.Typedtree.mb_id with
          | Some i -> Ident.name i :: prefix
          | None -> prefix
        in
        walk_module_expr sub mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            let sub =
              match mb.Typedtree.mb_id with
              | Some i -> Ident.name i :: prefix
              | None -> prefix
            in
            walk_module_expr sub mb.Typedtree.mb_expr)
          mbs
    | Typedtree.Tstr_include incl -> walk_module_expr prefix incl.Typedtree.incl_mod
    | Typedtree.Tstr_eval (e, _) ->
        (* top-level effects outside any binding: attribute to a
           per-unit pseudo-node so a stray [let () = Random.self_init]
           cannot hide in an eval item *)
        let name = "(toplevel)" in
        let k = key ~unit_:u.Typed.u_name ~name in
        if not (Hashtbl.mem b.graph.nodes k) then begin
          Hashtbl.add b.graph.nodes k
            {
              n_unit = u.Typed.u_name;
              n_name = name;
              n_source = u.Typed.u_source;
              n_line = Typed.line_of item.Typedtree.str_loc;
              n_col = Typed.col_of item.Typedtree.str_loc;
              n_calls = [];
              n_ext = [];
            };
          b.graph.order <- k :: b.graph.order
        end;
        current := node b.graph k;
        expr_iter.Tast_iterator.expr expr_iter e;
        current := None
    | _ -> ()
  and walk_module_expr prefix (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure str -> walk_structure prefix str
    | Typedtree.Tmod_constraint (me, _, _, _) -> walk_module_expr prefix me
    | Typedtree.Tmod_functor (_, me) -> walk_module_expr prefix me
    | _ -> ()
  in
  walk_structure [] u.Typed.u_structure

(** Build the call graph of the given units. *)
let build (units : Typed.unit_info list) : t =
  let graph = { nodes = Hashtbl.create 256; order = [] } in
  let b = { graph; ids = Hashtbl.create 64 } in
  List.iter (fun u -> register_bindings b ~u) units;
  List.iter (fun u -> record_uses b ~u) units;
  graph.order <- List.rev graph.order;
  (* edges and external refs were consed in reverse visit order *)
  List.iter
    (fun k ->
      match node graph k with
      | Some n ->
          n.n_calls <- List.rev n.n_calls;
          n.n_ext <- List.rev n.n_ext
      | None -> ())
    graph.order;
  graph

(** Reverse adjacency: callee key -> caller keys, deterministic. *)
let callers t : (string, string list) Hashtbl.t =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun (n : node) ->
      let k = key ~unit_:n.n_unit ~name:n.n_name in
      List.iter
        (fun callee ->
          let prev =
            match Hashtbl.find_opt rev callee with Some l -> l | None -> []
          in
          Hashtbl.replace rev callee (k :: prev))
        n.n_calls)
    (nodes_in_order t);
  (* lists were consed in deterministic forward order; restore it *)
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) rev;
  rev
