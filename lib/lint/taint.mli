(** Interprocedural effect taint ([effect-taint]): every function that
    transitively reaches a banned ambient effect ([Random.*],
    [Unix.*], [Sys.time]) is reported with the shortest call chain
    from its definition to the effect.  The seeded-PRNG implementation
    file is the sanctioned boundary; [(* lint: effect-ok *)] /
    [(* lint: taint-ok *)] silence a seed at its use line, and
    [(* lint: taint-ok *)] silences a tainted definition. *)

val rule : string

val run :
  graph:Callgraph.t ->
  pragmas_of:(string -> (int * string) list) ->
  Report.finding list
