(** Protocol handler totality.

    PR 8 grew {!Store.Protocol.msg} to fourteen frames; the safety of
    the transaction layer depends on no side silently dropping one —
    a wildcard arm in the replica dispatch would swallow a new frame
    at run time with no error anywhere.  This pass makes the shape a
    static contract, driven by attributes so the store and any future
    protocol opt in the same way:

    - [type msg = ... [@@lint.protocol]] declares a protocol type;
    - [let[@lint.protocol_handler] serve ...] marks the dispatch:
      every [match] over the protocol type inside it must be
      wildcard-free, and together the matches must name every
      constructor;
    - [let[@lint.protocol_serialize] to_wire ...] — same obligation;
    - [let[@lint.protocol_deserialize] of_wire ...] must {e construct}
      every constructor (a decoder that can never produce a frame has
      dropped it on the receive side).

    A protocol type with no annotated handler, serializer, or
    deserializer anywhere in the analyzed program is itself a finding:
    the contract must exist, not merely hold vacuously.

    A finding line can be silenced with [(* lint: totality-ok *)]. *)

let rule = "handler-totality"

type proto = {
  p_unit : string;
  p_type : string;  (** type name, e.g. ["msg"] *)
  p_source : string;
  p_line : int;
  p_constructors : string list;  (** declaration order *)
}

type role = Handler | Serialize | Deserialize

let role_attr = function
  | Handler -> "protocol_handler"
  | Serialize -> "protocol_serialize"
  | Deserialize -> "protocol_deserialize"

let role_name = function
  | Handler -> "handler"
  | Serialize -> "serializer"
  | Deserialize -> "deserializer"

type marked = {
  m_role : role;
  m_name : string;
  m_unit : string;
  m_source : string;
  m_line : int;
  m_col : int;
  m_expr : Typedtree.expression;
}

(* ---------- collection ---------- *)

let collect_protos (u : Typed.unit_info) : proto list =
  let acc = ref [] in
  let type_declaration _self (td : Typedtree.type_declaration) =
    if Typed.has_attr td.Typedtree.typ_attributes "protocol" then
      match td.Typedtree.typ_kind with
      | Typedtree.Ttype_variant cds ->
          acc :=
            {
              p_unit = u.Typed.u_name;
              p_type = td.Typedtree.typ_name.Location.txt;
              p_source = u.Typed.u_source;
              p_line = Typed.line_of td.Typedtree.typ_loc;
              p_constructors =
                List.map
                  (fun (cd : Typedtree.constructor_declaration) ->
                    cd.Typedtree.cd_name.Location.txt)
                  cds;
            }
            :: !acc
      | _ -> ()
  in
  let it = { Tast_iterator.default_iterator with type_declaration } in
  it.Tast_iterator.structure it u.Typed.u_structure;
  List.rev !acc

let collect_marked (u : Typed.unit_info) : marked list =
  let acc = ref [] in
  let value_binding _self (vb : Typedtree.value_binding) =
    let name =
      match Callgraph.pat_vars vb.Typedtree.vb_pat with
      | (id, _) :: _ -> Ident.name id
      | [] -> "_"
    in
    List.iter
      (fun role ->
        if Typed.has_attr vb.Typedtree.vb_attributes (role_attr role) then
          acc :=
            {
              m_role = role;
              m_name = name;
              m_unit = u.Typed.u_name;
              m_source = u.Typed.u_source;
              m_line = Typed.line_of vb.Typedtree.vb_pat.Typedtree.pat_loc;
              m_col = Typed.col_of vb.Typedtree.vb_pat.Typedtree.pat_loc;
              m_expr = vb.Typedtree.vb_expr;
            }
            :: !acc)
      [ Handler; Serialize; Deserialize ]
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          value_binding self vb;
          Tast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.Tast_iterator.structure it u.Typed.u_structure;
  List.rev !acc

(* ---------- type identity ---------- *)

(* Does this type expression denote protocol type [p]?  The path in a
   [Tconstr] is as the source wrote it (aliases unexpanded), so match
   by suffix: the last component must be the type name and the
   qualifying modules must be consistent with the declaring unit
   (["Store.Protocol.msg"] and ["Store__Protocol.msg"] both resolve to
   unit [Store__Protocol]; a bare ["msg"] must be used inside the
   declaring unit itself). *)
let type_is ~(current_unit : string) (p : proto) (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) -> (
      let parts = String.split_on_char '.' (Path.name path) in
      match List.rev parts with
      | tname :: rev_mods ->
          String.equal tname p.p_type
          &&
          let mods = List.rev rev_mods in
          let guess = String.concat "__" mods in
          (match mods with
          | [] -> String.equal current_unit p.p_unit
          | _ -> String.equal guess p.p_unit)
      | [] -> false)
  | _ -> false

(* ---------- pattern coverage ---------- *)

(* Walk one case pattern: record constructor names matched, and
   whether the case is a catch-all (wildcard or variable, possibly
   under or-patterns or aliases). *)
let rec pat_cover : type k.
    k Typedtree.general_pattern -> constructors:string list ref -> wild:bool ref -> unit =
 fun p ~constructors ~wild ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> wild := true
  | Typedtree.Tpat_alias (inner, _, _) -> pat_cover inner ~constructors ~wild
  | Typedtree.Tpat_or (a, b, _) ->
      pat_cover a ~constructors ~wild;
      pat_cover b ~constructors ~wild
  | Typedtree.Tpat_construct (_, cd, _, _) ->
      constructors := cd.Types.cstr_name :: !constructors
  | Typedtree.Tpat_value v -> pat_cover (v :> Typedtree.pattern) ~constructors ~wild
  | Typedtree.Tpat_exception _ -> ()
  | _ -> ()

type match_info = {
  mt_line : int;
  mt_col : int;
  mt_constructors : string list;
  mt_wild : (int * int) option;  (** loc of the offending catch-all case *)
}

(* Every match/function over protocol type [p] inside expression [e]. *)
let matches_over ~current_unit (p : proto) (e : Typedtree.expression) :
    match_info list =
  let acc = ref [] in
  let consider ~loc (cases : Typedtree.computation Typedtree.case list) =
    match cases with
    | [] -> ()
    | c0 :: _ ->
        if type_is ~current_unit p c0.Typedtree.c_lhs.Typedtree.pat_type then begin
          let constructors = ref [] and wild_loc = ref None in
          List.iter
            (fun (c : Typedtree.computation Typedtree.case) ->
              let wild = ref false in
              pat_cover c.Typedtree.c_lhs ~constructors ~wild;
              if !wild && !wild_loc = None then
                wild_loc :=
                  Some
                    ( Typed.line_of c.Typedtree.c_lhs.Typedtree.pat_loc,
                      Typed.col_of c.Typedtree.c_lhs.Typedtree.pat_loc ))
            cases;
          acc :=
            {
              mt_line = Typed.line_of loc;
              mt_col = Typed.col_of loc;
              mt_constructors = List.rev !constructors;
              mt_wild = !wild_loc;
            }
            :: !acc
        end
  in
  let value_cases_to_computation (cs : Typedtree.value Typedtree.case list) :
      Typedtree.computation Typedtree.case list =
    List.map
      (fun (c : Typedtree.value Typedtree.case) ->
        {
          Typedtree.c_lhs = Typedtree.as_computation_pattern c.Typedtree.c_lhs;
          c_guard = c.Typedtree.c_guard;
          c_rhs = c.Typedtree.c_rhs;
        })
      cs
  in
  let expr (self : Tast_iterator.iterator) (ex : Typedtree.expression) =
    (match ex.Typedtree.exp_desc with
    | Typedtree.Texp_match (_, cases, _) ->
        consider ~loc:ex.Typedtree.exp_loc cases
    | Typedtree.Texp_function { cases; _ } ->
        (* [fun m -> ...] is a parameter binding, not a dispatch: a
           single case whose pattern is a bare variable/wildcard names
           no constructor and must not count as a catch-all match.
           Multi-case [function C1 .. | C2 ..] (or a single
           constructor case) is a real match. *)
        let is_param_binding =
          match cases with
          | [ c ] ->
              let constructors = ref [] and wild = ref false in
              pat_cover
                (Typedtree.as_computation_pattern c.Typedtree.c_lhs)
                ~constructors ~wild;
              !wild && !constructors = []
          | _ -> false
        in
        if not is_param_binding then
          consider ~loc:ex.Typedtree.exp_loc (value_cases_to_computation cases)
    | _ -> ());
    Tast_iterator.default_iterator.expr self ex
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  List.rev !acc

(* Constructors of protocol type [p] constructed inside [e]. *)
let constructs_of ~current_unit (p : proto) (e : Typedtree.expression) :
    string list =
  let acc = ref [] in
  let expr (self : Tast_iterator.iterator) (ex : Typedtree.expression) =
    (match ex.Typedtree.exp_desc with
    | Typedtree.Texp_construct (_, cd, _) ->
        if type_is ~current_unit p cd.Types.cstr_res then
          acc := cd.Types.cstr_name :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr self ex
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  List.rev !acc

(* ---------- the pass ---------- *)

let finding ~source ~line ~col msg =
  { Report.file = source; line; col; rule; msg }

let missing_of ~all covered =
  List.filter (fun c -> not (List.mem c covered)) all

let run ~(units : Typed.unit_info list)
    ~(pragmas_of : string -> (int * string) list) : Report.finding list =
  let protos = List.concat_map collect_protos units in
  let marked = List.concat_map collect_marked units in
  let silenced source line =
    List.exists
      (fun (pl, tok) ->
        String.equal tok "totality-ok" && (pl = line || pl = line - 1))
      (pragmas_of source)
  in
  let findings = ref [] in
  let add ~source ~line ~col msg =
    if not (silenced source line) then
      findings := finding ~source ~line ~col msg :: !findings
  in
  List.iter
    (fun (p : proto) ->
      let qualified = Fmt.str "%s.%s" p.p_unit p.p_type in
      (* per role: the marked bindings that actually touch this type *)
      let role_bindings role =
        List.filter (fun m -> m.m_role = role) marked
      in
      let check_matches role =
        let bindings = role_bindings role in
        let relevant =
          List.filter_map
            (fun m ->
              match matches_over ~current_unit:m.m_unit p m.m_expr with
              | [] -> None
              | ms -> Some (m, ms))
            bindings
        in
        if relevant = [] then
          add ~source:p.p_source ~line:p.p_line ~col:0
            (Fmt.str
               "protocol type %s has no [@lint.%s] that matches it — a new \
                frame would have nowhere to be dispatched"
               qualified (role_attr role))
        else begin
          (* wildcard arms are findings wherever they appear *)
          List.iter
            (fun ((m : marked), ms) ->
              List.iter
                (fun mi ->
                  match mi.mt_wild with
                  | Some (line, col) ->
                      add ~source:m.m_source ~line ~col
                        (Fmt.str
                           "%s %s matches %s with a catch-all pattern — a new \
                            frame would be silently swallowed; spell every \
                            constructor"
                           (role_name role) m.m_name qualified)
                  | None -> ())
                ms)
            relevant;
          (* union coverage across every relevant match *)
          let covered =
            List.concat_map
              (fun (_, ms) -> List.concat_map (fun mi -> mi.mt_constructors) ms)
              relevant
          in
          let missing = missing_of ~all:p.p_constructors covered in
          if missing <> [] then
            let m, _ = List.hd relevant in
            add ~source:m.m_source ~line:m.m_line ~col:m.m_col
              (Fmt.str "%s %s never matches constructor%s %s of %s"
                 (role_name role) m.m_name
                 (if List.length missing = 1 then "" else "s")
                 (String.concat ", " missing)
                 qualified)
        end
      in
      check_matches Handler;
      check_matches Serialize;
      (* deserializer: must be able to produce every frame *)
      let deser = role_bindings Deserialize in
      let relevant =
        List.filter_map
          (fun m ->
            match constructs_of ~current_unit:m.m_unit p m.m_expr with
            | [] -> None
            | cs -> Some (m, cs))
          deser
      in
      if relevant = [] then
        add ~source:p.p_source ~line:p.p_line ~col:0
          (Fmt.str
             "protocol type %s has no [@lint.protocol_deserialize] that \
              constructs it — frames cannot come off the wire"
             qualified)
      else
        let covered = List.concat_map snd relevant in
        let missing = missing_of ~all:p.p_constructors covered in
        if missing <> [] then
          let m, _ = List.hd relevant in
          add ~source:m.m_source ~line:m.m_line ~col:m.m_col
            (Fmt.str
               "deserializer %s never constructs %s of %s — the receive side \
                drops %s frames"
               m.m_name
               (String.concat ", " missing)
               qualified
               (String.concat ", " missing)))
    protos;
  List.rev !findings
