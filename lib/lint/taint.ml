(** Interprocedural effect taint.

    The syntactic effect ban ({!Rules.rule_effect}) rejects a
    [Random.int] written at the call site; it cannot see one hidden
    behind two helper calls in another module.  This pass can: over
    the whole-program call graph, a function is {e tainted} when it
    directly mentions a banned effect or (transitively) calls a
    tainted function.  Every tainted function is reported, each with
    the shortest call chain from it to the effect — so the finding on
    a public entry point reads as the complete explanation, not a
    pointer into a maze.

    Banned roots (resolved by defining unit, so module aliases are
    seen through):
    - [Stdlib__Random] — any draw from the unseeded global PRNG;
    - [Unix] / [UnixLabels] — wall clocks, processes, fds;
    - [Stdlib__Sys.time] — the global mutable clock.

    The one sanctioned boundary is the seeded PRNG implementation
    ({!Rules.default_exempt}): its own effects (it has none today —
    splitmix64 is pure) are not seeds, and code reaching the effectful
    world {e through} it is the repo's discipline, not a finding.

    Pragmas: a banned use whose line (or the line above) carries
    [(* lint: effect-ok *)] or [(* lint: taint-ok *)] is not a seed; a
    tainted function whose definition line carries
    [(* lint: taint-ok *)] is not reported. *)

let rule = "effect-taint"

type banned = { b_display : string; b_line : int; b_col : int; b_why : string }

(* display is Path.name at the use site, e.g. "Stdlib.Random.int" *)
let classify ~display =
  (* [resolves] in callgraph records externals by display path only;
     match on the path with the Stdlib prefix stripped *)
  let parts = String.split_on_char '.' display in
  let parts = match parts with "Stdlib" :: rest -> rest | p -> p in
  match parts with
  | "Random" :: _ ->
      Some "ambient randomness breaks seeded reproducibility — draw through \
            the seeded Qc_util.Prng"
  | "Unix" :: _ | "UnixLabels" :: _ ->
      Some "real-world effects (wall clocks, processes, fds) are banned in \
            library code — use the simulator's virtual time"
  | [ "Sys"; "time" ] ->
      Some "wall-clock reads are banned in library code — use Sim.Core.now \
            (virtual time)"
  | _ -> None

(* pragma tokens that silence a seed at its use line *)
let seed_pragmas = [ "effect-ok"; "taint-ok" ]

(** Run the pass.  [pragmas_of] returns the (line, token) pragma list
    of a source file (the orchestrator caches the per-file scans). *)
let run ~(graph : Callgraph.t) ~(pragmas_of : string -> (int * string) list) :
    Report.finding list =
  let nodes = Callgraph.nodes_in_order graph in
  (* 1. seeds: nodes with a direct banned mention *)
  let direct : (string, banned) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Callgraph.node) ->
      if not (Rules.default_exempt n.Callgraph.n_source) then
        let silenced line =
          List.exists
            (fun (pl, tok) ->
              List.mem tok seed_pragmas && (pl = line || pl = line - 1))
            (pragmas_of n.Callgraph.n_source)
        in
        List.iter
          (fun (display, line, col) ->
            match classify ~display with
            | Some why when not (silenced line) ->
                let k =
                  Callgraph.key ~unit_:n.Callgraph.n_unit
                    ~name:n.Callgraph.n_name
                in
                if not (Hashtbl.mem direct k) then
                  Hashtbl.add direct k
                    { b_display = display; b_line = line; b_col = col; b_why = why }
            | _ -> ())
          n.Callgraph.n_ext)
    nodes;
  (* 2. propagate backwards: BFS over the reverse graph from the
     seeds, keeping, per tainted node, its successor on a shortest
     chain to an effect.  Node order is deterministic (definition
     order), so ties break identically on every run. *)
  let rev = Callgraph.callers graph in
  let succ : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun (n : Callgraph.node) ->
      let k = Callgraph.key ~unit_:n.Callgraph.n_unit ~name:n.Callgraph.n_name in
      if Hashtbl.mem direct k then begin
        Hashtbl.replace succ k None;
        Queue.add k q
      end)
    nodes;
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    let callers = match Hashtbl.find_opt rev k with Some l -> l | None -> [] in
    List.iter
      (fun caller ->
        if not (Hashtbl.mem succ caller) then begin
          Hashtbl.replace succ caller (Some k);
          Queue.add caller q
        end)
      callers
  done;
  (* 3. report every tainted node with its chain *)
  let chain_of k =
    let rec go acc k =
      match Hashtbl.find_opt succ k with
      | Some (Some next) -> go (k :: acc) next
      | Some None | None -> List.rev (k :: acc)
    in
    go [] k
  in
  let display_of k =
    match Callgraph.node graph k with
    | Some n -> n.Callgraph.n_name
    | None -> k
  in
  List.filter_map
    (fun (n : Callgraph.node) ->
      let k = Callgraph.key ~unit_:n.Callgraph.n_unit ~name:n.Callgraph.n_name in
      if not (Hashtbl.mem succ k) then None
      else
        let def_silenced =
          List.exists
            (fun (pl, tok) ->
              String.equal tok "taint-ok"
              && (pl = n.Callgraph.n_line || pl = n.Callgraph.n_line - 1))
            (pragmas_of n.Callgraph.n_source)
        in
        if def_silenced then None
        else
          let chain = chain_of k in
          let last = List.nth chain (List.length chain - 1) in
          let b =
            match Hashtbl.find_opt direct last with
            | Some b -> b
            | None -> assert false
          in
          let links =
            List.map display_of chain
            @ [
                Fmt.str "%s (%s:%d)" b.b_display
                  (match Callgraph.node graph last with
                  | Some l -> l.Callgraph.n_source
                  | None -> "?")
                  b.b_line;
              ]
          in
          Some
            {
              Report.file = n.Callgraph.n_source;
              line = n.Callgraph.n_line;
              col = n.Callgraph.n_col;
              rule;
              msg =
                Fmt.str "%s transitively reaches %s: %s — %s"
                  n.Callgraph.n_name b.b_display
                  (String.concat " -> " links)
                  b.b_why;
            })
    nodes
