(** Protocol handler totality ([handler-totality]): for every type
    marked [@@lint.protocol], the bindings marked
    [@lint.protocol_handler] / [@lint.protocol_serialize] must match
    it wildcard-free and cover every constructor, and the bindings
    marked [@lint.protocol_deserialize] must construct every
    constructor — so a new frame cannot be silently dropped by either
    side of the wire.  Silence a line with
    [(* lint: totality-ok *)]. *)

val rule : string

val run :
  units:Typed.unit_info list ->
  pragmas_of:(string -> (int * string) list) ->
  Report.finding list
