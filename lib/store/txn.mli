(** Cross-shard transactions over the router: multi-key read/write
    transactions as a parent with one quorum-replicated child per
    participant shard.  The prepare round locks and snapshots the
    footprint at a vote quorum per shard (simultaneously a read and a
    write quorum, so version currency and conflict detection both come
    from quorum intersection); the decision is then either a
    coordinator bit ([`Two_phase] — textbook blocking 2PC) or a
    per-transaction Paxos register over the union of participant
    replicas ([`Paxos] — Gray & Lamport's Consensus on Transaction
    Commit, one-instance form), which prepared replicas can resolve
    on their own after a coordinator failure. *)

type mode = [ `Two_phase | `Paxos ]

val mode_label : mode -> string
(** ["2pc"] / ["paxos"] — table and flag labels. *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  router:Router.t ->
  mode:mode ->
  ?timeout:float ->
  ?txn0:int ->
  unit ->
  t
(** A coordinator issuing transactions as [name] (the router client's
    node, whose engines and reply routing it reuses).  [timeout]
    (default 400.0) is the overall per-transaction deadline.  [txn0]
    (default 0) seeds the txid sequence — txids are
    ["<name>#t<n>"], and replicas remember decided txids forever, so
    a second coordinator over the same replicas must continue the
    sequence (see {!next_txn}) rather than restart it. *)

val mode : t -> mode

val next_txn : t -> int
(** The sequence number the next {!execute} will use — pass it as
    another coordinator's [txn0] to keep txids unique across
    coordinators sharing a replica set. *)

val execute :
  t ->
  ?reads:string list ->
  ?writes:(string * int) list ->
  on_done:
    (committed:bool ->
    reads:(string * int * int) list ->
    writes:(string * int * int) list ->
    latency:float ->
    unit) ->
  unit ->
  string
(** Run one transaction reading [reads] and writing [writes] (all
    footprint keys must be distinct); returns its txid.  [on_done]
    fires exactly once: on commit, [reads] carries the prepare-time
    snapshot and [writes] the installed write set — (key, vn, value)
    triples.  [committed:false] covers abort, conflict and timeout,
    and is ambiguous after the decision was proposed: the transaction
    may still commit through recovery — the replica-side
    {!Replica.set_on_decided} hook is the authoritative commit log. *)
