(** Workload generation: Zipf-distributed keys, a read/write mix, and
    closed-loop clients with think time.

    Each key has a single designated writing client (readers are
    unrestricted).  Single-writer-per-key keeps version numbers
    strictly increasing without a distributed concurrency-control
    layer — CC is the business of {!Cc} and of the formal systems;
    the store isolates the replication behaviour the way Gifford's
    original evaluation did. *)

module Prng = Qc_util.Prng

type zipf = { cdf : float array }

(** Zipf(s) over [n] ranks, by inverse-CDF sampling. *)
let zipf ~n ~s =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  { cdf }

let sample z rng =
  let u = Prng.float rng in
  let n = Array.length z.cdf in
  (* binary search for the first index with cdf >= u *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (n - 1)

type spec = {
  n_keys : int;
  zipf_s : float;  (** 0.0 = uniform *)
  read_fraction : float;
  think_time : float;  (** mean think time between a client's ops *)
  ops_per_client : int;
  burst : int;
      (** operations a client issues concurrently per think interval
          (waiting for the whole burst before thinking again); 1 — the
          default, and the historical behaviour — is strictly one
          operation in flight.  Bursts are what give the engine
          several distinct keys in flight to batch. *)
}

let default_spec =
  {
    n_keys = 16;
    zipf_s = 0.9;
    read_fraction = 0.9;
    think_time = 5.0;
    ops_per_client = 200;
    burst = 1;
  }

type op = Read of string | Write of string * int

let key_name i = Fmt.str "k%d" i

(** The next operation for [client] (index [ci] of [n_clients]):
    reads go anywhere; writes are restricted to keys this client owns
    (key index mod n_clients = ci). *)
let next_op spec z rng ~ci ~n_clients ~op_counter : op =
  if Prng.float rng < spec.read_fraction then
    Read (key_name (sample z rng))
  else
    (* project the sampled key onto this client's ownership class *)
    let k = sample z rng in
    let k = k - (k mod n_clients) + ci in
    let k = if k < spec.n_keys then k else ci in
    Write (key_name k, (op_counter * 1000) + ci)
