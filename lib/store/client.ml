(** The quorum client — the practical transaction manager.

    Operations follow Section 3.1's TM logic over RPC:
    - a {e read} queries replicas until the replies contain a read
      quorum, then returns the value with the highest version number;
    - a {e write} first queries until a read quorum has replied (to
      learn the current version number), then installs
      [(vn + 1, value)] until a write quorum has acknowledged.

    The request mechanics — rid allocation, the pending table, reply
    dispatch, the operation deadline, retries, backoff, hedging — live
    in {!Rpc.Engine}; this module supplies only the quorum protocol:
    what to send, which reply sets constitute a quorum, and what to do
    at a phase switch.  An operation that cannot assemble a quorum
    before the timeout fails — the availability metric of the
    experiments. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng
module Engine = Rpc.Engine

(** How requests are routed:
    - [`Broadcast]: message every replica, complete on the fastest
      quorum of replies — latency-optimal (a quorum-wide hedge), but
      every operation costs 2n messages and loads every replica;
    - [`Quorum]: message one randomly chosen minimal quorum and wait
      for all of it — n/|q| fewer messages and tunable load (grid
      quorums spread it), at the cost of tail latency (slowest member
      of the chosen quorum) and availability (no fallback when a
      chosen member is down).  Under a hedging policy the unchosen
      replicas become the hedge pool, recovering broadcast's
      availability at near-quorum message cost. *)
type targeting = [ `Broadcast | `Quorum ]

(** Live signals for queue-aware read steering, shared by every client
    of a shard (so each one's EWMA sees all the shard's replies):
    reply-latency tracker, apply-queue probe, and the steering cost
    weight.  With [steer] off the tracker still learns — feeding the
    optimizer's latency model — but targeting stays random. *)
type probe = {
  ewma : Tune.Ewma.t;
  queue_depth : int -> float;
  queue_weight : float;
  steer : bool;
}

type phase =
  | PRead
  | PWrite_query of int  (** the value waiting to be installed *)
  | PInstall

type pending = {
  key : string;
  strategy : Strategy.t;
      (** the strategy this operation was issued under.  Captured at
          [start_op] so a concurrent re-strategize cannot change the
          quorum predicate an in-flight op completes against — the
          per-operation half of the epoch fence (DESIGN.md §16) *)
  mutable phase : phase;
  mutable phase_started : float;
      (** when the current phase's requests went out — the baseline
          for per-replica reply-latency observations *)
  mutable rid : int;  (** current request id (changes at phase switch) *)
  mutable mask : int;  (** bitmask of replicas heard from this phase *)
  mutable best_vn : int;
  mutable best_value : int;
  mutable replies : (int * int) list;  (** (replica index, vn) seen *)
  op : Engine.op;  (** engine operation: liveness + overall deadline *)
  mutable span : Obs.Trace.span option;
      (** the operation's trace span, begun at [start_op] *)
  ctx : Obs.Ctx.t option;
      (** the operation's causal stamp, carried by every request frame
          it sends (only minted under [trace_ctx]) *)
  on_done : ok:bool -> vn:int -> value:int -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  eng : Protocol.msg Engine.t;
  replicas : string array;
  mutable strategy : Strategy.t;
  mutable epoch : int;
      (** strategy generation — bumped by [set_strategy] so observers
          can tell which configuration an op was issued under *)
  mutable probe : probe option;  (** steering signals, [None] = off *)
  timeout : float;
  read_repair : bool;
      (** when a read observes stale replicas among the replies, push
          the newest (version, value) back to them — asynchronous
          anti-entropy riding on the read path *)
  targeting : targeting;
  trace_ctx : bool;
      (** mint a causal trace context per operation and stamp it onto
          every frame — off by default, because stamped args change the
          trace byte stream *)
  shard : int option;  (** embedded in op ids so routed clients that
          share a name still mint unique ids *)
  mutable next_op : int;  (** per-client operation sequence number *)
  rng : Prng.t;  (** quorum choice in [`Quorum] mode *)
  own_vns : (string, int) Hashtbl.t;
      (** highest version this client has ever issued per key.  A
          write that times out after installing at a minority leaves
          residue at its version; the next write's read quorum need
          not see uncommitted residue and would re-issue the same
          version with a different value.  Under the single-writer
          discipline the writer's own memory is authoritative, so
          taking [max quorum_vn own_vn + 1] keeps versions unique —
          the role Gifford's coordinator timestamps play. *)
  repairs_sent : Obs.Metrics.counter;
  ops_ok : Obs.Metrics.counter;
  ops_failed : Obs.Metrics.counter;
  read_latency : Obs.Metrics.histogram;
  write_latency : Obs.Metrics.histogram;
}

let tracer t = Core.tracer t.sim

let create ~name ~sim ~net ~replicas ~strategy ?(timeout = 100.0)
    ?(read_repair = false) ?(targeting = `Broadcast) ?(trace_ctx = false)
    ?policy ?(seed = 1) ?metrics ?shard ?batch_window ?adaptive_window () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let extra_labels =
    match shard with
    | Some s -> [ ("shard", string_of_int s) ]
    | None -> []
  in
  let labels = ("client", name) :: extra_labels in
  let repairs_sent =
    Obs.Metrics.counter metrics ~labels "store.client.repairs_sent"
  in
  let ops_ok = Obs.Metrics.counter metrics ~labels "store.client.ops_ok" in
  let ops_failed =
    Obs.Metrics.counter metrics ~labels "store.client.ops_failed"
  in
  let read_latency =
    Obs.Metrics.histogram metrics
      ~labels:(("op", "read") :: labels)
      "store.client.op_latency"
  in
  let write_latency =
    Obs.Metrics.histogram metrics
      ~labels:(("op", "write") :: labels)
      "store.client.op_latency"
  in
  let eng =
    Engine.create ~name ~sim ~net ~rid_of:Protocol.rid ?policy ~cat:"store"
      ~seed ~metrics ~extra_labels ()
  in
  (* adaptive batching subsumes the static window: batching is enabled
     at the controller's initial window and the controller takes over
     the flush delay from there *)
  (match (adaptive_window, batch_window) with
  | Some cfg, _ ->
      Engine.set_batching eng
        (Some (Protocol.batching ~window:cfg.Rpc.Window.initial));
      Engine.set_adaptive_window eng (Some (Rpc.Window.create cfg))
  | None, Some w ->
      Engine.set_batching eng (Some (Protocol.batching ~window:w))
  | None, None -> ());
  {
    name;
    sim;
    net;
    eng;
    replicas;
    strategy;
    epoch = 0;
    probe = None;
    timeout;
    read_repair;
    targeting;
    trace_ctx;
    shard;
    next_op = 0;
    rng = Prng.create seed;
    own_vns = Hashtbl.create 16;
    repairs_sent;
    ops_ok;
    ops_failed;
    read_latency;
    write_latency;
  }

let set_policy t p = Engine.set_policy t.eng p
let policy t = Engine.policy t.eng

(** Adopt a new strategy and bump the generation.  In-flight ops are
    unaffected: each pending op captured its strategy at issue. *)
let set_strategy t s =
  t.strategy <- s;
  t.epoch <- t.epoch + 1

let epoch t = t.epoch
let set_probe t pr = t.probe <- pr
let probe t = t.probe

let set_batch_window t w =
  Engine.set_batching t.eng
    (Option.map (fun window -> Protocol.batching ~window) w)

let batch_window t =
  Option.map (fun b -> b.Engine.window) (Engine.batching t.eng)

let set_adaptive_window t cfg =
  match cfg with
  | Some c ->
      Engine.set_batching t.eng
        (Some (Protocol.batching ~window:c.Rpc.Window.initial));
      Engine.set_adaptive_window t.eng (Some (Rpc.Window.create c))
  | None -> Engine.set_adaptive_window t.eng None

let adaptive_window t = Engine.adaptive_window t.eng

let replica_index t name =
  let rec go i =
    if i >= Array.length t.replicas then None
    else if String.equal t.replicas.(i) name then Some i
    else go (i + 1)
  in
  go 0

(* Route per the targeting mode: all replicas (hedge pool empty), or
   the members of one minimal quorum first with the rest as the
   engine's hedge pool.  [strategy] is the issuing op's captured
   strategy, not [t.strategy] — see [pending.strategy]. *)
let targets_for t (strategy : Strategy.t) ~side =
  match t.targeting with
  | `Broadcast -> (Array.to_list t.replicas, None)
  | `Quorum ->
      let masks =
        match side with
        | `Read -> Strategy.minimal_read_quorums strategy
        | `Write -> Strategy.minimal_write_quorums strategy
      in
      (* a latency-greedy client prefers the smallest quorums (fewest
         replies to wait for), random among ties — this is what makes
         load concentration visible for weighted schemes, whose small
         quorums all contain the big-vote site *)
      let min_card =
        List.fold_left (fun m q -> min m (Strategy.popcount q)) max_int masks
      in
      let smallest =
        List.filter (fun q -> Strategy.popcount q = min_card) masks
      in
      let steered =
        (* queue-aware steering replaces the random pick on the read
           side only: reads are free to chase shallow queues, while
           writes keep spreading installs (and the rng stays untouched
           when a probe is absent, keeping default runs byte-equal) *)
        match (t.probe, side) with
        | Some pr, `Read when pr.steer ->
            Tune.Steer.best
              {
                Tune.Steer.latency = Tune.Ewma.value pr.ewma;
                queue = pr.queue_depth;
                queue_weight = pr.queue_weight;
              }
              masks
        | _ -> None
      in
      let mask =
        match steered with
        | Some m -> m
        | None -> Prng.choose t.rng smallest
      in
      let members = ref [] and others = ref [] in
      Array.iteri
        (fun i r ->
          if mask land (1 lsl i) <> 0 then members := r :: !members
          else others := r :: !others)
        t.replicas;
      let members = List.rev !members in
      (members @ List.rev !others, Some (List.length members))

(* Push the newest (version, value) to the stale replicas a read saw.
   Fire-and-forget: repairs carry a fresh rid no pending entry ever
   matches, so late acks are ignored. *)
let send_repairs t (p : pending) =
  List.iter
    (fun (i, vn) ->
      if vn < p.best_vn then begin
        Obs.Metrics.inc t.repairs_sent;
        let rid = Engine.fresh_rid t.eng in
        Net.send t.net ~src:t.name ~dst:t.replicas.(i)
          (Protocol.Install_req
             {
               rid;
               key = p.key;
               vn = p.best_vn;
               value = p.best_value;
               ctx = p.ctx;
             })
      end)
    p.replies

let finish t (p : pending) ~ok =
  if Engine.op_live p.op then begin
    Engine.finish_op t.eng p.op;
    Obs.Metrics.inc (if ok then t.ops_ok else t.ops_failed);
    let latency = Core.now t.sim -. Engine.op_started p.op in
    if ok then
      Obs.Metrics.observe
        (match p.phase with PRead -> t.read_latency | _ -> t.write_latency)
        latency;
    (match p.span with
    | Some span ->
        Obs.Trace.end_span (tracer t) span
          ~args:[ ("ok", Obs.Trace.Bool ok); ("vn", Obs.Trace.Int p.best_vn) ]
          ()
    | None -> ());
    if ok && t.read_repair && p.phase = PRead then send_repairs t p;
    p.on_done ~ok ~vn:p.best_vn ~value:p.best_value ~latency
  end

(* Feed one reply's latency into the shard's steering tracker.  Every
   counted reply teaches the EWMA, whether or not steering is on, so
   the optimizer's latency model has data before any switch. *)
let observe_latency t (p : pending) i =
  match t.probe with
  | None -> ()
  | Some pr ->
      Tune.Ewma.observe pr.ewma i (Core.now t.sim -. p.phase_started)

(* The quorum protocol itself: accumulate replies into the replica
   mask, complete phases when the strategy says the mask is a quorum,
   and switch a write from query to install under a fresh rid.  All
   quorum checks consult [p.strategy], the op's captured strategy. *)
let rec on_reply t (p : pending) ~src msg =
  match (msg, replica_index t src) with
  | Protocol.Query_rep { vn; value; key; _ }, Some i
    when String.equal key p.key -> (
      observe_latency t p i;
      let bit = 1 lsl i in
      if p.mask land bit = 0 then begin
        p.mask <- p.mask lor bit;
        p.replies <- (i, vn) :: p.replies
      end;
      if vn > p.best_vn then begin
        p.best_vn <- vn;
        p.best_value <- value
      end;
      match p.phase with
      | PRead ->
          if p.strategy.Strategy.read_ok p.mask then begin
            finish t p ~ok:true;
            Engine.Done
          end
          else Engine.Continue
      | PWrite_query value ->
          if p.strategy.Strategy.read_ok p.mask then begin
            start_install t p ~value;
            Engine.Done
          end
          else Engine.Continue
      | PInstall -> Engine.Continue)
  | Protocol.Install_ack { key; _ }, Some i when String.equal key p.key -> (
      observe_latency t p i;
      match p.phase with
      | PInstall ->
          p.mask <- p.mask lor (1 lsl i);
          if p.strategy.Strategy.write_ok p.mask then begin
            finish t p ~ok:true;
            Engine.Done
          end
          else Engine.Continue
      | PRead | PWrite_query _ -> Engine.Continue)
  | _ -> Engine.Continue

(* Move a write from the query phase to the install phase: a new rid,
   a fresh reply mask, same pending record (latency spans both). *)
and start_install t (p : pending) ~value =
  let rid = Engine.fresh_rid t.eng in
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"store" ~name:"install_phase" ~track:t.name
      ~args:[ ("key", Obs.Trace.Str p.key); ("rid", Obs.Trace.Int rid) ]
      ();
  p.phase <- PInstall;
  p.phase_started <- Core.now t.sim;
  p.rid <- rid;
  p.mask <- 0;
  let own =
    Option.value ~default:0 (Hashtbl.find_opt t.own_vns p.key)
  in
  let vn = max p.best_vn own + 1 in
  Hashtbl.replace t.own_vns p.key vn;
  p.best_vn <- vn;
  p.best_value <- value;
  gather t p ~rid ~side:`Write (fun rid ->
      Protocol.Install_req { rid; key = p.key; vn; value; ctx = p.ctx })

and gather t (p : pending) ~rid ~side make =
  let targets, fanout = targets_for t p.strategy ~side in
  ignore
    (Engine.call t.eng ~op:p.op ~rid ~targets ?fanout ~make
       ~on_reply:(fun ~src msg -> on_reply t p ~src msg)
       ())

(** Attach the client's reply handler to the network. *)
let attach t = Engine.attach t.eng

(** Dispatch one incoming reply by hand — for the shard router, which
    owns the node's net handler and demultiplexes to shard clients. *)
let handle t ~src msg = Engine.handle t.eng ~src msg

let start_op t ~key ~phase ~on_done =
  let rid = Engine.fresh_rid t.eng in
  let tr = tracer t in
  (* mint the operation id before the root span so the span can carry
     it; the shard is embedded because routed clients share a name *)
  let op_id =
    if t.trace_ctx && Obs.Trace.enabled tr then begin
      let n = t.next_op in
      t.next_op <- n + 1;
      Some
        (match t.shard with
        | Some s -> Printf.sprintf "%s.s%d#%d" t.name s n
        | None -> Printf.sprintf "%s#%d" t.name n)
    end
    else None
  in
  let span =
    if Obs.Trace.enabled tr then
      let name =
        match phase with
        | PRead -> "read"
        | PWrite_query _ -> "write"
        | PInstall -> "install"
      in
      let args =
        [ ("key", Obs.Trace.Str key); ("rid", Obs.Trace.Int rid) ]
        @ (match op_id with
          | Some id ->
              ("op", Obs.Trace.Str id)
              :: (match t.shard with
                 | Some s -> [ ("shard", Obs.Trace.Int s) ]
                 | None -> [])
          | None -> [])
      in
      Some (Obs.Trace.begin_span tr ~cat:"store" ~name ~track:t.name ~args ())
    else None
  in
  let ctx =
    match (op_id, span) with
    | Some id, Some sp ->
        Some (Obs.Ctx.make ~op:id ~parent:(Obs.Trace.span_id sp))
    | _ -> None
  in
  let p_ref = ref None in
  let op =
    Engine.start_op ?ctx t.eng ~timeout:t.timeout ~on_timeout:(fun () ->
        match !p_ref with
        | None -> ()
        | Some p ->
            if Obs.Trace.enabled tr then
              Obs.Trace.instant tr ~cat:"store" ~name:"timeout" ~track:t.name
                ~args:
                  [ ("key", Obs.Trace.Str p.key); ("rid", Obs.Trace.Int p.rid) ]
                ();
            finish t p ~ok:false)
  in
  let p =
    {
      key;
      strategy = t.strategy;
      phase;
      phase_started = Core.now t.sim;
      rid;
      mask = 0;
      best_vn = 0;
      best_value = 0;
      replies = [];
      op;
      span;
      ctx;
      on_done;
    }
  in
  p_ref := Some p;
  p

(** Issue a logical read of [key]. *)
let read t ~key ~on_done =
  let p = start_op t ~key ~phase:PRead ~on_done in
  gather t p ~rid:p.rid ~side:`Read (fun rid ->
      Protocol.Query_req { rid; key; ctx = p.ctx })

(** Issue a logical write of [key := value]. *)
let write t ~key ~value ~on_done =
  let p = start_op t ~key ~phase:(PWrite_query value) ~on_done in
  gather t p ~rid:p.rid ~side:`Read (fun rid ->
      Protocol.Query_req { rid; key; ctx = p.ctx })

(** Install [(vn, value)] directly, skipping the version query — the
    data-migration step of reconfiguration, where the version number
    was discovered under the {e old} configuration and the data must
    be pushed to a write quorum of the {e new} one.  Always broadcast:
    migration wants every reachable replica current. *)
let install t ~key ~vn ~value ~on_done =
  let p = start_op t ~key ~phase:PInstall ~on_done in
  p.best_vn <- vn;
  p.best_value <- value;
  ignore
    (Engine.call t.eng ~op:p.op ~rid:p.rid
       ~targets:(Array.to_list t.replicas)
       ~make:(fun rid -> Protocol.Install_req { rid; key; vn; value; ctx = p.ctx })
       ~on_reply:(fun ~src msg -> on_reply t p ~src msg)
       ())
