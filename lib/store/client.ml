(** The quorum client — the practical transaction manager.

    Operations follow Section 3.1's TM logic over RPC:
    - a {e read} queries replicas until the replies contain a read
      quorum, then returns the value with the highest version number;
    - a {e write} first queries until a read quorum has replied (to
      learn the current version number), then installs
      [(vn + 1, value)] until a write quorum has acknowledged.

    Requests go to all replicas and complete on the {e fastest} quorum
    of replies, so operation latency is the order statistic the
    strategy's minimum quorum size dictates.  An operation that cannot
    assemble a quorum before the timeout fails — the availability
    metric of the experiments. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng

(** How requests are routed:
    - [`Broadcast]: message every replica, complete on the fastest
      quorum of replies — latency-optimal (a quorum-wide hedge), but
      every operation costs 2n messages and loads every replica;
    - [`Quorum]: message one randomly chosen minimal quorum and wait
      for all of it — n/|q| fewer messages and tunable load (grid
      quorums spread it), at the cost of tail latency (slowest member
      of the chosen quorum) and availability (no fallback when a
      chosen member is down). *)
type targeting = [ `Broadcast | `Quorum ]

type phase =
  | PRead
  | PWrite_query of int  (** the value waiting to be installed *)
  | PInstall

type pending = {
  key : string;
  mutable phase : phase;
  mutable rid : int;  (** current request id (changes at phase switch) *)
  mutable mask : int;  (** bitmask of replicas heard from this phase *)
  mutable best_vn : int;
  mutable best_value : int;
  mutable replies : (int * int) list;  (** (replica index, vn) seen *)
  mutable live : bool;
  mutable span : Obs.Trace.span option;
      (** the operation's trace span, begun at [start_op] *)
  started : float;
  on_done : ok:bool -> vn:int -> value:int -> latency:float -> unit;
}

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  replicas : string array;
  mutable strategy : Strategy.t;
  mutable next_rid : int;
  pending : (int, pending) Hashtbl.t;
  timeout : float;
  read_repair : bool;
      (** when a read observes stale replicas among the replies, push
          the newest (version, value) back to them — asynchronous
          anti-entropy riding on the read path *)
  targeting : targeting;
  rng : Prng.t;  (** quorum choice in [`Quorum] mode *)
  repairs_sent : Obs.Metrics.counter;
  ops_ok : Obs.Metrics.counter;
  ops_failed : Obs.Metrics.counter;
  read_latency : Obs.Metrics.histogram;
  write_latency : Obs.Metrics.histogram;
}

let tracer t = Core.tracer t.sim

let create ~name ~sim ~net ~replicas ~strategy ?(timeout = 100.0)
    ?(read_repair = false) ?(targeting = `Broadcast) ?(seed = 1) ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let labels = [ ("client", name) ] in
  {
    name;
    sim;
    net;
    replicas;
    strategy;
    next_rid = 0;
    pending = Hashtbl.create 16;
    timeout;
    read_repair;
    targeting;
    rng = Prng.create seed;
    repairs_sent = Obs.Metrics.counter metrics ~labels "store.client.repairs_sent";
    ops_ok = Obs.Metrics.counter metrics ~labels "store.client.ops_ok";
    ops_failed = Obs.Metrics.counter metrics ~labels "store.client.ops_failed";
    read_latency =
      Obs.Metrics.histogram metrics
        ~labels:(("op", "read") :: labels)
        "store.client.op_latency";
    write_latency =
      Obs.Metrics.histogram metrics
        ~labels:(("op", "write") :: labels)
        "store.client.op_latency";
  }

let replica_index t name =
  let rec go i =
    if i >= Array.length t.replicas then None
    else if String.equal t.replicas.(i) name then Some i
    else go (i + 1)
  in
  go 0

let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  rid

let broadcast t ~rid msg_of_replica =
  Array.iter
    (fun r -> Net.send t.net ~src:t.name ~dst:r (msg_of_replica rid))
    t.replicas

(* Route a request per the targeting mode: everyone, or the members of
   one randomly chosen minimal quorum of the given side. *)
let route t ~rid ~side msg_of_replica =
  match t.targeting with
  | `Broadcast -> broadcast t ~rid msg_of_replica
  | `Quorum ->
      let masks =
        match side with
        | `Read -> Strategy.minimal_read_quorums t.strategy
        | `Write -> Strategy.minimal_write_quorums t.strategy
      in
      (* a latency-greedy client prefers the smallest quorums (fewest
         replies to wait for), random among ties — this is what makes
         load concentration visible for weighted schemes, whose small
         quorums all contain the big-vote site *)
      let min_card =
        List.fold_left (fun m q -> min m (Strategy.popcount q)) max_int masks
      in
      let smallest =
        List.filter (fun q -> Strategy.popcount q = min_card) masks
      in
      let mask = Prng.choose t.rng smallest in
      Array.iteri
        (fun i r ->
          if mask land (1 lsl i) <> 0 then
            Net.send t.net ~src:t.name ~dst:r (msg_of_replica rid))
        t.replicas

(* Push the newest (version, value) to the stale replicas a read saw.
   Fire-and-forget: repairs carry a fresh rid no pending entry ever
   matches, so late acks are ignored. *)
let send_repairs t (p : pending) =
  List.iter
    (fun (i, vn) ->
      if vn < p.best_vn then begin
        Obs.Metrics.inc t.repairs_sent;
        let rid = fresh_rid t in
        Net.send t.net ~src:t.name ~dst:t.replicas.(i)
          (Protocol.Install_req
             { rid; key = p.key; vn = p.best_vn; value = p.best_value })
      end)
    p.replies

let finish t (p : pending) ~ok =
  if p.live then begin
    p.live <- false;
    Hashtbl.remove t.pending p.rid;
    Obs.Metrics.inc (if ok then t.ops_ok else t.ops_failed);
    let latency = Core.now t.sim -. p.started in
    if ok then
      Obs.Metrics.observe
        (match p.phase with PRead -> t.read_latency | _ -> t.write_latency)
        latency;
    (match p.span with
    | Some span ->
        Obs.Trace.end_span (tracer t) span
          ~args:[ ("ok", Obs.Trace.Bool ok); ("vn", Obs.Trace.Int p.best_vn) ]
          ()
    | None -> ());
    if ok && t.read_repair && p.phase = PRead then send_repairs t p;
    p.on_done ~ok ~vn:p.best_vn ~value:p.best_value ~latency
  end

(* The timeout covers the whole operation, across phase switches. *)
let arm_timeout t (p : pending) =
  Core.schedule t.sim ~delay:t.timeout (fun () ->
      if p.live then begin
        let tr = tracer t in
        if Obs.Trace.enabled tr then
          Obs.Trace.instant tr ~cat:"store" ~name:"timeout" ~track:t.name
            ~args:[ ("key", Obs.Trace.Str p.key); ("rid", Obs.Trace.Int p.rid) ]
            ();
        finish t p ~ok:false
      end)

(* Move a write from the query phase to the install phase: a new rid,
   a fresh reply mask, same pending record (latency spans both). *)
let start_install t (p : pending) ~value =
  let rid = fresh_rid t in
  let tr = tracer t in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"store" ~name:"install_phase" ~track:t.name
      ~args:[ ("key", Obs.Trace.Str p.key); ("rid", Obs.Trace.Int rid) ]
      ();
  p.phase <- PInstall;
  p.rid <- rid;
  p.mask <- 0;
  let vn = p.best_vn + 1 in
  p.best_vn <- vn;
  p.best_value <- value;
  Hashtbl.replace t.pending rid p;
  route t ~rid ~side:`Write (fun rid ->
      Protocol.Install_req { rid; key = p.key; vn; value })

let handle t ~src msg =
  let rid = Protocol.rid msg in
  match Hashtbl.find_opt t.pending rid with
  | None -> () (* stale reply for a finished or superseded phase *)
  | Some p when not p.live -> ()
  | Some p -> (
      let tr = tracer t in
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"reply" ~track:t.name
          ~args:[ ("rid", Obs.Trace.Int rid); ("from", Obs.Trace.Str src) ]
          ();
      match (msg, replica_index t src) with
      | Protocol.Query_rep { vn; value; key; _ }, Some i
        when String.equal key p.key -> (
          p.mask <- p.mask lor (1 lsl i);
          p.replies <- (i, vn) :: p.replies;
          if vn > p.best_vn then begin
            p.best_vn <- vn;
            p.best_value <- value
          end;
          match p.phase with
          | PRead ->
              if t.strategy.Strategy.read_ok p.mask then finish t p ~ok:true
          | PWrite_query value ->
              if t.strategy.Strategy.read_ok p.mask then begin
                Hashtbl.remove t.pending rid;
                start_install t p ~value
              end
          | PInstall -> ())
      | Protocol.Install_ack { key; _ }, Some i when String.equal key p.key
        -> (
          match p.phase with
          | PInstall ->
              p.mask <- p.mask lor (1 lsl i);
              if t.strategy.Strategy.write_ok p.mask then finish t p ~ok:true
          | PRead | PWrite_query _ -> ())
      | _ -> ())

(** Attach the client's reply handler to the network. *)
let attach t = Net.register t.net ~node:t.name (fun ~src msg -> handle t ~src msg)

let start_op t ~key ~phase ~on_done =
  let rid = fresh_rid t in
  let tr = tracer t in
  let span =
    if Obs.Trace.enabled tr then
      let name =
        match phase with
        | PRead -> "read"
        | PWrite_query _ -> "write"
        | PInstall -> "install"
      in
      Some
        (Obs.Trace.begin_span tr ~cat:"store" ~name ~track:t.name
           ~args:[ ("key", Obs.Trace.Str key); ("rid", Obs.Trace.Int rid) ]
           ())
    else None
  in
  let p =
    {
      key;
      phase;
      rid;
      mask = 0;
      best_vn = 0;
      best_value = 0;
      replies = [];
      live = true;
      span;
      started = Core.now t.sim;
      on_done;
    }
  in
  Hashtbl.replace t.pending rid p;
  arm_timeout t p;
  rid

(** Issue a logical read of [key]. *)
let read t ~key ~on_done =
  let rid = start_op t ~key ~phase:PRead ~on_done in
  route t ~rid ~side:`Read (fun rid -> Protocol.Query_req { rid; key })

(** Issue a logical write of [key := value]. *)
let write t ~key ~value ~on_done =
  let rid = start_op t ~key ~phase:(PWrite_query value) ~on_done in
  route t ~rid ~side:`Read (fun rid -> Protocol.Query_req { rid; key })

(** Install [(vn, value)] directly, skipping the version query — the
    data-migration step of reconfiguration, where the version number
    was discovered under the {e old} configuration and the data must
    be pushed to a write quorum of the {e new} one. *)
let install t ~key ~vn ~value ~on_done =
  let rid = start_op t ~key ~phase:PInstall ~on_done in
  (match Hashtbl.find_opt t.pending rid with
  | Some p ->
      p.best_vn <- vn;
      p.best_value <- value
  | None -> ());
  broadcast t ~rid (fun rid -> Protocol.Install_req { rid; key; vn; value })
