(** A replica server: per key a (version-number, value) pair — the DM
    state of Section 3.1 — answering queries and installs.  Installs
    only overwrite with a version at least the stored one, so
    retransmissions and stale retries are harmless.  Work is counted
    through [Obs.Metrics] counters labelled with the replica name, and
    handled messages are logged to the network's tracer. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
}

val create : ?metrics:Obs.Metrics.t -> name:string -> unit -> t
(** [metrics] defaults to a private registry; pass a shared one to
    aggregate a whole cluster. *)

val lookup : t -> string -> int * int

val load : t -> int
(** Queries + installs handled. *)

val attach : t -> net:Protocol.msg Sim.Net.t -> unit
