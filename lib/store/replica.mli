(** A replica server: per key a (version-number, value) pair — the DM
    state of Section 3.1 — answering queries and installs.  Installs
    only overwrite with a version at least the stored one, so
    retransmissions and stale retries are harmless.  Work is counted
    through [Obs.Metrics] counters labelled with the replica name, and
    handled messages are logged to the network's tracer.  Batch frames
    are answered with one batch reply carrying the per-request
    answers in order. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
}

val create :
  ?metrics:Obs.Metrics.t ->
  ?extra_labels:(string * string) list ->
  name:string ->
  unit ->
  t
(** [metrics] defaults to a private registry; pass a shared one to
    aggregate a whole cluster.  [extra_labels] are appended after
    [("replica", name)] — e.g. a shard label. *)

val lookup : t -> string -> int * int

val load : t -> int
(** Queries + installs handled. *)

val handle_one : t -> tr:Obs.Trace.t -> Protocol.msg -> Protocol.msg option
(** Process one request and return its reply, if any — batch frames
    recurse over their parts and return one batch reply.  Exposed for
    tests; [attach] wires this to the network. *)

val attach : t -> net:Protocol.msg Sim.Net.t -> unit
