(** A replica server: per key a (version-number, value) pair — the DM
    state of Section 3.1 — answering queries and installs.  Installs
    only overwrite with a version at least the stored one, so
    retransmissions and stale retries are harmless. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  mutable queries : int;
  mutable installs : int;
}

val create : name:string -> t
val lookup : t -> string -> int * int
val attach : t -> net:Protocol.msg Sim.Net.t -> unit
