(** A replica server: per key a (version-number, value) pair — the DM
    state of Section 3.1 — answering queries and installs.  Installs
    only overwrite with a version at least the stored one, so
    retransmissions and stale retries are harmless.  Work is counted
    through [Obs.Metrics] counters labelled with the replica name, and
    handled messages are logged to the network's tracer.  Batch frames
    are answered with one batch reply carrying the per-request
    answers in order.

    With a {!Sim.Storage} device attached, installs run through an
    apply pipeline: they queue, apply in version order, and a whole
    group acknowledges after one amortized fsync (group commit).
    Queries answer from applied state immediately; installs ack only
    after durability, so a write quorum of acks certifies the version
    exactly as in the synchronous replica.  Without a device (the
    default) every request is answered synchronously, byte-identically
    to the historical replica.

    Requests stamped with a causal context (see {!Obs.Ctx}) earn
    ctx-stamped trace events: the query/install instants carry the op
    id, and a pipelined install opens [replica.queue] /
    [replica.apply] / [replica.fsync] spans linked to the originating
    operation's causal tree.  Unstamped frames trace byte-identically
    to before. *)

type pending = {
  p_vn : int;
  p_key : string;
  p_value : int;
  p_ack : unit -> unit;  (** deliver the install ack (post-fsync) *)
  p_ctx : Obs.Ctx.t option;  (** the originating operation's stamp *)
  p_qspan : Obs.Trace.span option;
      (** the [replica.queue] wait span, begun at enqueue and ended
          when the install's group leaves the queue *)
}

type txn_entry = {
  e_writes : (string * int) list;  (** this shard's (key, value) writes *)
  e_reads : string list;  (** this shard's read-only footprint *)
  e_kvs : (string * int * int) list;
      (** the (key, vn, value) snapshot the yes-vote carried *)
  e_acceptors : string list;
      (** the decision register's acceptor set (all participant
          replicas, canonical order) *)
  e_paxos : bool;  (** recovery armed (Paxos-Commit mode) *)
  mutable e_attempt : int;  (** recovery attempts launched so far *)
}
(** A prepared (in-doubt) transaction: the shard-local write set and
    locked footprint of a yes-vote, held until the decision. *)

type rec_lead = {
  l_bal : int;
  mutable l_phase : [ `One | `Two ];
  mutable l_heard : string list;
  mutable l_best : (int * bool * (string * int * int) list) option;
  mutable l_val : bool * (string * int * int) list;
  mutable l_acks : string list;
  mutable l_live : bool;
}
(** Recovery-leader state for one in-doubt transaction. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
  storage : Sim.Storage.t option;
      (** the replica's disk; [None] = free, synchronous installs *)
  group_commit : bool;  (** drain whole groups vs one install at a time *)
  queue : pending Queue.t;  (** installs awaiting apply + fsync *)
  mutable draining : bool;  (** a group is at the device right now *)
  m_fsyncs : Obs.Metrics.counter option;  (** [replica.fsync] *)
  m_queue_depth : Obs.Metrics.histogram option;  (** [replica.queue_depth] *)
  locks : (string, string) Hashtbl.t;  (** key -> txid holding its lock *)
  prepared : (string, txn_entry) Hashtbl.t;  (** txid -> in-doubt entry *)
  decided : (string, bool * (string * int * int) list) Hashtbl.t;
      (** txid -> (commit?, writes) — answers late ballots and
          retransmissions with the decision *)
  promised : (string, int) Hashtbl.t;
  accepted : (string, int * bool * (string * int * int) list) Hashtbl.t;
  leading : (string, rec_lead) Hashtbl.t;
  txn_recovery_delay : float;
  txn_recovery_attempts : int;
  mutable txn_sim : Sim.Core.t option;
  mutable txn_send : (dst:string -> Protocol.msg -> unit) option;
  mutable on_decided :
    (txid:string -> commit:bool -> writes:(string * int * int) list -> unit)
    option;
}

val create :
  ?metrics:Obs.Metrics.t ->
  ?extra_labels:(string * string) list ->
  ?storage:Sim.Storage.t ->
  ?group_commit:bool ->
  ?txn_recovery_delay:float ->
  ?txn_recovery_attempts:int ->
  name:string ->
  unit ->
  t
(** [metrics] defaults to a private registry; pass a shared one to
    aggregate a whole cluster.  [extra_labels] are appended after
    [("replica", name)] — e.g. a shard label.  [storage] attaches a
    disk model and routes installs through the apply pipeline;
    [group_commit] (default true, meaningful only with storage) drains
    the queue a whole group per fsync rather than one install per
    fsync.  Pipelined replicas additionally register [replica.fsync]
    and [replica.queue_depth] instruments.  [txn_recovery_delay]
    (default 150.0 sim-ms) times the first in-doubt recovery attempt
    in Paxos-Commit mode; [txn_recovery_attempts] (default 8) bounds
    attempts so the event queue always drains. *)

val lookup : t -> string -> int * int

val load : t -> int
(** Queries + installs handled. *)

val fsyncs : t -> int
(** Fsyncs completed by the storage device; [0] without one. *)

val queue_depth : t -> int
(** Installs currently waiting in the apply queue. *)

val set_on_decided :
  t ->
  (txid:string -> commit:bool -> writes:(string * int * int) list -> unit) ->
  unit
(** Install the decision hook: fired exactly once per transaction, on
    the first locally learned decision (whether it arrived as a
    coordinator [Txn_decide], a recovery broadcast, or a decided
    short-circuit).  The audit's authoritative commit log. *)

val in_doubt : t -> string list
(** The txids of transactions prepared here but not yet decided —
    blocked (in-doubt) transactions.  Sorted. *)

val locked_keys : t -> (string * string) list
(** The (key, owner-txid) pairs currently write-locked, sorted by key. *)

val serve :
  t ->
  ?src:string ->
  tr:Obs.Trace.t ->
  reply:(Protocol.msg -> unit) ->
  Protocol.msg ->
  unit
(** Process one request, delivering each reply through [reply] —
    synchronously for queries and storage-free installs, after the
    group's fsync for pipelined installs; a batch frame replies once
    its last part has.  Non-requests produce no reply.  [src] names
    the sender; recovery-leader bookkeeping (phase-1b/2b quorum
    counting) needs it, request handling does not. *)

val handle_one : t -> tr:Obs.Trace.t -> Protocol.msg -> Protocol.msg option
(** The synchronous view of {!serve}: the reply produced in the same
    instant, or [None] — which for a storage-free replica means "no
    reply at all", and for a pipelined one may mean "ack still queued
    behind the fsync".  Exposed for tests; [attach] wires {!serve} to
    the network. *)

val attach : t -> net:Protocol.msg Sim.Net.t -> unit
