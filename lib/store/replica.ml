(** A replica server: the data manager of the practical store.  It
    keeps, per key, a (version-number, value) pair — exactly the DM
    state of Section 3.1 — and answers queries and installs.  An
    install only overwrites when the incoming version number is at
    least the stored one, making retransmissions and stale
    retries harmless. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;  (** key -> (vn, value) *)
  mutable queries : int;
  mutable installs : int;
}

let create ~name = { name; data = Hashtbl.create 64; queries = 0; installs = 0 }

let lookup t key =
  Option.value ~default:(0, 0) (Hashtbl.find_opt t.data key)

(** Attach the replica to the network. *)
let attach t ~(net : Protocol.msg Sim.Net.t) =
  Sim.Net.register net ~node:t.name (fun ~src msg ->
      match msg with
      | Protocol.Query_req { rid; key } ->
          t.queries <- t.queries + 1;
          let vn, value = lookup t key in
          Sim.Net.send net ~src:t.name ~dst:src
            (Protocol.Query_rep { rid; key; vn; value })
      | Protocol.Install_req { rid; key; vn; value } ->
          t.installs <- t.installs + 1;
          let cur_vn, _ = lookup t key in
          if vn >= cur_vn then Hashtbl.replace t.data key (vn, value);
          Sim.Net.send net ~src:t.name ~dst:src
            (Protocol.Install_ack { rid; key })
      | Protocol.Query_rep _ | Protocol.Install_ack _ -> ())
