(** A replica server: the data manager of the practical store.  It
    keeps, per key, a (version-number, value) pair — exactly the DM
    state of Section 3.1 — and answers queries and installs.  An
    install only overwrites when the incoming version number is at
    least the stored one, making retransmissions and stale
    retries harmless.

    Work is counted through [Obs.Metrics] counters labelled with the
    replica name — pass a shared registry to [create] to aggregate a
    whole cluster in one place — and each query/install handled is
    logged to the network's tracer.  A batch frame is answered with a
    single batch reply carrying the answers to each wrapped request in
    order; the per-request counters and trace instants fire exactly as
    if the requests had arrived separately.

    {2 The apply pipeline}

    Without a {!Sim.Storage} device (the default) every request is
    answered synchronously, byte-identically to the historical
    replica.  With one, installs flow through an apply queue: pending
    installs are dequeued in groups, applied to the store in version
    order, and the whole group is acknowledged after {e one} amortized
    fsync — the group-commit discipline.  Queries keep answering from
    applied state immediately; installs ack only after durability.
    Quorum intersection is untouched: an install ack still means the
    replica holds (at least) that version durably, so any write quorum
    of acks certifies the version exactly as before — the pipeline
    delays acks, it never weakens what an ack asserts.  Setting
    [group_commit] to false degrades the queue to one install (and one
    fsync) per drain — the naive-fsync baseline of the io ablation. *)

type pending = {
  p_vn : int;
  p_key : string;
  p_value : int;
  p_ack : unit -> unit;  (** deliver the install ack (post-fsync) *)
  p_ctx : Obs.Ctx.t option;  (** the originating operation's stamp *)
  p_qspan : Obs.Trace.span option;
      (** the [replica.queue] wait span, begun at enqueue and ended
          when the install's group leaves the queue *)
}

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;  (** key -> (vn, value) *)
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
  storage : Sim.Storage.t option;
      (** the replica's disk; [None] = free, synchronous installs *)
  group_commit : bool;  (** drain whole groups vs one install at a time *)
  queue : pending Queue.t;  (** installs awaiting apply + fsync *)
  mutable draining : bool;  (** a group is at the device right now *)
  m_fsyncs : Obs.Metrics.counter option;  (** [replica.fsync] *)
  m_queue_depth : Obs.Metrics.histogram option;  (** [replica.queue_depth] *)
}

let create ?metrics ?(extra_labels = []) ?storage ?(group_commit = true) ~name
    () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let labels = ("replica", name) :: extra_labels in
  (* pipeline instruments only exist on pipelined replicas, so default
     configurations register nothing new and dump byte-identically *)
  let m_fsyncs, m_queue_depth =
    match storage with
    | None -> (None, None)
    | Some _ ->
        ( Some (Obs.Metrics.counter metrics ~labels "replica.fsync"),
          Some
            (Obs.Metrics.histogram metrics ~labels
               ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]
               "replica.queue_depth") )
  in
  {
    name;
    data = Hashtbl.create 64;
    queries = Obs.Metrics.counter metrics ~labels "store.replica.queries";
    installs = Obs.Metrics.counter metrics ~labels "store.replica.installs";
    storage;
    group_commit;
    queue = Queue.create ();
    draining = false;
    m_fsyncs;
    m_queue_depth;
  }

let lookup t key =
  Option.value ~default:(0, 0) (Hashtbl.find_opt t.data key)

(** Queries + installs handled — the "load" dimension quorum targeting
    tunes. *)
let load t = Obs.Metrics.value t.queries + Obs.Metrics.value t.installs

let fsyncs t =
  match t.storage with Some st -> Sim.Storage.fsyncs st | None -> 0

let queue_depth t = Queue.length t.queue

let apply t ~vn ~key ~value =
  let cur_vn, _ = lookup t key in
  if vn >= cur_vn then Hashtbl.replace t.data key (vn, value)

(* Drain the apply queue through the storage device: take a group
   (the whole queue under group commit, one install otherwise), apply
   it in version order, fsync once, then ack every member — and go
   again if more arrived meanwhile.  [draining] keeps one group at the
   device at a time; installs landing mid-drain wait for the next
   group, which is exactly where the amortization comes from. *)
let rec drain t ~(tr : Obs.Trace.t) =
  match t.storage with
  | None -> ()
  | Some st ->
      if (not t.draining) && not (Queue.is_empty t.queue) then begin
        t.draining <- true;
        let group =
          if t.group_commit then begin
            let g = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            g
          end
          else [ Queue.pop t.queue ]
        in
        (match t.m_queue_depth with
        | Some h -> Obs.Metrics.observe h (float_of_int (List.length group))
        | None -> ());
        (* the group leaves the queue now: close its wait spans *)
        List.iter
          (fun p ->
            match p.p_qspan with
            | Some sp -> Obs.Trace.end_span tr sp ()
            | None -> ())
          group;
        (* one apply (and later fsync) span per stamped member — the
           group shares the device round, but each operation's causal
           tree needs its own interval *)
        let stamped =
          if Obs.Trace.enabled tr then
            List.filter_map
              (fun p -> Option.map (fun cx -> (p, cx)) p.p_ctx)
              group
          else []
        in
        let span_for name (_, cx) =
          Obs.Trace.begin_span tr ~cat:"store" ~name ~track:t.name
            ~args:(Obs.Ctx.args cx) ()
        in
        let apply_spans = List.map (span_for "replica.apply") stamped in
        (* apply in version order: within a group the store must step
           through versions monotonically per key, whatever order the
           installs arrived in *)
        let ordered =
          List.stable_sort (fun a b -> compare a.p_vn b.p_vn) group
        in
        Sim.Storage.submit st ~writes:(List.length group) (fun () ->
            List.iter
              (fun p -> apply t ~vn:p.p_vn ~key:p.p_key ~value:p.p_value)
              ordered;
            List.iter (fun sp -> Obs.Trace.end_span tr sp ()) apply_spans;
            let fsync_spans = List.map (span_for "replica.fsync") stamped in
            Sim.Storage.fsync st (fun () ->
                (match t.m_fsyncs with
                | Some c -> Obs.Metrics.inc c
                | None -> ());
                List.iter (fun sp -> Obs.Trace.end_span tr sp ()) fsync_spans;
                (* ack in arrival order, only now that the group is
                   durable *)
                List.iter (fun p -> p.p_ack ()) group;
                t.draining <- false;
                drain t ~tr))
      end

(* a request's causal stamp, appended to the replica's instant args —
   empty (and allocation-free) for unstamped frames *)
let ctx_args = function None -> [] | Some cx -> Obs.Ctx.args cx

(* Answer one request, delivering each reply through [reply] — possibly
   asynchronously (a pipelined install acks after its group's fsync; a
   batch frame replies when its last part has).  Non-requests get no
   reply. *)
let rec serve t ~(tr : Obs.Trace.t) ~reply msg =
  match msg with
  | Protocol.Query_req { rid; key; ctx } ->
      Obs.Metrics.inc t.queries;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"query" ~track:t.name
          ~args:
            ([ ("key", Obs.Trace.Str key); ("rid", Obs.Trace.Int rid) ]
            @ ctx_args ctx)
          ();
      let vn, value = lookup t key in
      reply (Protocol.Query_rep { rid; key; vn; value })
  | Protocol.Install_req { rid; key; vn; value; ctx } -> (
      Obs.Metrics.inc t.installs;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"install" ~track:t.name
          ~args:
            ([
               ("key", Obs.Trace.Str key);
               ("rid", Obs.Trace.Int rid);
               ("vn", Obs.Trace.Int vn);
             ]
            @ ctx_args ctx)
          ();
      match t.storage with
      | None ->
          (* the historical synchronous path: apply and ack in place *)
          apply t ~vn ~key ~value;
          reply (Protocol.Install_ack { rid; key })
      | Some _ ->
          let qspan =
            match ctx with
            | Some cx when Obs.Trace.enabled tr ->
                Some
                  (Obs.Trace.begin_span tr ~cat:"store" ~name:"replica.queue"
                     ~track:t.name ~args:(Obs.Ctx.args cx) ())
            | _ -> None
          in
          Queue.add
            {
              p_vn = vn;
              p_key = key;
              p_value = value;
              p_ack = (fun () -> reply (Protocol.Install_ack { rid; key }));
              p_ctx = ctx;
              p_qspan = qspan;
            }
            t.queue;
          drain t ~tr)
  | Protocol.Batch_req { rid; reqs } ->
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"batch" ~track:t.name
          ~args:
            [
              ("rid", Obs.Trace.Int rid);
              ("size", Obs.Trace.Int (List.length reqs));
            ]
          ();
      let n = List.length reqs in
      if n = 0 then reply (Protocol.Batch_rep { rid; reps = [] })
      else begin
        (* one reply slot per part, in frame order; the frame answers
           once every part that will reply has (pipelined installs make
           that asynchronous — the batch reply then carries the whole
           group's acks after their shared fsync) *)
        let slots = Array.make n None in
        let remaining = ref n in
        let part_done () =
          decr remaining;
          if !remaining = 0 then
            reply
              (Protocol.Batch_rep
                 {
                   rid;
                   reps = List.filter_map Fun.id (Array.to_list slots);
                 })
        in
        List.iteri
          (fun i part ->
            match part with
            | Protocol.Query_req _ | Protocol.Install_req _
            | Protocol.Batch_req _ ->
                serve t ~tr part ~reply:(fun rep ->
                    slots.(i) <- Some rep;
                    part_done ())
            | Protocol.Query_rep _ | Protocol.Install_ack _
            | Protocol.Batch_rep _ ->
                (* non-requests earn no reply slot, as before *)
                part_done ())
          reqs
      end
  | Protocol.Query_rep _ | Protocol.Install_ack _ | Protocol.Batch_rep _ -> ()

(* The synchronous view of [serve], for tests and layers that know the
   replica has no storage device: returns the reply if one was
   produced in the same instant.  A pipelined install (or a batch
   containing one) replies later, through [attach]'s path — here that
   surfaces as [None]. *)
let handle_one t ~tr msg =
  let out = ref None in
  serve t ~tr ~reply:(fun rep -> out := Some rep) msg;
  !out

(** Attach the replica to the network. *)
let attach t ~(net : Protocol.msg Sim.Net.t) =
  let tr = Sim.Net.tracer net in
  Sim.Net.register net ~node:t.name (fun ~src msg ->
      serve t ~tr msg ~reply:(fun rep ->
          match rep with
          | Protocol.Batch_rep { reps; _ } ->
              Sim.Net.send net ~src:t.name ~dst:src
                ~payloads:(List.length reps)
                rep
          | rep -> Sim.Net.send net ~src:t.name ~dst:src rep))
