(** A replica server: the data manager of the practical store.  It
    keeps, per key, a (version-number, value) pair — exactly the DM
    state of Section 3.1 — and answers queries and installs.  An
    install only overwrites when the incoming version number is at
    least the stored one, making retransmissions and stale
    retries harmless.

    Work is counted through [Obs.Metrics] counters labelled with the
    replica name — pass a shared registry to [create] to aggregate a
    whole cluster in one place — and each query/install handled is
    logged to the network's tracer.  A batch frame is answered with a
    single batch reply carrying the answers to each wrapped request in
    order; the per-request counters and trace instants fire exactly as
    if the requests had arrived separately.

    {2 The apply pipeline}

    Without a {!Sim.Storage} device (the default) every request is
    answered synchronously, byte-identically to the historical
    replica.  With one, installs flow through an apply queue: pending
    installs are dequeued in groups, applied to the store in version
    order, and the whole group is acknowledged after {e one} amortized
    fsync — the group-commit discipline.  Queries keep answering from
    applied state immediately; installs ack only after durability.
    Quorum intersection is untouched: an install ack still means the
    replica holds (at least) that version durably, so any write quorum
    of acks certifies the version exactly as before — the pipeline
    delays acks, it never weakens what an ack asserts.  Setting
    [group_commit] to false degrades the queue to one install (and one
    fsync) per drain — the naive-fsync baseline of the io ablation. *)

type pending = {
  p_vn : int;
  p_key : string;
  p_value : int;
  p_ack : unit -> unit;  (** deliver the install ack (post-fsync) *)
  p_ctx : Obs.Ctx.t option;  (** the originating operation's stamp *)
  p_qspan : Obs.Trace.span option;
      (** the [replica.queue] wait span, begun at enqueue and ended
          when the install's group leaves the queue *)
}

(** A prepared (in-doubt) transaction: the shard-local write set and
    locked footprint of a yes-vote, held until the decision. *)
type txn_entry = {
  e_writes : (string * int) list;  (** this shard's (key, value) writes *)
  e_reads : string list;  (** this shard's read-only footprint *)
  e_kvs : (string * int * int) list;
      (** the (key, vn, value) snapshot the yes-vote carried *)
  e_acceptors : string list;
      (** the decision register's acceptor set (all participant
          replicas, canonical order) *)
  e_paxos : bool;  (** recovery armed (Paxos-Commit mode) *)
  mutable e_attempt : int;  (** recovery attempts launched so far *)
}

(** Recovery-leader state for one in-doubt transaction: a Paxos round
    at ballot [l_bal] on the transaction's decision register. *)
type rec_lead = {
  l_bal : int;
  mutable l_phase : [ `One | `Two ];
  mutable l_heard : string list;  (** distinct phase-1b responders *)
  mutable l_best : (int * bool * (string * int * int) list) option;
      (** highest accepted value reported in phase 1 *)
  mutable l_val : bool * (string * int * int) list;
      (** the (commit, writes) proposed in phase 2 *)
  mutable l_acks : string list;  (** distinct phase-2b responders *)
  mutable l_live : bool;  (** false once nacked, superseded, or done *)
}

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;  (** key -> (vn, value) *)
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
  storage : Sim.Storage.t option;
      (** the replica's disk; [None] = free, synchronous installs *)
  group_commit : bool;  (** drain whole groups vs one install at a time *)
  queue : pending Queue.t;  (** installs awaiting apply + fsync *)
  mutable draining : bool;  (** a group is at the device right now *)
  m_fsyncs : Obs.Metrics.counter option;  (** [replica.fsync] *)
  m_queue_depth : Obs.Metrics.histogram option;  (** [replica.queue_depth] *)
  (* ---- cross-shard transaction state ---- *)
  locks : (string, string) Hashtbl.t;  (** key -> txid holding its lock *)
  prepared : (string, txn_entry) Hashtbl.t;  (** txid -> in-doubt entry *)
  decided : (string, bool * (string * int * int) list) Hashtbl.t;
      (** txid -> (commit?, writes) — retained so late prepares,
          ballots and retransmissions are answered with the decision *)
  promised : (string, int) Hashtbl.t;  (** acceptor: highest promised ballot *)
  accepted : (string, int * bool * (string * int * int) list) Hashtbl.t;
      (** acceptor: highest accepted (ballot, commit?, writes) *)
  leading : (string, rec_lead) Hashtbl.t;  (** recovery rounds this replica leads *)
  txn_recovery_delay : float;
  txn_recovery_attempts : int;
  mutable txn_sim : Sim.Core.t option;  (** set at attach; recovery timers *)
  mutable txn_send : (dst:string -> Protocol.msg -> unit) option;
      (** set at attach; recovery-initiated sends *)
  mutable on_decided :
    (txid:string -> commit:bool -> writes:(string * int * int) list -> unit)
    option;
      (** fired once per transaction on the first locally learned
          decision — the audit's authoritative commit log *)
}

let create ?metrics ?(extra_labels = []) ?storage ?(group_commit = true)
    ?(txn_recovery_delay = 150.0) ?(txn_recovery_attempts = 8) ~name () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let labels = ("replica", name) :: extra_labels in
  (* pipeline instruments only exist on pipelined replicas, so default
     configurations register nothing new and dump byte-identically *)
  let m_fsyncs, m_queue_depth =
    match storage with
    | None -> (None, None)
    | Some _ ->
        ( Some (Obs.Metrics.counter metrics ~labels "replica.fsync"),
          Some
            (Obs.Metrics.histogram metrics ~labels
               ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]
               "replica.queue_depth") )
  in
  {
    name;
    data = Hashtbl.create 64;
    queries = Obs.Metrics.counter metrics ~labels "store.replica.queries";
    installs = Obs.Metrics.counter metrics ~labels "store.replica.installs";
    storage;
    group_commit;
    queue = Queue.create ();
    draining = false;
    m_fsyncs;
    m_queue_depth;
    locks = Hashtbl.create 16;
    prepared = Hashtbl.create 16;
    decided = Hashtbl.create 16;
    promised = Hashtbl.create 16;
    accepted = Hashtbl.create 16;
    leading = Hashtbl.create 4;
    txn_recovery_delay;
    txn_recovery_attempts;
    txn_sim = None;
    txn_send = None;
    on_decided = None;
  }

let lookup t key =
  Option.value ~default:(0, 0) (Hashtbl.find_opt t.data key)

(** Queries + installs handled — the "load" dimension quorum targeting
    tunes. *)
let load t = Obs.Metrics.value t.queries + Obs.Metrics.value t.installs

let fsyncs t =
  match t.storage with Some st -> Sim.Storage.fsyncs st | None -> 0

let queue_depth t = Queue.length t.queue

let apply t ~vn ~key ~value =
  let cur_vn, _ = lookup t key in
  if vn >= cur_vn then Hashtbl.replace t.data key (vn, value)

(* ---------- cross-shard transactions ---------- *)

let set_on_decided t f = t.on_decided <- Some f

let in_doubt t =
  (* lint: order-insensitive *)
  Hashtbl.fold (fun txid _ acc -> txid :: acc) t.prepared []
  |> List.sort String.compare

let locked_keys t =
  (* lint: order-insensitive *)
  Hashtbl.fold (fun k txid acc -> (k, txid) :: acc) t.locks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let txn_footprint e = List.map fst e.e_writes @ e.e_reads

(* the sim tracer, when the replica is attached — recovery runs on
   timers, outside [serve]'s tracer argument *)
let txn_trace t ~name ~txid ~extra =
  match t.txn_sim with
  | None -> ()
  | Some sim ->
      let tr = Sim.Core.tracer sim in
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name ~track:t.name
          ~args:(("txid", Obs.Trace.Str txid) :: extra)
          ()

(* Learn (idempotently) the transaction's decision: record it, fire
   the decision hook once, install this shard's prepared writes at
   their decided versions on commit, release the footprint locks.
   Returns whether a prepared entry was resolved — commit quorums
   count only such acks, because only they certify an install. *)
let txn_apply_decision t ~txid ~commit ~writes =
  if not (Hashtbl.mem t.decided txid) then begin
    Hashtbl.replace t.decided txid (commit, writes);
    match t.on_decided with
    | Some f -> f ~txid ~commit ~writes
    | None -> ()
  end;
  match Hashtbl.find_opt t.prepared txid with
  | None -> false
  | Some e ->
      if commit then
        List.iter
          (fun (k, _) ->
            match List.find_opt (fun (k', _, _) -> String.equal k' k) writes with
            | Some (_, vn, value) ->
                Obs.Metrics.inc t.installs;
                apply t ~vn ~key:k ~value
            | None -> ())
          e.e_writes;
      List.iter
        (fun k ->
          match Hashtbl.find_opt t.locks k with
          | Some owner when String.equal owner txid -> Hashtbl.remove t.locks k
          | _ -> ())
        (txn_footprint e);
      Hashtbl.remove t.prepared txid;
      (match Hashtbl.find_opt t.leading txid with
      | Some lead -> lead.l_live <- false
      | None -> ());
      true

(* Acceptor logic on the per-transaction decision register.  Ballot 0
   belongs to the coordinator (phase 1 skipped); recovery leaders use
   ballots > 0 unique to (attempt, leader).  A decided register
   short-circuits to the decision. *)
let acceptor_p1 t ~txid ~bal =
  match Hashtbl.find_opt t.decided txid with
  | Some (commit, writes) -> `Decided (commit, writes)
  | None ->
      let promised =
        Option.value ~default:0 (Hashtbl.find_opt t.promised txid)
      in
      if bal >= promised then begin
        Hashtbl.replace t.promised txid bal;
        `P1b (true, Hashtbl.find_opt t.accepted txid)
      end
      else `P1b (false, None)

let acceptor_p2 t ~txid ~bal ~commit ~writes =
  match Hashtbl.find_opt t.decided txid with
  | Some (c, ws) -> `Decided (c, ws)
  | None ->
      let promised =
        Option.value ~default:0 (Hashtbl.find_opt t.promised txid)
      in
      if bal >= promised then begin
        Hashtbl.replace t.promised txid bal;
        Hashtbl.replace t.accepted txid (bal, commit, writes);
        `P2b true
      end
      else `P2b false

(* Apply the decision locally (releasing our locks) and tell every
   other participant — the learn broadcast after a chosen value. *)
let broadcast_decision t ~txid ~commit ~writes =
  let acceptors =
    match Hashtbl.find_opt t.prepared txid with
    | Some e -> e.e_acceptors
    | None -> []
  in
  txn_trace t ~name:"txn.decide" ~txid
    ~extra:[ ("commit", Obs.Trace.Str (string_of_bool commit)) ];
  ignore (txn_apply_decision t ~txid ~commit ~writes : bool);
  match t.txn_send with
  | None -> ()
  | Some send ->
      List.iter
        (fun a ->
          if not (String.equal a t.name) then
            send ~dst:a (Protocol.Txn_decide { rid = 0; txid; commit; writes; ctx = None }))
        acceptors

(* Phase-2b bookkeeping of a recovery round this replica leads: a
   majority of the register's acceptors accepting [l_val] makes it
   chosen — broadcast it. *)
let lead_on_p2b t ~src ~txid ~bal ~ok =
  match Hashtbl.find_opt t.leading txid with
  | Some lead when lead.l_live && lead.l_bal = bal && lead.l_phase = `Two ->
      if not ok then lead.l_live <- false
      else begin
        if not (List.exists (String.equal src) lead.l_acks) then
          lead.l_acks <- src :: lead.l_acks;
        match Hashtbl.find_opt t.prepared txid with
        | None -> lead.l_live <- false
        | Some e ->
            let n = List.length e.e_acceptors in
            if List.length lead.l_acks >= (n / 2) + 1 then begin
              lead.l_live <- false;
              let commit, writes = lead.l_val in
              broadcast_decision t ~txid ~commit ~writes
            end
      end
  | _ -> ()

(* Phase-1b bookkeeping: on a majority of promises, propose the
   highest accepted value seen — or Abort if the register is free
   (the Gray–Lamport rule: a missed vote aborts). *)
let lead_on_p1b t ~src ~txid ~bal ~ok ~accepted =
  match Hashtbl.find_opt t.leading txid with
  | Some lead when lead.l_live && lead.l_bal = bal && lead.l_phase = `One ->
      if not ok then lead.l_live <- false
      else begin
        if not (List.exists (String.equal src) lead.l_heard) then begin
          lead.l_heard <- src :: lead.l_heard;
          match accepted with
          | Some (abal, _, _) -> (
              match lead.l_best with
              | Some (bbal, _, _) when bbal >= abal -> ()
              | _ -> lead.l_best <- accepted)
          | None -> ()
        end;
        match Hashtbl.find_opt t.prepared txid with
        | None -> lead.l_live <- false
        | Some e ->
            let n = List.length e.e_acceptors in
            if List.length lead.l_heard >= (n / 2) + 1 then begin
              lead.l_phase <- `Two;
              let commit, writes =
                match lead.l_best with
                | Some (_, c, ws) -> (c, ws)
                | None -> (false, [])
              in
              lead.l_val <- (commit, writes);
              (match acceptor_p2 t ~txid ~bal ~commit ~writes with
              | `Decided (c, ws) ->
                  lead.l_live <- false;
                  broadcast_decision t ~txid ~commit:c ~writes:ws
              | `P2b self_ok -> lead_on_p2b t ~src:t.name ~txid ~bal ~ok:self_ok);
              if lead.l_live then
                match t.txn_send with
                | None -> ()
                | Some send ->
                    List.iter
                      (fun a ->
                        if not (String.equal a t.name) then
                          send ~dst:a
                            (Protocol.Txn_p2a
                               { rid = 0; txid; bal; commit; writes; ctx = None }))
                      e.e_acceptors
            end
      end
  | _ -> ()

(* One recovery attempt: a fresh ballot unique to (attempt, this
   leader), phase 1 to every acceptor (self first, synchronously). *)
let start_recovery t ~txid (e : txn_entry) ~my_index =
  let bal = (e.e_attempt * (List.length e.e_acceptors + 1)) + my_index + 1 in
  txn_trace t ~name:"txn.recover" ~txid ~extra:[ ("bal", Obs.Trace.Int bal) ];
  let lead =
    {
      l_bal = bal;
      l_phase = `One;
      l_heard = [];
      l_best = None;
      l_val = (false, []);
      l_acks = [];
      l_live = true;
    }
  in
  Hashtbl.replace t.leading txid lead;
  (match acceptor_p1 t ~txid ~bal with
  | `Decided (commit, writes) ->
      lead.l_live <- false;
      broadcast_decision t ~txid ~commit ~writes
  | `P1b (ok, accepted) -> lead_on_p1b t ~src:t.name ~txid ~bal ~ok ~accepted);
  if lead.l_live then
    match t.txn_send with
    | None -> ()
    | Some send ->
        List.iter
          (fun a ->
            if not (String.equal a t.name) then
              send ~dst:a (Protocol.Txn_p1a { rid = 0; txid; bal }))
          e.e_acceptors

(* Arm (and re-arm) the recovery timer for an in-doubt transaction:
   exponentially spaced, staggered by the replica's acceptor index so
   concurrent leaders rarely duel, bounded attempts so the event queue
   always drains. *)
let rec arm_recovery t ~txid =
  match t.txn_sim with
  | None -> ()
  | Some sim -> (
      match Hashtbl.find_opt t.prepared txid with
      | None -> ()
      | Some e ->
          let my_index =
            let rec idx i = function
              | [] -> 0
              | a :: rest -> if String.equal a t.name then i else idx (i + 1) rest
            in
            idx 0 e.e_acceptors
          in
          let delay =
            t.txn_recovery_delay
            *. (1.0 +. (0.25 *. float_of_int my_index))
            *. (2.0 ** float_of_int e.e_attempt)
          in
          Sim.Core.schedule sim ~delay (fun () ->
              if
                Hashtbl.mem t.prepared txid
                && (not (Hashtbl.mem t.decided txid))
                && e.e_attempt < t.txn_recovery_attempts
              then begin
                e.e_attempt <- e.e_attempt + 1;
                start_recovery t ~txid e ~my_index;
                arm_recovery t ~txid
              end))

(* Drain the apply queue through the storage device: take a group
   (the whole queue under group commit, one install otherwise), apply
   it in version order, fsync once, then ack every member — and go
   again if more arrived meanwhile.  [draining] keeps one group at the
   device at a time; installs landing mid-drain wait for the next
   group, which is exactly where the amortization comes from. *)
let rec drain t ~(tr : Obs.Trace.t) =
  match t.storage with
  | None -> ()
  | Some st ->
      if (not t.draining) && not (Queue.is_empty t.queue) then begin
        t.draining <- true;
        let group =
          if t.group_commit then begin
            let g = List.of_seq (Queue.to_seq t.queue) in
            Queue.clear t.queue;
            g
          end
          else [ Queue.pop t.queue ]
        in
        (match t.m_queue_depth with
        | Some h -> Obs.Metrics.observe h (float_of_int (List.length group))
        | None -> ());
        (* the group leaves the queue now: close its wait spans *)
        List.iter
          (fun p ->
            match p.p_qspan with
            | Some sp -> Obs.Trace.end_span tr sp ()
            | None -> ())
          group;
        (* one apply (and later fsync) span per stamped member — the
           group shares the device round, but each operation's causal
           tree needs its own interval *)
        let stamped =
          if Obs.Trace.enabled tr then
            List.filter_map
              (fun p -> Option.map (fun cx -> (p, cx)) p.p_ctx)
              group
          else []
        in
        let span_for name (_, cx) =
          Obs.Trace.begin_span tr ~cat:"store" ~name ~track:t.name
            ~args:(Obs.Ctx.args cx) ()
        in
        let apply_spans = List.map (span_for "replica.apply") stamped in
        (* apply in version order: within a group the store must step
           through versions monotonically per key, whatever order the
           installs arrived in *)
        let ordered =
          List.stable_sort (fun a b -> compare a.p_vn b.p_vn) group
        in
        Sim.Storage.submit st ~writes:(List.length group) (fun () ->
            List.iter
              (fun p -> apply t ~vn:p.p_vn ~key:p.p_key ~value:p.p_value)
              ordered;
            List.iter (fun sp -> Obs.Trace.end_span tr sp ()) apply_spans;
            let fsync_spans = List.map (span_for "replica.fsync") stamped in
            Sim.Storage.fsync st (fun () ->
                (match t.m_fsyncs with
                | Some c -> Obs.Metrics.inc c
                | None -> ());
                List.iter (fun sp -> Obs.Trace.end_span tr sp ()) fsync_spans;
                (* ack in arrival order, only now that the group is
                   durable *)
                List.iter (fun p -> p.p_ack ()) group;
                t.draining <- false;
                drain t ~tr))
      end

(* a request's causal stamp, appended to the replica's instant args —
   empty (and allocation-free) for unstamped frames *)
let ctx_args = function None -> [] | Some cx -> Obs.Ctx.args cx

(* Answer one request, delivering each reply through [reply] — possibly
   asynchronously (a pipelined install acks after its group's fsync; a
   batch frame replies when its last part has).  Non-requests get no
   reply.  [src] identifies the sender — recovery-leader bookkeeping
   (phase-1b/2b quorum counting) needs it; request handling does not. *)
let[@lint.protocol_handler] rec serve t ?(src = "") ~(tr : Obs.Trace.t) ~reply
    msg =
  match msg with
  | Protocol.Query_req { rid; key; ctx } ->
      Obs.Metrics.inc t.queries;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"query" ~track:t.name
          ~args:
            ([ ("key", Obs.Trace.Str key); ("rid", Obs.Trace.Int rid) ]
            @ ctx_args ctx)
          ();
      let vn, value = lookup t key in
      reply (Protocol.Query_rep { rid; key; vn; value })
  | Protocol.Install_req { rid; key; vn; value; ctx } -> (
      Obs.Metrics.inc t.installs;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"install" ~track:t.name
          ~args:
            ([
               ("key", Obs.Trace.Str key);
               ("rid", Obs.Trace.Int rid);
               ("vn", Obs.Trace.Int vn);
             ]
            @ ctx_args ctx)
          ();
      match t.storage with
      | None ->
          (* the historical synchronous path: apply and ack in place *)
          apply t ~vn ~key ~value;
          reply (Protocol.Install_ack { rid; key })
      | Some _ ->
          let qspan =
            match ctx with
            | Some cx when Obs.Trace.enabled tr ->
                Some
                  (Obs.Trace.begin_span tr ~cat:"store" ~name:"replica.queue"
                     ~track:t.name ~args:(Obs.Ctx.args cx) ())
            | _ -> None
          in
          Queue.add
            {
              p_vn = vn;
              p_key = key;
              p_value = value;
              p_ack = (fun () -> reply (Protocol.Install_ack { rid; key }));
              p_ctx = ctx;
              p_qspan = qspan;
            }
            t.queue;
          drain t ~tr)
  | Protocol.Batch_req { rid; reqs } ->
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"batch" ~track:t.name
          ~args:
            [
              ("rid", Obs.Trace.Int rid);
              ("size", Obs.Trace.Int (List.length reqs));
            ]
          ();
      let n = List.length reqs in
      if n = 0 then reply (Protocol.Batch_rep { rid; reps = [] })
      else begin
        (* one reply slot per part, in frame order; the frame answers
           once every part that will reply has (pipelined installs make
           that asynchronous — the batch reply then carries the whole
           group's acks after their shared fsync) *)
        let slots = Array.make n None in
        let remaining = ref n in
        let part_done () =
          decr remaining;
          if !remaining = 0 then
            reply
              (Protocol.Batch_rep
                 {
                   rid;
                   reps = List.filter_map Fun.id (Array.to_list slots);
                 })
        in
        List.iteri
          (fun i part ->
            match part with
            | Protocol.Query_req _ | Protocol.Install_req _
            | Protocol.Batch_req _ | Protocol.Txn_prepare _
            | Protocol.Txn_p1a _ | Protocol.Txn_p2a _ | Protocol.Txn_decide _
              ->
                serve t ~src ~tr part ~reply:(fun rep ->
                    slots.(i) <- Some rep;
                    part_done ())
            | Protocol.Query_rep _ | Protocol.Install_ack _
            | Protocol.Batch_rep _ | Protocol.Txn_vote _ | Protocol.Txn_p1b _
            | Protocol.Txn_p2b _ | Protocol.Txn_decide_ack _ ->
                (* non-requests earn no reply slot, as before — but a
                   leader-side message still updates recovery state *)
                serve t ~src ~tr part ~reply:(fun _ -> ());
                part_done ())
          reqs
      end
  | Protocol.Txn_prepare { rid; txid; writes; reads; acceptors; paxos; ctx } -> (
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"txn.prepare" ~track:t.name
          ~args:
            ([ ("txid", Obs.Trace.Str txid); ("rid", Obs.Trace.Int rid) ]
            @ ctx_args ctx)
          ();
      match Hashtbl.find_opt t.decided txid with
      | Some (commit, dwrites) ->
          (* already resolved (a recovery finished before this
             retransmission): answer with the decision *)
          reply
            (Protocol.Txn_decide { rid; txid; commit; writes = dwrites; ctx = None })
      | None -> (
          match Hashtbl.find_opt t.prepared txid with
          | Some e ->
              (* duplicate prepare: re-send the identical vote *)
              reply (Protocol.Txn_vote { rid; txid; yes = true; kvs = e.e_kvs })
          | None ->
              (* canonical order: two-phase locking stays deadlock-free
                 only if every multi-key acquisition walks one global
                 key order (the lock-order lint proves this shape) *)
              let footprint =
                List.sort_uniq String.compare (List.map fst writes @ reads)
              in
              let conflict =
                List.exists
                  (fun k ->
                    match Hashtbl.find_opt t.locks k with
                    | Some owner -> not (String.equal owner txid)
                    | None -> false)
                  footprint
              in
              if conflict then
                reply (Protocol.Txn_vote { rid; txid; yes = false; kvs = [] })
              else begin
                List.iter (fun k -> Hashtbl.replace t.locks k txid) footprint;
                let kvs =
                  List.map
                    (fun k ->
                      let vn, v = lookup t k in
                      (k, vn, v))
                    footprint
                in
                Hashtbl.replace t.prepared txid
                  {
                    e_writes = writes;
                    e_reads = reads;
                    e_kvs = kvs;
                    e_acceptors = acceptors;
                    e_paxos = paxos;
                    e_attempt = 0;
                  };
                if paxos then arm_recovery t ~txid;
                reply (Protocol.Txn_vote { rid; txid; yes = true; kvs })
              end))
  | Protocol.Txn_decide { rid; txid; commit; writes; ctx } ->
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"txn.decide" ~track:t.name
          ~args:
            ([
               ("txid", Obs.Trace.Str txid);
               ("commit", Obs.Trace.Str (string_of_bool commit));
             ]
            @ ctx_args ctx)
          ();
      let applied = txn_apply_decision t ~txid ~commit ~writes in
      reply (Protocol.Txn_decide_ack { rid; txid; applied })
  | Protocol.Txn_p1a { rid; txid; bal } -> (
      match acceptor_p1 t ~txid ~bal with
      | `Decided (commit, writes) ->
          reply (Protocol.Txn_decide { rid; txid; commit; writes; ctx = None })
      | `P1b (ok, accepted) ->
          reply (Protocol.Txn_p1b { rid; txid; bal; ok; accepted }))
  | Protocol.Txn_p2a { rid; txid; bal; commit; writes; ctx = _ } -> (
      match acceptor_p2 t ~txid ~bal ~commit ~writes with
      | `Decided (c, ws) ->
          reply (Protocol.Txn_decide { rid; txid; commit = c; writes = ws; ctx = None })
      | `P2b ok -> reply (Protocol.Txn_p2b { rid; txid; bal; ok }))
  | Protocol.Txn_p1b { txid; bal; ok; accepted; _ } ->
      lead_on_p1b t ~src ~txid ~bal ~ok ~accepted
  | Protocol.Txn_p2b { txid; bal; ok; _ } -> lead_on_p2b t ~src ~txid ~bal ~ok
  | Protocol.Txn_decide_ack { txid; _ } ->
      (* a participant acking our recovery broadcast — nothing to do *)
      ignore txid
  | Protocol.Query_rep _ | Protocol.Install_ack _ | Protocol.Batch_rep _
  | Protocol.Txn_vote _ ->
      ()

(* The synchronous view of [serve], for tests and layers that know the
   replica has no storage device: returns the reply if one was
   produced in the same instant.  A pipelined install (or a batch
   containing one) replies later, through [attach]'s path — here that
   surfaces as [None]. *)
let handle_one t ~tr msg =
  let out = ref None in
  serve t ~tr ~reply:(fun rep -> out := Some rep) msg;
  !out

(** Attach the replica to the network. *)
let attach t ~(net : Protocol.msg Sim.Net.t) =
  let tr = Sim.Net.tracer net in
  (* recovery leadership needs a clock (timers) and a way to talk to
     peer replicas outside any client engine *)
  t.txn_sim <- Some (Sim.Net.sim net);
  t.txn_send <- Some (fun ~dst msg -> Sim.Net.send net ~src:t.name ~dst msg);
  Sim.Net.register net ~node:t.name (fun ~src msg ->
      serve t ~src ~tr msg ~reply:(fun rep ->
          match rep with
          | Protocol.Batch_rep { reps; _ } ->
              Sim.Net.send net ~src:t.name ~dst:src
                ~payloads:(List.length reps)
                rep
          | rep -> Sim.Net.send net ~src:t.name ~dst:src rep))
