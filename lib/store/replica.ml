(** A replica server: the data manager of the practical store.  It
    keeps, per key, a (version-number, value) pair — exactly the DM
    state of Section 3.1 — and answers queries and installs.  An
    install only overwrites when the incoming version number is at
    least the stored one, making retransmissions and stale
    retries harmless.

    Work is counted through [Obs.Metrics] counters labelled with the
    replica name — pass a shared registry to [create] to aggregate a
    whole cluster in one place — and each query/install handled is
    logged to the network's tracer.  A batch frame is answered with a
    single batch reply carrying the answers to each wrapped request in
    order; the per-request counters and trace instants fire exactly as
    if the requests had arrived separately. *)

type t = {
  name : string;
  data : (string, int * int) Hashtbl.t;  (** key -> (vn, value) *)
  queries : Obs.Metrics.counter;
  installs : Obs.Metrics.counter;
}

let create ?metrics ?(extra_labels = []) ~name () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let labels = ("replica", name) :: extra_labels in
  {
    name;
    data = Hashtbl.create 64;
    queries = Obs.Metrics.counter metrics ~labels "store.replica.queries";
    installs = Obs.Metrics.counter metrics ~labels "store.replica.installs";
  }

let lookup t key =
  Option.value ~default:(0, 0) (Hashtbl.find_opt t.data key)

(** Queries + installs handled — the "load" dimension quorum targeting
    tunes. *)
let load t = Obs.Metrics.value t.queries + Obs.Metrics.value t.installs

(* Answer one request (possibly a batch frame, whose parts recurse);
   non-requests get no reply. *)
let rec handle_one t ~(tr : Obs.Trace.t) msg =
  match msg with
  | Protocol.Query_req { rid; key } ->
      Obs.Metrics.inc t.queries;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"query" ~track:t.name
          ~args:[ ("key", Obs.Trace.Str key); ("rid", Obs.Trace.Int rid) ]
          ();
      let vn, value = lookup t key in
      Some (Protocol.Query_rep { rid; key; vn; value })
  | Protocol.Install_req { rid; key; vn; value } ->
      Obs.Metrics.inc t.installs;
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"install" ~track:t.name
          ~args:
            [
              ("key", Obs.Trace.Str key);
              ("rid", Obs.Trace.Int rid);
              ("vn", Obs.Trace.Int vn);
            ]
          ();
      let cur_vn, _ = lookup t key in
      if vn >= cur_vn then Hashtbl.replace t.data key (vn, value);
      Some (Protocol.Install_ack { rid; key })
  | Protocol.Batch_req { rid; reqs } ->
      if Obs.Trace.enabled tr then
        Obs.Trace.instant tr ~cat:"store" ~name:"batch" ~track:t.name
          ~args:
            [
              ("rid", Obs.Trace.Int rid);
              ("size", Obs.Trace.Int (List.length reqs));
            ]
          ();
      let reps = List.filter_map (fun m -> handle_one t ~tr m) reqs in
      Some (Protocol.Batch_rep { rid; reps })
  | Protocol.Query_rep _ | Protocol.Install_ack _ | Protocol.Batch_rep _ ->
      None

(** Attach the replica to the network. *)
let attach t ~(net : Protocol.msg Sim.Net.t) =
  let tr = Sim.Net.tracer net in
  Sim.Net.register net ~node:t.name (fun ~src msg ->
      match handle_one t ~tr msg with
      | None -> ()
      | Some (Protocol.Batch_rep { reps; _ } as rep) ->
          Sim.Net.send net ~src:t.name ~dst:src
            ~payloads:(List.length reps)
            rep
      | Some rep -> Sim.Net.send net ~src:t.name ~dst:src rep)
