(** The quantitative experiments (DESIGN.md ids Q1-Q4, G1-G3): the
    evaluation the paper's introduction motivates but, being a theory
    paper, never runs.  Each function returns printable rows;
    [bin/tables.exe] renders them. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

(** The strategy menu used across experiments. *)
let menu n : (string * Strategy.t) list =
  [
    ("read-one/write-all", Strategy.rowa n);
    ("majority", Strategy.majority n);
    ( "weighted(2,1,1,1,1) r=2 w=5",
      if n = 5 then
        Strategy.weighted ~name:"weighted" ~votes:[| 2; 1; 1; 1; 1 |] ~r:2 ~w:5
      else Strategy.majority n );
    ("primary-copy", Strategy.primary n);
  ]

(** {1 Q1 — availability vs. per-site availability p} *)

type availability_row = {
  strategy : string;
  p : float;
  read_analytic : float;
  write_analytic : float;
  simulated : float;  (** measured op success rate under crash/recover *)
}

let availability_sweep ?(n = 5) ?(ps = [ 0.5; 0.7; 0.8; 0.9; 0.95; 0.99 ])
    ?(seed = 11) () : availability_row list =
  List.concat_map
    (fun (name, strat) ->
      List.map
        (fun p ->
          let read_analytic, write_analytic = Strategy.availability strat ~p in
          (* simulate: mtbf/mttr chosen so long-run availability = p *)
          let mttr = 50.0 in
          let mtbf = mttr *. p /. (1.0 -. p) in
          let r =
            Cluster.run
              {
                Cluster.default_params with
                n_replicas = n;
                strategy = (fun _ -> strat);
                failures = Some { Sim.Failure.mtbf; mttr };
                timeout = 60.0;
                workload =
                  { Workload.default_spec with ops_per_client = 400; read_fraction = 0.5 };
                seed;
              }
          in
          {
            strategy = name;
            p;
            read_analytic;
            write_analytic;
            simulated = Cluster.availability r;
          })
        ps)
    (menu n)

(** {1 Q2 — latency by strategy} *)

type latency_row = {
  strategy : string;
  min_read_quorum : int;
  min_write_quorum : int;
  read : Sim.Stats.summary;
  write : Sim.Stats.summary;
}

let latency_table ?(n = 5) ?(seed = 23) () : latency_row list =
  List.map
    (fun (name, strat) ->
      let r =
        Cluster.run
          {
            Cluster.default_params with
            n_replicas = n;
            strategy = (fun _ -> strat);
            workload =
              { Workload.default_spec with ops_per_client = 500; read_fraction = 0.5 };
            seed;
          }
      in
      {
        strategy = name;
        min_read_quorum = strat.Strategy.min_read;
        min_write_quorum = strat.Strategy.min_write;
        read = r.Cluster.reads;
        write = r.Cluster.writes;
      })
    (menu n)

(** {1 Q3 — crossover: who wins at which read fraction} *)

type crossover_row = {
  read_fraction : float;
  rowa_mean : float;
  majority_mean : float;
  winner : string;
}

let mean_op_latency (r : Cluster.results) =
  let weighted (s : Sim.Stats.summary) =
    if s.Sim.Stats.count = 0 then 0.0
    else s.Sim.Stats.mean *. float_of_int s.Sim.Stats.count
  in
  let tr = r.Cluster.reads and tw = r.Cluster.writes in
  let n = tr.Sim.Stats.count + tw.Sim.Stats.count in
  if n = 0 then nan else (weighted tr +. weighted tw) /. float_of_int n

let crossover ?(n = 5) ?(seed = 31)
    ?(fractions = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99 ]) () : crossover_row list
    =
  List.map
    (fun f ->
      let run strat =
        mean_op_latency
          (Cluster.run
             {
               Cluster.default_params with
               n_replicas = n;
               strategy = strat;
               workload =
                 {
                   Workload.default_spec with
                   ops_per_client = 400;
                   read_fraction = f;
                 };
               seed;
             })
      in
      let rowa = run Strategy.rowa and majority = run Strategy.majority in
      {
        read_fraction = f;
        rowa_mean = rowa;
        majority_mean = majority;
        winner = (if rowa < majority then "read-one/write-all" else "majority");
      })
    fractions

(** {1 G1-G3 — weighted-voting configurations in the style of
    Gifford's examples} *)

type gifford_row = {
  label : string;
  votes : int list;
  r : int;
  w : int;
  min_read_quorum : int;
  min_write_quorum : int;
  read_avail_90 : float;
  write_avail_90 : float;
  read_latency : float;
  write_latency : float;
}

let gifford_examples ?(seed = 47) () : gifford_row list =
  let cases =
    [
      (* read-optimized: reads anywhere, writes everywhere *)
      ("G1 read-optimized", [ 2; 1; 1; 1 ], 1, 5);
      (* balanced majority voting *)
      ("G2 balanced", [ 1; 1; 1; 1; 1 ], 3, 3);
      (* primary-weighted: a strong site in every quorum *)
      ("G3 primary-weighted", [ 3; 1; 1 ], 3, 3);
    ]
  in
  List.map
    (fun (label, votes, r, w) ->
      let strat =
        Strategy.weighted ~name:label ~votes:(Array.of_list votes) ~r ~w
      in
      let read_avail_90, write_avail_90 = Strategy.availability strat ~p:0.9 in
      let res =
        Cluster.run
          {
            Cluster.default_params with
            n_replicas = List.length votes;
            strategy = (fun _ -> strat);
            workload =
              { Workload.default_spec with ops_per_client = 400; read_fraction = 0.5 };
            seed;
          }
      in
      {
        label;
        votes;
        r;
        w;
        min_read_quorum = strat.Strategy.min_read;
        min_write_quorum = strat.Strategy.min_write;
        read_avail_90;
        write_avail_90;
        read_latency = res.Cluster.reads.Sim.Stats.mean;
        write_latency = res.Cluster.writes.Sim.Stats.mean;
      })
    cases

(** {1 Q4 — reconfiguration restores availability after failures}

    Timeline: phase A (healthy, read-one/write-all over 5 replicas);
    phase B (replicas r3 and r4 crash permanently: reads still
    succeed, but writes need all five replicas and now fail); phase C
    (reconfigure to majority over the three survivors, migrating every
    key — safe because read-one/write-all wrote to {e every} replica,
    so the survivors hold the latest data); phase D (reconfigured:
    both reads and writes succeed again).  Success rates per phase are
    the deliverable — the Section 4 motivation, quantified. *)

type reconfig_row = { phase : string; ok : int; failed : int; rate : float }

let reconfig_experiment ?(seed = 53) () : reconfig_row list =
  let sim = Core.create ~seed in
  let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
  let net =
    Net.create ~sim
      ~nodes:(replica_names @ [ "c0" ])
      ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
      ()
  in
  let replicas = List.map (fun name -> Replica.create ~name ()) replica_names in
  List.iter (fun r -> Replica.attach r ~net) replicas;
  (* old configuration: read-one/write-all — writes reach every
     replica, so any survivor set holds the latest data *)
  let old_strategy = Strategy.rowa 5 in
  (* new configuration: majority over the three survivors r0-r2 *)
  let new_strategy =
    Strategy.weighted ~name:"survivors-majority" ~votes:[| 1; 1; 1; 0; 0 |]
      ~r:2 ~w:2
  in
  let client =
    Client.create ~name:"c0" ~sim ~net
      ~replicas:(Array.of_list replica_names)
      ~strategy:old_strategy ~timeout:50.0 ()
  in
  Client.attach client;
  let phases = Hashtbl.create 4 in
  let phase = ref "A-healthy" in
  let record ok =
    let o, f =
      Option.value ~default:(0, 0) (Hashtbl.find_opt phases !phase)
    in
    Hashtbl.replace phases !phase (if ok then (o + 1, f) else (o, f + 1))
  in
  let rng = Prng.create (seed lxor 0xff) in
  let keys = List.init 8 (fun i -> Fmt.str "k%d" i) in
  (* steady stream of operations throughout *)
  let rec traffic n =
    if n > 0 then
      Core.schedule sim ~delay:(Prng.exponential rng ~mean:4.0) (fun () ->
          let key = Prng.choose rng keys in
          if Prng.float rng < 0.5 then
            Client.read client ~key ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
                record ok)
          else
            Client.write client ~key ~value:(Prng.int rng 10_000)
              ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ -> record ok);
          traffic (n - 1))
  in
  traffic 600;
  (* t=600: crash r3 and r4 for good *)
  Core.schedule sim ~delay:600.0 (fun () ->
      phase := "B-failed";
      Net.crash net "r3";
      Net.crash net "r4");
  (* t=1200: reconfigure — migrate every key under the new quorum
     rule (Gifford's data-copy phase: push the current value and
     version to a write quorum of the new configuration), then let the
     client run with the new configuration *)
  Core.schedule sim ~delay:1200.0 (fun () ->
      phase := "C-migrating";
      client.Client.strategy <- new_strategy;
      let rec migrate = function
        | [] -> phase := "D-reconfigured"
        | key :: rest ->
            Client.read client ~key ~on_done:(fun ~ok ~vn ~value ~latency:_ ->
                if ok then
                  Client.install client ~key ~vn:(vn + 1) ~value
                    ~on_done:(fun ~ok:_ ~vn:_ ~value:_ ~latency:_ ->
                      migrate rest)
                else migrate rest)
      in
      migrate keys);
  Core.run sim;
  let order = [ "A-healthy"; "B-failed"; "C-migrating"; "D-reconfigured" ] in
  List.filter_map
    (fun phase ->
      match Hashtbl.find_opt phases phase with
      | Some (ok, failed) ->
          Some
            {
              phase;
              ok;
              failed;
              rate = float_of_int ok /. float_of_int (max 1 (ok + failed));
            }
      | None -> None)
    order

(** {1 Read repair: anti-entropy on the read path}

    Replicas that were down during writes come back stale and — under
    quorum reads — stay stale forever unless something fixes them
    (correctness does not require it: quorum intersection masks the
    staleness, at the cost of larger effective quorums and lost
    failure margin).  With read repair, reads push the newest version
    to the stale replicas they observed.  The experiment measures
    replica staleness after a failure-heavy write phase followed by a
    read-only phase, with repair off and on. *)

type repair_row = {
  mode : string;
  staleness_mid : float;
      (** mean fraction of stale replicas per key when failures stop *)
  staleness_end : float;  (** idem after the read-only phase *)
  repairs_sent : int;
}

let read_repair_experiment ?(seed = 61) () : repair_row list =
  let run_one ~read_repair =
    let sim = Core.create ~seed in
    let replica_names = List.init 5 (fun i -> Fmt.str "r%d" i) in
    let net =
      Net.create ~sim
        ~nodes:(replica_names @ [ "c0" ])
        ~latency:(Net.lognormal_latency ~mu:1.0 ~sigma:0.5)
        ()
    in
    let replicas = List.map (fun name -> Replica.create ~name ()) replica_names in
    List.iter (fun r -> Replica.attach r ~net) replicas;
    let client =
      Client.create ~name:"c0" ~sim ~net
        ~replicas:(Array.of_list replica_names)
        ~strategy:(Strategy.majority 5) ~timeout:50.0 ~read_repair ()
    in
    Client.attach client;
    let keys = List.init 8 (fun i -> Fmt.str "k%d" i) in
    let rng = Prng.create (seed lxor 0x5e) in
    (* failure-heavy write phase until t=800 *)
    List.iter
      (fun node ->
        ignore
          (Sim.Failure.attach ~sim ~net ~node
             ~spec:{ Sim.Failure.mtbf = 200.0; mttr = 100.0 }
             ~until:800.0 ()
            : Sim.Failure.t))
      replica_names;
    (* write phase strictly bounded to t < 700 so that no late write
       (broadcast to all replicas) masks the staleness left behind *)
    let rec writes n =
      if n > 0 && Core.now sim < 700.0 then
        Core.schedule sim ~delay:(Prng.exponential rng ~mean:5.0) (fun () ->
            if Core.now sim < 700.0 then
              Client.write client ~key:(Prng.choose rng keys)
                ~value:(Prng.int rng 100_000)
                ~on_done:(fun ~ok:_ ~vn:_ ~value:_ ~latency:_ -> writes (n - 1)))
    in
    writes 120;
    (* read-only phase from t=900 to t=1700 *)
    let rec reads n =
      if n > 0 then
        Core.schedule sim ~delay:(Prng.exponential rng ~mean:4.0) (fun () ->
            Client.read client ~key:(Prng.choose rng keys)
              ~on_done:(fun ~ok:_ ~vn:_ ~value:_ ~latency:_ -> reads (n - 1)))
    in
    Core.schedule sim ~delay:900.0 (fun () ->
        List.iter (fun r -> Net.recover net r) replica_names;
        reads 200);
    let staleness () =
      let per_key =
        List.map
          (fun key ->
            let vns =
              List.map (fun r -> fst (Replica.lookup r key)) replicas
            in
            let hi = List.fold_left max 0 vns in
            if hi = 0 then 0.0
            else
              float_of_int (List.length (List.filter (fun v -> v < hi) vns))
              /. float_of_int (List.length vns))
          keys
      in
      List.fold_left ( +. ) 0.0 per_key /. float_of_int (List.length per_key)
    in
    let mid = ref 0.0 in
    Core.schedule sim ~delay:890.0 (fun () -> mid := staleness ());
    Core.run sim;
    {
      mode = (if read_repair then "read repair on" else "read repair off");
      staleness_mid = !mid;
      staleness_end = staleness ();
      repairs_sent = Obs.Metrics.value client.Client.repairs_sent;
    }
  in
  [ run_one ~read_repair:false; run_one ~read_repair:true ]

(** {1 Optimal vote assignments}

    Gifford's paper chooses vote assignments by intuition and example;
    with exact analytic availability the choice can be {e optimized}:
    for a per-site availability [p] and a read fraction [f], score
    every (votes, r, w) configuration by
    [f * read_availability + (1 - f) * write_availability] and pick
    the best.  Searching all vote multisets (votes 0-3 per site, at
    least one positive) with minimal legal thresholds
    ([r + w = total + 1]; larger thresholds only lose availability)
    shows the availability optimum always weakly dominates both
    classical extremes, and that skewed workloads are won by
    {e asymmetric} thresholds (small quorums on the hot side, large on
    the cold side) rather than by read-one/write-all, whose write side
    collapses — rowa's real advantage is latency, not availability. *)

type optimum_row = {
  p : float;
  read_fraction : float;
  votes : int list;
  r : int;
  w : int;
  score : float;
  rowa_score : float;
  majority_score : float;
}

let optimal_configurations ?(n = 5)
    ?(ps = [ 0.8; 0.9; 0.99 ]) ?(fractions = [ 0.1; 0.5; 0.9 ]) () :
    optimum_row list =
  (* non-increasing vote vectors, entries 0..3, at least one positive *)
  let rec vote_vectors k maxv =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun v -> List.map (fun rest -> v :: rest) (vote_vectors (k - 1) v))
        (List.init (maxv + 1) (fun i -> maxv - i))
  in
  let candidates =
    List.filter_map
      (fun votes ->
        let total = List.fold_left ( + ) 0 votes in
        if total = 0 then None else Some (votes, total))
      (vote_vectors n 3)
  in
  let score strat ~p ~f =
    let ar, aw = Strategy.availability strat ~p in
    (f *. ar) +. ((1.0 -. f) *. aw)
  in
  List.concat_map
    (fun p ->
      List.map
        (fun f ->
          let best = ref None in
          List.iter
            (fun (votes, total) ->
              for r = 1 to total do
                let w = total + 1 - r in
                if w >= 1 && w <= total then begin
                  let strat =
                    Strategy.weighted ~name:"cand" ~votes:(Array.of_list votes)
                      ~r ~w
                  in
                  let s = score strat ~p ~f in
                  match !best with
                  | Some (s', _, _, _) when s' >= s -> ()
                  | _ -> best := Some (s, votes, r, w)
                end
              done)
            candidates;
          let s, votes, r, w = Option.get !best in
          {
            p;
            read_fraction = f;
            votes;
            r;
            w;
            score = s;
            rowa_score = score (Strategy.rowa n) ~p ~f;
            majority_score = score (Strategy.majority n) ~p ~f;
          })
        fractions)
    ps

(** {1 Broadcast vs targeted quorums: messages, load, latency}

    Quorum-system theory's third axis (after availability and quorum
    size) is {e load} — how evenly work spreads over replicas (cf.
    grid quorums, designed exactly for this).  Under broadcast routing
    every replica sees every operation, so load is flat and the axis
    is invisible; targeted routing (message one random minimal quorum)
    reveals it, trading tail latency and messages for load. *)

type load_row = {
  strategy_name : string;
  mode : string;
  messages : int;
  read_mean : float;
  availability : float;
  load_imbalance : float;
      (** max replica load / mean replica load (1.0 = perfectly flat) *)
}

let load_table ?(seed = 83) () : load_row list =
  let n = 6 in
  let strategies =
    [
      ("majority-6", fun _ -> Strategy.majority n);
      ("grid-2x3", fun _ -> Strategy.grid ~rows:2 ~cols:3);
      ( "primary-weighted",
        fun _ ->
          Strategy.weighted ~name:"pw" ~votes:[| 3; 1; 1; 1; 1; 1 |] ~r:4 ~w:5
      );
    ]
  in
  List.concat_map
    (fun (name, strat) ->
      List.map
        (fun (mode, targeting) ->
          let r =
            Cluster.run
              {
                Cluster.default_params with
                n_replicas = n;
                strategy = strat;
                targeting;
                workload =
                  { Workload.default_spec with ops_per_client = 400; read_fraction = 0.8 };
                seed;
              }
          in
          let loads = List.map snd r.Cluster.replica_loads in
          let total = List.fold_left ( + ) 0 loads in
          let mean = float_of_int total /. float_of_int n in
          let hi = List.fold_left max 0 loads in
          {
            strategy_name = name;
            mode;
            messages = r.Cluster.net.Sim.Net.sent;
            read_mean = r.Cluster.reads.Sim.Stats.mean;
            availability = Cluster.availability r;
            load_imbalance =
              (if mean > 0.0 then float_of_int hi /. mean else nan);
          })
        [ ("broadcast", `Broadcast); ("targeted", `Quorum) ])
    strategies

(** {1 Ablation — retry/backoff/hedging policy under adverse networks}

    The engine's robustness knobs against the two failure modes the
    other experiments inject: random message loss and nemesis
    partitions.  Targeted-quorum routing is the stress case — a single
    lost message stalls the chosen quorum, so fire-once clients pay
    the full operation timeout while retries resend and hedges fall
    back to the unchosen replicas. *)

type retry_row = {
  policy_name : string;
  condition : string;
  ok_ops : int;
  failed_ops : int;
  success_rate : float;
  read_mean : float;
  messages : int;
  retries : int;
  hedges : int;
  audit_clean : bool;
}

let retry_policy_table ?(seed = 77) () : retry_row list =
  let policies =
    [
      ("fire-once", Rpc.Policy.default);
      ("retry x2", Rpc.Policy.with_retries 2);
      ( "retry x2 + hedge 12",
        Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0 );
    ]
  in
  (* the partition condition is the legacy storm expressed as a
     harness script — identical code path, identical numbers *)
  let conditions =
    [
      ("loss 30%", 0.3, []);
      ("partitions", 0.0, Harness.Script.of_partitions 150.0);
    ]
  in
  let n_clients = 4 in
  List.concat_map
    (fun (policy_name, policy) ->
      List.map
        (fun (condition, loss, script) ->
          let r =
            Cluster.run
              {
                Cluster.default_params with
                targeting = `Quorum;
                policy;
                loss;
                script;
                n_clients;
                workload =
                  {
                    Workload.default_spec with
                    ops_per_client = 150;
                    read_fraction = 0.5;
                  };
                seed;
              }
          in
          (* the engine's counters are per client; re-fetching the same
             (name, labels) pair from the shared registry yields the
             same instrument, so summing over client names aggregates *)
          let sum name =
            List.fold_left
              (fun acc ci ->
                acc
                + Obs.Metrics.value
                    (Obs.Metrics.counter r.Cluster.metrics
                       ~labels:[ ("client", Fmt.str "c%d" ci) ]
                       name))
              0
              (List.init n_clients Fun.id)
          in
          let ok = r.Cluster.ok_reads + r.Cluster.ok_writes in
          let failed = r.Cluster.failed_reads + r.Cluster.failed_writes in
          {
            policy_name;
            condition;
            ok_ops = ok;
            failed_ops = failed;
            success_rate = Cluster.availability r;
            read_mean = r.Cluster.reads.Sim.Stats.mean;
            messages = r.Cluster.net.Sim.Net.sent;
            retries = sum "rpc.retries";
            hedges = sum "rpc.hedges";
            audit_clean = r.Cluster.audit_violations = [];
          })
        conditions)
    policies

(** {1 Ablation — sharding the keyspace across replica groups}

    Per-item quorum consensus makes the keyspace trivially
    partitionable: each key's quorums intersect inside its own replica
    group, so shards add capacity without touching correctness.  The
    table drives a Zipf-skewed workload over 1/2/4 range shards of 3
    replicas each and reports how the skew lands on replicas and
    shards — range sharding deliberately concentrates the hot low
    ranks in shard 0 — plus the blast radius of losing a whole shard:
    the same run with the hot shard killed mid-way.  One shard means
    the kill is a total outage; more shards keep every other shard's
    keys serving. *)

type shard_row = {
  n_shards : int;
  total_replicas : int;
  messages : int;
  replica_imbalance : float;
      (** max replica load / mean replica load (1.0 = flat) *)
  shard_spread : float;
      (** max shard load / mean shard load — how unevenly the key skew
          lands on shards (1 shard: 1.0 by definition) *)
  availability : float;  (** mean over the seeds *)
  min_availability : float;
      (** worst seed — equals [availability] with one seed *)
  kill_availability : float;
      (** availability of the same run with the hottest shard crashed
          at t=500 — the targeted-failure blast radius (mean over the
          seeds) *)
  min_kill_availability : float;  (** worst seed *)
}

(** The sharding ablation.  [seeds] (default 1) averages the
    availability cells over [seed .. seed + seeds - 1], reporting
    min/mean per cell; the load/message columns come from the base
    seed's run, so a single-seed table is unchanged.  The shard kill
    is the legacy nemesis expressed as a harness script. *)
let shard_table ?(seed = 91) ?(seeds = 1) () : shard_row list =
  if seeds < 1 then invalid_arg "Experiments.shard_table: seeds must be >= 1";
  let mk n_shards seed script =
    Cluster.run
      {
        Cluster.default_params with
        n_shards;
        n_replicas = 3;
        strategy = Strategy.majority;
        shard_scheme = `Range;
        workload =
          {
            Workload.default_spec with
            zipf_s = 1.1;
            ops_per_client = 300;
            read_fraction = 0.8;
          };
        seed;
        script;
      }
  in
  let seed_list = List.init seeds (fun i -> seed + i) in
  let min_mean xs =
    ( List.fold_left Float.min infinity xs,
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) )
  in
  List.map
    (fun n_shards ->
      let runs = List.map (fun s -> mk n_shards s []) seed_list in
      (* range sharding puts the hot low ranks in shard 0 *)
      let kill_runs =
        List.map
          (fun s -> mk n_shards s (Harness.Script.of_shard_kill (0, 500.0)))
          seed_list
      in
      let r = List.hd runs in
      let min_avail, mean_avail =
        min_mean (List.map Cluster.availability runs)
      in
      let min_kill, mean_kill =
        min_mean (List.map Cluster.availability kill_runs)
      in
      let loads = List.map snd r.Cluster.replica_loads in
      let n_total = List.length loads in
      let total = List.fold_left ( + ) 0 loads in
      let mean = float_of_int total /. float_of_int n_total in
      let hi = List.fold_left max 0 loads in
      let shard_loads =
        List.map (fun (s : Cluster.shard_stat) -> s.Cluster.load) r.Cluster.shards
      in
      let smean =
        float_of_int (List.fold_left ( + ) 0 shard_loads)
        /. float_of_int n_shards
      in
      let shi = List.fold_left max 0 shard_loads in
      {
        n_shards;
        total_replicas = n_total;
        messages = r.Cluster.net.Sim.Net.sent;
        replica_imbalance =
          (if mean > 0.0 then float_of_int hi /. mean else nan);
        shard_spread =
          (if smean > 0.0 then float_of_int shi /. smean else nan);
        availability = mean_avail;
        min_availability = min_avail;
        kill_availability = mean_kill;
        min_kill_availability = min_kill;
      })
    [ 1; 2; 4 ]

(** {1 Ablation — multi-key batching}

    Burst-issuing clients give the engine several distinct keys in
    flight; with a batching window those keys' waves coalesce into one
    frame per replica per window.  Wire messages collapse (the [>= 30%]
    reduction the engine promises — in practice far more under skew)
    while logical payloads stay equal, at the price of up to one
    window of added queue delay per request — visible in the p95
    columns. *)

type batch_row = {
  zipf_label : string;
  mode : string;  (** "unbatched" or "batched w=&lt;window&gt;" *)
  b_messages : int;  (** wire messages *)
  b_payloads : int;  (** logical requests carried *)
  read_p95 : float;
  write_p95 : float;
  b_ok_ops : int;
  b_failed_ops : int;
  b_audit_clean : bool;
}

let batching_table ?(seed = 97) () : batch_row list =
  let window = 1.0 in
  List.concat_map
    (fun (zipf_label, zipf_s) ->
      List.map
        (fun (mode, batch_window) ->
          let r =
            Cluster.run
              {
                Cluster.default_params with
                batch_window;
                workload =
                  {
                    Workload.default_spec with
                    zipf_s;
                    burst = 8;
                    ops_per_client = 200;
                  };
                seed;
              }
          in
          {
            zipf_label;
            mode;
            b_messages = r.Cluster.net.Sim.Net.sent;
            b_payloads = r.Cluster.net.Sim.Net.payload_sent;
            read_p95 = r.Cluster.reads.Sim.Stats.p95;
            write_p95 = r.Cluster.writes.Sim.Stats.p95;
            b_ok_ops = r.Cluster.ok_reads + r.Cluster.ok_writes;
            b_failed_ops = r.Cluster.failed_reads + r.Cluster.failed_writes;
            b_audit_clean = r.Cluster.audit_violations = [];
          })
        [ ("unbatched", None); (Fmt.str "batched w=%g" window, Some window) ])
    [ ("uniform (s=0)", 0.0); ("zipf s=1.1", 1.1) ]

(** {1 Ablation — replica-side io pipeline}

    With a storage device attached ([storage_cost]/[fsync_cost] > 0)
    every install must reach disk before it acks.  The naive
    discipline fsyncs per install — one serialized
    [write_cost + fsync_cost] each, exactly 1.0 fsyncs per install by
    construction — while group commit drains whatever accumulated
    behind the in-flight fsync as one group per fsync, amortizing the
    dominant cost across the burst.  The audit runs unchanged: acks
    still certify durable versions, so quorum intersection (and
    therefore the audit) is untouched by the pipeline. *)

type io_row = {
  io_mode : string;  (** "no-storage", "naive-fsync", "group-commit" *)
  io_installs : int;
  io_fsyncs : int;
  io_fsyncs_per_install : float;
  io_write_mean : float;
  io_write_p95 : float;
  io_ok_ops : int;
  io_failed_ops : int;
  io_audit_clean : bool;
}

let io_table ?(seed = 42) () : io_row list =
  let params ~storage ~group_commit =
    {
      Cluster.default_params with
      n_replicas = 3;
      n_clients = 4;
      workload =
        {
          Workload.default_spec with
          ops_per_client = 60;
          read_fraction = 0.3;
          zipf_s = 1.1;
          burst = 8;
        };
      storage_cost = (if storage then 0.05 else 0.0);
      fsync_cost = (if storage then 5.0 else 0.0);
      group_commit;
      seed;
    }
  in
  List.map
    (fun (io_mode, storage, group_commit) ->
      let r = Cluster.run (params ~storage ~group_commit) in
      {
        io_mode;
        io_installs = r.Cluster.installs;
        io_fsyncs = r.Cluster.fsyncs;
        io_fsyncs_per_install =
          (if r.Cluster.installs = 0 then nan
           else
             float_of_int r.Cluster.fsyncs /. float_of_int r.Cluster.installs);
        io_write_mean = r.Cluster.writes.Sim.Stats.mean;
        io_write_p95 = r.Cluster.writes.Sim.Stats.p95;
        io_ok_ops = r.Cluster.ok_reads + r.Cluster.ok_writes;
        io_failed_ops = r.Cluster.failed_reads + r.Cluster.failed_writes;
        io_audit_clean = r.Cluster.audit_violations = [];
      })
    [
      ("no-storage", false, true);
      ("naive-fsync", true, false);
      ("group-commit", true, true);
    ]

(** {1 Ablation — adaptive batching windows}

    The static window is a bet placed once: too small and bursts leave
    coalescing on the table, too large and a quiet client pays queue
    delay for frames that never form.  The AIMD controller moves the
    bet every flush — peak per-destination batch size >= 2 widens the
    window additively, an idle flush halves it toward zero.  The table
    runs both regimes: a burst-8 Zipf workload (where wide windows
    win the message economy) and a uniform low-rate workload (where
    any fixed window only adds latency; the controller should sit at
    zero and match the unbatched mean). *)

type window_row = {
  w_workload : string;  (** "burst-8 zipf" or "uniform low-rate" *)
  w_mode : string;  (** "unbatched", "static w=...", "adaptive" *)
  w_messages : int;  (** wire messages *)
  w_payloads : int;  (** logical requests carried *)
  w_op_mean : float;  (** mean latency over all successful ops *)
  w_ok_ops : int;
  w_failed_ops : int;
  w_audit_clean : bool;
}

let window_statics = [ 0.5; 1.0; 2.0; 4.0 ]

let window_table ?(seed = 42) () : window_row list =
  let base ~bursty =
    if bursty then
      {
        Cluster.default_params with
        n_replicas = 3;
        n_clients = 4;
        workload =
          {
            Workload.default_spec with
            ops_per_client = 60;
            read_fraction = 0.7;
            zipf_s = 1.1;
            burst = 8;
          };
        seed;
      }
    else
      {
        Cluster.default_params with
        n_replicas = 3;
        n_clients = 4;
        workload =
          {
            Workload.default_spec with
            ops_per_client = 60;
            read_fraction = 0.9;
            zipf_s = 0.0;
            think_time = 10.0;
            burst = 1;
          };
        seed;
      }
  in
  let modes =
    ("unbatched", `Unbatched)
    :: List.map (fun w -> (Fmt.str "static w=%g" w, `Static w)) window_statics
    @ [ ("adaptive", `Adaptive) ]
  in
  List.concat_map
    (fun (w_workload, bursty) ->
      List.map
        (fun (w_mode, m) ->
          let p = base ~bursty in
          let p =
            match m with
            | `Unbatched -> p
            | `Static w -> { p with Cluster.batch_window = Some w }
            | `Adaptive ->
                { p with
                  Cluster.adaptive_window = Some Rpc.Window.default_config }
          in
          let r = Cluster.run p in
          {
            w_workload;
            w_mode;
            w_messages = r.Cluster.net.Sim.Net.sent;
            w_payloads = r.Cluster.net.Sim.Net.payload_sent;
            w_op_mean = mean_op_latency r;
            w_ok_ops = r.Cluster.ok_reads + r.Cluster.ok_writes;
            w_failed_ops = r.Cluster.failed_reads + r.Cluster.failed_writes;
            w_audit_clean = r.Cluster.audit_violations = [];
          })
        modes)
    [ ("burst-8 zipf", true); ("uniform low-rate", false) ]

(** {1 Ablation — latency attribution}

    Where does a quorum operation's wall latency actually go?  The
    causal traces answer: each stamped operation's wall interval is
    decomposed by {!Obs.Attribution} into net / backoff / hedge /
    batch-wait / replica-queue / apply / fsync / reply phases that sum
    exactly to the measured latency.  The table crosses loss (clean
    vs 30% drop — retries and their backoff gaps appear) with burst
    size (closed-loop vs burst-8 — batch-window waits and group-commit
    amortization appear), holding retries, batching, and storage costs
    fixed, so each knob's latency cost shows up in its own phase
    instead of as an undifferentiated mean. *)

type attr_row = {
  a_label : string;  (** e.g. ["loss=30% burst=8"] *)
  a_ops : int;  (** stamped operations attributed *)
  a_wall_mean : float;  (** mean wall latency over attributed ops *)
  a_phase_means : (Obs.Attribution.phase * float) list;
      (** mean time units per op per phase, in {!Obs.Attribution.phases}
          order; sums to [a_wall_mean] up to float error *)
  a_ok_ops : int;
  a_failed_ops : int;
  a_audit_clean : bool;
}

let attribution_table ?(seed = 42) () : attr_row list =
  List.concat_map
    (fun (loss_label, loss) ->
      List.map
        (fun (burst_label, burst) ->
          let tracer = Obs.Trace.create ~capacity:262144 ~enabled:true () in
          let r =
            Cluster.run
              {
                Cluster.default_params with
                n_replicas = 3;
                n_clients = 4;
                n_shards = 2;
                loss;
                tracer = Some tracer;
                trace_ctx = true;
                batch_window = Some 1.0;
                storage_cost = 0.05;
                fsync_cost = 2.0;
                policy =
                  {
                    Rpc.Policy.default with
                    max_attempts = 3;
                    attempt_timeout = 25.0;
                    backoff = 2.0;
                  };
                workload =
                  {
                    Workload.default_spec with
                    ops_per_client = 60;
                    read_fraction = 0.5;
                    zipf_s = 1.1;
                    burst;
                  };
                seed;
              }
          in
          let bs = Obs.Attribution.of_events (Obs.Trace.events tracer) in
          let n = List.length bs in
          let wall_mean =
            if n = 0 then nan
            else
              List.fold_left (fun acc b -> acc +. Obs.Attribution.wall b) 0.0 bs
              /. float_of_int n
          in
          {
            a_label = Fmt.str "%s %s" loss_label burst_label;
            a_ops = n;
            a_wall_mean = wall_mean;
            a_phase_means = Obs.Attribution.mean_by_phase bs;
            a_ok_ops = r.Cluster.ok_reads + r.Cluster.ok_writes;
            a_failed_ops = r.Cluster.failed_reads + r.Cluster.failed_writes;
            a_audit_clean = r.Cluster.audit_violations = [];
          })
        [ ("burst=1", 1); ("burst=8", 8) ])
    [ ("loss=0%", 0.0); ("loss=30%", 0.3) ]

(** {1 Ablation — workload-aware quorum tuning}

    The optimizer + steering ablation behind [tables.exe tune]: a
    skewed (90/10) and a balanced (50/50) read mix, in a uniform
    cluster and in one where replica r4 is slow on every link, across
    four modes — static majority (the baseline), the optimizer alone,
    optimizer + queue-aware steering, and steering alone under static
    majority (the slow-replica isolation).  Quorum targeting with the
    default fire-once policy, so the chosen quorum's members are the
    ops' whole fate — exactly the regime the model scores. *)

type tune_row = {
  t_mix : string;  (** "90/10" or "50/50" *)
  t_env : string;  (** "uniform" or "slow-r4" *)
  t_mode : string;
      (** "majority", "optimized", "optimized+steer", "majority+steer" *)
  t_strategy : string;  (** the shard's final strategy (base seed) *)
  t_switches : int;  (** committed re-strategizes (base seed) *)
  t_ok_ops : int;  (** summed over the seeds *)
  t_failed_ops : int;
  t_throughput : float;  (** ok ops per time unit, mean over seeds *)
  t_read_mean : float;  (** mean over seeds of the read-latency mean *)
  t_read_p99 : float;  (** mean over seeds of the read-latency p99 *)
  t_audit_clean : bool;  (** every seed's audit clean *)
}

let tune_mixes = [ ("90/10", 0.9); ("50/50", 0.5) ]

let tune_modes =
  [ "majority"; "optimized"; "optimized+steer"; "majority+steer" ]

let tune_spec_of_mode = function
  | "majority" -> None
  | "optimized" -> Some { Cluster.default_tune_spec with steer = false }
  | "optimized+steer" -> Some Cluster.default_tune_spec
  | "majority+steer" ->
      Some { Cluster.default_tune_spec with optimize = false }
  | mode -> invalid_arg (Fmt.str "tune_spec_of_mode: %s" mode)

let tune_table ?(seed = 42) ?(seeds = 3) () : tune_row list =
  let base_latency = Net.lognormal_latency ~mu:1.0 ~sigma:0.5 in
  (* one slow replica: every link touching r4 pays a constant on top
     of the base draw (same rng consumption, so runs stay comparable) *)
  let slow_latency : Net.latency =
   fun rng ~src ~dst ->
    let l = base_latency rng ~src ~dst in
    if String.equal src "r4" || String.equal dst "r4" then l +. 4.0 else l
  in
  let run_one ~f ~slow ~mode s =
    Cluster.run
      {
        Cluster.default_params with
        n_replicas = 5;
        n_clients = 4;
        targeting = `Quorum;
        latency = (if slow then slow_latency else base_latency);
        workload =
          {
            Workload.default_spec with
            ops_per_client = 150;
            read_fraction = f;
            think_time = 2.0;
          };
        tune = tune_spec_of_mode mode;
        seed = s;
      }
  in
  List.concat_map
    (fun (t_env, slow) ->
      List.concat_map
        (fun (t_mix, f) ->
          List.map
            (fun t_mode ->
              let rs =
                List.init (max 1 seeds) (fun i ->
                    run_one ~f ~slow ~mode:t_mode (seed + (31 * i)))
              in
              let base = List.hd rs in
              let mean g =
                List.fold_left (fun acc r -> acc +. g r) 0.0 rs
                /. float_of_int (List.length rs)
              in
              let sum g = List.fold_left (fun acc r -> acc + g r) 0 rs in
              {
                t_mix;
                t_env;
                t_mode;
                t_strategy =
                  (match base.Cluster.shard_strategies with
                  | s :: _ -> s
                  | [] -> "?");
                t_switches = List.length base.Cluster.strategy_switches;
                t_ok_ops =
                  sum (fun r -> r.Cluster.ok_reads + r.Cluster.ok_writes);
                t_failed_ops =
                  sum (fun r ->
                      r.Cluster.failed_reads + r.Cluster.failed_writes);
                t_throughput =
                  mean (fun r ->
                      float_of_int (r.Cluster.ok_reads + r.Cluster.ok_writes)
                      /. r.Cluster.duration);
                t_read_mean = mean (fun r -> r.Cluster.reads.Sim.Stats.mean);
                t_read_p99 = mean (fun r -> r.Cluster.reads.Sim.Stats.p99);
                t_audit_clean =
                  List.for_all (fun r -> r.Cluster.audit_violations = []) rs;
              })
            tune_modes)
        tune_mixes)
    [ ("uniform", false); ("slow-r4", true) ]
