(** Workload-aware strategy optimization: candidate families over [n]
    replicas, lowered onto {!Tune.Model}'s analytic model.  Shared by
    the cluster's re-strategizing epoch, the REPL's [tune] command and
    the [tables.exe tune] ablation. *)

val to_system : Strategy.t -> Tune.Model.system

val candidates : int -> Strategy.t list
(** Majority (first, so ties resolve conservatively), the full unit-
    vote threshold sweep (read-[r]/write-[n+1-r], covering rowa and
    write-one), every [rows * cols = n] grid with both sides >= 2,
    the tree family at [n >= 4], and primary-copy.
    @raise Invalid_argument unless [n >= 1]. *)

type choice = { strategy : Strategy.t; score : Tune.Model.score }

val choose :
  ?config:Tune.Model.config ->
  read_fraction:float ->
  p_alive:float ->
  lat:(int -> float) ->
  int ->
  choice option
(** The objective-minimal legal, availability-admissible candidate
    over [n] replicas — [None] if nothing meets the floors.  Every
    candidate passes [Strategy.legal] before it can be returned. *)

val joint : Strategy.t -> Strategy.t -> Strategy.t
(** The transitional strategy for re-strategizing [a] -> [b]: quorums
    satisfy both predicates.  Reads still cover data at rest under
    [a]; writes already land on [b]'s quorums (DESIGN.md §16).
    @raise Invalid_argument if replica counts differ. *)
