(** Wiring: build a complete simulated cluster — replicas, clients,
    network, failure injectors — run a workload, and collect metrics
    plus a consistency audit.

    The audit exploits the single-writer-per-key discipline of
    {!Workload}: per key, completed writes carry strictly increasing
    version numbers, and every successful read must return a version
    at least as new as the newest write completed before the read
    began, with the value that was actually written at that version.
    Quorum intersection is exactly what makes this hold across
    failures; a configuration without intersection (or a protocol bug)
    fails the audit. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

type params = {
  n_replicas : int;
  n_clients : int;
  strategy : int -> Strategy.t;  (** from n_replicas *)
  workload : Workload.spec;
  latency : Net.latency;
  loss : float;
  timeout : float;
  failures : Sim.Failure.spec option;  (** applied to every replica *)
  targeting : Client.targeting;
  policy : Rpc.Policy.t;
      (** per-request retry/backoff/hedging policy of every client *)
  partitions : float option;
      (** nemesis: every ~[mean] time units, cut the replica set along
          a random bipartition (clients stay connected to one random
          side), heal it half a period later — operations may fail but
          the audit must stay clean (quorum intersection at work) *)
  seed : int;
  trace_capacity : int;
      (** ring-buffer size of the run's tracer; 0 disables tracing *)
  tracer : Obs.Trace.t option;
      (** use this tracer instead of creating one — e.g. to collect
          several runs, or a cluster run plus an IOA run, in one
          trace; overrides [trace_capacity] *)
}

let default_params =
  {
    n_replicas = 5;
    n_clients = 4;
    strategy = Strategy.majority;
    workload = Workload.default_spec;
    latency = Net.lognormal_latency ~mu:1.0 ~sigma:0.5;
    loss = 0.0;
    timeout = 100.0;
    failures = None;
    targeting = `Broadcast;
    policy = Rpc.Policy.default;
    partitions = None;
    seed = 42;
    trace_capacity = 0;
    tracer = None;
  }

type audit_entry = {
  vn : int;
  value : int;
  completed_at : float;
}

type results = {
  reads : Sim.Stats.summary;
  writes : Sim.Stats.summary;
  ok_reads : int;
  failed_reads : int;
  ok_writes : int;
  failed_writes : int;
  net : Net.counters;
  replica_loads : (string * int) list;
      (** queries + installs processed per replica — the "load"
          dimension quorum targeting tunes *)
  audit_violations : string list;
  duration : float;
  trace : Obs.Trace.t;
      (** the run's trace — export with [Obs.Export], query with
          [Obs.Query]; empty unless tracing was enabled *)
  metrics : Obs.Metrics.t;
      (** the shared registry of every replica and client counter *)
}

let availability r =
  let ok = r.ok_reads + r.ok_writes and bad = r.failed_reads + r.failed_writes in
  if ok + bad = 0 then nan else float_of_int ok /. float_of_int (ok + bad)

let run (p : params) : results =
  let sim = Core.create ~seed:p.seed in
  let tracer =
    match p.tracer with
    | Some tr -> tr
    | None ->
        Obs.Trace.create ~capacity:p.trace_capacity
          ~enabled:(p.trace_capacity > 0) ()
  in
  Core.attach_tracer sim tracer;
  let metrics = Obs.Metrics.create () in
  let replica_names = List.init p.n_replicas (fun i -> Fmt.str "r%d" i) in
  let client_names = List.init p.n_clients (fun i -> Fmt.str "c%d" i) in
  let net =
    Net.create ~sim ~nodes:(replica_names @ client_names) ~latency:p.latency
      ~loss:p.loss ()
  in
  let replicas =
    List.map (fun name -> Replica.create ~metrics ~name ()) replica_names
  in
  List.iter (fun r -> Replica.attach r ~net) replicas;
  let strategy = p.strategy p.n_replicas in
  let read_lat = Sim.Stats.create () and write_lat = Sim.Stats.create () in
  let ok_reads = ref 0 and failed_reads = ref 0 in
  let ok_writes = ref 0 and failed_writes = ref 0 in
  (* audit state *)
  let completed_writes : (string, audit_entry list) Hashtbl.t =
    Hashtbl.create 64
  in
  let violations = ref [] in
  let note fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let z = Workload.zipf ~n:p.workload.Workload.n_keys ~s:p.workload.Workload.zipf_s in
  let clients =
    List.mapi
      (fun ci name ->
        let c =
          Client.create ~name ~sim ~net
            ~replicas:(Array.of_list replica_names)
            ~strategy ~timeout:p.timeout ~targeting:p.targeting
            ~policy:p.policy ~seed:(p.seed + ci) ~metrics ()
        in
        Client.attach c;
        (ci, c))
      client_names
  in
  let wrng = Prng.create (p.seed lxor 0xabcdef) in
  (* closed-loop driver per client *)
  let rec issue ci (c : Client.t) remaining op_counter =
    if remaining > 0 then
      let think = Prng.exponential wrng ~mean:p.workload.Workload.think_time in
      Core.schedule sim ~delay:think (fun () ->
          match
            Workload.next_op p.workload z wrng ~ci
              ~n_clients:p.n_clients ~op_counter
          with
          | Workload.Read key ->
              let started = Core.now sim in
              Client.read c ~key ~on_done:(fun ~ok ~vn ~value ~latency ->
                  if ok then begin
                    incr ok_reads;
                    Sim.Stats.add read_lat latency;
                    (* audit: newest write completed before we started *)
                    let prior =
                      List.filter
                        (fun e -> e.completed_at <= started)
                        (Option.value ~default:[]
                           (Hashtbl.find_opt completed_writes key))
                    in
                    let newest =
                      List.fold_left (fun m e -> max m e.vn) 0 prior
                    in
                    if vn < newest then
                      note
                        "stale read of %s: returned vn %d < completed vn %d"
                        key vn newest;
                    (* the value must be what was written at that vn *)
                    if vn > 0 then
                      match
                        List.find_opt
                          (fun e -> e.vn = vn)
                          (Option.value ~default:[]
                             (Hashtbl.find_opt completed_writes key))
                      with
                      | Some e when e.value <> value ->
                          note "corrupt read of %s: vn %d has %d, read %d" key
                            vn e.value value
                      | _ -> ()
                  end
                  else incr failed_reads;
                  issue ci c (remaining - 1) (op_counter + 1))
          | Workload.Write (key, v) ->
              Client.write c ~key ~value:v ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
                  if ok then begin
                    incr ok_writes;
                    Sim.Stats.add write_lat latency;
                    let prev =
                      Option.value ~default:[]
                        (Hashtbl.find_opt completed_writes key)
                    in
                    (* single-writer-per-key: versions must increase *)
                    List.iter
                      (fun e ->
                        if e.vn >= vn then
                          note "non-monotonic write to %s: vn %d after %d" key
                            vn e.vn)
                      prev;
                    Hashtbl.replace completed_writes key
                      ({ vn; value = v; completed_at = Core.now sim } :: prev)
                  end
                  else incr failed_writes;
                  issue ci c (remaining - 1) (op_counter + 1)))
  in
  List.iter
    (fun (ci, c) -> issue ci c p.workload.Workload.ops_per_client ci)
    clients;
  (* failure injection *)
  (match p.failures with
  | Some spec ->
      List.iter
        (fun node ->
          Sim.Failure.attach ~sim ~net ~node ~spec ~until:1e9 ())
        replica_names
  | None -> ());
  (* partition nemesis *)
  (match p.partitions with
  | Some mean ->
      let nrng = Prng.create (p.seed lxor 0x9a97) in
      let cut_between side_a side_b =
        List.iter
          (fun a -> List.iter (fun b -> Net.cut_link net a b) side_b)
          side_a
      in
      let heal_between side_a side_b =
        List.iter
          (fun a -> List.iter (fun b -> Net.heal_link net a b) side_b)
          side_a
      in
      (* bounded cycles so the event queue eventually drains (the
         workload finishes long before) *)
      let rec nemesis cycles =
        if cycles > 0 then
        Core.schedule sim ~delay:(Prng.exponential nrng ~mean) (fun () ->
            (* random non-trivial bipartition of the replicas *)
            let shuffled = Prng.shuffle nrng replica_names in
            let k = 1 + Prng.int nrng (p.n_replicas - 1) in
            let side_a = List.filteri (fun i _ -> i < k) shuffled in
            let side_b = List.filteri (fun i _ -> i >= k) shuffled in
            (* clients land on a random side *)
            let client_side, other_side =
              if Prng.bool nrng then (side_a, side_b) else (side_b, side_a)
            in
            ignore client_side;
            if Obs.Trace.enabled tracer then
              Obs.Trace.instant tracer ~cat:"store" ~name:"nemesis.partition"
                ~track:"nemesis"
                ~args:
                  [
                    ("side_a", Obs.Trace.Str (String.concat "," side_a));
                    ("side_b", Obs.Trace.Str (String.concat "," side_b));
                  ]
                ();
            cut_between side_a side_b;
            List.iter (fun c -> cut_between [ c ] other_side) client_names;
            Core.schedule sim ~delay:(mean /. 2.0) (fun () ->
                if Obs.Trace.enabled tracer then
                  Obs.Trace.instant tracer ~cat:"store" ~name:"nemesis.heal"
                    ~track:"nemesis" ();
                heal_between side_a side_b;
                List.iter (fun c -> heal_between [ c ] other_side) client_names;
                nemesis (cycles - 1)))
      in
      nemesis 64
  | None -> ());
  Core.run sim;
  {
    reads = Sim.Stats.summarize read_lat;
    writes = Sim.Stats.summarize write_lat;
    ok_reads = !ok_reads;
    failed_reads = !failed_reads;
    ok_writes = !ok_writes;
    failed_writes = !failed_writes;
    net = Net.counters net;
    replica_loads =
      List.map (fun (r : Replica.t) -> (r.Replica.name, Replica.load r)) replicas;
    audit_violations = !violations;
    duration = Core.now sim;
    trace = tracer;
    metrics;
  }
