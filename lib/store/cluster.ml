(** Wiring: build a complete simulated cluster — replicas, clients,
    network, failure injectors — run a workload, and collect metrics
    plus a consistency audit.

    The audit exploits the single-writer-per-key discipline of
    {!Workload}: per key, completed writes carry strictly increasing
    version numbers, and every successful read must return a version
    at least as new as the newest write completed before the read
    began, with the value that was actually written at that version.
    Quorum intersection is exactly what makes this hold across
    failures; a configuration without intersection (or a protocol bug)
    fails the audit.  Sharding does not weaken it: quorums intersect
    per key inside the key's own replica group, so the audit runs
    unchanged over any shard count.  The audit state machine itself
    lives in {!Harness.Check} so nemesis tests and the seed swarm
    share it.

    Fault injection goes through the {!Harness.Script} DSL: the
    [failures]/[partitions]/[shard_kill] params are thin legacy
    constructors compiled onto the script ({!Harness.Script.of_legacy})
    and interpreted by {!Harness.Run} — byte-identically to the old
    inline nemesis code — and [script] appends arbitrary scripted
    steps on top.

    Each client is a {!Router} over [n_shards] replica groups of
    [n_replicas] each.  The defaults — one shard, no batching, burst 1
    — construct and schedule exactly the historical single-group
    cluster, byte for byte. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

type params = {
  n_replicas : int;  (** per shard *)
  n_clients : int;
  strategy : int -> Strategy.t;  (** from n_replicas, per shard *)
  workload : Workload.spec;
  latency : Net.latency;
  loss : float;
  timeout : float;
  failures : Sim.Failure.spec option;  (** applied to every replica *)
  targeting : Client.targeting;
  policy : Rpc.Policy.t;
      (** per-request retry/backoff/hedging policy of every client *)
  partitions : float option;
      (** nemesis: every ~[mean] time units, cut the replica set along
          a random bipartition (clients stay connected to one random
          side), heal it half a period later — operations may fail but
          the audit must stay clean (quorum intersection at work) *)
  seed : int;
  trace_capacity : int;
      (** ring-buffer size of the run's tracer; 0 disables tracing *)
  tracer : Obs.Trace.t option;
      (** use this tracer instead of creating one — e.g. to collect
          several runs, or a cluster run plus an IOA run, in one
          trace; overrides [trace_capacity] *)
  n_shards : int;
      (** replica groups the keyspace is split across (default 1 — the
          historical single-group cluster) *)
  shard_scheme : Router.scheme;  (** key → shard map (default [`Hash]) *)
  batch_window : float option;
      (** multi-key batching window of every client engine; [None]
          (default) sends every request unbatched, byte-identically to
          historical runs *)
  shard_kill : (int * float) option;
      (** targeted-failure nemesis: crash every replica of shard [s]
          at time [at] for the rest of the run — the blast-radius
          experiment (only the killed shard's keys become
          unavailable) *)
  storage_cost : float;
      (** per-write latency of every replica's storage device; with
          [fsync_cost] both zero (the default) no device is attached
          and installs stay synchronous — byte-identical runs *)
  fsync_cost : float;  (** per-fsync latency of every replica's device *)
  group_commit : bool;
      (** with storage attached: drain the apply queue a whole group
          per fsync (default) vs one install per fsync (the naive
          baseline of the io ablation) *)
  adaptive_window : Rpc.Window.config option;
      (** AIMD-controlled batching window of every client engine
          (takes precedence over [batch_window]); [None] (default)
          keeps the static window, byte-identically *)
  trace_ctx : bool;
      (** stamp every operation with a causal trace context (op id +
          parent span) carried through engine and protocol frames to
          the replicas — the raw material of [Obs.Attribution]; off by
          default because the stamps change the trace byte stream *)
  health_window : float option;
      (** attach an [Obs.Health] monitor with this rolling window and
          sample it every half-window while the workload runs; [None]
          (default) attaches nothing and schedules nothing *)
  script : Harness.Script.t;
      (** scripted fault schedule installed on top of the legacy
          nemesis knobs (which compile onto the same interpreter);
          times are relative to the run start.  [[]] (default) adds
          nothing — byte-identical runs *)
  txns : txn_spec option;
      (** run a cross-shard transaction workload instead of the
          single-key op loop: each client issues multi-key
          transactions through a {!Txn} coordinator, the audit
          switches to the multi-key serializability checks, and the
          results gain transaction counts plus the blocked
          (in-doubt) set.  [None] (default) changes nothing —
          byte-identical runs *)
  tune : tune_spec option;
      (** workload-aware quorum tuning: per-shard reply-latency EWMAs
          and queue probes feed queue-aware read steering
          ({!Client.probe}) and a periodic optimizer that
          re-strategizes each shard through {!Autotune} (joint-
          strategy transition + key migration — DESIGN.md §16).
          [None] (default) changes nothing — byte-identical runs.
          The optimizer half only runs on single-key workloads
          ([txns = None]); steering applies wherever the shard
          clients issue quorum-targeted reads *)
}

and txn_spec = {
  txns_per_client : int;
  keys_per_txn : int;  (** footprint size (distinct keys) *)
  txn_read_fraction : float;  (** fraction of the footprint read-only *)
  commit_mode : Txn.mode;  (** [`Two_phase] or [`Paxos] *)
  txn_timeout : float;  (** per-transaction coordinator deadline *)
  txn_retries : int;
      (** re-executions of a failed transaction (each a fresh txid) *)
  recovery_delay : float;
      (** replica in-doubt recovery timer base (Paxos-Commit mode) *)
}

and tune_spec = {
  optimize : bool;  (** run the periodic per-shard strategy optimizer *)
  tune_epoch : float;  (** optimizer period (simulated time) *)
  steer : bool;  (** queue-aware read steering on the shard clients *)
  queue_weight : float;  (** steering cost per queued apply entry *)
  ewma_alpha : float;  (** reply-latency tracker blend weight *)
  p_alive : float;
      (** assumed per-replica alive probability for the availability
          floors of the optimizer's model *)
  min_read_avail : float;  (** read-availability admission floor *)
  min_write_avail : float;  (** write-availability admission floor *)
  w_load : float;  (** objective weight on peak load *)
  w_latency : float;  (** objective weight on expected op latency *)
}

let default_params =
  {
    n_replicas = 5;
    n_clients = 4;
    strategy = Strategy.majority;
    workload = Workload.default_spec;
    latency = Net.lognormal_latency ~mu:1.0 ~sigma:0.5;
    loss = 0.0;
    timeout = 100.0;
    failures = None;
    targeting = `Broadcast;
    policy = Rpc.Policy.default;
    partitions = None;
    seed = 42;
    trace_capacity = 0;
    tracer = None;
    n_shards = 1;
    shard_scheme = `Hash;
    batch_window = None;
    shard_kill = None;
    storage_cost = 0.0;
    fsync_cost = 0.0;
    group_commit = true;
    adaptive_window = None;
    trace_ctx = false;
    health_window = None;
    script = [];
    txns = None;
    tune = None;
  }

let default_txn_spec =
  {
    txns_per_client = 20;
    keys_per_txn = 3;
    txn_read_fraction = 0.34;
    commit_mode = `Paxos;
    txn_timeout = 400.0;
    txn_retries = 2;
    recovery_delay = 150.0;
  }

let default_tune_spec =
  {
    optimize = true;
    tune_epoch = 40.0;
    steer = true;
    queue_weight = 2.0;
    ewma_alpha = 0.2;
    p_alive = 0.99;
    min_read_avail = 0.99;
    min_write_avail = 0.98;
    w_load = 1.0;
    w_latency = 0.05;
  }

type shard_stat = {
  shard : int;
  ok_ops : int;
  failed_ops : int;
  load : int;  (** queries + installs over the shard's replicas *)
}

type results = {
  reads : Sim.Stats.summary;
  writes : Sim.Stats.summary;
  ok_reads : int;
  failed_reads : int;
  ok_writes : int;
  failed_writes : int;
  net : Net.counters;
  replica_loads : (string * int) list;
      (** queries + installs processed per replica — the "load"
          dimension quorum targeting tunes *)
  shards : shard_stat list;  (** per-shard operations and load *)
  audit_violations : string list;
  duration : float;
  installs : int;  (** installs processed across every replica *)
  fsyncs : int;
      (** fsyncs across every replica's storage device ([0] without
          storage) — [fsyncs / installs] is the amortization the io
          ablation measures *)
  trace : Obs.Trace.t;
      (** the run's trace — export with [Obs.Export], query with
          [Obs.Query]; empty unless tracing was enabled *)
  metrics : Obs.Metrics.t;
      (** the shared registry of every replica and client counter *)
  health : Obs.Health.snapshot list;
      (** every health sample taken during the run, chronological —
          empty unless [health_window] was set *)
  completions : (float * bool) list;
      (** chronological [(finished_at, ok)] of every completed
          operation — the input of
          {!Harness.Check.liveness_after_heal}; not part of the digest
          (it is derivable from the traced run) *)
  txn_run : bool;  (** the run used a transaction workload *)
  ok_txns : int;  (** client-acked commits *)
  failed_txns : int;  (** aborted / timed-out attempts (after retries) *)
  txn_latency : Sim.Stats.summary;  (** acked-commit latencies *)
  blocked_txns : string list;
      (** txids still prepared-but-undecided at some replica when the
          run drained — in-doubt forever; the blocking-2PC metric *)
  decided_txns : int;  (** distinct committed decisions (≥ ok_txns) *)
  tune_run : bool;  (** the run had quorum tuning enabled *)
  strategy_switches : (float * int * string) list;
      (** chronological [(committed_at, shard, strategy_name)] of
          every re-strategize the optimizer completed (joint
          transition + migration included) *)
  shard_strategies : string list;
      (** each shard's strategy name at the end of the run, in shard
          order — the initial strategy when nothing switched *)
}

let availability r =
  let ok = r.ok_reads + r.ok_writes and bad = r.failed_reads + r.failed_writes in
  if ok + bad = 0 then nan else float_of_int ok /. float_of_int (ok + bad)

let run (p : params) : results =
  if p.n_shards < 1 then invalid_arg "Cluster.run: n_shards must be >= 1";
  let sim = Core.create ~seed:p.seed in
  let tracer =
    match p.tracer with
    | Some tr -> tr
    | None ->
        Obs.Trace.create ~capacity:p.trace_capacity
          ~enabled:(p.trace_capacity > 0) ()
  in
  Core.attach_tracer sim tracer;
  let metrics = Obs.Metrics.create () in
  (* one shard keeps the historical flat names (and seeded runs
     byte-identical); several shards qualify them *)
  let group_names =
    if p.n_shards = 1 then
      [| Array.init p.n_replicas (fun i -> Fmt.str "r%d" i) |]
    else
      Array.init p.n_shards (fun s ->
          Array.init p.n_replicas (fun i -> Fmt.str "s%d:r%d" s i))
  in
  let replica_names =
    Array.to_list group_names |> List.concat_map Array.to_list
  in
  let client_names = List.init p.n_clients (fun i -> Fmt.str "c%d" i) in
  let net =
    Net.create ~sim ~nodes:(replica_names @ client_names) ~latency:p.latency
      ~loss:p.loss ()
  in
  (* a storage device per replica, but only when a cost is nonzero:
     default runs attach nothing and schedule nothing new *)
  let storage_enabled = p.storage_cost > 0.0 || p.fsync_cost > 0.0 in
  let replicas =
    Array.mapi
      (fun s group ->
        let extra_labels =
          if p.n_shards = 1 then []
          else [ ("shard", string_of_int s) ]
        in
        Array.map
          (fun name ->
            let storage =
              if storage_enabled then
                Some
                  (Sim.Storage.create ~sim ~name ~write_cost:p.storage_cost
                     ~fsync_cost:p.fsync_cost ())
              else None
            in
            Replica.create ~metrics ~extra_labels ?storage
              ~group_commit:p.group_commit
              ?txn_recovery_delay:
                (Option.map (fun s -> s.recovery_delay) p.txns)
              ~name ())
          group)
      group_names
  in
  Array.iter (Array.iter (fun r -> Replica.attach r ~net)) replicas;
  let strategy = p.strategy p.n_replicas in
  let strategies = Array.make p.n_shards strategy in
  let shard_of =
    Router.shard_fn p.shard_scheme ~n_shards:p.n_shards
      ~n_keys:p.workload.Workload.n_keys
  in
  let read_lat = Sim.Stats.create () and write_lat = Sim.Stats.create () in
  let ok_reads = ref 0 and failed_reads = ref 0 in
  let ok_writes = ref 0 and failed_writes = ref 0 in
  (* the health monitor, when asked for: per-shard rolling windows fed
     by every completed operation, with the apply-queue probe averaging
     over the shard's replicas *)
  let health_samples = ref [] in
  let health =
    match p.health_window with
    | None -> None
    | Some w ->
        let queue_depth s =
          let g = replicas.(s) in
          let total =
            Array.fold_left (fun acc r -> acc + Replica.queue_depth r) 0 g
          in
          float_of_int total /. float_of_int (Array.length g)
        in
        let h = Obs.Health.create ~window:w ~n_shards:p.n_shards ~queue_depth () in
        Obs.Health.subscribe h (fun snaps ->
            health_samples := List.rev_append snaps !health_samples);
        Some h
  in
  let health_record ~shard ~read ~ok ~latency =
    match health with
    | Some h ->
        Obs.Health.record h ~at:(Core.now sim) ~shard ~read ~ok ~latency
    | None -> ()
  in
  let shard_ok = Array.make p.n_shards 0 in
  let shard_failed = Array.make p.n_shards 0 in
  (* per-shard read/write attempt counts — the live mix estimate the
     optimizer feeds on (cheap to keep unconditionally) *)
  let shard_reads = Array.make p.n_shards 0 in
  let shard_writes = Array.make p.n_shards 0 in
  (* audit state (the shared single-writer state machine) plus the
     completion log liveness predicates consume *)
  let audit = Harness.Check.audit () in
  let completions = ref [] in
  (* the multi-key audit of transaction runs, fed by every replica's
     decision hook (authoritative — covers commits whose coordinator
     died) and by client-acked commits *)
  let txn_audit = Harness.Check.txn_audit () in
  let ok_txns = ref 0 and failed_txns = ref 0 in
  let txn_lat = Sim.Stats.create () in
  (match p.txns with
  | None -> ()
  | Some _ ->
      Array.iter
        (Array.iter (fun r ->
             Replica.set_on_decided r (fun ~txid ~commit ~writes ->
                 Harness.Check.txn_decided txn_audit ~txid ~commit ~writes)))
        replicas);
  let z = Workload.zipf ~n:p.workload.Workload.n_keys ~s:p.workload.Workload.zipf_s in
  let clients =
    List.mapi
      (fun ci name ->
        let c =
          Router.create ~name ~sim ~net ~groups:group_names ~strategies
            ~scheme:p.shard_scheme ~n_keys:p.workload.Workload.n_keys
            ~timeout:p.timeout ~targeting:p.targeting
            ~trace_ctx:p.trace_ctx ~policy:p.policy
            ~seed:(p.seed + ci) ~metrics ?batch_window:p.batch_window
            ?adaptive_window:p.adaptive_window ()
        in
        Router.attach c;
        (ci, c))
      client_names
  in
  let wrng = Prng.create (p.seed lxor 0xabcdef) in
  (* one completed logical operation, with its audit bookkeeping;
     [k] continues the client's loop *)
  let run_read (c : Router.t) key ~k =
    let started = Core.now sim in
    Router.read c ~key ~on_done:(fun ~ok ~vn ~value ~latency ->
        let s = shard_of key in
        shard_reads.(s) <- shard_reads.(s) + 1;
        health_record ~shard:s ~read:true ~ok ~latency;
        if ok then begin
          incr ok_reads;
          shard_ok.(s) <- shard_ok.(s) + 1;
          Sim.Stats.add read_lat latency;
          Harness.Check.read_ok audit ~key ~started ~vn ~value
        end
        else begin
          incr failed_reads;
          shard_failed.(s) <- shard_failed.(s) + 1
        end;
        completions := (Core.now sim, ok) :: !completions;
        k ())
  in
  let run_write (c : Router.t) key v ~k =
    Router.write c ~key ~value:v ~on_done:(fun ~ok ~vn ~value:_ ~latency ->
        let s = shard_of key in
        shard_writes.(s) <- shard_writes.(s) + 1;
        health_record ~shard:s ~read:false ~ok ~latency;
        if ok then begin
          incr ok_writes;
          shard_ok.(s) <- shard_ok.(s) + 1;
          Sim.Stats.add write_lat latency;
          Harness.Check.write_ok audit ~key ~vn ~value:v ~now:(Core.now sim)
        end
        else begin
          incr failed_writes;
          shard_failed.(s) <- shard_failed.(s) + 1
        end;
        completions := (Core.now sim, ok) :: !completions;
        k ())
  in
  (* closed-loop driver per client: think, then issue [burst]
     operations concurrently and wait for the whole burst (burst 1 is
     the historical strictly-closed loop, draw for draw) *)
  let burst = max 1 p.workload.Workload.burst in
  let rec issue ci (c : Router.t) remaining op_counter =
    if remaining > 0 then
      let think = Prng.exponential wrng ~mean:p.workload.Workload.think_time in
      Core.schedule sim ~delay:think (fun () ->
          if burst = 1 then
            let k () = issue ci c (remaining - 1) (op_counter + 1) in
            match
              Workload.next_op p.workload z wrng ~ci ~n_clients:p.n_clients
                ~op_counter
            with
            | Workload.Read key -> run_read c key ~k
            | Workload.Write (key, v) -> run_write c key v ~k
          else begin
            let b = min burst remaining in
            let ops =
              List.init b (fun j ->
                  Workload.next_op p.workload z wrng ~ci
                    ~n_clients:p.n_clients ~op_counter:(op_counter + j))
            in
            (* single-writer-per-key holds between bursts but not
               within one: demote a repeat write to the same key to a
               read so concurrent same-key writes never race *)
            let seen_writes = Hashtbl.create 4 in
            let ops =
              List.map
                (function
                  | Workload.Read _ as op -> op
                  | Workload.Write (key, v) as op ->
                      if Hashtbl.mem seen_writes key then Workload.Read key
                      else begin
                        Hashtbl.replace seen_writes key ();
                        ignore v;
                        op
                      end)
                ops
            in
            let outstanding = ref b in
            let k () =
              decr outstanding;
              if !outstanding = 0 then issue ci c (remaining - b) (op_counter + b)
            in
            List.iter
              (function
                | Workload.Read key -> run_read c key ~k
                | Workload.Write (key, v) -> run_write c key v ~k)
              ops
          end)
  in
  (* the transaction driver: a closed loop per client issuing
     multi-key transactions through a coordinator, with bounded
     retries (each a fresh txid) spaced by think-time draws *)
  let run_txns spec =
    if spec.keys_per_txn < 1 then
      invalid_arg "Cluster.run: keys_per_txn must be >= 1";
    let n_reads =
      int_of_float
        (spec.txn_read_fraction *. float_of_int spec.keys_per_txn)
    in
    List.iter
      (fun (ci, c) ->
        let coord =
          Txn.create
            ~name:(Fmt.str "c%d" ci)
            ~sim ~router:c ~mode:spec.commit_mode ~timeout:spec.txn_timeout
            ()
        in
        let rec next remaining =
          if remaining > 0 then
            let think =
              Prng.exponential wrng ~mean:p.workload.Workload.think_time
            in
            Core.schedule sim ~delay:think (fun () ->
                (* a distinct-key Zipf footprint (bounded redraws) *)
                let keys = ref [] and have = ref 0 and tries = ref 0 in
                let cap = 100 * spec.keys_per_txn in
                while !have < spec.keys_per_txn && !tries < cap do
                  incr tries;
                  let k = Workload.key_name (Workload.sample z wrng) in
                  if not (List.exists (String.equal k) !keys) then begin
                    keys := k :: !keys;
                    incr have
                  end
                done;
                let keys = List.rev !keys in
                let reads = List.filteri (fun i _ -> i < n_reads) keys in
                let wkeys = List.filteri (fun i _ -> i >= n_reads) keys in
                let txn_no = spec.txns_per_client - remaining in
                let writes =
                  List.mapi
                    (fun j k ->
                      (k, ((ci + 1) * 1_000_000) + (txn_no * 1000) + j))
                    wkeys
                in
                let rec attempt retries_left =
                  let started = Core.now sim in
                  (* the footprint is nonempty, so on_done fires from a
                     scheduled reply or timeout — never inside execute —
                     and the txid cell is filled before it runs *)
                  let txid = ref "" in
                  txid :=
                    Txn.execute coord ~reads ~writes
                      ~on_done:(fun ~committed ~reads:rsnap ~writes:wset
                                    ~latency ->
                        completions := (Core.now sim, committed) :: !completions;
                        if committed then begin
                          incr ok_txns;
                          Sim.Stats.add txn_lat latency;
                          Harness.Check.txn_committed txn_audit ~txid:!txid
                            ~started ~now:(Core.now sim) ~reads:rsnap
                            ~writes:wset;
                          next (remaining - 1)
                        end
                        else if retries_left > 0 then
                          Core.schedule sim
                            ~delay:
                              (Prng.exponential wrng
                                 ~mean:p.workload.Workload.think_time)
                            (fun () -> attempt (retries_left - 1))
                        else begin
                          incr failed_txns;
                          next (remaining - 1)
                        end)
                      ()
                in
                attempt spec.txn_retries)
        in
        next spec.txns_per_client)
      clients
  in
  (match p.txns with
  | None ->
      List.iter
        (fun (ci, c) -> issue ci c p.workload.Workload.ops_per_client ci)
        clients
  | Some spec -> run_txns spec);
  (* the health sampler: every half-window until the workload has
     completed, so the event queue still drains *)
  (match health with
  | Some h ->
      let total =
        match p.txns with
        | None -> p.n_clients * p.workload.Workload.ops_per_client
        | Some spec -> p.n_clients * spec.txns_per_client
      in
      let period = Obs.Health.window h /. 2.0 in
      let completed () =
        match p.txns with
        | None -> !ok_reads + !failed_reads + !ok_writes + !failed_writes
        | Some _ -> !ok_txns + !failed_txns
      in
      let rec tick () =
        Core.schedule sim ~delay:period (fun () ->
            ignore (Obs.Health.sample h ~at:(Core.now sim));
            if completed () < total then tick ())
      in
      if total > 0 then tick ()
  | None -> ());
  (* workload-aware quorum tuning: shared per-shard latency trackers
     and queue probes on every shard client (queue-aware read
     steering), plus — on single-key workloads — a periodic optimizer
     that re-strategizes shards through a joint-strategy transition
     with key migration, then a deadline-length fence before the new
     quorums activate (DESIGN.md §16) *)
  let strategy_switches = ref [] in
  (match p.tune with
  | None -> ()
  | Some spec ->
      if
        not
          (Float.is_finite spec.tune_epoch
          && Float.compare spec.tune_epoch 0.0 > 0)
      then invalid_arg "Cluster.run: tune_epoch must be positive";
      let ewmas =
        Array.init p.n_shards (fun _ ->
            Tune.Ewma.create ~n:p.n_replicas ~alpha:spec.ewma_alpha ())
      in
      List.iter
        (fun (_, c) ->
          for s = 0 to p.n_shards - 1 do
            Router.set_probe c ~shard:s
              (Some
                 {
                   Client.ewma = ewmas.(s);
                   queue_depth =
                     (fun i ->
                       float_of_int (Replica.queue_depth replicas.(s).(i)));
                   queue_weight = spec.queue_weight;
                   steer = spec.steer;
                 })
          done)
        clients;
      match p.txns with
      | Some _ -> () (* the optimizer drives single-key workloads only *)
      | None ->
          if spec.optimize && p.n_clients > 0 then begin
            let config =
              {
                Tune.Model.w_load = spec.w_load;
                w_latency = spec.w_latency;
                min_read_availability = spec.min_read_avail;
                min_write_availability = spec.min_write_avail;
              }
            in
            let total = p.n_clients * p.workload.Workload.ops_per_client in
            let completed () =
              !ok_reads + !failed_reads + !ok_writes + !failed_writes
            in
            let all_keys =
              List.init p.workload.Workload.n_keys Workload.key_name
            in
            let migrator = snd (List.hd clients) in
            let transitioning = Array.make p.n_shards false in
            let set_shard_strategy s st =
              List.iter
                (fun (_, c) -> Router.set_strategy c ~shard:s st)
                clients
            in
            (* Re-strategize shard [s]: move every client to the joint
               strategy (quorums of both old and new — reads still
               cover data at rest, writes already land on new-strategy
               quorums), migrate each of the shard's keys by reading
               its newest version and re-installing it at a joint
               write quorum, then — after the op deadline has fenced
               out anything issued under the old strategy — commit the
               new one.  Any migration failure aborts back to the old
               strategy, which joint quorums also satisfy. *)
            let begin_transition s next_s =
              let current = strategies.(s) in
              let j = Autotune.joint current next_s in
              if Strategy.legal j then begin
                transitioning.(s) <- true;
                let started = Core.now sim in
                set_shard_strategy s j;
                let keys = List.filter (fun k -> shard_of k = s) all_keys in
                let pending = ref (List.length keys) in
                let failed = ref false in
                let commit () =
                  let fence = started +. p.timeout -. Core.now sim in
                  Core.schedule sim ~delay:(Float.max 0.0 fence) (fun () ->
                      set_shard_strategy s next_s;
                      strategies.(s) <- next_s;
                      strategy_switches :=
                        (Core.now sim, s, next_s.Strategy.name)
                        :: !strategy_switches;
                      transitioning.(s) <- false)
                in
                let abort () =
                  set_shard_strategy s current;
                  transitioning.(s) <- false
                in
                let key_done () =
                  decr pending;
                  if !pending = 0 then if !failed then abort () else commit ()
                in
                if keys = [] then commit ()
                else
                  List.iter
                    (fun key ->
                      Router.read migrator ~key
                        ~on_done:(fun ~ok ~vn ~value ~latency:_ ->
                          if not ok then begin
                            failed := true;
                            key_done ()
                          end
                          else if vn = 0 then key_done ()
                          else
                            Router.install migrator ~key ~vn ~value
                              ~on_done:(fun ~ok ~vn:_ ~value:_ ~latency:_ ->
                                if not ok then failed := true;
                                key_done ())))
                    keys
              end
            in
            let rec tick () =
              Core.schedule sim ~delay:spec.tune_epoch (fun () ->
                  if completed () < total then begin
                    for s = 0 to p.n_shards - 1 do
                      if not transitioning.(s) then begin
                        let reads = shard_reads.(s)
                        and writes = shard_writes.(s) in
                        let f =
                          if reads + writes = 0 then
                            p.workload.Workload.read_fraction
                          else
                            float_of_int reads /. float_of_int (reads + writes)
                        in
                        match
                          Autotune.choose ~config ~read_fraction:f
                            ~p_alive:spec.p_alive
                            ~lat:(Tune.Ewma.value ewmas.(s))
                            p.n_replicas
                        with
                        | Some { Autotune.strategy = next_s; _ }
                          when Strategy.legal next_s
                               && not
                                    (String.equal next_s.Strategy.name
                                       strategies.(s).Strategy.name) ->
                            begin_transition s next_s
                        | _ -> ()
                      end
                    done;
                    tick ()
                  end)
            in
            if total > 0 then tick ()
          end);
  (* fault injection: the legacy knobs compile onto the script DSL (in
     the order the inline nemesis code installed them — failures,
     partitions, shard kill — which byte-identical replay depends on)
     and any extra scripted steps ride on top *)
  (match p.shard_kill with
  | Some (s, _) when s < 0 || s >= p.n_shards ->
      invalid_arg (Fmt.str "Cluster.run: shard_kill shard %d out of range" s)
  | _ -> ());
  let env =
    {
      Harness.Run.sim;
      net;
      groups = group_names;
      clients = client_names;
      seed = p.seed;
    }
  in
  let script =
    Harness.Script.of_legacy ?failures:p.failures ?partitions:p.partitions
      ?shard_kill:p.shard_kill ()
    @ p.script
  in
  ignore (Harness.Run.install env script : Sim.Failure.t list);
  Core.run sim;
  (* transaction epilogue: run the end-of-run multi-key checks and
     collect the in-doubt (blocked) set across every replica *)
  let blocked =
    match p.txns with
    | None -> []
    | Some _ ->
        Harness.Check.txn_check txn_audit;
        Array.to_list replicas |> List.concat_map Array.to_list
        |> List.concat_map Replica.in_doubt
        |> List.sort_uniq String.compare
  in
  let shard_stats =
    List.init p.n_shards (fun s ->
        {
          shard = s;
          ok_ops = shard_ok.(s);
          failed_ops = shard_failed.(s);
          load =
            Array.fold_left
              (fun acc r -> acc + Replica.load r)
              0
              replicas.(s);
        })
  in
  {
    reads = Sim.Stats.summarize read_lat;
    writes = Sim.Stats.summarize write_lat;
    ok_reads = !ok_reads;
    failed_reads = !failed_reads;
    ok_writes = !ok_writes;
    failed_writes = !failed_writes;
    net = Net.counters net;
    replica_loads =
      Array.to_list replicas |> List.concat_map Array.to_list
      |> List.map (fun (r : Replica.t) -> (r.Replica.name, Replica.load r));
    shards = shard_stats;
    audit_violations =
      (match p.txns with
      | None -> Harness.Check.violations audit
      | Some _ -> Harness.Check.txn_violations txn_audit);
    duration = Core.now sim;
    installs =
      Array.to_list replicas |> List.concat_map Array.to_list
      |> List.fold_left
           (fun acc (r : Replica.t) -> acc + Obs.Metrics.value r.Replica.installs)
           0;
    fsyncs =
      Array.to_list replicas |> List.concat_map Array.to_list
      |> List.fold_left (fun acc r -> acc + Replica.fsyncs r) 0;
    trace = tracer;
    metrics;
    health = List.rev !health_samples;
    completions = List.rev !completions;
    txn_run = p.txns <> None;
    ok_txns = !ok_txns;
    failed_txns = !failed_txns;
    txn_latency = Sim.Stats.summarize txn_lat;
    blocked_txns = blocked;
    decided_txns = Harness.Check.txn_decided_count txn_audit;
    tune_run = p.tune <> None;
    strategy_switches = List.rev !strategy_switches;
    shard_strategies =
      Array.to_list
        (Array.map (fun (s : Strategy.t) -> s.Strategy.name) strategies);
  }

(** A stable digest of the run's simulation outcome — every
    observable result except the observability side channels (trace,
    metrics registry, health samples).  Floats render as hex ([%h]),
    so equality is bit-equality: two runs digest equal iff the
    simulation behaved identically.  This is what the tracing
    non-interference check compares — enabling tracing or causal
    stamping must never change the digest of a seeded run. *)
let digest (r : results) : string =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  let summary (s : Sim.Stats.summary) =
    add "%d %h %h %h %h %h %h %h;" s.Sim.Stats.count s.Sim.Stats.mean
      s.Sim.Stats.p50 s.Sim.Stats.p90 s.Sim.Stats.p95 s.Sim.Stats.p99
      s.Sim.Stats.p999 s.Sim.Stats.max
  in
  summary r.reads;
  summary r.writes;
  add "ops %d %d %d %d;" r.ok_reads r.failed_reads r.ok_writes r.failed_writes;
  add "net %d %d %d %d %d %d %d %d %d;" r.net.Net.sent r.net.Net.delivered
    r.net.Net.payload_sent r.net.Net.payload_delivered r.net.Net.dropped
    r.net.Net.drop_sender_down r.net.Net.drop_dest_down r.net.Net.drop_link_cut
    r.net.Net.drop_loss;
  List.iter (fun (name, load) -> add "load %s %d;" name load) r.replica_loads;
  List.iter
    (fun s -> add "shard %d %d %d %d;" s.shard s.ok_ops s.failed_ops s.load)
    r.shards;
  List.iter (fun v -> add "violation %s;" v) r.audit_violations;
  add "duration %h;" r.duration;
  add "io %d %d" r.installs r.fsyncs;
  (* the txn section exists only on transaction runs, so every legacy
     configuration digests byte-identically to before *)
  if r.txn_run then begin
    add ";txns %d %d %d;" r.ok_txns r.failed_txns r.decided_txns;
    summary r.txn_latency;
    List.iter (fun txid -> add "blocked %s;" txid) r.blocked_txns
  end;
  (* likewise, the tune section exists only when tuning was enabled *)
  if r.tune_run then begin
    add ";tune";
    List.iteri (fun s name -> add " %d:%s" s name) r.shard_strategies;
    add ";";
    List.iter
      (fun (at, s, name) -> add "switch %h %d %s;" at s name)
      r.strategy_switches
  end;
  Digest.to_hex (Digest.string (Buffer.contents b))
