(** Quorum strategies over [n] replicas as bitmask predicates — the
    practical-systems counterpart of {!Quorum.Config}, with exact
    analytic availability by enumeration. *)

type t = {
  name : string;
  n : int;
  read_ok : int -> bool;  (** mask of replicas contains a read quorum? *)
  write_ok : int -> bool;
  min_read : int;  (** size of the smallest read quorum *)
  min_write : int;
}

val popcount : int -> int
val full : int -> int
val make : name:string -> n:int -> read_ok:(int -> bool) -> write_ok:(int -> bool) -> t

val legal : t -> bool
(** No disjoint (read-quorum, write-quorum) pair — exact check by
    enumeration (n <= ~12). *)

val rowa : int -> t
val majority : int -> t

val weighted : name:string -> votes:int array -> r:int -> w:int -> t
(** Gifford's weighted voting.
    @raise Invalid_argument unless [r + w] exceeds the total votes. *)

val grid : rows:int -> cols:int -> t
(** Read = one full row; write = one full row + one per row. *)

val tree : ?groups:int -> int -> t
(** Two-level hierarchical (Kumar) quorums: a majority of [groups]
    contiguous subtrees, each represented by a within-subtree
    majority; read = write.  Quorums of ~[n^0.63] vs. majority's
    [n/2 + 1] (e.g. 4 of 9).  [groups] defaults to 3.
    @raise Invalid_argument unless [1 <= groups <= n]. *)

val primary : int -> t
(** Non-replicated baseline (everything on replica 0). *)

val availability : t -> p:float -> float * float
(** [(read, write)] probability a live quorum exists when each replica
    is independently alive with probability [p] — exact enumeration. *)

val minimal_read_quorums : t -> int list
(** All minimal read quorums, as bitmasks (for targeted sends). *)

val minimal_write_quorums : t -> int list

val mask_of_live : n:int -> (int -> bool) -> int
