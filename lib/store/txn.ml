(** The cross-shard transaction coordinator: multi-key read/write
    transactions over the router, one quorum-replicated child per
    participant shard — the paper's nested transaction with the router
    as the parent's name server.

    A transaction's footprint (its write set plus read set) is split
    across shards with {!Router.route_many}; each shard child runs one
    prepare round over that shard's replica group: a [Txn_prepare]
    carrying the shard-local footprint, answered by [Txn_vote]s.  A
    yes-vote write-locks the footprint keys at the replica and carries
    its current (version, value) per key, so the prepare round doubles
    as the version query of Section 3.1 — a vote quorum (simultaneously
    a read and a write quorum of the shard's strategy) both certifies
    version currency and guarantees every later conflicting prepare
    collides with at least one lock.  When all children hold vote
    quorums, the coordinator computes the final versions ([1 + max]
    per written key) and decides.

    {b Two-phase commit} ([`Two_phase]) decides unilaterally: a
    [Txn_decide] wave per shard, complete at a write quorum of
    {e applied} acks (only a replica that held the prepared entry
    installs — its ack certifies the version like an install ack).
    The decision point is a single in-memory bit at the coordinator:
    a coordinator crash between prepare and decide leaves every
    prepared replica in doubt, write-locked forever — the blocking
    2PC exhibits by design (AC5 holds only without coordinator
    failure).

    {b Paxos Commit} ([`Paxos]) replaces that bit with a consensus
    register per transaction — the one-instance simplification of
    Gray & Lamport's "Consensus on Transaction Commit" (their §3.1
    remark: one Paxos instance on the decision value itself, rather
    than one per RM vote; the simplification is what makes a
    quorum-replicated shard a sensible "RM").  The acceptor set is
    the union of every participant shard's replicas; the coordinator
    is the ballot-0 leader (phase 1 skipped), proposing Commit with
    the final write versions baked into the value; prepared replicas
    arm staggered recovery timers and, on suspicion, run ordinary
    Paxos rounds at ballots unique to (attempt, replica) — a free
    register resolves to Abort (the missed-vote rule), an accepted
    ballot-0 Commit is re-proposed verbatim.  Any majority decision
    is broadcast to all acceptors, which apply and unlock: a
    coordinator kill between prepare and decision delays commit but
    never blocks it.

    Version-number monotonicity survives recovery because the chosen
    value {e carries} the versions: they are computed once, from vote
    quorums that intersect every earlier committed write quorum, and
    re-proposed verbatim by recovery leaders.

    The coordinator never aborts after proposing Commit (it may time
    out and report failure; recovery resolves the outcome), and only
    direct-aborts while no ballot-0 2a has been sent — in that window
    no recovery can have decided Commit, so the abort broadcast is
    consistent with every reachable outcome. *)

module Core = Sim.Core
module Engine = Rpc.Engine

type mode = [ `Two_phase | `Paxos ]

let mode_label = function `Two_phase -> "2pc" | `Paxos -> "paxos"

type t = {
  name : string;  (** the coordinator node (a router client's name) *)
  sim : Core.t;
  router : Router.t;
  mode : mode;
  timeout : float;  (** overall transaction deadline, per shard op *)
  mutable next_txn : int;
}

let create ~name ~sim ~router ~(mode : mode) ?(timeout = 400.0) ?(txn0 = 0) ()
    =
  { name; sim; router; mode; timeout; next_txn = txn0 }

let next_txn t = t.next_txn

let mode t = t.mode

(* One participant shard: its client (engine + replica group), its
   slice of the footprint, and its engine operation. *)
type part = {
  p_client : Client.t;
  p_writes : (string * int) list;
  p_reads : string list;
  p_op : Engine.op;
}

let index_of arr src =
  let n = Array.length arr in
  let rec go i =
    if i >= n then None
    else if String.equal arr.(i) src then Some i
    else go (i + 1)
  in
  go 0

let txn_instant t ~name ~txid ~extra =
  let tr = Core.tracer t.sim in
  if Obs.Trace.enabled tr then
    Obs.Trace.instant tr ~cat:"store" ~name ~track:t.name
      ~args:(("txid", Obs.Trace.Str txid) :: extra)
      ()

(** Run one transaction: read [reads], write [writes] (keys must be
    distinct across the whole footprint).  [on_done] fires exactly
    once — [committed] with the snapshot the transaction read
    ((key, vn, value) per read key, input order) on commit, or
    [committed:false] on abort, conflict, or timeout.  A [false]
    report is ambiguous in the usual 2PC/Paxos sense: the decision
    may still resolve to commit after a coordinator timeout — the
    replica-side decision hook, not the client ack, is the
    authoritative commit log. *)
let execute t ?(reads = []) ?(writes = []) ~on_done () : string =
  let n = t.next_txn in
  t.next_txn <- n + 1;
  let txid = Fmt.str "%s#t%d" t.name n in
  let started = Core.now t.sim in
  let wkeys = List.map fst writes in
  let by_shard_w = Router.route_many t.router wkeys in
  let by_shard_r = Router.route_many t.router reads in
  let shards =
    List.sort_uniq Int.compare
      (List.map fst by_shard_w @ List.map fst by_shard_r)
  in
  let acceptors =
    List.concat_map
      (fun s -> Array.to_list (Router.replicas t.router ~shard:s))
      shards
  in
  let n_acceptors = List.length acceptors in
  txn_instant t ~name:"txn.begin" ~txid
    ~extra:
      [
        ("mode", Obs.Trace.Str (mode_label t.mode));
        ("shards", Obs.Trace.Int (List.length shards));
      ];
  if shards = [] then begin
    on_done ~committed:true ~reads:[] ~writes:[] ~latency:0.0;
    txid
  end
  else begin
    (* merged prepare-time snapshot: key -> highest (vn, value) seen
       across the vote quorums (each key lives on exactly one shard) *)
    let snap : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    let live = ref true in
    let phase = ref `Prepare in
    let prepared = ref 0 in
    let p2b_acc : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let applied_done = ref 0 in
    let parts = ref [] in
    let read_results () =
      List.map
        (fun k ->
          match Hashtbl.find_opt snap k with
          | Some (vn, v) -> (k, vn, v)
          | None -> (k, 0, 0))
        reads
    in
    let finish_all () =
      List.iter
        (fun p -> Engine.finish_op p.p_client.Client.eng p.p_op)
        !parts
    in
    (* the decided write set (final versions), fixed when the decision
       wave starts — reported to the client on commit *)
    let chosen = ref [] in
    let conclude ~committed ~reads:rvals =
      if !live then begin
        live := false;
        finish_all ();
        txn_instant t
          ~name:(if committed then "txn.commit" else "txn.abort")
          ~txid ~extra:[];
        on_done ~committed ~reads:rvals
          ~writes:(if committed then !chosen else [])
          ~latency:(Core.now t.sim -. started)
      end
    in
    (* fire-and-forget abort to every acceptor — legal only while no
       ballot-0 2a has been sent (see the module comment) *)
    let direct_abort () =
      match !parts with
      | [] -> ()
      | p :: _ ->
          List.iter
            (fun a ->
              Sim.Net.send p.p_client.Client.net ~src:t.name ~dst:a
                (Protocol.Txn_decide
                   { rid = 0; txid; commit = false; writes = []; ctx = None }))
            acceptors
    in
    (* the decision wave: Txn_decide per shard, complete at a write
       quorum of applied acks per shard, then ack the client *)
    let start_apply final_writes =
      phase := `Apply;
      chosen := final_writes;
      let total = List.length !parts in
      List.iter
        (fun p ->
          let strategy = p.p_client.Client.strategy in
          let replicas = p.p_client.Client.replicas in
          let mask = ref 0 in
          ignore
            (Engine.call p.p_client.Client.eng ~op:p.p_op
               ~targets:(Array.to_list replicas)
               ~make:(fun rid ->
                 Protocol.Txn_decide
                   { rid; txid; commit = true; writes = final_writes; ctx = None })
               ~on_reply:(fun ~src msg ->
                 match msg with
                 | Protocol.Txn_decide_ack { applied; _ } ->
                     (match index_of replicas src with
                     | Some i when applied -> mask := !mask lor (1 lsl i)
                     | _ -> ());
                     if strategy.Strategy.write_ok !mask then begin
                       incr applied_done;
                       if !applied_done = total then
                         conclude ~committed:true ~reads:(read_results ());
                       Engine.Done
                     end
                     else Engine.Continue
                 | _ -> Engine.Continue)
               ()
              : int))
        !parts
    in
    (* a participant answered with the transaction's decision (a
       recovery resolved it first): adopt it *)
    let adopt ~commit ~writes:dw =
      if !live then
        if commit then begin
          if !phase <> `Apply then start_apply dw
        end
        else conclude ~committed:false ~reads:[]
    in
    let final_writes () =
      List.map
        (fun (k, v) ->
          let vn =
            match Hashtbl.find_opt snap k with Some (vn, _) -> vn | None -> 0
          in
          (k, vn + 1, v))
        writes
    in
    (* ballot-0 phase 2: propose Commit to every acceptor (one call
       per shard so replies demultiplex); a majority of accepts
       chooses the value *)
    let start_register fw =
      phase := `Register;
      List.iter
        (fun p ->
          ignore
            (Engine.call p.p_client.Client.eng ~op:p.p_op
               ~targets:(Array.to_list p.p_client.Client.replicas)
               ~make:(fun rid ->
                 Protocol.Txn_p2a
                   { rid; txid; bal = 0; commit = true; writes = fw; ctx = None })
               ~on_reply:(fun ~src msg ->
                 match msg with
                 | Protocol.Txn_p2b { ok; bal = 0; _ } -> (
                     match !phase with
                     | `Register ->
                         if ok then Hashtbl.replace p2b_acc src ();
                         if Hashtbl.length p2b_acc >= (n_acceptors / 2) + 1
                         then begin
                           start_apply fw;
                           Engine.Done
                         end
                         else Engine.Continue
                     | _ -> Engine.Done)
                 | Protocol.Txn_p2b _ -> Engine.Continue
                 | Protocol.Txn_decide { commit; writes = dw; _ } ->
                     adopt ~commit ~writes:dw;
                     Engine.Done
                 | _ -> Engine.Continue)
               ()
              : int))
        !parts
    in
    let proceed_to_decision () =
      let fw = final_writes () in
      match t.mode with
      | `Two_phase -> start_apply fw
      | `Paxos -> start_register fw
    in
    let total = List.length shards in
    let on_timeout () =
      if !live then begin
        (* before any ballot-0 2a the coordinator may still abort;
           after, the outcome belongs to the register — just fail *)
        if !phase = `Prepare then direct_abort ();
        conclude ~committed:false ~reads:[]
      end
    in
    parts :=
      List.map
        (fun s ->
          let client = Router.client t.router ~shard:s in
          let p_writes =
            match List.assoc_opt s by_shard_w with
            | Some ks -> List.map (fun k -> (k, List.assoc k writes)) ks
            | None -> []
          in
          let p_reads =
            Option.value ~default:[] (List.assoc_opt s by_shard_r)
          in
          let p_op =
            Engine.start_op client.Client.eng ~timeout:t.timeout ~on_timeout
          in
          { p_client = client; p_writes; p_reads; p_op })
        shards;
    (* the prepare round: one call per shard; complete at a vote
       quorum (a read and write quorum of yes-votes) *)
    List.iter
      (fun p ->
        let strategy = p.p_client.Client.strategy in
        let replicas = p.p_client.Client.replicas in
        let mask = ref 0 in
        ignore
          (Engine.call p.p_client.Client.eng ~op:p.p_op
             ~targets:(Array.to_list replicas)
             ~make:(fun rid ->
               Protocol.Txn_prepare
                 {
                   rid;
                   txid;
                   writes = p.p_writes;
                   reads = p.p_reads;
                   acceptors;
                   paxos = (t.mode = `Paxos);
                   ctx = None;
                 })
             ~on_reply:(fun ~src msg ->
               match msg with
               | Protocol.Txn_vote { yes = false; _ } ->
                   (* a lock conflict: first no-vote aborts the txn *)
                   if !live && !phase = `Prepare then begin
                     direct_abort ();
                     conclude ~committed:false ~reads:[]
                   end;
                   Engine.Done
               | Protocol.Txn_vote { yes = true; kvs; _ } ->
                   if !phase <> `Prepare then Engine.Done
                   else begin
                     List.iter
                       (fun (k, vn, v) ->
                         match Hashtbl.find_opt snap k with
                         | Some (vn', _) when vn' >= vn -> ()
                         | _ -> Hashtbl.replace snap k (vn, v))
                       kvs;
                     (match index_of replicas src with
                     | Some i -> mask := !mask lor (1 lsl i)
                     | None -> ());
                     if
                       strategy.Strategy.read_ok !mask
                       && strategy.Strategy.write_ok !mask
                     then begin
                       incr prepared;
                       if !prepared = total then proceed_to_decision ();
                       Engine.Done
                     end
                     else Engine.Continue
                   end
               | Protocol.Txn_decide { commit; writes = dw; _ } ->
                   adopt ~commit ~writes:dw;
                   Engine.Done
               | _ -> Engine.Continue)
             ()
            : int))
      !parts;
    txid
  end
