(** Wiring: a complete simulated cluster — replicas, clients, network,
    failure injectors — running a workload, with metrics and a
    consistency audit (single-writer-per-key: reads must return a
    version at least as new as the newest write completed before the
    read began, with the value written at that version; the state
    machine is {!Harness.Check}).  Fault injection goes through the
    {!Harness.Script} DSL: the legacy [failures]/[partitions]/
    [shard_kill] knobs compile onto it byte-identically, and [script]
    appends arbitrary scripted steps. *)

module Prng = Qc_util.Prng
module Core = Sim.Core
module Net = Sim.Net

type params = {
  n_replicas : int;  (** per shard *)
  n_clients : int;
  strategy : int -> Strategy.t;  (** from n_replicas, per shard *)
  workload : Workload.spec;
  latency : Net.latency;
  loss : float;
  timeout : float;
  failures : Sim.Failure.spec option;  (** applied to every replica *)
  targeting : Client.targeting;  (** broadcast vs targeted quorum sends *)
  policy : Rpc.Policy.t;
      (** per-request retry/backoff/hedging policy of every client;
          the default fire-once policy reproduces historical runs
          byte for byte *)
  partitions : float option;
      (** nemesis: cut the replica set along a random bipartition
          roughly every [mean] time units (clients follow one side),
          healing half a period later *)
  seed : int;
  trace_capacity : int;  (** tracer ring size; 0 disables tracing *)
  tracer : Obs.Trace.t option;
      (** collect into this tracer instead of creating one (overrides
          [trace_capacity]) *)
  n_shards : int;
      (** replica groups the keyspace is split across (default 1 —
          the historical single-group cluster; byte-identical runs) *)
  shard_scheme : Router.scheme;  (** key → shard map (default [`Hash]) *)
  batch_window : float option;
      (** multi-key batching window of every client engine ([None] =
          off, the historical behaviour) *)
  shard_kill : (int * float) option;
      (** targeted-failure nemesis: crash every replica of shard [s]
          at time [at] for the rest of the run *)
  storage_cost : float;
      (** per-write latency of every replica's storage device; with
          [fsync_cost] both zero (the default) no device is attached
          and installs stay synchronous — byte-identical runs *)
  fsync_cost : float;  (** per-fsync latency of every replica's device *)
  group_commit : bool;
      (** with storage: a whole group per fsync (default) vs one
          install per fsync (the naive baseline) *)
  adaptive_window : Rpc.Window.config option;
      (** AIMD-controlled batching window of every client engine
          (takes precedence over [batch_window]; [None] = static) *)
  trace_ctx : bool;
      (** stamp every operation with a causal trace context carried
          through the engine and protocol frames to the replicas — the
          raw material of [Obs.Attribution]; off by default because
          the stamps change the trace byte stream (never the
          simulation — see {!digest}) *)
  health_window : float option;
      (** attach an [Obs.Health] monitor with this rolling window,
          sampled every half-window while the workload runs ([None] =
          none, the historical behaviour) *)
  script : Harness.Script.t;
      (** scripted fault schedule installed on top of the legacy
          nemesis knobs; times relative to the run start ([[]] =
          nothing, byte-identical runs) *)
  txns : txn_spec option;
      (** run a cross-shard transaction workload through {!Txn}
          coordinators instead of the single-key op loop; the audit
          switches to the multi-key serializability checks ([None] =
          off, byte-identical runs) *)
  tune : tune_spec option;
      (** workload-aware quorum tuning: per-shard reply-latency EWMAs
          + queue probes feed queue-aware read steering, and a
          periodic optimizer re-strategizes shards through
          {!Autotune} — joint-strategy transition, key migration, and
          a deadline-length fence before the new quorums activate
          (DESIGN.md §16).  The optimizer half runs on single-key
          workloads only.  [None] = off, byte-identical runs *)
}

and txn_spec = {
  txns_per_client : int;
  keys_per_txn : int;  (** footprint size (distinct keys) *)
  txn_read_fraction : float;  (** fraction of the footprint read-only *)
  commit_mode : Txn.mode;  (** [`Two_phase] or [`Paxos] *)
  txn_timeout : float;  (** per-transaction coordinator deadline *)
  txn_retries : int;
      (** re-executions of a failed transaction (each a fresh txid) *)
  recovery_delay : float;
      (** replica in-doubt recovery timer base (Paxos-Commit mode) *)
}

and tune_spec = {
  optimize : bool;  (** run the periodic per-shard strategy optimizer *)
  tune_epoch : float;  (** optimizer period (simulated time) *)
  steer : bool;  (** queue-aware read steering on the shard clients *)
  queue_weight : float;  (** steering cost per queued apply entry *)
  ewma_alpha : float;  (** reply-latency tracker blend weight *)
  p_alive : float;
      (** assumed per-replica alive probability for the availability
          floors of the optimizer's model *)
  min_read_avail : float;  (** read-availability admission floor *)
  min_write_avail : float;  (** write-availability admission floor *)
  w_load : float;  (** objective weight on peak load *)
  w_latency : float;  (** objective weight on expected op latency *)
}

val default_params : params

val default_txn_spec : txn_spec
(** 20 txns/client, 3 keys each, ~1/3 read-only, [`Paxos], timeout
    400, 2 retries, recovery base 150. *)

val default_tune_spec : tune_spec
(** Optimizer on at epoch 40, steering on at queue weight 2, EWMA
    alpha 0.2, availability floors 0.99/0.98 at assumed p = 0.99,
    objective weights 1.0 load / 0.05 latency. *)

type shard_stat = {
  shard : int;
  ok_ops : int;
  failed_ops : int;
  load : int;  (** queries + installs over the shard's replicas *)
}

type results = {
  reads : Sim.Stats.summary;
  writes : Sim.Stats.summary;
  ok_reads : int;
  failed_reads : int;
  ok_writes : int;
  failed_writes : int;
  net : Net.counters;
  replica_loads : (string * int) list;
      (** queries + installs processed per replica *)
  shards : shard_stat list;  (** per-shard operations and load *)
  audit_violations : string list;
  duration : float;
  installs : int;  (** installs processed across every replica *)
  fsyncs : int;
      (** fsyncs across every replica's storage device ([0] without
          storage) *)
  trace : Obs.Trace.t;
      (** export with [Obs.Export], query with [Obs.Query] *)
  metrics : Obs.Metrics.t;
      (** shared registry of every replica and client counter *)
  health : Obs.Health.snapshot list;
      (** every health sample taken during the run, chronological —
          empty unless [health_window] was set *)
  completions : (float * bool) list;
      (** chronological [(finished_at, ok)] per completed operation —
          feed to {!Harness.Check.liveness_after_heal}; not digested *)
  txn_run : bool;  (** the run used a transaction workload *)
  ok_txns : int;  (** client-acked commits *)
  failed_txns : int;  (** attempts exhausted of retries *)
  txn_latency : Sim.Stats.summary;  (** acked-commit latencies *)
  blocked_txns : string list;
      (** txids still prepared-but-undecided at some replica when the
          run drained — the blocking-2PC metric ([= []] under Paxos
          Commit once partitions heal) *)
  decided_txns : int;  (** distinct committed decisions (≥ ok_txns) *)
  tune_run : bool;  (** the run had quorum tuning enabled *)
  strategy_switches : (float * int * string) list;
      (** chronological [(committed_at, shard, strategy_name)] of
          every completed re-strategize *)
  shard_strategies : string list;
      (** each shard's strategy name at the end of the run, in shard
          order *)
}

val availability : results -> float
(** Fraction of operations that succeeded. *)

val run : params -> results

val digest : results -> string
(** A stable digest of the run's simulation outcome — latency
    summaries, operation/net counters, per-replica loads, shard stats,
    audit verdicts, duration, io counts — excluding the observability
    side channels (trace, metrics registry, health samples).  Floats
    compare bit-exactly.  Two seeded runs digest equal iff the
    simulation behaved identically, which is how the tracing
    non-interference check asserts that enabling tracing or causal
    stamping changes no simulation outcome. *)
