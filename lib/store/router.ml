(** The shard router: split the keyspace across replica groups, each
    with its own {!Strategy.t} and {!Rpc.Engine} (inside a per-shard
    {!Client.t}), and resolve logical keys to shards.

    Correctness needs no new argument: Gifford-style quorum consensus
    is per item — every key's reads and writes intersect inside that
    key's own replica group — so any deterministic key → group map
    preserves the audit invariants.  The router is pure wiring: pick
    the shard, delegate to its client.

    Two shard maps are provided: [`Hash] (an FNV-1a hash of the key,
    modulo the shard count — spreads hot keys) and [`Range]
    (contiguous ranges of the key index for keys named ["k<i>"] —
    preserves locality, concentrates skew).  Both are pure functions
    of the key and the configuration, so every client in a cluster
    computes the same map with no coordination.

    With a single shard the router collapses to exactly the historical
    single-group client: same construction, same handler registration,
    same messages — byte-identical seeded runs. *)

module Net = Sim.Net

type scheme = [ `Hash | `Range ]

let scheme_label = function `Hash -> "hash" | `Range -> "range"

(* FNV-1a with the 64-bit prime and an offset basis truncated to
   OCaml's 63-bit int.  Deliberately not [Hashtbl.hash]: the map is
   part of the system's observable behaviour and must never move
   under us. *)
let fnv1a key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun ch ->
      h := (!h lxor Char.code ch) * 0x100000001b3)
    key;
  !h land max_int

(* The numeric suffix of a key named like "k12"; [None] when the key
   does not end in digits. *)
let key_index key =
  let n = String.length key in
  let rec start i =
    if i > 0 && key.[i - 1] >= '0' && key.[i - 1] <= '9' then start (i - 1)
    else i
  in
  let s = start n in
  if s >= n then None else int_of_string_opt (String.sub key s (n - s))

(** The pure key → shard map for a scheme.  [n_keys] bounds the
    [`Range] partition (key indices [0 .. n_keys-1] split into
    [n_shards] contiguous ranges); keys outside it, or without a
    numeric suffix, fall back to the hash map. *)
let shard_fn (scheme : scheme) ~n_shards ~n_keys : string -> int =
  if n_shards < 1 then invalid_arg "Router.shard_fn: n_shards must be >= 1";
  match scheme with
  | `Hash -> fun key -> fnv1a key mod n_shards
  | `Range ->
      fun key -> (
        match key_index key with
        | Some i when i >= 0 && i < n_keys && n_keys > 0 ->
            i * n_shards / n_keys
        | _ -> fnv1a key mod n_shards)

type t = {
  name : string;
  net : Protocol.msg Net.t;
  shards : Client.t array;
  shard_of : string -> int;
  scheme : scheme;
  owner : (string, int) Hashtbl.t;  (** replica name -> owning shard *)
}

let create ~name ~sim ~net ~(groups : string array array)
    ~(strategies : Strategy.t array) ~(scheme : scheme) ~n_keys
    ?(timeout = 100.0) ?(read_repair = false) ?(targeting = `Broadcast)
    ?(trace_ctx = false) ?policy ?(seed = 1) ?metrics ?batch_window
    ?adaptive_window () =
  let n_shards = Array.length groups in
  if n_shards < 1 then invalid_arg "Router.create: no shards";
  if Array.length strategies <> n_shards then
    invalid_arg "Router.create: one strategy per shard";
  let shards =
    Array.mapi
      (fun s group ->
        (* shard 0 of a 1-shard router is constructed exactly like the
           historical client — same seed, same labels — so default
           configurations reproduce pre-router runs byte for byte *)
        let shard = if n_shards = 1 then None else Some s in
        Client.create ~name ~sim ~net ~replicas:group
          ~strategy:strategies.(s) ~timeout ~read_repair ~targeting ~trace_ctx
          ?policy
          ~seed:(seed + (7919 * s))
          ?metrics ?shard ?batch_window ?adaptive_window ())
      groups
  in
  let owner = Hashtbl.create 16 in
  Array.iteri
    (fun s group -> Array.iter (fun r -> Hashtbl.replace owner r s) group)
    groups;
  { name; net; shards; shard_of = shard_fn scheme ~n_shards ~n_keys; scheme; owner }

let n_shards t = Array.length t.shards
let shard_of t key = t.shard_of key
let scheme t = t.scheme
let client t ~shard = t.shards.(shard)
let clients t = t.shards
let replicas t ~shard = t.shards.(shard).Client.replicas

(** Attach the router as the node's net handler.  One shard delegates
    to the client's own attach (the historical path); several shards
    register a demultiplexer that routes each reply to the shard
    owning its source replica (groups are disjoint, so the source
    determines the shard). *)
let attach t =
  if Array.length t.shards = 1 then Client.attach t.shards.(0)
  else
    Net.register t.net ~node:t.name (fun ~src msg ->
        match Hashtbl.find_opt t.owner src with
        | Some s -> Client.handle t.shards.(s) ~src msg
        | None -> ())

(** Group keys by owning shard: one (shard, keys) pair per shard that
    owns at least one of the input keys, shards in first-appearance
    order, each shard's keys in input order.  No deduplication — a key
    given twice appears twice.  The txn layer's footprint split. *)
let route_many t keys =
  let buckets : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun key ->
      let s = t.shard_of key in
      match Hashtbl.find_opt buckets s with
      | Some r -> r := key :: !r
      | None ->
          Hashtbl.replace buckets s (ref [ key ]);
          order := s :: !order)
    keys;
  List.rev_map
    (fun s -> (s, List.rev !(Hashtbl.find buckets s)))
    !order

let read t ~key ~on_done =
  Client.read t.shards.(t.shard_of key) ~key ~on_done

let write t ~key ~value ~on_done =
  Client.write t.shards.(t.shard_of key) ~key ~value ~on_done

let install t ~key ~vn ~value ~on_done =
  Client.install t.shards.(t.shard_of key) ~key ~vn ~value ~on_done

let set_policy t p = Array.iter (fun c -> Client.set_policy c p) t.shards
let policy t = Client.policy t.shards.(0)

let set_batch_window t w =
  Array.iter (fun c -> Client.set_batch_window c w) t.shards

let batch_window t = Client.batch_window t.shards.(0)

let set_adaptive_window t cfg =
  Array.iter (fun c -> Client.set_adaptive_window c cfg) t.shards

let adaptive_window t = Client.adaptive_window t.shards.(0)

let set_strategy t ~shard s = Client.set_strategy t.shards.(shard) s
let strategy t ~shard = t.shards.(shard).Client.strategy
let epoch t ~shard = Client.epoch t.shards.(shard)

let set_probe t ~shard pr = Client.set_probe t.shards.(shard) pr
