(** Wire protocol of the replicated store: the two round-trip kinds of
    the paper's algorithm — version/value queries (the read phase of
    both logical reads and writes) and versioned installs (the write
    phase). *)

type msg =
  | Query_req of { rid : int; key : string }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of { rid : int; key : string; vn : int; value : int }
  | Install_ack of { rid : int; key : string }

let rid = function
  | Query_req { rid; _ } | Query_rep { rid; _ } | Install_req { rid; _ }
  | Install_ack { rid; _ } ->
      rid
