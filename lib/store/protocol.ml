(** Wire protocol of the replicated store: the two round-trip kinds of
    the paper's algorithm — version/value queries (the read phase of
    both logical reads and writes) and versioned installs (the write
    phase) — plus batch frames that carry several of either in one
    message (the engine's multi-key batching; the frame rid identifies
    the batch, the wrapped requests keep their own rids). *)

type msg =
  | Query_req of { rid : int; key : string; ctx : Obs.Ctx.t option }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of {
      rid : int;
      key : string;
      vn : int;
      value : int;
      ctx : Obs.Ctx.t option;
    }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
  | Batch_rep of { rid : int; reps : msg list }
  (* ---- cross-shard transactions (2PC / Paxos Commit) ---- *)
  | Txn_prepare of {
      rid : int;
      txid : string;
      writes : (string * int) list;  (** this shard's write set *)
      reads : string list;  (** this shard's read-only footprint *)
      acceptors : string list;
          (** every replica of every participant shard, in canonical
              order — the decision register's acceptor set, carried so
              a prepared replica can run recovery on its own *)
      paxos : bool;  (** arm the non-blocking recovery timer *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_vote of {
      rid : int;
      txid : string;
      yes : bool;
      kvs : (string * int * int) list;
          (** the replica's current (key, vn, value) for each footprint
              key — the version query folded into the prepare round *)
    }
  | Txn_p1a of { rid : int; txid : string; bal : int }
  | Txn_p1b of {
      rid : int;
      txid : string;
      bal : int;
      ok : bool;
      accepted : (int * bool * (string * int * int) list) option;
          (** the acceptor's highest accepted (ballot, commit?, writes) *)
    }
  | Txn_p2a of {
      rid : int;
      txid : string;
      bal : int;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_p2b of { rid : int; txid : string; bal : int; ok : bool }
  | Txn_decide of {
      rid : int;
      txid : string;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_decide_ack of { rid : int; txid : string; applied : bool }

let rid = function
  | Query_req { rid; _ } | Query_rep { rid; _ } | Install_req { rid; _ }
  | Install_ack { rid; _ }
  | Batch_req { rid; _ }
  | Batch_rep { rid; _ }
  | Txn_prepare { rid; _ }
  | Txn_vote { rid; _ }
  | Txn_p1a { rid; _ }
  | Txn_p1b { rid; _ }
  | Txn_p2a { rid; _ }
  | Txn_p2b { rid; _ }
  | Txn_decide { rid; _ }
  | Txn_decide_ack { rid; _ } ->
      rid

let ctx = function
  | Query_req { ctx; _ }
  | Install_req { ctx; _ }
  | Txn_prepare { ctx; _ }
  | Txn_p2a { ctx; _ }
  | Txn_decide { ctx; _ } ->
      ctx
  | Query_rep _ | Install_ack _ | Batch_req _ | Batch_rep _ | Txn_vote _
  | Txn_p1a _ | Txn_p1b _ | Txn_p2b _ | Txn_decide_ack _ ->
      None

(** The engine batching hooks for this protocol — pass to
    [Rpc.Engine.set_batching] with the chosen window. *)
let batching ~window : msg Rpc.Engine.batching =
  {
    Rpc.Engine.window;
    wrap = (fun ~rid reqs -> Batch_req { rid; reqs });
    unwrap = (function Batch_rep { reps; _ } -> Some reps | _ -> None);
  }
