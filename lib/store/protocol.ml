(** Wire protocol of the replicated store: the two round-trip kinds of
    the paper's algorithm — version/value queries (the read phase of
    both logical reads and writes) and versioned installs (the write
    phase) — plus batch frames that carry several of either in one
    message (the engine's multi-key batching; the frame rid identifies
    the batch, the wrapped requests keep their own rids). *)

type msg =
  | Query_req of { rid : int; key : string; ctx : Obs.Ctx.t option }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of {
      rid : int;
      key : string;
      vn : int;
      value : int;
      ctx : Obs.Ctx.t option;
    }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
  | Batch_rep of { rid : int; reps : msg list }
  (* ---- cross-shard transactions (2PC / Paxos Commit) ---- *)
  | Txn_prepare of {
      rid : int;
      txid : string;
      writes : (string * int) list;  (** this shard's write set *)
      reads : string list;  (** this shard's read-only footprint *)
      acceptors : string list;
          (** every replica of every participant shard, in canonical
              order — the decision register's acceptor set, carried so
              a prepared replica can run recovery on its own *)
      paxos : bool;  (** arm the non-blocking recovery timer *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_vote of {
      rid : int;
      txid : string;
      yes : bool;
      kvs : (string * int * int) list;
          (** the replica's current (key, vn, value) for each footprint
              key — the version query folded into the prepare round *)
    }
  | Txn_p1a of { rid : int; txid : string; bal : int }
  | Txn_p1b of {
      rid : int;
      txid : string;
      bal : int;
      ok : bool;
      accepted : (int * bool * (string * int * int) list) option;
          (** the acceptor's highest accepted (ballot, commit?, writes) *)
    }
  | Txn_p2a of {
      rid : int;
      txid : string;
      bal : int;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_p2b of { rid : int; txid : string; bal : int; ok : bool }
  | Txn_decide of {
      rid : int;
      txid : string;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
  | Txn_decide_ack of { rid : int; txid : string; applied : bool }
[@@lint.protocol]
(* The [@@lint.protocol] attribute makes this type a static contract:
   `lint.exe analyze` verifies that the replica dispatch matches every
   constructor without a wildcard and that the wire codec below can
   carry every frame both ways — adding a frame without teaching every
   side about it is a build-gate failure, not a silent drop. *)

let rid = function
  | Query_req { rid; _ } | Query_rep { rid; _ } | Install_req { rid; _ }
  | Install_ack { rid; _ }
  | Batch_req { rid; _ }
  | Batch_rep { rid; _ }
  | Txn_prepare { rid; _ }
  | Txn_vote { rid; _ }
  | Txn_p1a { rid; _ }
  | Txn_p1b { rid; _ }
  | Txn_p2a { rid; _ }
  | Txn_p2b { rid; _ }
  | Txn_decide { rid; _ }
  | Txn_decide_ack { rid; _ } ->
      rid

let ctx = function
  | Query_req { ctx; _ }
  | Install_req { ctx; _ }
  | Txn_prepare { ctx; _ }
  | Txn_p2a { ctx; _ }
  | Txn_decide { ctx; _ } ->
      ctx
  | Query_rep _ | Install_ack _ | Batch_req _ | Batch_rep _ | Txn_vote _
  | Txn_p1a _ | Txn_p1b _ | Txn_p2b _ | Txn_decide_ack _ ->
      None

(** The engine batching hooks for this protocol — pass to
    [Rpc.Engine.set_batching] with the chosen window. *)
let batching ~window : msg Rpc.Engine.batching =
  {
    Rpc.Engine.window;
    wrap = (fun ~rid reqs -> Batch_req { rid; reqs });
    unwrap = (function Batch_rep { reps; _ } -> Some reps | _ -> None);
  }

(* ---------- wire codec ----------

   The simulator delivers [msg] values in memory, so the store never
   {e needed} a byte encoding — which is exactly how a new frame could
   ship with no serialization story and fail the day the store talks
   across a process boundary (or a trace tool wants to dump frames).
   The codec below is that story, and the analyzer's totality pass
   holds it to the same contract as the dispatch: [to_json] must match
   every constructor wildcard-free, [of_json] must be able to produce
   every constructor. *)

let jint n = Obs.Json.Num (float_of_int n)

let jctx = function
  | None -> Obs.Json.Null
  | Some cx ->
      Obs.Json.Obj
        [ ("op", Obs.Json.Str (Obs.Ctx.op cx)); ("parent", jint (Obs.Ctx.parent cx)) ]

let jkv (k, v) = Obs.Json.List [ Obs.Json.Str k; jint v ]
let jkvv (k, vn, v) = Obs.Json.List [ Obs.Json.Str k; jint vn; jint v ]

let jaccepted = function
  | None -> Obs.Json.Null
  | Some (bal, commit, writes) ->
      Obs.Json.Obj
        [
          ("bal", jint bal);
          ("commit", Obs.Json.Bool commit);
          ("writes", Obs.Json.List (List.map jkvv writes));
        ]

let[@lint.protocol_serialize] rec to_json (m : msg) : Obs.Json.t =
  let frame name fields = Obs.Json.Obj (("frame", Obs.Json.Str name) :: fields) in
  match m with
  | Query_req { rid; key; ctx } ->
      frame "query_req"
        [ ("rid", jint rid); ("key", Obs.Json.Str key); ("ctx", jctx ctx) ]
  | Query_rep { rid; key; vn; value } ->
      frame "query_rep"
        [
          ("rid", jint rid); ("key", Obs.Json.Str key); ("vn", jint vn);
          ("value", jint value);
        ]
  | Install_req { rid; key; vn; value; ctx } ->
      frame "install_req"
        [
          ("rid", jint rid); ("key", Obs.Json.Str key); ("vn", jint vn);
          ("value", jint value); ("ctx", jctx ctx);
        ]
  | Install_ack { rid; key } ->
      frame "install_ack" [ ("rid", jint rid); ("key", Obs.Json.Str key) ]
  | Batch_req { rid; reqs } ->
      frame "batch_req"
        [ ("rid", jint rid); ("reqs", Obs.Json.List (List.map to_json reqs)) ]
  | Batch_rep { rid; reps } ->
      frame "batch_rep"
        [ ("rid", jint rid); ("reps", Obs.Json.List (List.map to_json reps)) ]
  | Txn_prepare { rid; txid; writes; reads; acceptors; paxos; ctx } ->
      frame "txn_prepare"
        [
          ("rid", jint rid);
          ("txid", Obs.Json.Str txid);
          ("writes", Obs.Json.List (List.map jkv writes));
          ("reads", Obs.Json.List (List.map (fun r -> Obs.Json.Str r) reads));
          ( "acceptors",
            Obs.Json.List (List.map (fun a -> Obs.Json.Str a) acceptors) );
          ("paxos", Obs.Json.Bool paxos);
          ("ctx", jctx ctx);
        ]
  | Txn_vote { rid; txid; yes; kvs } ->
      frame "txn_vote"
        [
          ("rid", jint rid);
          ("txid", Obs.Json.Str txid);
          ("yes", Obs.Json.Bool yes);
          ("kvs", Obs.Json.List (List.map jkvv kvs));
        ]
  | Txn_p1a { rid; txid; bal } ->
      frame "txn_p1a"
        [ ("rid", jint rid); ("txid", Obs.Json.Str txid); ("bal", jint bal) ]
  | Txn_p1b { rid; txid; bal; ok; accepted } ->
      frame "txn_p1b"
        [
          ("rid", jint rid);
          ("txid", Obs.Json.Str txid);
          ("bal", jint bal);
          ("ok", Obs.Json.Bool ok);
          ("accepted", jaccepted accepted);
        ]
  | Txn_p2a { rid; txid; bal; commit; writes; ctx } ->
      frame "txn_p2a"
        [
          ("rid", jint rid);
          ("txid", Obs.Json.Str txid);
          ("bal", jint bal);
          ("commit", Obs.Json.Bool commit);
          ("writes", Obs.Json.List (List.map jkvv writes));
          ("ctx", jctx ctx);
        ]
  | Txn_p2b { rid; txid; bal; ok } ->
      frame "txn_p2b"
        [
          ("rid", jint rid); ("txid", Obs.Json.Str txid); ("bal", jint bal);
          ("ok", Obs.Json.Bool ok);
        ]
  | Txn_decide { rid; txid; commit; writes; ctx } ->
      frame "txn_decide"
        [
          ("rid", jint rid);
          ("txid", Obs.Json.Str txid);
          ("commit", Obs.Json.Bool commit);
          ("writes", Obs.Json.List (List.map jkvv writes));
          ("ctx", jctx ctx);
        ]
  | Txn_decide_ack { rid; txid; applied } ->
      frame "txn_decide_ack"
        [
          ("rid", jint rid); ("txid", Obs.Json.Str txid);
          ("applied", Obs.Json.Bool applied);
        ]

let to_wire m = Obs.Json.to_string (to_json m)

(* decoding helpers: each pins the exact shape and names the field in
   its error, so a corrupt frame fails loudly with a usable message *)

let ( let* ) = Result.bind

let field name j =
  match Obs.Json.member name j with
  | Some v -> Ok v
  | None -> Error (Fmt.str "missing field %S" name)

let dint name j =
  let* v = field name j in
  match Obs.Json.to_float_opt v with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Fmt.str "field %S: expected a number" name)

let dstr name j =
  let* v = field name j in
  match Obs.Json.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Fmt.str "field %S: expected a string" name)

let dbool name j =
  let* v = field name j in
  match v with
  | Obs.Json.Bool b -> Ok b
  | _ -> Error (Fmt.str "field %S: expected a bool" name)

let dlist name dec j =
  let* v = field name j in
  match Obs.Json.to_list v with
  | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* x = dec item in
          Ok (x :: acc))
        (Ok []) items
      |> Result.map List.rev
  | None -> Error (Fmt.str "field %S: expected a list" name)

let dctx j =
  match Obs.Json.member "ctx" j with
  | None | Some Obs.Json.Null -> Ok None
  | Some c ->
      let* op = dstr "op" c in
      let* parent = dint "parent" c in
      Ok (Some (Obs.Ctx.make ~op ~parent))

let dkv = function
  | Obs.Json.List [ Obs.Json.Str k; v ] -> (
      match Obs.Json.to_float_opt v with
      | Some f -> Ok (k, int_of_float f)
      | None -> Error "write pair: expected [key, int]")
  | _ -> Error "write pair: expected [key, int]"

let dkvv = function
  | Obs.Json.List [ Obs.Json.Str k; vn; v ] -> (
      match (Obs.Json.to_float_opt vn, Obs.Json.to_float_opt v) with
      | Some vn, Some v -> Ok (k, int_of_float vn, int_of_float v)
      | _ -> Error "kvv triple: expected [key, int, int]")
  | _ -> Error "kvv triple: expected [key, int, int]"

let dstr_item = function
  | Obs.Json.Str s -> Ok s
  | _ -> Error "expected a string"

let daccepted j =
  match Obs.Json.member "accepted" j with
  | None | Some Obs.Json.Null -> Ok None
  | Some a ->
      let* bal = dint "bal" a in
      let* commit = dbool "commit" a in
      let* writes = dlist "writes" dkvv a in
      Ok (Some (bal, commit, writes))

let[@lint.protocol_deserialize] rec of_json (j : Obs.Json.t) :
    (msg, string) result =
  let* frame = dstr "frame" j in
  let* rid = dint "rid" j in
  match frame with
  | "query_req" ->
      let* key = dstr "key" j in
      let* ctx = dctx j in
      Ok (Query_req { rid; key; ctx })
  | "query_rep" ->
      let* key = dstr "key" j in
      let* vn = dint "vn" j in
      let* value = dint "value" j in
      Ok (Query_rep { rid; key; vn; value })
  | "install_req" ->
      let* key = dstr "key" j in
      let* vn = dint "vn" j in
      let* value = dint "value" j in
      let* ctx = dctx j in
      Ok (Install_req { rid; key; vn; value; ctx })
  | "install_ack" ->
      let* key = dstr "key" j in
      Ok (Install_ack { rid; key })
  | "batch_req" ->
      let* reqs = dlist "reqs" of_json j in
      Ok (Batch_req { rid; reqs })
  | "batch_rep" ->
      let* reps = dlist "reps" of_json j in
      Ok (Batch_rep { rid; reps })
  | "txn_prepare" ->
      let* txid = dstr "txid" j in
      let* writes = dlist "writes" dkv j in
      let* reads = dlist "reads" dstr_item j in
      let* acceptors = dlist "acceptors" dstr_item j in
      let* paxos = dbool "paxos" j in
      let* ctx = dctx j in
      Ok (Txn_prepare { rid; txid; writes; reads; acceptors; paxos; ctx })
  | "txn_vote" ->
      let* txid = dstr "txid" j in
      let* yes = dbool "yes" j in
      let* kvs = dlist "kvs" dkvv j in
      Ok (Txn_vote { rid; txid; yes; kvs })
  | "txn_p1a" ->
      let* txid = dstr "txid" j in
      let* bal = dint "bal" j in
      Ok (Txn_p1a { rid; txid; bal })
  | "txn_p1b" ->
      let* txid = dstr "txid" j in
      let* bal = dint "bal" j in
      let* ok = dbool "ok" j in
      let* accepted = daccepted j in
      Ok (Txn_p1b { rid; txid; bal; ok; accepted })
  | "txn_p2a" ->
      let* txid = dstr "txid" j in
      let* bal = dint "bal" j in
      let* commit = dbool "commit" j in
      let* writes = dlist "writes" dkvv j in
      let* ctx = dctx j in
      Ok (Txn_p2a { rid; txid; bal; commit; writes; ctx })
  | "txn_p2b" ->
      let* txid = dstr "txid" j in
      let* bal = dint "bal" j in
      let* ok = dbool "ok" j in
      Ok (Txn_p2b { rid; txid; bal; ok })
  | "txn_decide" ->
      let* txid = dstr "txid" j in
      let* commit = dbool "commit" j in
      let* writes = dlist "writes" dkvv j in
      let* ctx = dctx j in
      Ok (Txn_decide { rid; txid; commit; writes; ctx })
  | "txn_decide_ack" ->
      let* txid = dstr "txid" j in
      let* applied = dbool "applied" j in
      Ok (Txn_decide_ack { rid; txid; applied })
  | other -> Error (Fmt.str "unknown frame %S" other)

let of_wire s =
  match Obs.Json.parse s with
  | Ok j -> of_json j
  | Error e -> Error (Fmt.str "wire frame is not JSON: %s" e)
