(** Wire protocol of the replicated store: the two round-trip kinds of
    the paper's algorithm — version/value queries (the read phase of
    both logical reads and writes) and versioned installs (the write
    phase) — plus batch frames that carry several of either in one
    message (the engine's multi-key batching; the frame rid identifies
    the batch, the wrapped requests keep their own rids). *)

type msg =
  | Query_req of { rid : int; key : string; ctx : Obs.Ctx.t option }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of {
      rid : int;
      key : string;
      vn : int;
      value : int;
      ctx : Obs.Ctx.t option;
    }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
  | Batch_rep of { rid : int; reps : msg list }

let rid = function
  | Query_req { rid; _ } | Query_rep { rid; _ } | Install_req { rid; _ }
  | Install_ack { rid; _ }
  | Batch_req { rid; _ }
  | Batch_rep { rid; _ } ->
      rid

let ctx = function
  | Query_req { ctx; _ } | Install_req { ctx; _ } -> ctx
  | Query_rep _ | Install_ack _ | Batch_req _ | Batch_rep _ -> None

(** The engine batching hooks for this protocol — pass to
    [Rpc.Engine.set_batching] with the chosen window. *)
let batching ~window : msg Rpc.Engine.batching =
  {
    Rpc.Engine.window;
    wrap = (fun ~rid reqs -> Batch_req { rid; reqs });
    unwrap = (function Batch_rep { reps; _ } -> Some reps | _ -> None);
  }
