(** Quorum strategies over [n] replicas, represented as predicates on
    bitmasks of replica indices.  This is the practical-systems
    counterpart of {!Quorum.Config}: the paper's generalized
    configurations instantiated for a replica set, with exact analytic
    availability by enumeration.

    All the classical schemes the paper's algorithm generalizes are
    here: read-one/write-all, majority, Gifford's weighted voting, and
    grid quorums; [primary] is the non-replicated baseline. *)

module Prng = Qc_util.Prng

type t = {
  name : string;
  n : int;
  read_ok : int -> bool;  (** does this replica set contain a read quorum? *)
  write_ok : int -> bool;
  min_read : int;  (** size of the smallest read quorum *)
  min_write : int;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let full n = (1 lsl n) - 1

(* smallest popcount among masks satisfying ok *)
let min_quorum n ok =
  let best = ref (n + 1) in
  for m = 1 to full n do
    if ok m then best := min !best (popcount m)
  done;
  if !best > n then n else !best

let make ~name ~n ~read_ok ~write_ok =
  {
    name;
    n;
    read_ok;
    write_ok;
    min_read = min_quorum n read_ok;
    min_write = min_quorum n write_ok;
  }

(** Sanity: every read quorum intersects every write quorum —
    equivalently, no disjoint pair (r, w) with read_ok r and
    write_ok w.  Exact check by enumeration (n <= ~12). *)
let legal t =
  let f = full t.n in
  let ok = ref true in
  for r = 1 to f do
    if t.read_ok r then
      let complement = f land lnot r in
      (* any write quorum inside the complement would be disjoint *)
      if t.write_ok complement then ok := false
  done;
  !ok

let rowa n =
  make ~name:"read-one/write-all" ~n
    ~read_ok:(fun m -> m <> 0)
    ~write_ok:(fun m -> m = full n)

let majority n =
  let need = (n / 2) + 1 in
  make ~name:"majority" ~n
    ~read_ok:(fun m -> popcount m >= need)
    ~write_ok:(fun m -> popcount m >= need)

(** Gifford's weighted voting: votes per replica, read and write
    vote thresholds with [r + w > total]. *)
let weighted ~name ~votes ~r ~w =
  let n = Array.length votes in
  let total = Array.fold_left ( + ) 0 votes in
  if r + w <= total then invalid_arg "Strategy.weighted: r + w must exceed v";
  let sum m =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      if m land (1 lsl i) <> 0 then acc := !acc + votes.(i)
    done;
    !acc
  in
  make ~name ~n ~read_ok:(fun m -> sum m >= r) ~write_ok:(fun m -> sum m >= w)

(** Grid quorums: read = one full row; write = one full row plus one
    replica from every row. *)
let grid ~rows ~cols =
  let n = rows * cols in
  let row i =
    let m = ref 0 in
    for j = 0 to cols - 1 do
      m := !m lor (1 lsl ((i * cols) + j))
    done;
    !m
  in
  let some_full_row m =
    let rec go i = i < rows && ((m land row i) = row i || go (i + 1)) in
    go 0
  in
  let covers_all_rows m =
    let rec go i = i >= rows || (m land row i <> 0 && go (i + 1)) in
    go 0
  in
  make
    ~name:(Fmt.str "grid-%dx%d" rows cols)
    ~n ~read_ok:some_full_row
    ~write_ok:(fun m -> some_full_row m && covers_all_rows m)

(** Two-level hierarchical ("tree") quorums after Kumar: the replicas
    split into [groups] contiguous subtrees, and a quorum is a
    majority of subtrees each represented by a majority of its
    members.  Any two quorums share a subtree, and inside it two
    majorities intersect — so the family is legal with read = write,
    at quorums of ~[n^0.63] for ternary trees vs. [n/2 + 1] for flat
    majority (e.g. 4 of 9 instead of 5 of 9). *)
let tree ?(groups = 3) n =
  if groups < 1 || groups > n then
    invalid_arg "Strategy.tree: groups must be in [1, n]";
  let lo g = g * n / groups in
  let hi g = (g + 1) * n / groups in
  let group_ok m g =
    let size = hi g - lo g in
    let members = (m lsr lo g) land full size in
    popcount members >= (size / 2) + 1
  in
  let ok m =
    let represented = ref 0 in
    for g = 0 to groups - 1 do
      if group_ok m g then incr represented
    done;
    !represented >= (groups / 2) + 1
  in
  make ~name:(Fmt.str "tree-%d/%d" groups n) ~n ~read_ok:ok ~write_ok:ok

(** Non-replicated baseline: everything on replica 0. *)
let primary n =
  make ~name:"primary-copy" ~n
    ~read_ok:(fun m -> m land 1 <> 0)
    ~write_ok:(fun m -> m land 1 <> 0)

(** {1 Analytic availability}

    With each replica independently alive with probability [p], the
    probability that some live quorum exists is the sum over all
    live-sets.  Exact enumeration, exponential in [n] (fine for the
    paper-scale n <= 12). *)
let availability t ~p =
  let read = ref 0.0 and write = ref 0.0 in
  for m = 0 to full t.n do
    let k = popcount m in
    let prob =
      (p ** float_of_int k) *. ((1.0 -. p) ** float_of_int (t.n - k))
    in
    if t.read_ok m then read := !read +. prob;
    if t.write_ok m then write := !write +. prob
  done;
  (!read, !write)

(** All minimal read (resp. write) quorums as bitmasks — used by the
    targeted-send client mode, which messages one quorum instead of
    broadcasting.  Exponential enumeration (n <= ~12). *)
let minimal_quorums ok n =
  let all = ref [] in
  for m = 1 to full n do
    if ok m then all := m :: !all
  done;
  let masks = !all in
  List.filter
    (fun q ->
      not (List.exists (fun q' -> q' <> q && q' land lnot q = 0) masks))
    masks

let minimal_read_quorums t = minimal_quorums t.read_ok t.n
let minimal_write_quorums t = minimal_quorums t.write_ok t.n

(** The live-replica bitmask for a predicate of liveness. *)
let mask_of_live ~n is_live =
  let m = ref 0 in
  for i = 0 to n - 1 do
    if is_live i then m := !m lor (1 lsl i)
  done;
  !m
