(** Wire protocol of the replicated store: version/value queries (the
    read phase of both logical reads and writes), versioned installs
    (the write phase), and batch frames carrying several of either in
    one message. *)

type msg =
  | Query_req of { rid : int; key : string }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of { rid : int; key : string; vn : int; value : int }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
      (** several requests for one replica in one wire message; the
          frame rid identifies the batch, each wrapped request keeps
          its own rid *)
  | Batch_rep of { rid : int; reps : msg list }
      (** the replica's answers to a [Batch_req], echoing its rid *)

val rid : msg -> int

val batching : window:float -> msg Rpc.Engine.batching
(** The engine batching hooks for this protocol (see
    {!Rpc.Engine.set_batching}). *)
