(** Wire protocol of the replicated store: version/value queries (the
    read phase of both logical reads and writes), versioned installs
    (the write phase), and batch frames carrying several of either in
    one message. *)

type msg =
  | Query_req of { rid : int; key : string; ctx : Obs.Ctx.t option }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of {
      rid : int;
      key : string;
      vn : int;
      value : int;
      ctx : Obs.Ctx.t option;
    }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
      (** several requests for one replica in one wire message; the
          frame rid identifies the batch, each wrapped request keeps
          its own rid — and its own causal [ctx], so a coalesced frame
          carries one context per wrapped operation *)
  | Batch_rep of { rid : int; reps : msg list }
      (** the replica's answers to a [Batch_req], echoing its rid *)

val rid : msg -> int

val ctx : msg -> Obs.Ctx.t option
(** The causal stamp carried by a request frame, if any.  Replies and
    batch frames carry none of their own (each request wrapped in a
    batch keeps its own). *)

val batching : window:float -> msg Rpc.Engine.batching
(** The engine batching hooks for this protocol (see
    {!Rpc.Engine.set_batching}). *)
