(** Wire protocol of the replicated store: version/value queries (the
    read phase of both logical reads and writes), versioned installs
    (the write phase), and batch frames carrying several of either in
    one message. *)

type msg =
  | Query_req of { rid : int; key : string; ctx : Obs.Ctx.t option }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of {
      rid : int;
      key : string;
      vn : int;
      value : int;
      ctx : Obs.Ctx.t option;
    }
  | Install_ack of { rid : int; key : string }
  | Batch_req of { rid : int; reqs : msg list }
      (** several requests for one replica in one wire message; the
          frame rid identifies the batch, each wrapped request keeps
          its own rid — and its own causal [ctx], so a coalesced frame
          carries one context per wrapped operation *)
  | Batch_rep of { rid : int; reps : msg list }
      (** the replica's answers to a [Batch_req], echoing its rid *)
  | Txn_prepare of {
      rid : int;
      txid : string;
      writes : (string * int) list;  (** this shard's write set *)
      reads : string list;  (** this shard's read-only footprint *)
      acceptors : string list;
          (** every replica of every participant shard, in canonical
              order — the decision register's acceptor set, carried so
              a prepared replica can run recovery on its own *)
      paxos : bool;  (** Paxos-Commit mode: arm the recovery timer *)
      ctx : Obs.Ctx.t option;
    }
      (** phase 1 of commit: vote-request carrying the shard's
          footprint; a yes-vote locks the keys and snapshots their
          versions *)
  | Txn_vote of {
      rid : int;
      txid : string;
      yes : bool;
      kvs : (string * int * int) list;
          (** current (key, vn, value) per footprint key — the version
              query folded into the prepare round *)
    }
  | Txn_p1a of { rid : int; txid : string; bal : int }
      (** Paxos phase 1a on the transaction's decision register (sent
          by a recovery leader at ballot > 0) *)
  | Txn_p1b of {
      rid : int;
      txid : string;
      bal : int;
      ok : bool;
      accepted : (int * bool * (string * int * int) list) option;
          (** the acceptor's highest accepted (ballot, commit?, writes) *)
    }
  | Txn_p2a of {
      rid : int;
      txid : string;
      bal : int;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
      (** Paxos phase 2a: the coordinator proposes at ballot 0, a
          recovery leader at its own higher ballot *)
  | Txn_p2b of { rid : int; txid : string; bal : int; ok : bool }
  | Txn_decide of {
      rid : int;
      txid : string;
      commit : bool;
      writes : (string * int * int) list;  (** full write set, final vns *)
      ctx : Obs.Ctx.t option;
    }
      (** the chosen (2PC: unilateral) decision — apply prepared
          writes, release locks *)
  | Txn_decide_ack of { rid : int; txid : string; applied : bool }
      (** [applied] — the replica held a prepared entry and resolved it
          (commit quorums count only applied acks) *)

val rid : msg -> int

val ctx : msg -> Obs.Ctx.t option
(** The causal stamp carried by a request frame, if any.  Replies and
    batch frames carry none of their own (each request wrapped in a
    batch keeps its own). *)

val batching : window:float -> msg Rpc.Engine.batching
(** The engine batching hooks for this protocol (see
    {!Rpc.Engine.set_batching}). *)

(** {1 Wire codec}

    A frame-tagged JSON encoding of [msg], one object per frame with a
    ["frame"] discriminator.  The serializer and deserializer are the
    protocol's wire contract: the static analyzer (rule
    [handler-totality]) proves both sides cover every constructor, so
    adding a frame without teaching the codec is a build-gating lint
    failure, not a silent drop. *)

val to_json : msg -> Obs.Json.t
val of_json : Obs.Json.t -> (msg, string) result

val to_wire : msg -> string
(** [to_wire m] is the canonical single-line JSON text of [to_json m]. *)

val of_wire : string -> (msg, string) result
(** Parse a wire frame back; [Error] names the first malformed field. *)
