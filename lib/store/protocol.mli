(** Wire protocol of the replicated store: version/value queries (the
    read phase of both logical reads and writes) and versioned
    installs (the write phase). *)

type msg =
  | Query_req of { rid : int; key : string }
  | Query_rep of { rid : int; key : string; vn : int; value : int }
  | Install_req of { rid : int; key : string; vn : int; value : int }
  | Install_ack of { rid : int; key : string }

val rid : msg -> int
