(** Workload-aware strategy optimization: the candidate families, the
    lowering of {!Strategy} onto {!Tune.Model}'s analytic
    load/latency/availability model, and the per-shard chooser shared
    by the cluster's re-strategizing epoch, the REPL's [tune] command,
    and the [tables.exe tune] ablation. *)

let to_system (s : Strategy.t) : Tune.Model.system =
  {
    Tune.Model.name = s.Strategy.name;
    n = s.Strategy.n;
    read_ok = s.Strategy.read_ok;
    write_ok = s.Strategy.write_ok;
  }

(** The search space over [n] replicas.  Majority comes first so that
    objective ties resolve to the conservative baseline; the threshold
    sweep covers every read-[r]/write-[w] split of unit votes with
    [r + w = n + 1] (including read-one/write-all at [r = 1] and its
    mirror at [w = 1]); grids cover every [rows * cols = n]
    factorization with both sides >= 2; the tree family joins at
    [n >= 4]; primary-copy rides along as a legality/availability
    exercise for the gates. *)
let candidates n =
  if n < 1 then invalid_arg "Autotune.candidates: n must be >= 1";
  let maj = (n / 2) + 1 in
  let thresholds =
    List.filter_map
      (fun r ->
        let w = n + 1 - r in
        if r = maj && w = maj then None (* duplicate of majority *)
        else
          Some
            (Strategy.weighted
               ~name:(Fmt.str "read-%d/write-%d" r w)
               ~votes:(Array.make n 1) ~r ~w))
      (List.init n (fun i -> i + 1))
  in
  let grids =
    List.concat_map
      (fun rows ->
        if rows >= 2 && n mod rows = 0 && n / rows >= 2 then
          [ Strategy.grid ~rows ~cols:(n / rows) ]
        else [])
      (List.init n (fun i -> i + 1))
  in
  let trees = if n >= 4 then [ Strategy.tree ~groups:3 n ] else [] in
  (Strategy.majority n :: thresholds) @ grids @ trees @ [ Strategy.primary n ]

type choice = { strategy : Strategy.t; score : Tune.Model.score }

let choose ?config ~read_fraction ~p_alive ~lat n =
  (* every candidate is gated through Strategy.legal before it can be
     adopted — defense in depth on top of the model's own check *)
  let cands = List.filter Strategy.legal (candidates n) in
  match
    Tune.Model.choose ?config ~read_fraction ~p_alive ~lat
      (List.map to_system cands)
  with
  | None -> None
  | Some (idx, score) -> Some { strategy = List.nth cands idx; score }

(** The transitional strategy for re-strategizing [a] -> [b]: quorums
    must satisfy {e both} predicates, so joint reads see data at rest
    under [a]'s write quorums while joint writes already land on [b]'s
    — the two-phase fence that makes a switch safe without assuming
    the old and new quorum systems intersect each other (DESIGN.md
    §16). *)
let joint (a : Strategy.t) (b : Strategy.t) =
  if a.Strategy.n <> b.Strategy.n then
    invalid_arg "Autotune.joint: replica counts differ";
  Strategy.make
    ~name:(Fmt.str "%s+%s" a.Strategy.name b.Strategy.name)
    ~n:a.Strategy.n
    ~read_ok:(fun m -> a.Strategy.read_ok m && b.Strategy.read_ok m)
    ~write_ok:(fun m -> a.Strategy.write_ok m && b.Strategy.write_ok m)
