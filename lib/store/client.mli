(** The quorum client — the practical transaction manager, following
    Section 3.1's logic over RPC: reads assemble a read quorum of
    replies and return the highest-versioned value; writes first learn
    the version from a read quorum, then install [(vn + 1, value)] at
    a write quorum.  The request mechanics — rids, the pending table,
    the deadline, retries/backoff/hedging — come from {!Rpc.Engine};
    timeout = failed operation. *)

module Core = Sim.Core
module Net = Sim.Net

(** Request routing: [`Broadcast] (fastest-quorum hedging, 2n messages
    per round) or [`Quorum] (one randomly chosen minimal quorum —
    fewer messages, spreadable load, weaker tail latency and
    availability; a hedging policy turns the unchosen replicas into
    the fallback pool). *)
type targeting = [ `Broadcast | `Quorum ]

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  eng : Protocol.msg Rpc.Engine.t;  (** the shared request engine *)
  replicas : string array;
  mutable strategy : Strategy.t;  (** swappable (reconfiguration) *)
  timeout : float;
  read_repair : bool;
      (** reads push the newest (version, value) back to stale
          replicas they observed — anti-entropy on the read path *)
  targeting : targeting;
  rng : Qc_util.Prng.t;
  repairs_sent : Obs.Metrics.counter;
  ops_ok : Obs.Metrics.counter;
  ops_failed : Obs.Metrics.counter;
  read_latency : Obs.Metrics.histogram;  (** successful-op latencies *)
  write_latency : Obs.Metrics.histogram;
}

val create :
  name:string ->
  sim:Core.t ->
  net:Protocol.msg Net.t ->
  replicas:string array ->
  strategy:Strategy.t ->
  ?timeout:float ->
  ?read_repair:bool ->
  ?targeting:targeting ->
  ?policy:Rpc.Policy.t ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [metrics] defaults to a private registry; pass a shared one to
    aggregate a whole cluster.  [policy] (default {!Rpc.Policy.default},
    fire-once) governs per-request retries, backoff and hedging.
    Every operation is traced as a span on the simulator's tracer
    (begin at issue, end at quorum/timeout), with reply / phase-switch
    / timeout instants in between. *)

val set_policy : t -> Rpc.Policy.t -> unit
(** Swap the retry/hedge policy; applies to operations issued after
    the call.  @raise Invalid_argument on an invalid policy — use
    {!Rpc.Policy.validate} first to report errors gracefully. *)

val policy : t -> Rpc.Policy.t

val attach : t -> unit
(** Install the client's reply handler on the network. *)

val read :
  t -> key:string ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val write :
  t -> key:string -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val install :
  t -> key:string -> vn:int -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit
(** Install directly, skipping the version query — the data-migration
    step of reconfiguration. *)
