(** The quorum client — the practical transaction manager, following
    Section 3.1's logic over RPC: reads assemble a read quorum of
    replies and return the highest-versioned value; writes first learn
    the version from a read quorum, then install [(vn + 1, value)] at
    a write quorum.  The request mechanics — rids, the pending table,
    the deadline, retries/backoff/hedging — come from {!Rpc.Engine};
    timeout = failed operation. *)

module Core = Sim.Core
module Net = Sim.Net

(** Request routing: [`Broadcast] (fastest-quorum hedging, 2n messages
    per round) or [`Quorum] (one randomly chosen minimal quorum —
    fewer messages, spreadable load, weaker tail latency and
    availability; a hedging policy turns the unchosen replicas into
    the fallback pool). *)
type targeting = [ `Broadcast | `Quorum ]

(** Live signals for queue-aware read steering, shared by every client
    of a shard: per-replica reply-latency EWMA, apply-queue probe, and
    the steering cost weight.  With [steer = false] the tracker still
    learns from replies (feeding the optimizer's latency model) but
    targeting stays random. *)
type probe = {
  ewma : Tune.Ewma.t;
  queue_depth : int -> float;
  queue_weight : float;
  steer : bool;
}

type t = {
  name : string;
  sim : Core.t;
  net : Protocol.msg Net.t;
  eng : Protocol.msg Rpc.Engine.t;  (** the shared request engine *)
  replicas : string array;
  mutable strategy : Strategy.t;
      (** swappable (reconfiguration) — prefer {!set_strategy}, which
          also bumps the generation *)
  mutable epoch : int;  (** strategy generation *)
  mutable probe : probe option;  (** steering signals, [None] = off *)
  timeout : float;
  read_repair : bool;
      (** reads push the newest (version, value) back to stale
          replicas they observed — anti-entropy on the read path *)
  targeting : targeting;
  trace_ctx : bool;
      (** mint a causal trace context per operation and stamp it onto
          every frame the operation sends (see {!Obs.Ctx}) — off by
          default, because the stamps change the trace byte stream *)
  shard : int option;
      (** embedded in op ids, so routed clients sharing a name still
          mint unique ids *)
  mutable next_op : int;  (** per-client operation sequence number *)
  rng : Qc_util.Prng.t;
  own_vns : (string, int) Hashtbl.t;
      (** highest version issued per key — the single writer never
          reuses a version, even past a timed-out install that left
          residue at a minority (the coordinator-timestamp role) *)
  repairs_sent : Obs.Metrics.counter;
  ops_ok : Obs.Metrics.counter;
  ops_failed : Obs.Metrics.counter;
  read_latency : Obs.Metrics.histogram;  (** successful-op latencies *)
  write_latency : Obs.Metrics.histogram;
}

val create :
  name:string ->
  sim:Core.t ->
  net:Protocol.msg Net.t ->
  replicas:string array ->
  strategy:Strategy.t ->
  ?timeout:float ->
  ?read_repair:bool ->
  ?targeting:targeting ->
  ?trace_ctx:bool ->
  ?policy:Rpc.Policy.t ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  ?shard:int ->
  ?batch_window:float ->
  ?adaptive_window:Rpc.Window.config ->
  unit ->
  t
(** [metrics] defaults to a private registry; pass a shared one to
    aggregate a whole cluster.  [policy] (default {!Rpc.Policy.default},
    fire-once) governs per-request retries, backoff and hedging.
    [shard] adds a [("shard", i)] label to the client's and engine's
    metrics — set by the router when several clients serve one logical
    node.  [batch_window] enables multi-key batching on the engine
    (see {!Rpc.Engine.set_batching}); off by default.
    [adaptive_window] instead enables batching under an AIMD window
    controller (see {!Rpc.Window}) and takes precedence over
    [batch_window].
    Every operation is traced as a span on the simulator's tracer
    (begin at issue, end at quorum/timeout), with reply / phase-switch
    / timeout instants in between.
    [trace_ctx] (default [false]) additionally mints a causal context
    per operation — an op id like ["c0#12"] (["c0.s1#3"] when sharded)
    rooted at the operation span — and stamps it onto every request
    frame, attempt span, and reply/hedge instant, so replica-side
    spans link back to the originating operation and {!Obs.Query} /
    {!Obs.Attribution} can stitch the full causal tree.  Off, the
    emitted trace is byte-identical to historical runs. *)

val set_strategy : t -> Strategy.t -> unit
(** Adopt a new strategy and bump [epoch].  In-flight operations are
    unaffected: each op captures its strategy at issue, so it keeps
    completing against the quorum predicate it was sent under (the
    per-operation epoch fence — see DESIGN.md §16 for when a switch
    additionally needs a joint transition). *)

val epoch : t -> int

val set_probe : t -> probe option -> unit
(** Install (or remove) the steering probe.  With a probe present,
    every counted reply feeds the EWMA; with [steer] also true, reads
    in [`Quorum] targeting pick the minimal read quorum minimizing the
    freshness-weighted cost (see {!Tune.Steer}) instead of a random
    smallest one.  The client's PRNG is not consulted on steered
    picks, and is untouched whenever the probe is [None]. *)

val probe : t -> probe option

val set_policy : t -> Rpc.Policy.t -> unit
(** Swap the retry/hedge policy; applies to operations issued after
    the call.  @raise Invalid_argument on an invalid policy — use
    {!Rpc.Policy.validate} first to report errors gracefully. *)

val policy : t -> Rpc.Policy.t

val set_batch_window : t -> float option -> unit
(** Enable ([Some window]) or disable ([None]) multi-key batching for
    subsequently issued requests.
    @raise Invalid_argument if the window is negative or not finite. *)

val batch_window : t -> float option

val set_adaptive_window : t -> Rpc.Window.config option -> unit
(** Enable ([Some cfg]) adaptive batching — batching switches on at the
    config's initial window and an AIMD controller takes over the flush
    delay — or remove the controller ([None]), falling back to the
    engine's static window (disable that too with
    {!set_batch_window}).
    @raise Invalid_argument if the config fails {!Rpc.Window.validate}. *)

val adaptive_window : t -> Rpc.Window.t option
(** The live controller, if one is installed — inspect its current
    window with {!Rpc.Window.window}. *)

val attach : t -> unit
(** Install the client's reply handler on the network. *)

val handle : t -> src:string -> Protocol.msg -> unit
(** Dispatch one incoming reply by hand — for layers (the shard
    router) that own the node's net handler. *)

val read :
  t -> key:string ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val write :
  t -> key:string -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val install :
  t -> key:string -> vn:int -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit
(** Install directly, skipping the version query — the data-migration
    step of reconfiguration. *)
