(** Workload generation: Zipf keys, read/write mix, closed-loop
    clients.  Single designated writer per key (see the module
    implementation notes). *)

type zipf

val zipf : n:int -> s:float -> zipf
(** Zipf(s) over [n] ranks ([s = 0] is uniform). *)

val sample : zipf -> Qc_util.Prng.t -> int

type spec = {
  n_keys : int;
  zipf_s : float;
  read_fraction : float;
  think_time : float;
  ops_per_client : int;
  burst : int;
      (** concurrent operations per think interval (default 1 = the
          historical strictly-closed loop); bursts give the engine
          several keys in flight to batch *)
}

val default_spec : spec

type op = Read of string | Write of string * int

val key_name : int -> string

val next_op :
  spec -> zipf -> Qc_util.Prng.t -> ci:int -> n_clients:int -> op_counter:int -> op
(** The next operation for client [ci]: reads anywhere, writes only to
    keys the client owns (key index mod n_clients = ci). *)
