(** The quantitative experiments (DESIGN.md Q1-Q4, G1-G3): the
    evaluation the paper's introduction motivates. *)

type availability_row = {
  strategy : string;
  p : float;
  read_analytic : float;
  write_analytic : float;
  simulated : float;
}

val availability_sweep :
  ?n:int -> ?ps:float list -> ?seed:int -> unit -> availability_row list
(** Q1: analytic and simulated availability per strategy and per-site
    availability. *)

type latency_row = {
  strategy : string;
  min_read_quorum : int;
  min_write_quorum : int;
  read : Sim.Stats.summary;
  write : Sim.Stats.summary;
}

val latency_table : ?n:int -> ?seed:int -> unit -> latency_row list
(** Q2: operation latency by strategy. *)

type crossover_row = {
  read_fraction : float;
  rowa_mean : float;
  majority_mean : float;
  winner : string;
}

val mean_op_latency : Cluster.results -> float

val crossover :
  ?n:int -> ?seed:int -> ?fractions:float list -> unit -> crossover_row list
(** Q3: who wins at which read fraction. *)

type gifford_row = {
  label : string;
  votes : int list;
  r : int;
  w : int;
  min_read_quorum : int;
  min_write_quorum : int;
  read_avail_90 : float;
  write_avail_90 : float;
  read_latency : float;
  write_latency : float;
}

val gifford_examples : ?seed:int -> unit -> gifford_row list
(** G1-G3: weighted-voting configurations in the style of Gifford's
    examples. *)

type reconfig_row = { phase : string; ok : int; failed : int; rate : float }

val reconfig_experiment : ?seed:int -> unit -> reconfig_row list
(** Q4: reconfiguration restores availability after permanent replica
    failures (RoWa -> majority-of-survivors with data migration). *)

type repair_row = {
  mode : string;
  staleness_mid : float;
      (** mean fraction of stale replicas per key when failures stop *)
  staleness_end : float;  (** idem after the read-only phase *)
  repairs_sent : int;
}

val read_repair_experiment : ?seed:int -> unit -> repair_row list
(** Anti-entropy on the read path: replica staleness after a
    failure-heavy write phase and a read-only phase, repair off vs
    on. *)

type optimum_row = {
  p : float;
  read_fraction : float;
  votes : int list;
  r : int;
  w : int;
  score : float;
  rowa_score : float;
  majority_score : float;
}

val optimal_configurations :
  ?n:int -> ?ps:float list -> ?fractions:float list -> unit -> optimum_row list
(** Search all vote assignments (votes 0-3, minimal legal thresholds)
    for the availability-optimal configuration per (per-site
    availability, read fraction) point. *)

type load_row = {
  strategy_name : string;
  mode : string;
  messages : int;
  read_mean : float;
  availability : float;
  load_imbalance : float;
      (** max replica load / mean replica load (1.0 = perfectly flat) *)
}

val load_table : ?seed:int -> unit -> load_row list
(** Broadcast vs targeted-quorum routing: message counts, read
    latency, availability, and per-replica load imbalance. *)

type retry_row = {
  policy_name : string;
  condition : string;
  ok_ops : int;
  failed_ops : int;
  success_rate : float;
  read_mean : float;
  messages : int;
  retries : int;
  hedges : int;
  audit_clean : bool;  (** consistency audit passed *)
}

val retry_policy_table : ?seed:int -> unit -> retry_row list
(** Ablation: operation success rate and latency vs the engine's
    retry/backoff/hedging policy, under message loss and nemesis
    partitions (targeted-quorum routing — the stress case for
    fire-once clients). *)

type shard_row = {
  n_shards : int;
  total_replicas : int;
  messages : int;
  replica_imbalance : float;
      (** max replica load / mean replica load (1.0 = flat) *)
  shard_spread : float;
      (** max shard load / mean shard load (1 shard: 1.0) *)
  availability : float;  (** mean over the seeds *)
  min_availability : float;  (** worst seed (= mean with one seed) *)
  kill_availability : float;
      (** availability with the hottest shard crashed at t=500 (a
          {!Harness.Script.of_shard_kill} script), mean over the seeds *)
  min_kill_availability : float;  (** worst seed *)
}

val shard_table : ?seed:int -> ?seeds:int -> unit -> shard_row list
(** Ablation: a Zipf-skewed workload over 1/2/4 range shards (3
    replicas each) — load spread across replicas and shards, and the
    blast radius of killing the hot shard mid-run.  [seeds] (default
    1) averages the availability cells over consecutive seeds,
    reporting min and mean; load/message columns come from the base
    seed. *)

type batch_row = {
  zipf_label : string;
  mode : string;
  b_messages : int;  (** wire messages *)
  b_payloads : int;  (** logical requests carried *)
  read_p95 : float;
  write_p95 : float;
  b_ok_ops : int;
  b_failed_ops : int;
  b_audit_clean : bool;
}

val batching_table : ?seed:int -> unit -> batch_row list
(** Ablation: multi-key batching on burst-issuing clients, uniform vs
    Zipf-skewed keys — wire messages vs logical payloads, and the p95
    latency cost of the batching window. *)

type io_row = {
  io_mode : string;  (** "no-storage", "naive-fsync", "group-commit" *)
  io_installs : int;
  io_fsyncs : int;
  io_fsyncs_per_install : float;  (** the amortization measure *)
  io_write_mean : float;
  io_write_p95 : float;
  io_ok_ops : int;
  io_failed_ops : int;
  io_audit_clean : bool;
}

val io_table : ?seed:int -> unit -> io_row list
(** Ablation: the replica-side apply pipeline under a burst-8 Zipf
    write-heavy workload with per-write and per-fsync storage costs —
    naive per-install fsync (1.0 fsyncs/install, serialized) vs group
    commit (one fsync per drained group), with the free-storage
    baseline alongside.  The audit must stay clean in every mode. *)

type window_row = {
  w_workload : string;  (** "burst-8 zipf" or "uniform low-rate" *)
  w_mode : string;  (** "unbatched", "static w=...", "adaptive" *)
  w_messages : int;  (** wire messages *)
  w_payloads : int;  (** logical requests carried *)
  w_op_mean : float;  (** mean latency over all successful ops *)
  w_ok_ops : int;
  w_failed_ops : int;
  w_audit_clean : bool;
}

val window_statics : float list
(** The static windows the ablation sweeps. *)

val window_table : ?seed:int -> unit -> window_row list
(** Ablation: static batching windows vs the AIMD-controlled adaptive
    window, on a burst-8 Zipf workload (coalescing pays) and a uniform
    low-rate workload (any window only adds latency).  The adaptive
    window should match or beat the best static window's wire-message
    count on the burst workload while adding no latency on the
    low-rate one. *)

type attr_row = {
  a_label : string;  (** e.g. ["loss=30% burst=8"] *)
  a_ops : int;  (** stamped operations attributed *)
  a_wall_mean : float;  (** mean wall latency over attributed ops *)
  a_phase_means : (Obs.Attribution.phase * float) list;
      (** mean time units per op per phase, in
          {!Obs.Attribution.phases} order; sums to [a_wall_mean] up to
          float error *)
  a_ok_ops : int;
  a_failed_ops : int;
  a_audit_clean : bool;
}

val attribution_table : ?seed:int -> unit -> attr_row list
(** Ablation: causal latency attribution across loss (0% vs 30%) and
    burst size (1 vs 8) on a 2-shard cluster with retries, a static
    batch window, and storage costs — each knob's latency cost lands
    in its own phase (backoff under loss, batch-wait and fsync under
    bursts) and every row's phases sum to its wall mean. *)

type tune_row = {
  t_mix : string;  (** "90/10" or "50/50" *)
  t_env : string;  (** "uniform" or "slow-r4" *)
  t_mode : string;
      (** "majority", "optimized", "optimized+steer", "majority+steer" *)
  t_strategy : string;  (** the shard's final strategy (base seed) *)
  t_switches : int;  (** committed re-strategizes (base seed) *)
  t_ok_ops : int;  (** summed over the seeds *)
  t_failed_ops : int;
  t_throughput : float;  (** ok ops per time unit, mean over seeds *)
  t_read_mean : float;  (** mean over seeds of the read-latency mean *)
  t_read_p99 : float;  (** mean over seeds of the read-latency p99 *)
  t_audit_clean : bool;  (** every seed's audit clean *)
}

val tune_mixes : (string * float) list
val tune_modes : string list

val tune_spec_of_mode : string -> Cluster.tune_spec option
(** The cluster tuning spec a mode name denotes ([None] = static
    majority baseline). @raise Invalid_argument on an unknown mode. *)

val tune_table : ?seed:int -> ?seeds:int -> unit -> tune_row list
(** Ablation: the workload-aware optimizer and queue-aware read
    steering vs. static majority, across read mixes (90/10, 50/50)
    and environments (uniform, one slow replica), averaged over
    [seeds] consecutive seeds.  Quorum targeting, fire-once policy —
    the regime the analytic model scores. *)
