(** The shard router: the keyspace split across replica groups, each
    with its own strategy and engine; logical keys resolve to shards
    through a pure, deterministic map.  Per-item quorum consensus
    makes any key partition correctness-preserving — each key's
    quorums intersect inside that key's own group.  A 1-shard router
    is constructed and wired exactly like the historical single-group
    client, so default runs stay byte-identical. *)

module Net = Sim.Net

type scheme = [ `Hash | `Range ]
(** [`Hash]: FNV-1a of the key modulo the shard count (spreads hot
    keys).  [`Range]: contiguous ranges of the numeric key index
    (keys ["k<i>"]; locality-preserving, concentrates skew);
    non-numeric keys fall back to the hash map. *)

val scheme_label : scheme -> string

val key_index : string -> int option
(** The numeric suffix of a key like ["k12"]. *)

val shard_fn : scheme -> n_shards:int -> n_keys:int -> string -> int
(** The pure key → shard map.  Same configuration, same map — no
    coordination needed between clients.
    @raise Invalid_argument if [n_shards < 1]. *)

type t

val create :
  name:string ->
  sim:Sim.Core.t ->
  net:Protocol.msg Net.t ->
  groups:string array array ->
  strategies:Strategy.t array ->
  scheme:scheme ->
  n_keys:int ->
  ?timeout:float ->
  ?read_repair:bool ->
  ?targeting:Client.targeting ->
  ?trace_ctx:bool ->
  ?policy:Rpc.Policy.t ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  ?batch_window:float ->
  ?adaptive_window:Rpc.Window.config ->
  unit ->
  t
(** One shard client per replica group (group [s] gets
    [strategies.(s)], seed [seed + 7919*s], and — when there is more
    than one shard — a [("shard", s)] metric label).  [n_keys] bounds
    the [`Range] partition.  [adaptive_window] enables AIMD-controlled
    batching on every shard (see {!Client.create}).  [trace_ctx]
    (default false) turns on causal trace stamping on every shard
    client — shard clients share the router's name, so sharded op ids
    embed the shard (["c0.s1#3"]; see {!Client.create}).
    @raise Invalid_argument on zero shards or mismatched strategies. *)

val n_shards : t -> int
val shard_of : t -> string -> int
val scheme : t -> scheme
val client : t -> shard:int -> Client.t
val clients : t -> Client.t array
val replicas : t -> shard:int -> string array

val route_many : t -> string list -> (int * string list) list
(** Group keys by owning shard: one (shard, keys) pair per shard that
    owns at least one input key, shards in first-appearance order,
    each shard's keys in input order, duplicates preserved.  The txn
    layer's footprint split. *)

val attach : t -> unit
(** Install the router's reply handler: a single shard attaches its
    client directly (the historical path); several shards register a
    demultiplexer routing each reply to the shard owning its source
    replica. *)

val read :
  t -> key:string ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val write :
  t -> key:string -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val install :
  t -> key:string -> vn:int -> value:int ->
  on_done:(ok:bool -> vn:int -> value:int -> latency:float -> unit) -> unit

val set_policy : t -> Rpc.Policy.t -> unit
(** Apply to every shard. @raise Invalid_argument on an invalid policy. *)

val policy : t -> Rpc.Policy.t

val set_batch_window : t -> float option -> unit
(** Apply to every shard (see {!Client.set_batch_window}). *)

val batch_window : t -> float option

val set_adaptive_window : t -> Rpc.Window.config option -> unit
(** Apply to every shard (see {!Client.set_adaptive_window}). *)

val adaptive_window : t -> Rpc.Window.t option
(** Shard 0's live controller, if one is installed. *)

val set_strategy : t -> shard:int -> Strategy.t -> unit
(** Adopt a new strategy on the shard's client and bump its epoch;
    in-flight ops finish under the strategy they were issued with
    (see {!Client.set_strategy}). *)

val strategy : t -> shard:int -> Strategy.t
(** The shard's current quorum strategy. *)

val epoch : t -> shard:int -> int
(** The shard's strategy generation. *)

val set_probe : t -> shard:int -> Client.probe option -> unit
(** Install (or remove) the shard client's steering probe (see
    {!Client.set_probe}). *)
