(** The Theorem 10 simulation checker.

    Theorem 10: for every schedule [b] of replicated serial system B
    there is a schedule [a] of non-replicated serial system A such
    that (1) non-DM objects see the same operations, and (2) every
    user transaction sees the same operations.  The proof constructs
    [a] by {e erasing from b all operations of replica accesses}; the
    inductive argument shows the erased sequence replays on A.

    The checker executes that construction literally: erase, then
    {!Ioa.System.replay} on a freshly built system A.  Conditions (1)
    and (2) are additionally verified explicitly by comparing
    projections (they hold by construction of the erasure, but
    checking them guards the checker itself).  Replay failure on any
    generated B-schedule would falsify the theorem (or, in practice,
    expose a transcription bug). *)

open Ioa

(** The paper's construction of [a] from [b]: remove the
    REQUEST_CREATE, CREATE, REQUEST_COMMIT, COMMIT and ABORT
    operations of every access in [acc(x)], for every item [x]. *)
let project (d : Description.t) (sched : Schedule.t) : Schedule.t =
  Schedule.erase (Description.is_replica_access d) sched

type outcome = {
  alpha : Schedule.t;
  replayed : bool;
  views_agree : bool;
}

let ( let* ) = Result.bind

(** [check d beta] runs the full Theorem 10 validation for one
    B-schedule. *)
let check (d : Description.t) (beta : Schedule.t) : (outcome, string) result
    =
  let alpha = project d beta in
  (* alpha must be a schedule of system A *)
  let* () =
    match System.replay (System_a.build d) alpha with
    | Ok _ -> Ok ()
    | Error e ->
        Error (Fmt.str "Theorem 10: projection does not replay on A: %s" e)
  in
  (* condition 1: objects outside every dm(x) see identical schedules *)
  let raw_ok =
    List.for_all
      (fun (name, _) ->
        let of_obj a =
          match Txn.obj_of (Action.txn a) with
          | Some o -> String.equal o name
          | None -> false
        in
        Schedule.equal
          (Schedule.project of_obj alpha)
          (Schedule.project of_obj beta))
      d.Description.raw_objects
  in
  let* () =
    if raw_ok then Ok ()
    else Error "Theorem 10: a non-replica object sees different schedules"
  in
  (* condition 2: every user transaction's view is preserved *)
  let views_agree =
    List.for_all
      (fun u ->
        Schedule.equal (Schedule.view_of u alpha) (Schedule.view_of u beta))
      (Description.user_txns d)
  in
  let* () =
    if views_agree then Ok ()
    else Error "Theorem 10: a user transaction's view differs"
  in
  Ok { alpha; replayed = true; views_agree }
