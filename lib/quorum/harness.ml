(** End-to-end harness: drive system B, then put the produced
    schedule through every checker the paper's results demand.

    One [run_and_check] call is one data point of the mechanized
    reproduction: Lemma 5 (well-formedness), Lemmas 6/7/8
    (invariants), Theorem 10 (simulation on system A). *)

open Ioa
module Prng = Qc_util.Prng

(** Driver strategy that dampens the serial scheduler's spontaneous
    aborts: with probability [1 - abort_rate], ABORT operations are
    removed from the menu when anything else is enabled.  This keeps
    random executions from aborting everything while still exercising
    the failure paths. *)
let abort_damped ?(abort_rate = 0.1) (base : System.strategy) :
    System.strategy =
 fun rng actions ->
  let non_aborts =
    List.filter (function Action.Abort _ -> false | _ -> true) actions
  in
  match non_aborts with
  | [] -> base rng actions
  | _ ->
      if Prng.float rng < abort_rate then base rng actions
      else base rng non_aborts

(** Run system B from a seed.  A [tracer] records the step-by-step
    action trail (category "ioa") — the window a failed checker needs
    into {e which} scheduler step went wrong. *)
let run_b ?(max_steps = 20_000) ?(abort_rate = 0.1) ?tracer ~seed
    (d : Description.t) : System.run_result =
  let rng = Prng.create seed in
  let strategy = abort_damped ~abort_rate (System.completion_biased ()) in
  System.run ~max_steps ~strategy ?tracer ~rng (System_b.build d)

type report = {
  seed : int;
  steps : int;
  quiescent : bool;
  items : int;
  logical_states : (string * Value.t) list;
}

let ( let* ) = Result.bind

(** All schedule-level checks for one B-schedule. *)
let check_all (d : Description.t) (sched : Schedule.t) :
    (unit, string) result =
  let* () =
    Result.map_error (fun e -> "Lemma 5 (well-formedness): " ^ e)
      (System_b.check_wellformed d sched)
  in
  let* () = Invariants.check d sched in
  let* _ = Simulation.check d sched in
  Ok ()

(** Generate a random description from [seed], run it, check
    everything.  The workhorse of the property suite. *)
let run_and_check ?(params = Gen.default_params) ?(max_steps = 20_000)
    ?(abort_rate = 0.1) ?tracer ~seed () : (report, string) result =
  let rng = Prng.create seed in
  let d = Gen.description ~params rng in
  let run = run_b ~max_steps ~abort_rate ?tracer ~seed:(seed lxor 0x5eed) d in
  let* () =
    Result.map_error
      (fun e -> Fmt.str "seed %d: %s" seed e)
      (check_all d run.System.schedule)
  in
  Ok
    {
      seed;
      steps = Schedule.length run.System.schedule;
      quiescent = run.System.quiescent;
      items = List.length d.Description.items;
      logical_states = Invariants.final_logical_states d run.System.schedule;
    }
