(** Exhaustive exploration of a system's schedule space: depth-first
    over every enabled output, threading an incremental checker along
    each branch.  Completion within the budget is an exhaustive proof
    for that instance. *)

open Ioa

type stats = {
  schedules : int;  (** maximal schedules reached *)
  prefixes : int;  (** prefixes visited (= operations checked) *)
  exhausted : bool;  (** false when the budget stopped the walk *)
  violation : (Schedule.t * string) option;  (** first failure found *)
}

(** A prefix-incremental checker. *)
type 'st checker = {
  init : 'st;
  step : 'st -> Action.t -> ('st, string) result;
}

val run :
  ?budget:int ->
  ?filter:(Action.t -> bool) ->
  System.t ->
  'st checker ->
  stats
(** Walk every schedule whose operations pass [filter], stopping at
    the first violation or after [budget] visited prefixes. *)

val no_aborts : Action.t -> bool
(** Filter dropping the scheduler's spontaneous ABORTs (shrinks the
    space drastically; restricts nondeterminism only). *)

val check_description :
  ?budget:int -> ?include_aborts:bool -> ?max_attempts:int -> Description.t ->
  stats
(** Exhaustively validate Lemmas 5-8 on every (optionally abort-free)
    schedule of system B for the description. *)
