(** The non-replicated serial system A (paper Section 3.2): identical
    to system B except each item is one read-write object and the TM
    names denote accesses to it.  The correspondence [7_BA] is the
    identity on names, so B is an extension of A by construction
    (Lemma 9). *)

val build : Description.t -> Ioa.System.t
val check_wellformed : Description.t -> Ioa.Schedule.t -> (unit, string) result
