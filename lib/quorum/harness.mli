(** End-to-end harness: drive system B, then run every checker the
    paper's results demand — Lemma 5 (well-formedness), Lemmas 6-8
    (invariants), Theorem 10 (simulation). *)

open Ioa

val abort_damped : ?abort_rate:float -> System.strategy -> System.strategy
(** Dampens the scheduler's spontaneous aborts: with probability
    [1 - abort_rate], ABORTs are removed from the menu when anything
    else is enabled. *)

val run_b :
  ?max_steps:int -> ?abort_rate:float -> ?tracer:Obs.Trace.t -> seed:int ->
  Description.t -> System.run_result
(** Run system B from a seed.  A [tracer] records the step-by-step
    action trail (category "ioa"). *)

type report = {
  seed : int;
  steps : int;
  quiescent : bool;
  items : int;
  logical_states : (string * Value.t) list;
}

val check_all : Description.t -> Schedule.t -> (unit, string) result
(** All schedule-level checks for one B-schedule. *)

val run_and_check :
  ?params:Gen.params ->
  ?max_steps:int ->
  ?abort_rate:float ->
  ?tracer:Obs.Trace.t ->
  seed:int ->
  unit ->
  (report, string) result
(** Generate a random description from [seed], run it, check
    everything — the workhorse of the property suite. *)
