(** Write transaction managers (Section 3.1), transcribed from the
    paper's automaton definition.

    A write-TM [T] for logical item [x] performs a logical write of
    [value(T)] (read off the TM's own name).  It first invokes read
    accesses until a read-quorum of DMs has answered, tracking the
    highest version number returned; it then invokes write accesses
    carrying [(vn + 1, value(T))]; once COMMITs have arrived from a
    write-quorum of DMs it may request to commit with value [nil].

    Faithful subtlety: some read accesses may commit only after write
    accesses have been invoked, possibly returning data this very TM
    wrote.  To prevent the TM from seeing its own writes and bumping
    the version number again, the COMMIT of a read access updates the
    state {e only if no write access has been requested yet}
    ([write_requested = {}] in the paper's postcondition).

    State components (paper names): awake, data (only its
    version-number evolves), read_requested, write_requested
    (subsets of [acc(x)]), read, written (subsets of [dm(x)]). *)

open Ioa

type state = {
  self : Txn.t;
  item : string;
  value : Value.t;  (** [value(T)], the logical value to install *)
  dms : string list;
  config : Config.t;
  max_attempts : int;
  awake : bool;
  data_vn : int;
  read_requested : Txn.Set.t;
  write_requested : Txn.Set.t;
  read : string list;
  written : string list;
}

let read_access_name st d seq =
  Txn.child st.self
    (Txn.Access { obj = d; kind = Txn.Read; data = Value.Nil; seq })

let write_access_name st d seq =
  Txn.child st.self
    (Txn.Access
       { obj = d; kind = Txn.Write; data = Value.Versioned (st.data_vn + 1, st.value); seq })

let attempts_at set d =
  Txn.Set.fold
    (fun t acc ->
      match Txn.obj_of t with
      | Some o when String.equal o d -> acc + 1
      | _ -> acc)
    set 0

let is_child_access st t =
  (not (Txn.is_root t))
  && Txn.equal (Txn.parent t) st.self
  && List.exists (fun d -> Txn.obj_of t = Some d) st.dms

let read_quorum_seen st = Config.read_covered st.config st.read

let can_request_commit st =
  st.awake && Config.write_covered st.config st.written

let transition (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when Txn.equal t st.self -> Some { st with awake = true }
  | Action.Request_create t when is_child_access st t -> (
      match Txn.kind_of t with
      | Some Txn.Read ->
          if st.awake && not (Txn.Set.mem t st.read_requested) then
            Some { st with read_requested = Txn.Set.add t st.read_requested }
          else None
      | Some Txn.Write ->
          (* Precondition: a read-quorum has been read, the access
             carries exactly (vn + 1, value(T)), and it is fresh. *)
          let expected = Value.Versioned (st.data_vn + 1, st.value) in
          if
            st.awake && read_quorum_seen st
            && (match Txn.data_of t with
               | Some d -> Value.equal d expected
               | None -> false)
            && not (Txn.Set.mem t st.write_requested)
          then
            Some { st with write_requested = Txn.Set.add t st.write_requested }
          else None
      | None -> None)
  | Action.Commit (t, d) when is_child_access st t -> (
      match Txn.kind_of t with
      | Some Txn.Read ->
          (* Update only if no write access has been invoked yet. *)
          if Txn.Set.is_empty st.write_requested then
            let dm = Option.get (Txn.obj_of t) in
            let read = if List.mem dm st.read then st.read else dm :: st.read in
            let data_vn =
              match d with
              | Value.Versioned (vn, _) when vn > st.data_vn -> vn
              | _ -> st.data_vn
            in
            Some { st with read; data_vn }
          else Some st
      | Some Txn.Write ->
          let dm = Option.get (Txn.obj_of t) in
          let written =
            if List.mem dm st.written then st.written else dm :: st.written
          in
          Some { st with written }
      | None -> None)
  | Action.Abort t when is_child_access st t -> Some st
  | Action.Request_commit (t, v) when Txn.equal t st.self ->
      if can_request_commit st && Value.equal v Value.Nil then
        Some { st with awake = false }
      else None
  | Action.Create _ | Action.Request_create _ | Action.Commit _
  | Action.Abort _ | Action.Request_commit _ ->
      None

let enabled (st : state) : Action.t list =
  if not st.awake then []
  else
    let read_reqs =
      (* keep querying until a read-quorum has answered *)
      if read_quorum_seen st then []
      else
        List.filter_map
          (fun d ->
            let n = attempts_at st.read_requested d in
            if n < st.max_attempts then
              Some (Action.Request_create (read_access_name st d n))
            else None)
          st.dms
    in
    let write_reqs =
      if read_quorum_seen st && not (Config.write_covered st.config st.written)
      then
        List.filter_map
          (fun d ->
            let n = attempts_at st.write_requested d in
            if n < st.max_attempts then
              Some (Action.Request_create (write_access_name st d n))
            else None)
          st.dms
      else []
    in
    let commit =
      if can_request_commit st then
        [ Action.Request_commit (st.self, Value.Nil) ]
      else []
    in
    read_reqs @ write_reqs @ commit

(** [make ~self ~item ()] builds the write-TM automaton named [self]
    (whose name determines [value(T)]) for logical item [item]. *)
let make ~(self : Txn.t) ~(item : Item.t) ?(max_attempts = 3) () :
    Component.t =
  let value =
    match Txn.data_of self with
    | Some v -> v
    | None ->
        invalid_arg "Write_tm.make: TM name does not carry a value"
  in
  let state =
    {
      self;
      item = item.Item.name;
      value;
      dms = item.Item.dms;
      config = item.Item.config;
      max_attempts;
      awake = false;
      data_vn = 0;
      read_requested = Txn.Set.empty;
      write_requested = Txn.Set.empty;
      read = [];
      written = [];
    }
  in
  Automaton.make
    ~name:(Fmt.str "write-tm:%s" (Txn.to_string self))
    ~is_input:(fun a ->
      match a with
      | Action.Create t -> Txn.equal t self
      | Action.Commit (t, _) | Action.Abort t -> is_child_access state t
      | Action.Request_create _ | Action.Request_commit _ -> false)
    ~is_output:(fun a ->
      match a with
      | Action.Request_create t -> is_child_access state t
      | Action.Request_commit (t, _) -> Txn.equal t self
      | Action.Create _ | Action.Commit _ | Action.Abort _ -> false)
    ~state ~transition ~enabled
    ~pp:(fun st ->
      Fmt.str "write-tm %a: awake=%b vn=%d read={%a} written={%a}" Txn.pp
        st.self st.awake st.data_vn
        Fmt.(list ~sep:(any ",") string)
        st.read
        Fmt.(list ~sep:(any ",") string)
        st.written)
    ()
