(** Read transaction managers (paper Section 3.1): perform a logical
    read by invoking read accesses to the item's DMs, keeping the
    highest-versioned data, and returning its value once a read-quorum
    has answered. *)

open Ioa

val make : self:Txn.t -> item:Item.t -> ?max_attempts:int -> unit -> Component.t
(** The read-TM automaton named [self] for [item].  [max_attempts]
    bounds access retries per DM (a restriction of nondeterminism
    only). *)
