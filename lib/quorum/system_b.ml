(** The replicated serial system B (Section 3.1).

    System B is an ordinary serial system in which each logical item
    [x] is implemented by the DMs in [dm(x)] (read-write objects over
    [N x V_x]), all accesses to which are children of the TMs for [x].
    Its components are: the serial scheduler, the user transaction
    automata (from the description's scripts), one read- or write-TM
    automaton per logical access in the scripts, one DM object per
    replica, and the non-replicated basic objects. *)

open Ioa

let build ?(max_attempts = 3) (d : Description.t) : System.t =
  (match Description.validate d with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "System_b.build: %s" e));
  let scheduler = Serial.Scheduler.make () in
  let txns =
    Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root d.root_script
  in
  let tms =
    List.map
      (fun (name, item, kind) ->
        match kind with
        | Txn.Read -> Read_tm.make ~self:name ~item ~max_attempts ()
        | Txn.Write -> Write_tm.make ~self:name ~item ~max_attempts ())
      (Description.tm_names d)
  in
  let dms =
    List.concat_map
      (fun (i : Item.t) ->
        List.map
          (fun dm ->
            Serial.Rw_object.make ~name:dm ~initial:(Item.dm_initial i) ())
          i.Item.dms)
      d.items
  in
  let raws =
    List.map
      (fun (name, initial) -> Serial.Rw_object.make ~name ~initial ())
      d.raw_objects
  in
  System.compose ((scheduler :: txns) @ tms @ dms @ raws)

(** Well-formedness predicate for system B schedules (Lemma 5 uses
    this instantiation). *)
let check_wellformed (d : Description.t) sched =
  Wellformed.check ~is_access:(Description.is_access_b d) sched
