(** Write transaction managers (paper Section 3.1): discover the
    current version number from a read-quorum, then install
    [(vn + 1, value(T))] at a write-quorum, returning [nil].  The
    value written is carried by the TM's own name.  Faithful subtlety:
    a read-access COMMIT arriving after write accesses were invoked no
    longer updates the state, preventing the TM from seeing its own
    writes. *)

open Ioa

val make : self:Txn.t -> item:Item.t -> ?max_attempts:int -> unit -> Component.t
(** The write-TM automaton named [self] (whose name determines
    [value(T)]) for [item].
    @raise Invalid_argument when the name carries no value. *)
