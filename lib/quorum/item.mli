(** Logical data items (paper Sections 2.3 / 3.1): a name, the DM set
    [dm(x)] holding the replicas, a legal configuration [config(x)],
    and the initial value [i_x]. *)

type t = {
  name : string;
  dms : string list;
  config : Config.t;
  initial : Ioa.Value.t;
}

val make :
  name:string ->
  dms:string list ->
  config:Config.t ->
  initial:Ioa.Value.t ->
  t
(** @raise Invalid_argument when the configuration is illegal or
    mentions DMs outside [dms]. *)

val dm_initial : t -> Ioa.Value.t
(** Initial DM state: [Versioned (0, i_x)] (Section 3.1). *)

val pp : t Fmt.t
