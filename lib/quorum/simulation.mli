(** The Theorem 10 simulation checker: erase the replica-access
    operations from a B-schedule, replay the result on a freshly-built
    system A, and verify the non-replica objects and every user
    transaction see identical operation sequences. *)

open Ioa

val project : Description.t -> Schedule.t -> Schedule.t
(** The paper's construction of [alpha] from [beta]. *)

type outcome = { alpha : Schedule.t; replayed : bool; views_agree : bool }

val check : Description.t -> Schedule.t -> (outcome, string) result
(** Run the full Theorem 10 validation for one B-schedule. *)
