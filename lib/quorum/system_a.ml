(** The non-replicated serial system A (Section 3.2).

    System A is identical to system B except that the logical accesses
    (the TMs of system B) are accesses, and each logical item is
    implemented by a single read-write object [O(x)] over domain [V_x]
    with initial value [i_x].  Because TM names carry the access
    attributes (kind, and for writes the value), the same names denote
    the corresponding accesses here, so the paper's mapping [7_BA] is
    the identity and system B is an extension of system A (Lemma 9)
    by construction. *)

open Ioa

let build (d : Description.t) : System.t =
  (match Description.validate d with
  | Ok () -> ()
  | Error e -> invalid_arg (Fmt.str "System_a.build: %s" e));
  let scheduler = Serial.Scheduler.make () in
  let txns =
    Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root d.root_script
  in
  let logical_objects =
    List.map
      (fun (i : Item.t) ->
        Serial.Rw_object.make ~name:i.Item.name ~initial:i.Item.initial ())
      d.items
  in
  let raws =
    List.map
      (fun (name, initial) -> Serial.Rw_object.make ~name ~initial ())
      d.raw_objects
  in
  System.compose ((scheduler :: txns) @ logical_objects @ raws)

let check_wellformed (d : Description.t) sched =
  Wellformed.check ~is_access:(Description.is_access_a d) sched
