(** Mechanized checkers for Lemmas 6, 7 and 8, validated after every
    prefix of a system-B schedule (Lemma 8 part 1 at even
    access-sequence lengths, part 2 at read-TM commits). *)

open Ioa

type state
(** Incremental checker state (one tracker per item). *)

val init : Description.t -> state

val step : state -> Action.t -> (state, string) result
(** Step one operation; [Error] carries the violated lemma and
    details. *)

val check : Description.t -> Schedule.t -> (unit, string) result
(** Fold a whole schedule through {!step}, decorating errors with the
    step index. *)

val final_logical_states : Description.t -> Schedule.t -> (string * Value.t) list
(** Final logical state of each item (cross-checkable against
    {!Logical.logical_state}). *)
