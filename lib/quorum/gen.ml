(** Random generation of system descriptions.

    The correctness results are universally quantified over system
    types, configurations, and user transaction behaviour; the
    property tests therefore sample that space: random items with
    random legal configurations (drawn from all the constructor
    families plus arbitrary legal configurations), random
    non-replicated objects, and random user scripts (nested, with
    mixed ordered/unordered children and read/write/raw operations). *)

open Ioa
module Prng = Qc_util.Prng

type params = {
  max_items : int;
  max_dms : int;
  max_raws : int;
  max_depth : int;
  max_children : int;
}

let default_params =
  { max_items = 3; max_dms = 5; max_raws = 2; max_depth = 3; max_children = 4 }

(* A random legal configuration over [dms]: sampled from the standard
   families, plus "core" configurations in which one distinguished DM
   belongs to every quorum (legal by construction). *)
let config rng dms =
  match Prng.int rng 5 with
  | 0 -> Config.rowa dms
  | 1 -> Config.raow dms
  | 2 -> Config.majority dms
  | 3 ->
      let votes = List.map (fun d -> (d, 1 + Prng.int rng 3)) dms in
      let total = List.fold_left (fun acc (_, v) -> acc + v) 0 votes in
      let r = 1 + Prng.int rng total in
      let w = total - r + 1 in
      Config.weighted ~votes ~read_threshold:r ~write_threshold:w
  | _ ->
      let core = Prng.choose rng dms in
      let quorums () =
        let n = 1 + Prng.int rng 3 in
        List.init n (fun _ ->
            core :: Prng.subset rng (List.filter (( <> ) core) dms) ~p:0.5)
      in
      Config.make ~read_quorums:(quorums ()) ~write_quorums:(quorums ())

let item rng ~params i =
  let name = Fmt.str "x%d" i in
  let n_dms = 1 + Prng.int rng params.max_dms in
  let dms = List.init n_dms (fun j -> Fmt.str "%s_d%d" name j) in
  Item.make ~name ~dms ~config:(config rng dms)
    ~initial:(Value.Int (Prng.int rng 100))

(* Random user script over the given items and raw objects. *)
let rec script rng ~params ~items ~raws ~depth ~label : Serial.User_txn.script
    =
  let n = 1 + Prng.int rng params.max_children in
  let children =
    List.init n (fun idx ->
        let pick = Prng.int rng (if depth > 0 then 4 else 3) in
        match pick with
        | 0 ->
            (* logical read *)
            let it : Item.t = Prng.choose rng items in
            Serial.User_txn.Access_child
              (Txn.Access
                 { obj = it.Item.name; kind = Txn.Read; data = Value.Nil; seq = idx })
        | 1 ->
            (* logical write of a fresh value *)
            let it : Item.t = Prng.choose rng items in
            Serial.User_txn.Access_child
              (Txn.Access
                 {
                   obj = it.Item.name;
                   kind = Txn.Write;
                   data = Value.Int (Prng.int rng 1_000_000);
                   seq = idx;
                 })
        | 2 -> (
            (* raw access when raw objects exist, else another read *)
            match raws with
            | [] ->
                let it : Item.t = Prng.choose rng items in
                Serial.User_txn.Access_child
                  (Txn.Access
                     { obj = it.Item.name; kind = Txn.Read; data = Value.Nil; seq = idx })
            | _ ->
                let obj = fst (Prng.choose rng raws) in
                let kind = if Prng.bool rng then Txn.Read else Txn.Write in
                let data =
                  match kind with
                  | Txn.Read -> Value.Nil
                  | Txn.Write -> Value.Int (Prng.int rng 1_000_000)
                in
                Serial.User_txn.Access_child (Txn.Access { obj; kind; data; seq = idx }))
        | _ ->
            let sub_label = Fmt.str "%s_u%d" label idx in
            Serial.User_txn.Sub
              ( sub_label,
                script rng ~params ~items ~raws ~depth:(depth - 1)
                  ~label:sub_label ))
  in
  {
    Serial.User_txn.children;
    ordered = Prng.bool rng;
    (* occasionally eager: the model permits committing without
       waiting for children, and the results must survive it *)
    eager = Prng.float rng < 0.2;
    returns = Serial.User_txn.return_all;
  }

(** [description rng] draws a complete random system description. *)
let description ?(params = default_params) rng : Description.t =
  let n_items = 1 + Prng.int rng params.max_items in
  let items = List.init n_items (fun i -> item rng ~params i) in
  let n_raws = Prng.int rng (params.max_raws + 1) in
  let raw_objects =
    List.init n_raws (fun i -> (Fmt.str "raw%d" i, Value.Int (Prng.int rng 100)))
  in
  let root_script =
    let top = 1 + Prng.int rng 3 in
    let children =
      List.init top (fun idx ->
          let label = Fmt.str "top%d" idx in
          Serial.User_txn.Sub
            ( label,
              script rng ~params ~items ~raws:raw_objects
                ~depth:params.max_depth ~label ))
    in
    {
      Serial.User_txn.children;
      ordered = Prng.bool rng;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  { Description.items; raw_objects; root_script }
