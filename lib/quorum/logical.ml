(** Logical access sequences, logical state, and current version
    number (Section 3.1 definitions), computed from schedules.

    These three definitions drive every invariant:
    - [access(x, b)]: the subsequence of CREATE and REQUEST_COMMIT
      operations for members of [tm(x)];
    - [logical-state(x, b)]: [value(T)] of the last write-TM
      REQUEST_COMMIT in [access(x, b)], or [i_x] if none — the value a
      logical read is expected to return;
    - [current-vn(x, b)]: the highest version number among the data
      of the last committed write access to each DM, or 0. *)

open Ioa

(* Is [t] a member of tm(x) for this item, and of which kind? *)
let tm_kind (item : Item.t) (t : Txn.t) : Txn.kind option =
  match (Txn.obj_of t, Txn.kind_of t) with
  | Some obj, Some k when String.equal obj item.Item.name -> Some k
  | _ -> None

let is_tm item t = tm_kind item t <> None

(* Is [t] a (write) access to one of this item's DMs? *)
let replica_access_dm (item : Item.t) (t : Txn.t) : string option =
  match Txn.obj_of t with
  | Some obj when List.mem obj item.Item.dms -> Some obj
  | _ -> None

(** [access_sequence item sched] is [access(x, b)]. *)
let access_sequence (item : Item.t) (sched : Schedule.t) : Schedule.t =
  Schedule.project
    (fun a ->
      match a with
      | Action.Create t | Action.Request_commit (t, _) -> is_tm item t
      | Action.Request_create _ | Action.Commit _ | Action.Abort _ -> false)
    sched

(** [logical_state item sched] is [logical-state(x, b)]. *)
let logical_state (item : Item.t) (sched : Schedule.t) : Value.t =
  List.fold_left
    (fun acc a ->
      match a with
      | Action.Request_commit (t, _) when tm_kind item t = Some Txn.Write -> (
          match Txn.data_of t with Some v -> v | None -> acc)
      | _ -> acc)
    item.Item.initial sched

(** [current_vn item sched] is [current-vn(x, b)]: fold the schedule
    tracking, per DM, the version number of the last committed write
    access; take the maximum (0 when no write has committed). *)
let current_vn (item : Item.t) (sched : Schedule.t) : int =
  let last =
    List.fold_left
      (fun acc a ->
        match a with
        | Action.Request_commit (t, _)
          when Txn.kind_of t = Some Txn.Write -> (
            match replica_access_dm item t with
            | Some dm -> (
                match Txn.data_of t with
                | Some (Value.Versioned (vn, _)) ->
                    (dm, vn) :: List.remove_assoc dm acc
                | _ -> acc)
            | None -> acc)
        | _ -> acc)
      [] sched
  in
  List.fold_left (fun m (_, vn) -> max m vn) 0 last

(** The (version, value) state of every DM of [item] after [sched]
    (recomputed from the schedule, initial = (0, i_x)). *)
let dm_states (item : Item.t) (sched : Schedule.t) :
    (string * (int * Value.t)) list =
  List.map
    (fun dm ->
      match
        Serial.Rw_object.data_after ~name:dm ~initial:(Item.dm_initial item)
          sched
      with
      | Value.Versioned (vn, v) -> (dm, (vn, v))
      | other -> (dm, (0, other)))
    item.Item.dms
