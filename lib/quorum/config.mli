(** Quorum configurations (paper Section 2.3, after Barbara &
    Garcia-Molina): a set of read-quorums and a set of write-quorums
    over DM names; legal when every read-quorum intersects every
    write-quorum.  Strictly generalizes Gifford's vote-based scheme;
    the classical strategies are constructors. *)

type t = Ioa.Value.config = {
  read_quorums : string list list;
  write_quorums : string list list;
}

val make : read_quorums:string list list -> write_quorums:string list list -> t
(** Sorts and dedupes each quorum. *)

val legal : t -> bool
(** Every read-quorum meets every write-quorum (and neither side is
    empty) — the sole constraint the correctness proof needs. *)

val members : t -> string list
(** Every DM name mentioned by some quorum. *)

val read_covered : t -> string list -> bool
(** Does the set contain some read-quorum?  The precondition test of
    the TMs' REQUEST_COMMIT / write-phase operations. *)

val write_covered : t -> string list -> bool

val rowa : string list -> t
(** Read-one / write-all. *)

val raow : string list -> t
(** Read-all / write-one. *)

val majority : string list -> t
(** All subsets of size ceil((n+1)/2), both sides. *)

val weighted :
  votes:(string * int) list -> read_threshold:int -> write_threshold:int -> t
(** Gifford's weighted voting: minimal vote-covering subsets.
    @raise Invalid_argument unless [read_threshold + write_threshold]
    exceeds the total votes. *)

val grid : rows:int -> cols:int -> string list -> t
(** Grid quorums (row-major): read = one full row; write = one full
    row plus one DM from every row.
    @raise Invalid_argument unless the DM count equals [rows * cols]. *)

val subsets_of_size : int -> 'a list -> 'a list list
val pp : t Fmt.t
val to_string : t -> string
val equal : t -> t -> bool
