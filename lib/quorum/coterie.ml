(** Coterie analysis (Barbara & Garcia-Molina, the source of the
    paper's generalized configurations).

    A {e coterie} over a universe U is an antichain of pairwise-
    intersecting subsets (quorums).  Coterie theory's central quality
    criterion is {e domination}: C1 dominates C2 when they differ and
    every quorum of C2 contains a quorum of C1 — then C1 is available
    whenever C2 is (and strictly more often), so dominated coteries
    are never worth deploying.  A coterie is {e non-dominated} (ND)
    iff every transversal (a set meeting all quorums) contains a
    quorum — checked here by enumeration (universes up to ~16).

    For the paper's read/write configurations the pairwise
    intersection is only required {e between} the read and write
    sides (a "bicoterie"); this module provides the corresponding
    legality, minimization, and domination comparisons, used by the
    tests and by the configuration-quality table. *)

type t = {
  universe : string list;
  quorums : int list;  (** bitmasks over [universe], an antichain *)
}

let full_mask universe = (1 lsl List.length universe) - 1

let mask_of universe quorum =
  List.fold_left
    (fun m d ->
      match List.find_index (String.equal d) universe with
      | Some i -> m lor (1 lsl i)
      | None -> invalid_arg (Fmt.str "Coterie: %s not in universe" d))
    0 quorum

let quorum_of universe mask =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) universe

let subset a b = a land lnot b = 0
let intersects a b = a land b <> 0

(** Drop non-minimal quorums (keep the antichain of minimal ones). *)
let minimize (masks : int list) : int list =
  let masks = List.sort_uniq Int.compare masks in
  List.filter
    (fun q -> not (List.exists (fun q' -> q' <> q && subset q' q) masks))
    masks

(** Build a coterie from explicit quorums (minimized).
    @raise Invalid_argument when two quorums fail to intersect (the
    coterie property). *)
let make ~universe ~quorums =
  let masks = minimize (List.map (mask_of universe) quorums) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (intersects a b) then
            invalid_arg "Coterie.make: quorums must pairwise intersect")
        masks)
    masks;
  { universe; quorums = masks }

(** The write side of a configuration as a coterie, when it is one
    (write-write intersection is {e not} required by the paper's
    algorithm, so this can fail for legal configurations — that is
    precisely the generalization). *)
let of_write_side (c : Config.t) : t option =
  let universe = Config.members c in
  match make ~universe ~quorums:c.Config.write_quorums with
  | coterie -> Some coterie
  | exception Invalid_argument _ -> None

(** [covers t mask]: does [mask] contain some quorum? *)
let covers t mask = List.exists (fun q -> subset q mask) t.quorums

(** [transversal t mask]: does [mask] intersect every quorum? *)
let transversal t mask = List.for_all (fun q -> intersects q mask) t.quorums

(** Non-domination: every transversal contains a quorum.  Exhaustive
    over subsets of the universe (|U| <= ~16). *)
let non_dominated t =
  let full = full_mask t.universe in
  let rec go m =
    if m > full then true
    else if transversal t m && not (covers t m) then false
    else go (m + 1)
  in
  go 0

(** A witness of domination: a transversal containing no quorum (the
    set one would add as a new quorum to dominate this coterie), if
    any. *)
let domination_witness t =
  let full = full_mask t.universe in
  let rec go m =
    if m > full then None
    else if transversal t m && not (covers t m) then
      Some (quorum_of t.universe m)
    else go (m + 1)
  in
  go 0

(** [dominates c1 c2]: distinct coteries over the same universe where
    every quorum of [c2] contains a quorum of [c1]. *)
let dominates c1 c2 =
  c1.quorums <> c2.quorums
  && List.for_all (fun q2 -> covers c1 q2) c2.quorums

(** {1 Read/write configurations (bicoteries)} *)

(** Minimize both sides of a configuration (availability and coverage
    predicates are unchanged; smaller representation). *)
let minimize_config (c : Config.t) : Config.t =
  let universe = Config.members c in
  let side qs =
    List.map (quorum_of universe) (minimize (List.map (mask_of universe) qs))
  in
  Config.make
    ~read_quorums:(side c.Config.read_quorums)
    ~write_quorums:(side c.Config.write_quorums)

(** [config_dominates c1 c2] (weak domination over the same universe):
    every read quorum of [c2] contains a read quorum of [c1] and every
    write quorum of [c2] contains a write quorum of [c1], with the
    configurations distinct — then [c1] can serve every operation [c2]
    can, on every liveness pattern, and strictly more. *)
let config_dominates (c1 : Config.t) (c2 : Config.t) =
  let u = List.sort_uniq String.compare (Config.members c1 @ Config.members c2) in
  let masks qs = List.map (mask_of u) qs in
  let covers_side side1 side2 =
    List.for_all
      (fun q2 -> List.exists (fun q1 -> subset q1 q2) (masks side1))
      (masks side2)
  in
  (not (Config.equal (minimize_config c1) (minimize_config c2)))
  && covers_side c1.Config.read_quorums c2.Config.read_quorums
  && covers_side c1.Config.write_quorums c2.Config.write_quorums

let pp ppf t =
  Fmt.pf ppf "coterie{%a}"
    Fmt.(list ~sep:(any " ") (box (list ~sep:(any ",") string)))
    (List.map (quorum_of t.universe) t.quorums)
