(** Descriptions of replicated nested-transaction systems: everything
    Section 3.1 parameterizes system B over — logical items,
    non-replicated objects, and the user transaction tree (scripts).
    {!System_b} and {!System_a} are built from the same description,
    which makes the Theorem 10 comparison meaningful. *)

open Ioa

type t = {
  items : Item.t list;
  raw_objects : (string * Value.t) list;
      (** non-replicated basic objects: (name, initial value) *)
  root_script : Serial.User_txn.script;
      (** the root's script; its children are the top-level
          ("classical") transactions *)
}

val item : t -> string -> Item.t option
val all_dm_names : t -> string list
val raw_names : t -> string list

(** How a transaction name is interpreted in system B. *)
type role =
  | User
  | Tm of Item.t * Txn.kind  (** a transaction manager for an item *)
  | Replica_access of Item.t  (** an access to a DM *)
  | Raw_access

val role_of : t -> Txn.t -> role option

val is_access_b : t -> Txn.t -> bool
(** Accesses of system B: replica accesses and raw accesses. *)

val is_access_a : t -> Txn.t -> bool
(** Accesses of system A: the TM names and raw accesses. *)

val is_replica_access : t -> Txn.t -> bool
(** Exactly what the Theorem 10 projection erases. *)

val validate : t -> (unit, string) result
(** Distinct names, pairwise-disjoint DM sets, disjoint namespaces,
    scripts referencing only known objects, legal configurations. *)

val user_txns : t -> Txn.t list
(** All user-transaction names (root included). *)

val tm_names : t -> (Txn.t * Item.t * Txn.kind) list
(** All logical-access (TM) names in the scripts, with their items. *)
