(** Coterie analysis (Barbara & Garcia-Molina): antichains of
    pairwise-intersecting quorums, domination, non-domination (the
    optimality criterion for quorum choices), and the weak-domination
    comparison for read/write configurations.  Exhaustive checks, for
    universes up to ~16. *)

type t = {
  universe : string list;
  quorums : int list;  (** bitmasks over [universe], an antichain *)
}

val mask_of : string list -> string list -> int
val quorum_of : string list -> int -> string list

val minimize : int list -> int list
(** The antichain of minimal quorums. *)

val make : universe:string list -> quorums:string list list -> t
(** @raise Invalid_argument when two quorums fail to intersect. *)

val of_write_side : Config.t -> t option
(** The write side as a coterie — [None] when write quorums do not
    pairwise intersect (legal for the paper's algorithm; that is the
    generalization). *)

val covers : t -> int -> bool
val transversal : t -> int -> bool

val non_dominated : t -> bool
(** Every transversal contains a quorum. *)

val domination_witness : t -> string list option
(** A transversal containing no quorum, if any — the set one would add
    to dominate this coterie. *)

val dominates : t -> t -> bool

val minimize_config : Config.t -> Config.t

val config_dominates : Config.t -> Config.t -> bool
(** Weak domination: [c1] can serve every operation [c2] can, on every
    liveness pattern, and they differ. *)

val pp : t Fmt.t
