(** Quorum configurations (Section 2.3).

    Following Barbara and Garcia-Molina, a configuration of a set [S]
    of DM names is a pair (r, w) of sets of quorums, each quorum a
    subset of [S].  A configuration is {e legal} when every
    read-quorum intersects every write-quorum.  This strictly
    generalizes Gifford's vote-based scheme: any vote assignment with
    read-threshold [r] and write-threshold [w] such that [r + w > v]
    induces a legal configuration whose quorums are the vote-covering
    subsets, and read-one/write-all, majority, and grid quorums are
    all special cases (constructors below).

    The type is shared with {!Ioa.Value.config} so configurations can
    travel inside values (reconfiguration reads return them). *)

type t = Ioa.Value.config = {
  read_quorums : string list list;
  write_quorums : string list list;
}

let sort_quorum q = List.sort_uniq String.compare q

let make ~read_quorums ~write_quorums =
  {
    read_quorums = List.map sort_quorum read_quorums;
    write_quorums = List.map sort_quorum write_quorums;
  }

let intersects q1 q2 = List.exists (fun d -> List.mem d q2) q1

(** [legal c]: every read-quorum has a non-empty intersection with
    every write-quorum — the sole constraint the correctness proof
    needs. *)
let legal c =
  c.read_quorums <> [] && c.write_quorums <> []
  && List.for_all
       (fun r -> List.for_all (fun w -> intersects r w) c.write_quorums)
       c.read_quorums

(** [members c]: every DM name mentioned by some quorum. *)
let members c =
  List.sort_uniq String.compare
    (List.concat (c.read_quorums @ c.write_quorums))

let subset q set = List.for_all (fun d -> List.mem d set) q

(** [read_covered c set]: does [set] contain some read-quorum?  This
    is the precondition test of the TMs' REQUEST_COMMIT /
    REQUEST_CREATE(write) operations. *)
let read_covered c set = List.exists (fun q -> subset q set) c.read_quorums

let write_covered c set = List.exists (fun q -> subset q set) c.write_quorums

(** {1 Standard constructors} *)

(** Read-one / write-all. *)
let rowa dms =
  make
    ~read_quorums:(List.map (fun d -> [ d ]) dms)
    ~write_quorums:[ dms ]

(** Read-all / write-one (legal; useful in tests and ablations). *)
let raow dms =
  make ~read_quorums:[ dms ]
    ~write_quorums:(List.map (fun d -> [ d ]) dms)

let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest

(** Majority quorums: all subsets of size ceil((n+1)/2) on both sides. *)
let majority dms =
  let n = List.length dms in
  let m = (n / 2) + 1 in
  let qs = subsets_of_size m dms in
  make ~read_quorums:qs ~write_quorums:qs

(** Gifford's weighted voting: DMs carry votes; a read-quorum is any
    minimal subset with at least [read_threshold] votes, similarly for
    writes.  Legality requires [read_threshold + write_threshold >
    total votes] (checked). *)
let weighted ~votes ~read_threshold ~write_threshold =
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 votes in
  if read_threshold + write_threshold <= total then
    invalid_arg
      (Fmt.str "Config.weighted: r(%d) + w(%d) must exceed total votes (%d)"
         read_threshold write_threshold total)
  else
    let dms = List.map fst votes in
    let rec all_subsets = function
      | [] -> [ [] ]
      | x :: rest ->
          let s = all_subsets rest in
          List.map (fun t -> x :: t) s @ s
    in
    let vote_sum q =
      List.fold_left (fun acc d -> acc + List.assoc d votes) 0 q
    in
    let covering threshold =
      let subs =
        List.filter (fun q -> vote_sum q >= threshold) (all_subsets dms)
      in
      (* keep only the minimal covering subsets *)
      List.filter
        (fun q ->
          not
            (List.exists
               (fun q' ->
                 List.length q' < List.length q && subset q' q
                 && vote_sum q' >= threshold)
               subs))
        subs
    in
    make ~read_quorums:(covering read_threshold)
      ~write_quorums:(covering write_threshold)

(** Grid quorums over a [rows] x [cols] arrangement of the given DMs
    (row-major): a read-quorum is one full row; a write-quorum is one
    full row plus one DM from every row ("row cover").  Legal because
    a write-quorum meets every row. *)
let grid ~rows ~cols dms =
  if List.length dms <> rows * cols then
    invalid_arg "Config.grid: |dms| must equal rows * cols";
  let arr = Array.of_list dms in
  let row i = List.init cols (fun j -> arr.((i * cols) + j)) in
  let read_quorums = List.init rows row in
  (* all ways to pick one element from every row *)
  let rec covers i =
    if i >= rows then [ [] ]
    else
      let rest = covers (i + 1) in
      List.concat_map
        (fun d -> List.map (fun c -> d :: c) rest)
        (row i)
  in
  let write_quorums =
    List.concat_map
      (fun r -> List.map (fun c -> sort_quorum (r @ c)) (covers 0))
      read_quorums
  in
  make ~read_quorums ~write_quorums

let pp = Ioa.Value.pp_config
let to_string c = Fmt.str "%a" pp c
let equal = Ioa.Value.config_equal
