(** Exhaustive exploration of a system's schedule space.

    The paper's results are universally quantified over schedules; the
    randomized harness samples that space, while this module
    {e enumerates} it for small instances: depth-first over every
    enabled output at every state, threading an incremental checker
    state along each branch (prefixes are shared, so each operation is
    checked exactly once).  When the walk completes within the budget,
    the result is an exhaustive proof for that instance — {e every}
    schedule of the composed system satisfies the invariants.

    Costs are exponential; the unit tests run instances small enough
    to finish quickly (one or two DMs, single access attempts,
    optionally without scheduler aborts — abort branching is the
    dominant factor). *)

open Ioa

type stats = {
  schedules : int;  (** maximal schedules reached *)
  prefixes : int;  (** prefixes visited (= operations checked) *)
  exhausted : bool;  (** false when the budget stopped the walk *)
  violation : (Schedule.t * string) option;  (** first failure found *)
}

(** A prefix-incremental checker. *)
type 'st checker = {
  init : 'st;
  step : 'st -> Action.t -> ('st, string) result;
}

exception Stop

(** [run ~budget ~filter sys checker] walks every schedule of [sys]
    whose operations pass [filter], stepping the checker along each
    branch.  Stops at the first violation or after [budget] visited
    prefixes. *)
let run ?(budget = 1_000_000) ?(filter = fun _ -> true) (sys : System.t)
    (checker : 'st checker) : stats =
  let prefixes = ref 0 and schedules = ref 0 in
  let violation = ref None in
  let rec dfs sys st sched =
    let actions = List.filter filter (System.enabled sys) in
    match actions with
    | [] -> incr schedules
    | actions ->
        List.iter
          (fun a ->
            incr prefixes;
            if !prefixes > budget then raise Stop;
            match System.apply sys a with
            | Error e ->
                violation := Some (List.rev (a :: sched), "apply failed: " ^ e);
                raise Stop
            | Ok sys' -> (
                match checker.step st a with
                | Error e ->
                    violation := Some (List.rev (a :: sched), e);
                    raise Stop
                | Ok st' -> dfs sys' st' (a :: sched)))
          actions
  in
  let completed =
    try
      dfs sys checker.init [];
      true
    with Stop -> false
  in
  {
    schedules = !schedules;
    prefixes = !prefixes;
    exhausted = completed && !violation = None;
    violation = !violation;
  }

(** Filter dropping the serial scheduler's spontaneous ABORT
    operations — shrinks the space drastically.  Only restricts
    nondeterminism, so exhaustiveness is relative to abort-free
    schedules; abort paths are covered by a second (smaller or
    budgeted) walk and by the randomized harness. *)
let no_aborts = function Action.Abort _ -> false | _ -> true

(** Exhaustively validate well-formedness (Lemma 5) and the
    replication invariants (Lemmas 6-8) on every (optionally
    abort-free) schedule of system B for [d]. *)
let check_description ?(budget = 1_000_000) ?(include_aborts = false)
    ?(max_attempts = 1) (d : Description.t) : stats =
  let filter = if include_aborts then fun _ -> true else no_aborts in
  let ( let* ) = Result.bind in
  let checker =
    {
      init =
        ( Wellformed.init ~is_access:(Description.is_access_b d),
          Invariants.init d );
      step =
        (fun (wf, inv) a ->
          let* wf = Wellformed.step wf a in
          let* inv = Invariants.step inv a in
          Ok (wf, inv));
    }
  in
  run ~budget ~filter (System_b.build ~max_attempts d) checker
