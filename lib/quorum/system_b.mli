(** The replicated serial system B (paper Section 3.1): serial
    scheduler + user transactions + one TM per scripted logical access
    + one DM per replica + the non-replicated basic objects. *)

val build : ?max_attempts:int -> Description.t -> Ioa.System.t
(** @raise Invalid_argument on an invalid description. *)

val check_wellformed : Description.t -> Ioa.Schedule.t -> (unit, string) result
(** Lemma 5's instantiation: well-formedness of B's schedules. *)
