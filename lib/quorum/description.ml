(** Descriptions of replicated nested-transaction systems.

    A description fixes everything Section 3.1 parameterizes system B
    over: the logical items [I] (with their DM sets and legal
    configurations), any non-replicated basic objects, and the user
    transaction tree (as scripts).  {!System_b} and {!System_a} build
    the replicated and non-replicated serial systems from the same
    description, which is what makes the Theorem 10 comparison
    meaningful: system B is an extension of system A with the same
    user transactions. *)

open Ioa

type t = {
  items : Item.t list;
  raw_objects : (string * Value.t) list;
      (** non-replicated basic objects: (name, initial value) *)
  root_script : Serial.User_txn.script;
      (** the root transaction's script; its children are the
          top-level ("classical") transactions *)
}

let item t name =
  List.find_opt (fun i -> String.equal i.Item.name name) t.items

let all_dm_names t = List.concat_map (fun i -> i.Item.dms) t.items
let raw_names t = List.map fst t.raw_objects

(** How a transaction name is interpreted in system B. *)
type role =
  | User  (** a user transaction (including the root) *)
  | Tm of Item.t * Txn.kind  (** a transaction manager for an item *)
  | Replica_access of Item.t  (** an access to a DM *)
  | Raw_access  (** an access to a non-replicated basic object *)

let role_of t (txn : Txn.t) : role option =
  match Txn.obj_of txn with
  | None -> Some User
  | Some obj -> (
      match item t obj with
      | Some i -> (
          match Txn.kind_of txn with
          | Some k -> Some (Tm (i, k))
          | None -> None)
      | None -> (
          match List.find_opt (fun i -> List.mem obj i.Item.dms) t.items with
          | Some owner -> Some (Replica_access owner)
          | None ->
              if List.mem obj (raw_names t) then Some Raw_access else None))

(** Accesses of system B: replica accesses and raw-object accesses. *)
let is_access_b t txn =
  match role_of t txn with
  | Some (Replica_access _) | Some Raw_access -> true
  | Some User | Some (Tm _) | None -> false

(** Accesses of system A: the TM names become accesses to the single
    object per item; raw accesses are unchanged. *)
let is_access_a t txn =
  match role_of t txn with
  | Some (Tm _) | Some Raw_access -> true
  | Some User | Some (Replica_access _) | None -> false

(** Is [txn] an operationally relevant replica access (used by the
    Theorem 10 projection, which erases exactly these)? *)
let is_replica_access t txn =
  match role_of t txn with
  | Some (Replica_access _) -> true
  | Some User | Some (Tm _) | Some Raw_access | None -> false

let fail fmt = Fmt.kstr (fun s -> Error s) fmt

(** Validate the description: distinct item names; pairwise-disjoint
    DM sets (required: dm(x) ∩ dm(y) = {} for x <> y); DM, item and
    raw-object namespaces disjoint; every [Access_child] in the
    scripts resolves to an item or a raw object; every item
    configuration is legal over its DMs. *)
let validate (t : t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let names = List.map (fun i -> i.Item.name) t.items in
  let* () =
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then fail "duplicate item names"
    else Ok ()
  in
  let dms = all_dm_names t in
  let* () =
    if List.length (List.sort_uniq String.compare dms) <> List.length dms then
      fail "overlapping dm(x) sets"
    else Ok ()
  in
  let raw = raw_names t in
  let* () =
    let universe = names @ dms @ raw in
    if
      List.length (List.sort_uniq String.compare universe)
      <> List.length universe
    then fail "item, DM and raw-object namespaces overlap"
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        if Config.legal i.Item.config then Ok ()
        else fail "item %s: illegal configuration" i.Item.name)
      (Ok ()) t.items
  in
  let accesses =
    Serial.User_txn.access_children ~self:Txn.root t.root_script
  in
  List.fold_left
    (fun acc a ->
      let* () = acc in
      match Txn.obj_of a with
      | Some obj when List.mem obj names || List.mem obj raw -> Ok ()
      | Some obj -> fail "script access %a names unknown object %s" Txn.pp a obj
      | None -> fail "script access %a carries no object" Txn.pp a)
    (Ok ()) accesses

(** All user-transaction names in the description (root included). *)
let user_txns (t : t) : Txn.t list =
  let rec go self (s : Serial.User_txn.script) =
    self
    :: List.concat_map
         (function
           | Serial.User_txn.Access_child _ -> []
           | Serial.User_txn.Sub (name, sub) ->
               go (Txn.child self (Txn.Seg name)) sub)
         s.Serial.User_txn.children
  in
  go Txn.root t.root_script

(** All logical-access (TM) names appearing in the scripts, with the
    item each belongs to. *)
let tm_names (t : t) : (Txn.t * Item.t * Txn.kind) list =
  Serial.User_txn.access_children ~self:Txn.root t.root_script
  |> List.filter_map (fun a ->
         match (Txn.obj_of a, Txn.kind_of a) with
         | Some obj, Some k -> (
             match item t obj with
             | Some i -> Some (a, i, k)
             | None -> None)
         | _ -> None)
