(** Mechanized checkers for the paper's invariants (Lemmas 6, 7, 8).

    Each checker folds once over a schedule of system B, maintaining
    the Section 3.1 quantities incrementally, and validates the lemma
    statement after {e every} prefix (the lemmas are stated "after b"
    for schedules b, and Lemma 8 for prefixes whose access sequence
    has even length).  A successful run of thousands of randomized
    executions through these checkers is the executable counterpart of
    the paper's inductive proofs.

    - Lemma 6: [access(x, b)] alternates CREATE / REQUEST_COMMIT
      operations of TMs, starting with a CREATE, with each
      REQUEST_COMMIT for [T] immediately preceded by CREATE(T).
    - Lemma 7: the highest version number among the DM states equals
      [current-vn(x, b)].
    - Lemma 8.1a: some write-quorum has every DM at version
      [current-vn(x, b)] (checked at even access-sequence lengths).
    - Lemma 8.1b: every DM at version [current-vn(x, b)] holds
      [logical-state(x, b)] (idem).
    - Lemma 8.2: every read-TM REQUEST_COMMIT returns
      [logical-state(x, b)]. *)

open Ioa

type item_track = {
  item : Item.t;
  dm_state : (string * (int * Value.t)) list;  (** reconstructed DM states *)
  last_write_vn : (string * int) list;  (** last committed write per DM *)
  access_len : int;
  pending_tm : Txn.t option;  (** TM created, REQUEST_COMMIT pending *)
  logical : Value.t;
}

let init_track (item : Item.t) =
  {
    item;
    dm_state = List.map (fun d -> (d, (0, item.Item.initial))) item.Item.dms;
    last_write_vn = [];
    access_len = 0;
    pending_tm = None;
    logical = item.Item.initial;
  }

let current_vn tr =
  List.fold_left (fun m (_, vn) -> max m vn) 0 tr.last_write_vn

let fail fmt = Fmt.kstr (fun s -> Error s) fmt
let ( let* ) = Result.bind

(* Lemma 7 after any prefix. *)
let check_lemma7 tr =
  let cv = current_vn tr in
  let hi = List.fold_left (fun m (_, (vn, _)) -> max m vn) 0 tr.dm_state in
  if hi = cv then Ok ()
  else
    fail "Lemma 7 violated for %s: max DM vn %d <> current-vn %d"
      tr.item.Item.name hi cv

(* Lemma 8 part 1 at even access-sequence length. *)
let check_lemma8_1 tr =
  let cv = current_vn tr in
  let at_cv dm =
    match List.assoc_opt dm tr.dm_state with
    | Some (vn, _) -> vn = cv
    | None -> false
  in
  let* () =
    if
      List.exists
        (fun q -> List.for_all at_cv q)
        tr.item.Item.config.Config.write_quorums
    then Ok ()
    else
      fail "Lemma 8.1a violated for %s: no write-quorum at current-vn %d"
        tr.item.Item.name cv
  in
  List.fold_left
    (fun acc (dm, (vn, v)) ->
      let* () = acc in
      if vn = cv && not (Value.equal v tr.logical) then
        fail
          "Lemma 8.1b violated for %s: DM %s at current-vn %d holds %a, \
           logical-state is %a"
          tr.item.Item.name dm cv Value.pp v Value.pp tr.logical
      else Ok ())
    (Ok ()) tr.dm_state

(* One step of the per-item tracker; validates Lemma 6 transitions and
   Lemma 8.2 on read-TM commits. *)
let step_track tr (a : Action.t) : (item_track, string) result =
  match a with
  | Action.Create t when Logical.is_tm tr.item t -> (
      match tr.pending_tm with
      | Some p ->
          fail "Lemma 6 violated for %s: CREATE(%a) while %a pending"
            tr.item.Item.name Txn.pp t Txn.pp p
      | None ->
          Ok { tr with pending_tm = Some t; access_len = tr.access_len + 1 })
  | Action.Request_commit (t, v) when Logical.is_tm tr.item t -> (
      match tr.pending_tm with
      | Some p when Txn.equal p t ->
          let tr = { tr with pending_tm = None; access_len = tr.access_len + 1 } in
          (match Logical.tm_kind tr.item t with
          | Some Txn.Write ->
              let logical =
                match Txn.data_of t with Some d -> d | None -> tr.logical
              in
              Ok { tr with logical }
          | Some Txn.Read ->
              (* Lemma 8.2: the returned value is the logical state
                 (which this read did not change). *)
              if Value.equal v tr.logical then Ok tr
              else
                fail
                  "Lemma 8.2 violated for %s: read-TM %a returned %a, \
                   logical-state is %a"
                  tr.item.Item.name Txn.pp t Value.pp v Value.pp tr.logical
          | None -> Ok tr)
      | Some p ->
          fail "Lemma 6 violated for %s: REQUEST_COMMIT(%a) but %a pending"
            tr.item.Item.name Txn.pp t Txn.pp p
      | None ->
          fail "Lemma 6 violated for %s: REQUEST_COMMIT(%a) with no CREATE"
            tr.item.Item.name Txn.pp t)
  | Action.Request_commit (t, _) when Txn.kind_of t = Some Txn.Write -> (
      (* a committed write access to one of our DMs updates its state *)
      match Logical.replica_access_dm tr.item t with
      | Some dm -> (
          match Txn.data_of t with
          | Some (Value.Versioned (vn, v)) ->
              Ok
                {
                  tr with
                  dm_state = (dm, (vn, v)) :: List.remove_assoc dm tr.dm_state;
                  last_write_vn =
                    (dm, vn) :: List.remove_assoc dm tr.last_write_vn;
                }
          | Some _ | None ->
              fail "write access %a to DM %s carries no versioned data"
                Txn.pp t dm)
      | None -> Ok tr)
  | _ -> Ok tr

(** Incremental interface: a checker state that can be stepped one
    operation at a time — used by both the linear {!check} below and
    the exhaustive walker in {!Explore}, which shares prefixes. *)
type state = item_track list

let init (d : Description.t) : state =
  List.map init_track d.Description.items

let step (trs : state) (a : Action.t) : (state, string) result =
  List.fold_left
    (fun acc tr ->
      let* trs = acc in
      let* tr = step_track tr a in
      let* () = check_lemma7 tr in
      let* () = if tr.access_len mod 2 = 0 then check_lemma8_1 tr else Ok () in
      Ok (tr :: trs))
    (Ok []) trs
  |> Result.map List.rev

(** [check d sched] folds [sched] once, validating Lemmas 6, 7 and 8
    after every prefix (8.1 at even access-sequence lengths, 8.2 at
    read-TM commits). *)
let check (d : Description.t) (sched : Schedule.t) : (unit, string) result =
  let rec go trs i = function
    | [] -> Ok ()
    | a :: rest -> (
        match step trs a with
        | Ok trs -> go trs (i + 1) rest
        | Error e -> Error (Fmt.str "after step %d (%a): %s" i Action.pp a e))
  in
  go (init d) 0 sched

(** Final logical state of each item according to the tracker — used
    by tests to cross-check {!Logical.logical_state}. *)
let final_logical_states (d : Description.t) (sched : Schedule.t) :
    (string * Value.t) list =
  List.map
    (fun (i : Item.t) -> (i.Item.name, Logical.logical_state i sched))
    d.Description.items
