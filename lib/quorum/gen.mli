(** Random generation of system descriptions: random items with random
    legal configurations (all constructor families plus arbitrary
    legal ones), random non-replicated objects, and random nested user
    scripts — the sample space of the property tests. *)

type params = {
  max_items : int;
  max_dms : int;
  max_raws : int;
  max_depth : int;
  max_children : int;
}

val default_params : params

val config : Qc_util.Prng.t -> string list -> Config.t
(** A random legal configuration over the given DMs. *)

val item : Qc_util.Prng.t -> params:params -> int -> Item.t

val script :
  Qc_util.Prng.t ->
  params:params ->
  items:Item.t list ->
  raws:(string * Ioa.Value.t) list ->
  depth:int ->
  label:string ->
  Serial.User_txn.script

val description : ?params:params -> Qc_util.Prng.t -> Description.t
(** A complete random system description. *)
