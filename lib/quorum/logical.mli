(** The Section 3.1 definitions, computed from schedules:
    [access(x,b)], [logical-state(x,b)] and [current-vn(x,b)]. *)

open Ioa

val tm_kind : Item.t -> Txn.t -> Txn.kind option
(** Membership (and kind) in [tm(x)] for this item. *)

val is_tm : Item.t -> Txn.t -> bool

val replica_access_dm : Item.t -> Txn.t -> string option
(** The DM accessed, when the name is an access to one of this item's
    DMs. *)

val access_sequence : Item.t -> Schedule.t -> Schedule.t
(** [access(x, b)]: the CREATE and REQUEST_COMMIT operations of
    members of [tm(x)]. *)

val logical_state : Item.t -> Schedule.t -> Value.t
(** [logical-state(x, b)]: the value of the last write-TM
    REQUEST_COMMIT, or [i_x]. *)

val current_vn : Item.t -> Schedule.t -> int
(** [current-vn(x, b)]: the maximum version among the last committed
    write access of each DM, or 0. *)

val dm_states : Item.t -> Schedule.t -> (string * (int * Value.t)) list
(** Every DM's (version, value) after the schedule, reconstructed. *)
