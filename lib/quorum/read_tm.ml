(** Read transaction managers (Section 3.1), transcribed from the
    paper's automaton definition.

    A read-TM [T] for logical item [x] performs a logical read: it
    invokes read accesses to the DMs for [x], always keeping the data
    with the highest version number seen so far, and once COMMITs have
    arrived from some read-quorum of DMs it may request to commit,
    returning the kept value.

    State components (paper names): [awake] (boolean), [data] (an
    element of [D_x = N x V_x]), [requested] (a subset of [acc(x)]),
    [read] (a subset of [dm(x)]).

    The paper's automaton is maximally nondeterministic — it may keep
    invoking accesses to arbitrary DMs forever.  Executable runs bound
    the number of attempts per DM ([max_attempts]); this only
    restricts nondeterminism, so every execution produced is an
    execution of the paper's automaton (cf. the paper's own remark
    that "all of our results apply even if such heuristics are
    added"). *)

open Ioa

type state = {
  self : Txn.t;
  item : string;
  dms : string list;
  config : Config.t;
  max_attempts : int;
  awake : bool;
  data_vn : int;
  data_value : Value.t;
  requested : Txn.Set.t;  (** read accesses whose creation was requested *)
  read : string list;  (** DMs from which a COMMIT has been received *)
}

(* The name of this TM's [seq]-th read access to DM [d]. *)
let access_name st d seq =
  Txn.child st.self (Txn.Access { obj = d; kind = Txn.Read; data = Value.Nil; seq })

let attempts_at st d =
  Txn.Set.fold
    (fun t acc ->
      match Txn.obj_of t with
      | Some o when String.equal o d -> acc + 1
      | _ -> acc)
    st.requested 0

(* Fresh (not yet requested) access names this TM may still invoke. *)
let fresh_accesses st =
  List.filter_map
    (fun d ->
      let n = attempts_at st d in
      if n < st.max_attempts then Some (access_name st d n) else None)
    st.dms

let is_child_access st t =
  (not (Txn.is_root t))
  && Txn.equal (Txn.parent t) st.self
  && List.exists
       (fun d -> Txn.obj_of t = Some d)
       st.dms

let can_request_commit st = st.awake && Config.read_covered st.config st.read

let transition (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when Txn.equal t st.self -> Some { st with awake = true }
  | Action.Request_create t ->
      if
        st.awake
        && is_child_access st t
        && Txn.kind_of t = Some Txn.Read
        && not (Txn.Set.mem t st.requested)
      then Some { st with requested = Txn.Set.add t st.requested }
      else None
  | Action.Commit (t, d) when is_child_access st t -> (
      (* COMMIT(T', d): add O(T') to read; keep the highest-versioned
         data seen. *)
      let dm = Option.get (Txn.obj_of t) in
      let read =
        if List.mem dm st.read then st.read else dm :: st.read
      in
      match d with
      | Value.Versioned (vn, v) when vn > st.data_vn ->
          Some { st with read; data_vn = vn; data_value = v }
      | Value.Versioned _ -> Some { st with read }
      | _ -> Some { st with read })
  | Action.Abort t when is_child_access st t ->
      (* ABORT(T') has no postconditions: the TM simply never hears
         from that access. *)
      Some st
  | Action.Request_commit (t, v) when Txn.equal t st.self ->
      if can_request_commit st && Value.equal v st.data_value then
        Some { st with awake = false }
      else None
  | Action.Create _ | Action.Commit _ | Action.Abort _
  | Action.Request_commit _ ->
      None

let enabled (st : state) : Action.t list =
  if not st.awake then []
  else
    let reqs =
      (* heuristic: stop invoking new accesses once a read-quorum has
         answered (a restriction of nondeterminism only) *)
      if Config.read_covered st.config st.read then []
      else List.map (fun t -> Action.Request_create t) (fresh_accesses st)
    in
    let commit =
      if can_request_commit st then
        [ Action.Request_commit (st.self, st.data_value) ]
      else []
    in
    reqs @ commit

(** [make ~self ~item ()] builds the read-TM automaton named [self]
    for logical item [item]. *)
let make ~(self : Txn.t) ~(item : Item.t) ?(max_attempts = 3) () :
    Component.t =
  let state =
    {
      self;
      item = item.Item.name;
      dms = item.Item.dms;
      config = item.Item.config;
      max_attempts;
      awake = false;
      data_vn = 0;
      data_value = item.Item.initial;
      requested = Txn.Set.empty;
      read = [];
    }
  in
  Automaton.make
    ~name:(Fmt.str "read-tm:%s" (Txn.to_string self))
    ~is_input:(fun a ->
      match a with
      | Action.Create t -> Txn.equal t self
      | Action.Commit (t, _) | Action.Abort t -> is_child_access state t
      | Action.Request_create _ | Action.Request_commit _ -> false)
    ~is_output:(fun a ->
      match a with
      | Action.Request_create t -> is_child_access state t
      | Action.Request_commit (t, _) -> Txn.equal t self
      | Action.Create _ | Action.Commit _ | Action.Abort _ -> false)
    ~state ~transition ~enabled
    ~pp:(fun st ->
      Fmt.str "read-tm %a: awake=%b vn=%d read={%a}" Txn.pp st.self st.awake
        st.data_vn
        Fmt.(list ~sep:(any ",") string)
        st.read)
    ()
