(** Logical data items (Section 2.3 / 3.1).

    A logical data item [x] is a variable with a domain, an initial
    value [i_x], a set [dm(x)] of data-manager names holding its
    replicas, and a legal configuration [config(x)] over [dm(x)].
    Distinct items must have disjoint DM sets (enforced by
    {!Description}). *)

type t = {
  name : string;  (** the logical item name [x] *)
  dms : string list;  (** [dm(x)]: names of the replicas *)
  config : Config.t;  (** [config(x)], required legal over [dms] *)
  initial : Ioa.Value.t;  (** [i_x] *)
}

let make ~name ~dms ~config ~initial =
  if not (Config.legal config) then
    invalid_arg (Fmt.str "Item.make %s: configuration is not legal" name);
  let mentioned = Config.members config in
  if not (List.for_all (fun d -> List.mem d dms) mentioned) then
    invalid_arg
      (Fmt.str "Item.make %s: configuration mentions DMs outside dm(x)" name);
  { name; dms; config; initial }

(** The initial state of each DM for this item: version number 0 and
    the item's initial value (Section 3.1). *)
let dm_initial t = Ioa.Value.Versioned (0, t.initial)

let pp ppf t =
  Fmt.pf ppf "item %s: dms=[%a] %a init=%a" t.name
    Fmt.(list ~sep:(any ",") string)
    t.dms Config.pp t.config Ioa.Value.pp t.initial
