(** Analytic load / latency / availability model over quorum systems,
    after "Read-Write Quorum Systems Made Practical" (PAPERS.md).

    A system is scored against an observed workload (read fraction),
    an assumed per-replica alive probability, and a per-replica
    latency estimate (typically a [Ewma] fed by live RPC replies):

    - {b peak load} — the classic load of a quorum system: assuming
      clients pick uniformly among the {e smallest} minimal quorums
      (which is what [Store.Client]'s random targeting does), the
      expected fraction of ops that touch each replica; the maximum
      over replicas bounds attainable throughput.
    - {b expected latency} — mean over the smallest minimal quorums of
      the slowest member's latency estimate; writes pay a read-side
      version query plus a write-side install.
    - {b availability} — probability that some read (resp. write)
      quorum is fully alive under independent replica failures.

    Everything is exhaustive over the [2^n] masks — systems here are
    small (n ≤ 12 or so), exactly like [Store.Strategy].  The module
    deliberately mirrors a few of [Store.Strategy]'s bitmask helpers
    rather than depending on it: [tune] sits below [store] so the
    store's client can consume [Ewma]/[Steer] without a cycle. *)

type system = {
  name : string;
  n : int;  (** replica count; replica [i] is bit [i] *)
  read_ok : int -> bool;  (** does this mask contain a read quorum? *)
  write_ok : int -> bool;  (** does this mask contain a write quorum? *)
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let full n = (1 lsl n) - 1

let legal s =
  let f = full s.n in
  let bad = ref false in
  for r = 0 to f do
    if s.read_ok r && s.write_ok (f land lnot r) then bad := true
  done;
  not !bad

let minimal_quorums ok n =
  let all = ref [] in
  for m = full n downto 1 do
    if ok m then all := m :: !all
  done;
  let masks = !all in
  List.filter
    (fun q ->
      not (List.exists (fun q' -> q' <> q && q' land lnot q = 0) masks))
    masks

let minimal_read_quorums s = minimal_quorums s.read_ok s.n
let minimal_write_quorums s = minimal_quorums s.write_ok s.n

let smallest masks =
  let card =
    List.fold_left (fun acc q -> min acc (popcount q)) max_int masks
  in
  List.filter (fun q -> popcount q = card) masks

let cross_legal ~reads ~writes =
  List.for_all (fun r -> List.for_all (fun w -> r land w <> 0) writes) reads

let availability s ~p =
  if Float.compare p 0.0 < 0 || Float.compare p 1.0 > 0 then
    invalid_arg "Model.availability: p must be in [0, 1]";
  let read = ref 0.0 and write = ref 0.0 in
  for m = 0 to full s.n do
    let prob = ref 1.0 in
    for i = 0 to s.n - 1 do
      prob := !prob *. (if m land (1 lsl i) <> 0 then p else 1.0 -. p)
    done;
    if s.read_ok m then read := !read +. !prob;
    if s.write_ok m then write := !write +. !prob
  done;
  (!read, !write)

(* Per-replica probability of being touched by a uniform pick among
   [masks].  Empty mask lists (an always-false side) yield zeros. *)
let membership ~n masks =
  let k = List.length masks in
  Array.init n (fun i ->
      if k = 0 then 0.0
      else
        let c =
          List.fold_left
            (fun acc q -> if q land (1 lsl i) <> 0 then acc + 1 else acc)
            0 masks
        in
        float_of_int c /. float_of_int k)

(* Mean over [masks] of the slowest member under [lat]. *)
let expected_max ~n ~lat masks =
  match masks with
  | [] -> infinity
  | _ ->
      let total =
        List.fold_left
          (fun acc q ->
            let worst = ref neg_infinity in
            for i = 0 to n - 1 do
              if q land (1 lsl i) <> 0 then worst := Float.max !worst (lat i)
            done;
            acc +. !worst)
          0.0 masks
      in
      total /. float_of_int (List.length masks)

type score = {
  peak_load : float;
  read_latency : float;
  write_latency : float;
  op_latency : float;
      (** mix-weighted: [f * read + (1 - f) * (read + write)] — a
          write pays the version query before the install *)
  read_availability : float;
  write_availability : float;
}

let score s ~read_fraction ~p_alive ~lat =
  if Float.compare read_fraction 0.0 < 0 || Float.compare read_fraction 1.0 > 0
  then invalid_arg "Model.score: read_fraction must be in [0, 1]";
  let f = read_fraction in
  let reads = smallest (minimal_read_quorums s)
  and writes = smallest (minimal_write_quorums s) in
  let rmem = membership ~n:s.n reads and wmem = membership ~n:s.n writes in
  let peak = ref 0.0 in
  for i = 0 to s.n - 1 do
    (* reads touch a read quorum; writes touch a read quorum (version
       query) and a write quorum (install) *)
    let li = (f *. rmem.(i)) +. ((1.0 -. f) *. (rmem.(i) +. wmem.(i))) in
    if Float.compare li !peak > 0 then peak := li
  done;
  let rl = expected_max ~n:s.n ~lat reads
  and wl = expected_max ~n:s.n ~lat writes in
  let ra, wa = availability s ~p:p_alive in
  {
    peak_load = !peak;
    read_latency = rl;
    write_latency = wl;
    op_latency = (f *. rl) +. ((1.0 -. f) *. (rl +. wl));
    read_availability = ra;
    write_availability = wa;
  }

type config = {
  w_load : float;
  w_latency : float;
  min_read_availability : float;
  min_write_availability : float;
}

let default_config =
  {
    w_load = 1.0;
    w_latency = 0.1;
    min_read_availability = 0.99;
    min_write_availability = 0.98;
  }

let admissible config sc =
  Float.compare sc.read_availability config.min_read_availability >= 0
  && Float.compare sc.write_availability config.min_write_availability >= 0

let objective config sc =
  (config.w_load *. sc.peak_load) +. (config.w_latency *. sc.op_latency)

let choose ?(config = default_config) ~read_fraction ~p_alive ~lat systems =
  let best = ref None in
  List.iteri
    (fun idx s ->
      if legal s then begin
        let sc = score s ~read_fraction ~p_alive ~lat in
        if admissible config sc then begin
          let obj = objective config sc in
          match !best with
          | Some (_, _, b) when Float.compare obj b >= 0 -> ()
          | _ -> best := Some (idx, sc, obj)
        end
      end)
    systems;
  match !best with None -> None | Some (idx, sc, _) -> Some (idx, sc)

let pp_score ppf sc =
  Fmt.pf ppf "load=%.3f lat(r/w/op)=%.2f/%.2f/%.2f avail(r/w)=%.4f/%.4f"
    sc.peak_load sc.read_latency sc.write_latency sc.op_latency
    sc.read_availability sc.write_availability
