(** Per-replica exponentially weighted moving averages — the online
    latency tracker behind queue-aware read steering.  Deterministic:
    state depends only on the observation sequence. *)

type t

val create : n:int -> ?alpha:float -> ?init:float -> unit -> t
(** A tracker over [n] indices.  [alpha] (default 0.2) is the blend
    weight of each new observation; [init] (default 0) is reported for
    indices never observed.  The first observation for an index seeds
    its average directly.
    @raise Invalid_argument unless [n >= 1] and [alpha] in (0, 1]. *)

val n : t -> int
val alpha : t -> float

val observe : t -> int -> float -> unit
(** Blend one observation into index [i]'s average.
    @raise Invalid_argument on an out-of-range index. *)

val value : t -> int -> float
(** The current average ([init] when never observed). *)

val known : t -> int -> bool
(** Has this index been observed at least once? *)

val pp : t Fmt.t
