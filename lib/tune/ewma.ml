(** Per-replica exponentially weighted moving averages — the online
    latency tracker behind queue-aware read steering and the
    optimizer's expected-latency model.

    The first observation for an index seeds its average directly
    (rather than blending with the init value), so a tracker warms up
    in one round trip per replica; until then [value] returns [init],
    which callers choose so that unobserved replicas neither attract
    nor repel the steering cost. *)

type t = {
  alpha : float;  (** blend weight of each new observation, in (0, 1] *)
  init : float;  (** reported for indices never observed *)
  values : float array;
  seen : bool array;
}

let create ~n ?(alpha = 0.2) ?(init = 0.0) () =
  if n < 1 then invalid_arg "Ewma.create: n must be >= 1";
  if
    not
      (Float.is_finite alpha
      && Float.compare alpha 0.0 > 0
      && Float.compare alpha 1.0 <= 0)
  then invalid_arg "Ewma.create: alpha must be in (0, 1]";
  { alpha; init; values = Array.make n init; seen = Array.make n false }

let n t = Array.length t.values
let alpha t = t.alpha

let observe t i x =
  if i < 0 || i >= Array.length t.values then
    invalid_arg "Ewma.observe: index out of range";
  if t.seen.(i) then
    t.values.(i) <- t.values.(i) +. (t.alpha *. (x -. t.values.(i)))
  else begin
    t.values.(i) <- x;
    t.seen.(i) <- true
  end

let value t i =
  if i < 0 || i >= Array.length t.values then
    invalid_arg "Ewma.value: index out of range";
  t.values.(i)

let known t i =
  if i < 0 || i >= Array.length t.seen then
    invalid_arg "Ewma.known: index out of range";
  t.seen.(i)

let pp ppf t =
  Fmt.pf ppf "ewma[%a]"
    Fmt.(array ~sep:(any ",") (fmt "%.2f"))
    t.values
