(** Queue-aware read steering: pick, among a strategy's minimal read
    quorums, the one whose slowest member looks cheapest right now.

    The cost of a replica is its recent reply latency (an [Ewma]
    estimate) plus a weighted live apply-queue depth; the cost of a
    quorum is its worst member, since a quorum completes only when its
    slowest reply lands.  Ties break deterministically by cardinality
    then by lowest mask, so steering never consults a PRNG — default
    (probe-less) runs stay byte-identical. *)

type stats = {
  latency : int -> float;  (** recent reply latency per replica *)
  queue : int -> float;  (** live apply-queue depth per replica *)
  queue_weight : float;  (** cost units per queued entry *)
}

let replica_cost stats i =
  stats.latency i +. (stats.queue_weight *. stats.queue i)

let cost stats mask =
  let rec go i m acc =
    if m = 0 then acc
    else
      let acc =
        if m land 1 <> 0 then Float.max acc (replica_cost stats i) else acc
      in
      go (i + 1) (m lsr 1) acc
  in
  go 0 mask neg_infinity

let best stats masks =
  match masks with
  | [] -> None
  | first :: rest ->
      let rec go bm bc bp = function
        | [] -> Some bm
        | q :: tl ->
            let c = cost stats q in
            let p = Model.popcount q in
            let better =
              let d = Float.compare c bc in
              d < 0 || (d = 0 && (p < bp || (p = bp && q < bm)))
            in
            if better then go q c p tl else go bm bc bp tl
      in
      go first (cost stats first) (Model.popcount first) rest
