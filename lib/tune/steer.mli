(** Queue-aware read steering: pick, among a strategy's minimal read
    quorums, the one whose slowest member looks cheapest right now.
    Fully deterministic — ties break by cardinality then lowest mask,
    never by PRNG. *)

type stats = {
  latency : int -> float;  (** recent reply latency per replica *)
  queue : int -> float;  (** live apply-queue depth per replica *)
  queue_weight : float;  (** cost units per queued entry *)
}

val replica_cost : stats -> int -> float
(** [latency i + queue_weight * queue i]. *)

val cost : stats -> int -> float
(** Max of [replica_cost] over the mask's members — a quorum is as
    fast as its slowest reply. *)

val best : stats -> int list -> int option
(** The cheapest mask ([None] on an empty list). *)
