(** Analytic load / latency / availability model over quorum systems,
    after "Read-Write Quorum Systems Made Practical" (PAPERS.md).
    Exhaustive over the [2^n] replica masks, like [Store.Strategy] —
    deliberately dependency-free so [store] can sit on top of [tune]. *)

type system = {
  name : string;
  n : int;  (** replica count; replica [i] is bit [i] *)
  read_ok : int -> bool;  (** does this mask contain a read quorum? *)
  write_ok : int -> bool;  (** does this mask contain a write quorum? *)
}

val popcount : int -> int
val full : int -> int

val legal : system -> bool
(** Every read quorum intersects every write quorum: no mask [r] with
    [read_ok r] may leave [write_ok] satisfiable on its complement. *)

val minimal_read_quorums : system -> int list
val minimal_write_quorums : system -> int list

val smallest : int list -> int list
(** The masks of minimum cardinality — the ones [Store.Client]'s
    quorum targeting actually picks among. *)

val cross_legal : reads:int list -> writes:int list -> bool
(** Every mask in [reads] intersects every mask in [writes] — the
    cross-strategy intersection check behind safe re-strategizing. *)

val availability : system -> p:float -> float * float
(** [(read, write)] availability under independent per-replica alive
    probability [p]. *)

type score = {
  peak_load : float;
      (** max over replicas of expected touch probability per op *)
  read_latency : float;
  write_latency : float;
  op_latency : float;
      (** mix-weighted: [f * read + (1 - f) * (read + write)] *)
  read_availability : float;
  write_availability : float;
}

val score :
  system -> read_fraction:float -> p_alive:float -> lat:(int -> float) -> score
(** Score under read fraction [f], per-replica alive probability, and
    per-replica latency estimate [lat] (e.g. [Ewma.value]). *)

type config = {
  w_load : float;
  w_latency : float;
  min_read_availability : float;
  min_write_availability : float;
}

val default_config : config

val admissible : config -> score -> bool
(** Meets both availability floors. *)

val objective : config -> score -> float
(** [w_load * peak_load + w_latency * op_latency] — lower is better. *)

val choose :
  ?config:config ->
  read_fraction:float ->
  p_alive:float ->
  lat:(int -> float) ->
  system list ->
  (int * score) option
(** Index and score of the objective-minimal {e legal, admissible}
    system; earlier entries win ties, so listing majority first makes
    ties resolve conservatively.  [None] if nothing qualifies. *)

val pp_score : score Fmt.t
