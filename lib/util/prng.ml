(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in this repository draws randomness
    through this module so that executions, simulations, and failure
    injections are exactly reproducible from a single integer seed.
    We deliberately avoid [Stdlib.Random] because its state is global
    and its algorithm is not stable across OCaml releases. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: advance by the golden-gamma constant and mix. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns 62 uniformly random non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] is uniform on [0, n). Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  bits t mod n

(** [float t] is uniform on [0, 1). *)
let float t =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int mantissa /. 9007199254740992.0 (* 2^53 *)

(** [bool t] is a fair coin flip. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [range t lo hi] is uniform on the inclusive range [lo, hi]. *)
let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [choose_opt t xs] is [None] on the empty list, otherwise a uniform pick. *)
let choose_opt t xs = match xs with [] -> None | _ -> Some (choose t xs)

(** [shuffle t xs] is a uniform permutation of [xs] (Fisher-Yates). *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** [exponential t ~mean] draws from an exponential distribution. *)
let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

(** [lognormal t ~mu ~sigma] draws from a log-normal distribution,
    using a Box-Muller normal variate underneath. *)
let lognormal t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

(** [split t] derives an independent child generator; the parent
    advances so successive splits are independent of each other. *)
let split t =
  let child_seed = bits t in
  create child_seed

(** [subset t xs ~p] keeps each element of [xs] independently with
    probability [p]. *)
let subset t xs ~p = List.filter (fun _ -> float t < p) xs
