(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in the repository draws randomness
    through this module, so any execution, simulation, or failure
    pattern is exactly reproducible from one integer seed. *)

type t
(** Generator state (mutable). *)

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n).  Requires [n > 0]. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** A fair coin flip. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform on the inclusive range [lo, hi]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)

val choose_opt : t -> 'a list -> 'a option
(** [None] on the empty list, otherwise a uniform pick. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher-Yates). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normally distributed (Box-Muller underneath). *)

val split : t -> t
(** Derive an independent child generator; the parent advances. *)

val subset : t -> 'a list -> p:float -> 'a list
(** Keep each element independently with probability [p]. *)
