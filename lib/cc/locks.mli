(** Moss-style read/write locking for nested transactions ([19] in the
    paper): read locks compatible with ancestor writers, write locks
    requiring every holder to be an ancestor, lock {e inheritance} by
    the parent at commit, version-stack rollback at abort.  Locking is
    at the copy (DM) level — the granularity Theorem 11 requires. *)

open Ioa

type t

val create : unit -> t

val current_value_of : t -> obj:string -> initial:Value.t -> Value.t
(** The currently visible value (top of the version stack). *)

val try_read :
  t -> obj:string -> initial:Value.t -> who:Txn.t -> (Value.t, Txn.t list) result
(** Acquire a read lock and read; [Error holders] when blocked. *)

val try_write :
  t -> obj:string -> initial:Value.t -> who:Txn.t -> Value.t ->
  (unit, Txn.t list) result
(** Acquire a write lock and push a version. *)

val read_unlocked : t -> obj:string -> initial:Value.t -> who:Txn.t -> Value.t
(** Bypass the locking rules (ablation / mutation tests only). *)

val write_unlocked : t -> obj:string -> initial:Value.t -> who:Txn.t -> Value.t -> unit

val commit : t -> Txn.t -> unit
(** Lock inheritance: every lock and version held by the transaction
    passes to its parent; a top-level commit installs its newest
    version as the base value and frees its locks. *)

val abort : t -> Txn.t -> unit
(** Drop all locks and versions of the transaction and its
    descendants, restoring previous values. *)

val committed_values : t -> (string * Value.t) list
(** Final committed (base) value of every object touched. *)

val residual_holders : t -> (string * Txn.t list) list
(** Live lock holders (empty after a clean run). *)
