(** Harness for the concurrent replicated system: generate a random
    description, run it concurrently under nested 2PL with injected
    aborts, and validate one-copy serializability (Theorem 11). *)

module Prng = Qc_util.Prng

type report = {
  seed : int;
  steps : int;
  peak_concurrency : int;
  committed_tops : int;
  aborted_nodes : int;
  events : int;
}

let run ?(abort_rate = 0.02) ?(max_steps = 200_000) ?(mode = `TwoPL) ~seed
    (d : Quorum.Description.t) : Engine.run_log =
  Engine.run ~max_steps (Engine.create ~abort_rate ~mode ~seed d)

(* Rebuild the description for maximal concurrency: the root requests
   all top-level transactions unordered, and there are several of
   them (generated descriptions cap at 3). *)
let concurrent_root rng (d : Quorum.Description.t) ~extra_tops :
    Quorum.Description.t =
  let base = d.Quorum.Description.root_script in
  let extra =
    List.init extra_tops (fun i ->
        let label = Fmt.str "ctop%d" i in
        Serial.User_txn.Sub
          ( label,
            Quorum.Gen.script rng ~params:Quorum.Gen.default_params
              ~items:d.Quorum.Description.items
              ~raws:d.Quorum.Description.raw_objects ~depth:2 ~label ))
  in
  {
    d with
    Quorum.Description.root_script =
      {
        base with
        Serial.User_txn.children = base.Serial.User_txn.children @ extra;
        ordered = false;
        eager = false;
      };
  }

let run_and_check ?(params = Quorum.Gen.default_params) ?(abort_rate = 0.02)
    ?(max_steps = 200_000) ?(extra_tops = 4) ?(mode = `TwoPL) ~seed () :
    (report, string) result =
  let rng = Prng.create seed in
  let d =
    concurrent_root rng (Quorum.Gen.description ~params rng) ~extra_tops
  in
  let log = run ~abort_rate ~max_steps ~mode ~seed:(seed lxor 0xcc) d in
  match Oracle.check d log with
  | Error m ->
      Error (Fmt.str "seed %d: %s mismatch: %s" seed m.Oracle.what m.Oracle.detail)
  | Ok () ->
      if log.Engine.residual_locks > 0 then
        Error (Fmt.str "seed %d: %d residual lock entries" seed log.Engine.residual_locks)
      else
        Ok
          {
            seed;
            steps = log.Engine.steps;
            peak_concurrency = log.Engine.peak_concurrency;
            committed_tops = List.length log.Engine.commit_order;
            aborted_nodes =
              List.length
                (List.filter
                   (fun (_, o) -> o = Engine.Aborted)
                   log.Engine.outcomes);
            events = List.length log.Engine.events;
          }
