(** A concurrent (non-serial) execution engine for replicated
    nested-transaction systems — the "system C" of Theorem 11.

    The engine runs the {e same} user scripts as the serial systems,
    but with real concurrency: unordered siblings execute in an
    interleaved fashion (chosen by a seeded PRNG), transaction
    managers run quorum rounds against shared DMs, and conflicts are
    arbitrated at the copy level by Moss-style nested two-phase
    locking ({!Locks}).  Failures come from two sources: injected
    random aborts, and deadlock-victim aborts.

    Theorem 11 states that combining {e any} serially-correct
    copy-level concurrency control with the replication algorithm
    yields a system serially correct at the logical level for
    non-orphan user transactions.  The engine records every logical
    event (TM reads/writes, raw accesses) and the top-level commit
    order; {!Oracle} replays those events against a non-replicated
    serial store and compares outcomes — the executable counterpart of
    the theorem. *)

open Ioa
module Prng = Qc_util.Prng
module Item = Quorum.Item
module Config = Quorum.Config
module Description = Quorum.Description

type outcome = Committed of Value.t | Aborted

type kind =
  | KUser of Serial.User_txn.script
  | KReadTm of Item.t
  | KWriteTm of Item.t * Value.t
  | KAccess of { obj : string; akind : Txn.kind; payload : Value.t; initial : Value.t }

type status = Running | Blocked of Txn.t list | Finished of outcome

type wphase = WReading | WWriting

(** Which copy-level concurrency control arbitrates the run:
    Moss-style nested two-phase locking, Reed-style multiversion
    timestamp ordering, or none at all ([`NoCC] exists for ablation
    benchmarks and oracle mutation tests — with racing transactions
    the Theorem 11 check is then expected to fail). *)
type mode = [ `TwoPL | `Mvto | `NoCC ]

type node = {
  name : Txn.t;
  kind : kind;
  mutable status : status;
  mutable spawned : Txn.seg list;
  mutable outcomes : (Txn.seg * outcome) list;
  (* TM state *)
  mutable quorum_target : string list;
  mutable got : (string * (int * Value.t)) list;
  mutable wphase : wphase;
  mutable access_seq : int;
  mutable blocked_attempts : int;
}

(** One logical-level event, recorded at TM (or raw access) commit
    time.  [top] is the enclosing top-level transaction. *)
type event =
  | ERead of { top : Txn.t; tm : Txn.t; item : string; value : Value.t }
  | EWrite of { top : Txn.t; tm : Txn.t; item : string; value : Value.t }
  | ERawRead of { top : Txn.t; access : Txn.t; obj : string; value : Value.t }
  | ERawWrite of { top : Txn.t; access : Txn.t; obj : string; value : Value.t }

type t = {
  rng : Prng.t;
  desc : Description.t;
  locks : Locks.t;
  nodes : (Txn.t, node) Hashtbl.t;
  abort_rate : float;
  mode : mode;
  mvto : Mvto.t;
  mutable events : event list;  (** reverse order *)
  mutable commit_order : Txn.t list;  (** top-level commits, reverse *)
  mutable steps : int;
  mutable peak_concurrency : int;
}

let node t name = Hashtbl.find_opt t.nodes name

let top_level_of (name : Txn.t) : Txn.t =
  match name with [] -> [] | s :: _ -> [ s ]

let new_node t ~name ~kind =
  let n =
    {
      name;
      kind;
      status = Running;
      spawned = [];
      outcomes = [];
      quorum_target = [];
      got = [];
      wphase = WReading;
      access_seq = 0;
      blocked_attempts = 0;
    }
  in
  Hashtbl.replace t.nodes name n;
  n

let create ?(abort_rate = 0.02) ?(mode = `TwoPL) ~seed (desc : Description.t)
    : t =
  let t =
    {
      rng = Prng.create seed;
      desc;
      locks = Locks.create ();
      nodes = Hashtbl.create 256;
      abort_rate;
      mode;
      mvto = Mvto.create ();
      events = [];
      commit_order = [];
      steps = 0;
      peak_concurrency = 0;
    }
  in
  ignore (new_node t ~name:Txn.root ~kind:(KUser desc.Description.root_script));
  t

(* ---------- outcome bookkeeping ---------- *)

let record_outcome t ~(child : Txn.t) (o : outcome) =
  if not (Txn.is_root child) then
    match node t (Txn.parent child) with
    | Some p -> (
        match Txn.last_seg child with
        | Some seg ->
            if not (List.mem_assoc seg p.outcomes) then
              p.outcomes <- (seg, o) :: p.outcomes
        | None -> ())
    | None -> ()

let rec abort_subtree t (name : Txn.t) =
  match node t name with
  | None -> ()
  | Some n -> (
      match n.status with
      | Finished _ -> ()
      | Running | Blocked _ ->
          List.iter
            (fun seg -> abort_subtree t (Txn.child name seg))
            n.spawned;
          n.status <- Finished Aborted;
          Locks.abort t.locks name;
          Mvto.abort t.mvto name;
          record_outcome t ~child:name Aborted)

let finish_commit t (n : node) (v : Value.t) =
  n.status <- Finished (Committed v);
  (match t.mode with
  | `TwoPL | `NoCC -> Locks.commit t.locks n.name
  | `Mvto -> Mvto.commit t.mvto n.name);
  record_outcome t ~child:n.name (Committed v);
  if (not (Txn.is_root n.name)) && Txn.is_root (Txn.parent n.name) then
    t.commit_order <- n.name :: t.commit_order

(* ---------- deadlock detection ---------- *)

(* Wait-for graph over top-level transactions, built from currently
   blocked nodes.  Under strict 2PL a cycle among *distinct*
   top-levels is a certain deadlock: a top-level's locks are only
   freed at its own commit.  Waits within one top-level (a TM waiting
   for a sibling TM to commit and pass its lock upward) are excluded —
   they resolve by themselves unless there is a genuine sibling
   deadlock, which the blocked-retry threshold in the main loop
   eventually breaks. *)
let in_deadlock t (start_top : Txn.t) : bool =
  let edges =
    (* edge order cannot change the existential reachability below *)
    (* lint: order-insensitive *)
    Hashtbl.fold
      (fun _ n acc ->
        match n.status with
        | Blocked blockers ->
            let from = top_level_of n.name in
            List.fold_left
              (fun acc b ->
                let to_ = top_level_of b in
                if Txn.equal from to_ then acc else (from, to_) :: acc)
              acc blockers
        | Running | Finished _ -> acc)
      t.nodes []
  in
  let rec reach seen from =
    List.exists
      (fun (f, to_) ->
        Txn.equal f from
        && (Txn.equal to_ start_top
           || (not (List.exists (Txn.equal to_) seen))
              && reach (to_ :: seen) to_))
      edges
  in
  reach [ start_top ] start_top

(* The deadlock victim for a blocked access: its nearest TM ancestor
   if any, else the access itself. *)
let victim_for (name : Txn.t) (t : t) : Txn.t =
  let parent = Txn.parent name in
  match node t parent with
  | Some { kind = KReadTm _ | KWriteTm _; _ } -> parent
  | _ -> name

(* ---------- spawning ---------- *)

let raw_initial t obj =
  match List.assoc_opt obj t.desc.Description.raw_objects with
  | Some v -> v
  | None -> Value.Nil

let spawn_child t (parent : node) (seg : Txn.seg) =
  let name = Txn.child parent.name seg in
  parent.spawned <- parent.spawned @ [ seg ];
  match Description.role_of t.desc name with
  | Some (Description.Tm (item, Txn.Read)) ->
      ignore (new_node t ~name ~kind:(KReadTm item))
  | Some (Description.Tm (item, Txn.Write)) ->
      let v = match Txn.data_of name with Some v -> v | None -> Value.Nil in
      ignore (new_node t ~name ~kind:(KWriteTm (item, v)))
  | Some Description.Raw_access ->
      let obj = Option.get (Txn.obj_of name) in
      let akind = Option.get (Txn.kind_of name) in
      let payload =
        match Txn.data_of name with Some v -> v | None -> Value.Nil
      in
      ignore
        (new_node t ~name
           ~kind:(KAccess { obj; akind; payload; initial = raw_initial t obj }))
  | Some Description.User -> (
      (* a Sub node: find its script *)
      match parent.kind with
      | KUser script -> (
          match
            List.find_opt
              (fun c ->
                match c with
                | Serial.User_txn.Sub (nm, _) ->
                    Txn.seg_equal (Txn.Seg nm) seg
                | Serial.User_txn.Access_child _ -> false)
              script.Serial.User_txn.children
          with
          | Some (Serial.User_txn.Sub (_, sub)) ->
              ignore (new_node t ~name ~kind:(KUser sub))
          | _ -> ())
      | _ -> ())
  | Some (Description.Replica_access _) | None -> ()

(* spawn a replica access under a TM *)
let spawn_access t (tm : node) ~dm ~akind ~payload ~item =
  let seq = tm.access_seq in
  tm.access_seq <- seq + 1;
  let seg = Txn.Access { obj = dm; kind = akind; data = payload; seq } in
  let name = Txn.child tm.name seg in
  tm.spawned <- tm.spawned @ [ seg ];
  ignore
    (new_node t ~name
       ~kind:(KAccess { obj = dm; akind; payload; initial = Item.dm_initial item }))

(* ---------- micro-steps ---------- *)

let children_nodes t (n : node) =
  List.filter_map (fun seg -> node t (Txn.child n.name seg)) n.spawned

let all_children_finished (t : t) (n : node) =
  List.for_all
    (fun c -> match c.status with Finished _ -> true | _ -> false)
    (children_nodes t n)

let user_commit_value (script : Serial.User_txn.script) (n : node) =
  let outs =
    List.map
      (fun c ->
        let seg = Serial.User_txn.seg_of_node c in
        match List.assoc_opt seg n.outcomes with
        | Some (Committed v) -> (seg, Serial.User_txn.Committed v)
        | Some Aborted | None -> (seg, Serial.User_txn.Aborted))
      script.Serial.User_txn.children
  in
  script.Serial.User_txn.returns outs

let record_event t ev = t.events <- ev :: t.events

(* Step a user-transaction node. *)
let step_user t (n : node) (script : Serial.User_txn.script) =
  let segs = List.map Serial.User_txn.seg_of_node script.Serial.User_txn.children in
  let unspawned =
    List.filter (fun s -> not (List.mem s n.spawned)) segs
  in
  (* Under MVTO, sibling subtransactions share their top-level's
     timestamp, so they must run sequentially for the timestamp order
     to serialize all conflicts (Reed's full design instead assigns
     hierarchical pseudo-times; see DESIGN.md).  Top-level
     transactions — the root's children — remain fully concurrent. *)
  let ordered =
    script.Serial.User_txn.ordered
    || (t.mode = `Mvto && not (Txn.is_root n.name))
  in
  match unspawned with
  | [] ->
      if all_children_finished t n then
        if Txn.is_root n.name then n.status <- Finished (Committed Value.Nil)
        else finish_commit t n (user_commit_value script n)
  | next :: _ ->
      if ordered then begin
        (* spawn strictly in order, waiting for the previous child *)
        let prior_done =
          List.for_all
            (fun c -> match c.status with Finished _ -> true | _ -> false)
            (children_nodes t n)
        in
        if prior_done then spawn_child t n next
      end
      else
        (* unordered: spawn any unspawned child — possibly several
           outstanding at once (sibling concurrency) *)
        spawn_child t n (Prng.choose t.rng unspawned)

(* Step a read-TM node. *)
let step_read_tm t (n : node) (item : Item.t) =
  if n.quorum_target = [] then begin
    let q = Prng.choose t.rng item.Item.config.Config.read_quorums in
    n.quorum_target <- q;
    List.iter
      (fun dm -> spawn_access t n ~dm ~akind:Txn.Read ~payload:Value.Nil ~item)
      q
  end
  else if
    List.exists
      (fun c -> match c.status with Finished Aborted -> true | _ -> false)
      (children_nodes t n)
  then abort_subtree t n.name
  else if List.for_all (fun dm -> List.mem_assoc dm n.got) n.quorum_target
  then begin
    (* return the value with the highest version number seen *)
    let _, v =
      List.fold_left
        (fun (bvn, bv) (_, (vn, v)) -> if vn > bvn then (vn, v) else (bvn, bv))
        (-1, item.Item.initial) n.got
    in
    record_event t
      (ERead { top = top_level_of n.name; tm = n.name; item = item.Item.name; value = v });
    finish_commit t n v
  end

(* Step a write-TM node. *)
let step_write_tm t (n : node) (item : Item.t) (value : Value.t) =
  match n.wphase with
  | WReading ->
      if n.quorum_target = [] then begin
        let q = Prng.choose t.rng item.Item.config.Config.read_quorums in
        n.quorum_target <- q;
        List.iter
          (fun dm ->
            spawn_access t n ~dm ~akind:Txn.Read ~payload:Value.Nil ~item)
          q
      end
      else if
        List.exists
          (fun c -> match c.status with Finished Aborted -> true | _ -> false)
          (children_nodes t n)
      then abort_subtree t n.name
      else if
        List.for_all (fun dm -> List.mem_assoc dm n.got) n.quorum_target
      then begin
        let vn =
          List.fold_left (fun m (_, (vn, _)) -> max m vn) 0 n.got
        in
        let wq = Prng.choose t.rng item.Item.config.Config.write_quorums in
        n.wphase <- WWriting;
        n.quorum_target <- wq;
        List.iter
          (fun dm ->
            spawn_access t n ~dm ~akind:Txn.Write
              ~payload:(Value.Versioned (vn + 1, value))
              ~item)
          wq
      end
  | WWriting ->
      if
        List.exists
          (fun c -> match c.status with Finished Aborted -> true | _ -> false)
          (children_nodes t n)
      then abort_subtree t n.name
      else if
        List.for_all
          (fun c ->
            match c.status with Finished (Committed _) -> true | _ -> false)
          (children_nodes t n)
      then begin
        record_event t
          (EWrite
             { top = top_level_of n.name; tm = n.name; item = item.Item.name; value });
        finish_commit t n Value.Nil
      end

(* Step an access node: attempt the lock; on success perform the
   operation and commit immediately (the lock is inherited upward). *)
type access_result =
  | AOk of Value.t option  (** [Some v] for reads *)
  | ABlock of Txn.t list
  | AAbort  (** the CC demands the transaction abort (MVTO late write) *)

let attempt_access t (n : node) ~obj ~akind ~payload ~initial : access_result
    =
  match t.mode with
  | `TwoPL -> (
      match akind with
      | Txn.Read -> (
          match Locks.try_read t.locks ~obj ~initial ~who:n.name with
          | Ok v -> AOk (Some v)
          | Error bs -> ABlock bs)
      | Txn.Write -> (
          match Locks.try_write t.locks ~obj ~initial ~who:n.name payload with
          | Ok () -> AOk None
          | Error bs -> ABlock bs))
  | `NoCC -> (
      (* no concurrency control: operate on the raw version stack *)
      match akind with
      | Txn.Read ->
          AOk (Some (Locks.read_unlocked t.locks ~obj ~initial ~who:n.name))
      | Txn.Write ->
          Locks.write_unlocked t.locks ~obj ~initial ~who:n.name payload;
          AOk None)
  | `Mvto -> (
      match akind with
      | Txn.Read -> (
          match Mvto.try_read t.mvto ~obj ~initial ~who:n.name with
          | Mvto.ROk v -> AOk (Some v)
          | Mvto.RBlock bs -> ABlock bs
          | Mvto.RAbort -> AAbort)
      | Txn.Write -> (
          match Mvto.try_write t.mvto ~obj ~initial ~who:n.name payload with
          | Mvto.WOk -> AOk None
          | Mvto.WBlock bs -> ABlock bs
          | Mvto.WAbort -> AAbort))

let step_access t (n : node) ~obj ~akind ~payload ~initial =
  match attempt_access t n ~obj ~akind ~payload ~initial with
  | AAbort -> abort_subtree t (victim_for n.name t)
  | AOk read_value ->
      (* deliver the result to the parent *)
      (match (node t (Txn.parent n.name), read_value) with
      | Some ({ kind = KReadTm _ | KWriteTm _; _ } as tm), Some v ->
          let vn, value =
            match v with Value.Versioned (vn, x) -> (vn, x) | other -> (0, other)
          in
          tm.got <- (obj, (vn, value)) :: tm.got
      | Some { kind = KUser _; _ }, Some v ->
          record_event t
            (ERawRead { top = top_level_of n.name; access = n.name; obj; value = v })
      | Some { kind = KUser _; _ }, None ->
          record_event t
            (ERawWrite
               { top = top_level_of n.name; access = n.name; obj; value = payload })
      | _ -> ());
      finish_commit t n (match read_value with Some v -> v | None -> Value.Nil)
  | ABlock blockers ->
      n.status <- Blocked blockers;
      n.blocked_attempts <- n.blocked_attempts + 1;
      (* cross-top-level deadlock: certain under strict 2PL; sibling
         deadlock within one top-level: break after enough futile
         retries *)
      if in_deadlock t (top_level_of n.name) || n.blocked_attempts > 64 then
        abort_subtree t (victim_for n.name t)

(* ---------- the main loop ---------- *)

(* Canonical (Txn-ordered) menu for the seeded scheduler: the PRNG
   picks an index, so the list order is part of the run — it must
   come from the transaction names, never from hash-bucket order. *)
let runnable t =
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun _ n acc ->
      match n.status with
      | Running | Blocked _ -> n :: acc
      | Finished _ -> acc)
    t.nodes []
  |> List.sort (fun a b -> Txn.compare a.name b.name)

let live_top_levels t =
  (* a commutative count over entries *)
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun name n acc ->
      match (name, n.status) with
      | [ _ ], (Running | Blocked _) -> acc + 1
      | _ -> acc)
    t.nodes 0

let step_node t (n : node) =
  match n.kind with
  | KUser script -> step_user t n script
  | KReadTm item -> step_read_tm t n item
  | KWriteTm (item, v) -> step_write_tm t n item v
  | KAccess { obj; akind; payload; initial } ->
      step_access t n ~obj ~akind ~payload ~initial

type run_log = {
  events : event list;  (** in execution order *)
  commit_order : Txn.t list;  (** top-level commit order *)
  serial_order : Txn.t list;
      (** the witness serialization order the concurrency control
          guarantees: commit order for 2PL, timestamp order for MVTO *)
  outcomes : (Txn.t * outcome) list;  (** every node's final outcome *)
  final_dms : (string * Value.t) list;  (** committed DM values *)
  final_raws : (string * Value.t) list;
  steps : int;
  peak_concurrency : int;
  residual_locks : int;
}

(** Run to completion (all top-level transactions finished) or the
    step bound. *)
let run ?(max_steps = 200_000) (t : t) : run_log =
  let rec loop () =
    if t.steps >= max_steps then ()
    else
      match runnable t with
      | [] -> ()
      | ns ->
          t.steps <- t.steps + 1;
          t.peak_concurrency <- max t.peak_concurrency (live_top_levels t);
          (* random abort injection *)
          if Prng.float t.rng < t.abort_rate then begin
            let candidates =
              List.filter
                (fun n ->
                  (not (Txn.is_root n.name))
                  &&
                  match n.kind with
                  | KUser _ | KReadTm _ | KWriteTm _ -> true
                  | KAccess _ -> false)
                ns
            in
            match Prng.choose_opt t.rng candidates with
            | Some victim -> abort_subtree t victim.name
            | None -> ()
          end;
          let n = Prng.choose t.rng ns in
          (match n.status with
          | Blocked _ ->
              n.status <- Running;
              step_node t n
          | Running -> step_node t n
          | Finished _ -> ());
          loop ()
  in
  loop ();
  let outcomes =
    (* lint: order-insensitive *)
    Hashtbl.fold
      (fun name n acc ->
        match n.status with
        | Finished o -> (name, o) :: acc
        | Running | Blocked _ -> (name, Aborted) :: acc)
      t.nodes []
    |> List.sort (fun (a, _) (b, _) -> Txn.compare a b)
  in
  let all_values =
    match t.mode with
    | `TwoPL | `NoCC -> Locks.committed_values t.locks
    | `Mvto -> Mvto.committed_values t.mvto
  in
  let dm_names = Description.all_dm_names t.desc in
  let commit_order = List.rev t.commit_order in
  {
    events = List.rev t.events;
    commit_order;
    serial_order =
      (match t.mode with
      | `TwoPL | `NoCC -> commit_order
      | `Mvto -> Mvto.serial_order t.mvto commit_order);
    outcomes;
    final_dms = List.filter (fun (o, _) -> List.mem o dm_names) all_values;
    final_raws =
      List.filter
        (fun (o, _) -> List.mem_assoc o t.desc.Description.raw_objects)
        all_values;
    steps = t.steps;
    peak_concurrency = t.peak_concurrency;
    residual_locks =
      (match t.mode with
      | `TwoPL | `NoCC -> List.length (Locks.residual_holders t.locks)
      | `Mvto -> Mvto.residual t.mvto);
  }
