(** Moss-style read/write locking for nested transactions ([19] in the
    paper; see also Fekete-Lynch-Merritt-Weihl [9]).

    Locking happens at the {e copy} level — each DM is one lockable
    object — which is exactly the granularity at which Theorem 11
    requires serial correctness from the concurrency control
    algorithm.

    The rules (per object):
    - a transaction may acquire a {e read} lock iff every holder of a
      write lock is an ancestor of it;
    - a transaction may acquire a {e write} lock iff every holder of
      any lock is an ancestor of it;
    - when a transaction commits, its locks (and its written
      versions) are {e inherited} by its parent;
    - when a transaction aborts, its locks are discarded and its
      written versions popped, restoring the previous value.

    The version stack per object realizes Moss's recovery scheme: the
    stack holds (holder, value) pairs; the visible value is the top of
    the stack (or the base value); aborting a holder pops its
    entries. *)

open Ioa

type entry = {
  mutable read_holders : Txn.t list;
  mutable write_stack : (Txn.t * Value.t) list;  (** top = current *)
  mutable base : Value.t;
}

type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let entry t ~obj ~initial =
  match Hashtbl.find_opt t.table obj with
  | Some e -> e
  | None ->
      let e = { read_holders = []; write_stack = []; base = initial } in
      Hashtbl.add t.table obj e;
      e

let current_value e =
  match e.write_stack with (_, v) :: _ -> v | [] -> e.base

(** The currently visible value of an object. *)
let current_value_of t ~obj ~initial = current_value (entry t ~obj ~initial)

(** Non-ancestor holders standing in the way of [who] acquiring a
    lock of the given kind — the empty list means the lock is free to
    take. *)
let blockers e ~(who : Txn.t) (kind : Txn.kind) : Txn.t list =
  let non_ancestor h = not (Txn.is_ancestor h who) in
  let writers = List.filter non_ancestor (List.map fst e.write_stack) in
  match kind with
  | Txn.Read -> writers
  | Txn.Write -> writers @ List.filter non_ancestor e.read_holders

(** [try_read t ~obj ~initial ~who] attempts a read access.  Returns
    the visible value or the blocking holders. *)
let try_read t ~obj ~initial ~who : (Value.t, Txn.t list) result =
  let e = entry t ~obj ~initial in
  match blockers e ~who Txn.Read with
  | [] ->
      if not (List.exists (Txn.equal who) e.read_holders) then
        e.read_holders <- who :: e.read_holders;
      Ok (current_value e)
  | bs -> Error bs

(** [try_write t ~obj ~initial ~who v] attempts a write access. *)
let try_write t ~obj ~initial ~who v : (unit, Txn.t list) result =
  let e = entry t ~obj ~initial in
  match blockers e ~who Txn.Write with
  | [] ->
      e.write_stack <- (who, v) :: e.write_stack;
      Ok ()
  | bs -> Error bs

(** Unsynchronized operations, bypassing the locking rules entirely
    (the version stack is still maintained so recovery keeps working).
    Only for ablation runs and oracle mutation tests. *)
let read_unlocked t ~obj ~initial ~who =
  let e = entry t ~obj ~initial in
  if not (List.exists (Txn.equal who) e.read_holders) then
    e.read_holders <- who :: e.read_holders;
  current_value e

let write_unlocked t ~obj ~initial ~who v =
  let e = entry t ~obj ~initial in
  e.write_stack <- (who, v) :: e.write_stack

(** Lock inheritance at commit: every lock and version held by [who]
    passes to its parent.  A parent that is the root means the
    transaction was top-level: its versions become the base value and
    its locks are released. *)
let commit t (who : Txn.t) =
  let parent = Txn.parent who in
  (* per-entry mutation, no cross-entry dataflow *)
  (* lint: order-insensitive *)
  Hashtbl.iter
    (fun _ e ->
      if Txn.is_root parent then begin
        (* top-level commit: install the newest version as base *)
        (match
           List.find_opt (fun (h, _) -> Txn.equal h who) e.write_stack
         with
        | Some (_, v) -> e.base <- v
        | None -> ());
        e.write_stack <-
          List.filter (fun (h, _) -> not (Txn.equal h who)) e.write_stack;
        e.read_holders <-
          List.filter (fun h -> not (Txn.equal h who)) e.read_holders
      end
      else begin
        e.write_stack <-
          List.map
            (fun (h, v) -> if Txn.equal h who then (parent, v) else (h, v))
            e.write_stack;
        e.read_holders <-
          List.map (fun h -> if Txn.equal h who then parent else h)
            e.read_holders
        |> List.sort_uniq Txn.compare
      end)
    t.table

(** Abort: drop all locks and versions held by [who] or any of its
    descendants (the whole subtree aborts together). *)
let abort t (who : Txn.t) =
  (* per-entry mutation, no cross-entry dataflow *)
  (* lint: order-insensitive *)
  Hashtbl.iter
    (fun _ e ->
      e.write_stack <-
        List.filter (fun (h, _) -> not (Txn.is_ancestor who h)) e.write_stack;
      e.read_holders <-
        List.filter (fun h -> not (Txn.is_ancestor who h)) e.read_holders)
    t.table

let by_obj (o1, _) (o2, _) = String.compare o1 o2

(** Final committed value of every object touched, sorted by object
    name — hash-bucket order must not reach test assertions. *)
let committed_values t =
  (* lint: order-insensitive *)
  Hashtbl.fold (fun obj e acc -> (obj, e.base) :: acc) t.table []
  |> List.sort by_obj

(** Any live (uncommitted-to-root) lock holders left?  Sorted by
    object name; used by tests to assert clean termination. *)
let residual_holders t =
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun obj e acc ->
      let hs = List.map fst e.write_stack @ e.read_holders in
      if hs = [] then acc else (obj, hs) :: acc)
    t.table []
  |> List.sort by_obj
