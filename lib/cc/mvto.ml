(** Reed-style multiversion timestamp ordering ([20] in the paper) —
    the second copy-level concurrency control algorithm, demonstrating
    Theorem 11's "any correct concurrency control algorithm" claim
    with a genuinely different serialization order (timestamp order
    rather than commit order).

    Each top-level transaction receives a timestamp when it first
    touches data; all its descendants inherit it.  Per object:
    - a read at timestamp [ts] returns the version with the largest
      write-timestamp <= [ts]; if that version is still uncommitted
      and belongs to another top-level, the reader {e blocks} until
      the writer resolves (waits only go from larger to smaller
      timestamps, so they cannot cycle);
    - a write at [ts] is {e rejected} (transaction must abort) when
      the version it would supersede has already been read by a
      transaction with a larger timestamp — the classic late-write
      rule;
    - versions become committed when their top-level commits; aborts
      discard the subtree's versions.

    Simplification vs. Reed's full design (documented in DESIGN.md):
    timestamps are per top-level transaction, so sibling subtransactions
    of one top-level are ordered by their execution interleaving
    rather than by sub-timestamps. *)

open Ioa

type version = {
  write_ts : int;
  value : Value.t;
  writer : Txn.t;  (** the access that wrote it (for subtree aborts) *)
  writer_top : Txn.t;
  mutable committed : bool;
  mutable read_ts : int;  (** largest timestamp that read this version *)
}

type obj_state = { mutable versions : version list (* newest ts first *) }

type t = {
  objects : (string, obj_state) Hashtbl.t;
  ts_of : (Txn.t, int) Hashtbl.t;  (** top-level -> timestamp *)
  mutable next_ts : int;
}

let create () =
  { objects = Hashtbl.create 64; ts_of = Hashtbl.create 16; next_ts = 1 }

let top_level_of (name : Txn.t) : Txn.t =
  match name with [] -> [] | s :: _ -> [ s ]

let timestamp t (who : Txn.t) =
  let top = top_level_of who in
  match Hashtbl.find_opt t.ts_of top with
  | Some ts -> ts
  | None ->
      let ts = t.next_ts in
      t.next_ts <- ts + 1;
      Hashtbl.replace t.ts_of top ts;
      ts

let obj_state t ~obj ~initial =
  match Hashtbl.find_opt t.objects obj with
  | Some s -> s
  | None ->
      let s =
        {
          versions =
            [
              {
                write_ts = 0;
                value = initial;
                writer = Txn.root;
                writer_top = Txn.root;
                committed = true;
                read_ts = 0;
              };
            ];
        }
      in
      Hashtbl.add t.objects obj s;
      s

(* The version a transaction with timestamp [ts] from [top] reads:
   largest write_ts <= ts, preferring its own top's versions at equal
   write_ts (a top-level sees its own writes). *)
let visible_version s ~ts =
  List.find_opt (fun v -> v.write_ts <= ts) s.versions

type read_result = ROk of Value.t | RBlock of Txn.t list | RAbort
type write_result = WOk | WBlock of Txn.t list | WAbort

let try_read t ~obj ~initial ~who : read_result =
  let ts = timestamp t who in
  let top = top_level_of who in
  let s = obj_state t ~obj ~initial in
  match visible_version s ~ts with
  | None -> RAbort (* unreachable: version 0 always present *)
  | Some v ->
      if (not v.committed) && not (Txn.equal v.writer_top top) then
        RBlock [ v.writer_top ]
      else begin
        v.read_ts <- max v.read_ts ts;
        ROk v.value
      end

let try_write t ~obj ~initial ~who value : write_result =
  let ts = timestamp t who in
  let top = top_level_of who in
  let s = obj_state t ~obj ~initial in
  match visible_version s ~ts with
  | None -> WAbort
  | Some v ->
      if v.read_ts > ts && not (Txn.equal v.writer_top top) then
        (* late write: a later transaction already read the state this
           write would change *)
        WAbort
      else begin
        let nv =
          {
            write_ts = ts;
            value;
            writer = who;
            writer_top = top;
            committed = false;
            read_ts = ts;
          }
        in
        (* A same-timestamp version by the same top (a transaction
           overwriting its own earlier write) is SHADOWED, not
           replaced: the sort is stable and [nv] is prepended, so it
           precedes equal-timestamp versions, while the earlier
           version survives underneath in case the newer writer's
           subtree later aborts (nested recovery). *)
        s.versions <-
          List.sort
            (fun a b -> Int.compare b.write_ts a.write_ts)
            (nv :: s.versions);
        WOk
      end

(** Commit: a top-level commit publishes its versions. *)
let commit t (who : Txn.t) =
  if (not (Txn.is_root who)) && Txn.is_root (Txn.parent who) then
    (* per-entry mutation, no cross-entry dataflow *)
    (* lint: order-insensitive *)
    Hashtbl.iter
      (fun _ s ->
        List.iter
          (fun v -> if Txn.equal v.writer_top who then v.committed <- true)
          s.versions)
      t.objects

(** Abort: discard the versions written inside the aborting subtree. *)
let abort t (who : Txn.t) =
  (* per-entry mutation, no cross-entry dataflow *)
  (* lint: order-insensitive *)
  Hashtbl.iter
    (fun _ s ->
      s.versions <-
        List.filter (fun v -> not (Txn.is_ancestor who v.writer)) s.versions)
    t.objects

(** Final committed value per object (the committed version with the
    largest write timestamp), sorted by object name — hash-bucket
    order must not reach test assertions. *)
let committed_values t =
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun obj s acc ->
      match List.find_opt (fun v -> v.committed) s.versions with
      | Some v -> (obj, v.value) :: acc
      | None -> acc)
    t.objects []
  |> List.sort (fun (o1, _) (o2, _) -> String.compare o1 o2)

(** Residual uncommitted versions (0 after a clean run). *)
let residual t =
  (* a commutative sum over entries *)
  (* lint: order-insensitive *)
  Hashtbl.fold
    (fun _ s acc ->
      acc + List.length (List.filter (fun v -> not v.committed) s.versions))
    t.objects 0

(** The serialization witness order: committed top-levels sorted by
    timestamp. *)
let serial_order t (committed_tops : Txn.t list) : Txn.t list =
  List.sort
    (fun a b ->
      Int.compare
        (Option.value ~default:0 (Hashtbl.find_opt t.ts_of a))
        (Option.value ~default:0 (Hashtbl.find_opt t.ts_of b)))
    committed_tops
