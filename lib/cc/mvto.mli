(** Reed-style multiversion timestamp ordering ([20] in the paper):
    per-top-level timestamps, versioned objects, reads of the latest
    version at or before the reader's timestamp (blocking on
    uncommitted ones), the late-write abort rule, and timestamp-order
    serialization.  See DESIGN.md for the documented simplification
    versus Reed's hierarchical pseudo-times. *)

open Ioa

type t

val create : unit -> t

val timestamp : t -> Txn.t -> int
(** The transaction's (top-level's) timestamp, assigned at first use. *)

type read_result = ROk of Value.t | RBlock of Txn.t list | RAbort
type write_result = WOk | WBlock of Txn.t list | WAbort

val try_read : t -> obj:string -> initial:Value.t -> who:Txn.t -> read_result
val try_write : t -> obj:string -> initial:Value.t -> who:Txn.t -> Value.t -> write_result

val commit : t -> Txn.t -> unit
(** A top-level commit publishes its versions. *)

val abort : t -> Txn.t -> unit
(** Discard the versions written inside the aborting subtree. *)

val committed_values : t -> (string * Value.t) list
val residual : t -> int
(** Uncommitted versions left (0 after a clean run). *)

val serial_order : t -> Txn.t list -> Txn.t list
(** Committed top-levels sorted by timestamp — the serialization
    witness. *)
