(** The Theorem 11 oracle: one-copy serializability at the logical
    level.

    Given the log of a concurrent replicated run ({!Engine.run_log}),
    construct the witness serial execution and compare:

    - the serial order is the top-level commit order (strict
      two-phase locking to top-level commit guarantees conflict
      serializability in commit order);
    - within a top-level transaction, events replay in their recorded
      order (which extends the transaction's own program order);
    - only {e non-orphan} events participate: an event of a TM whose
      ancestor later aborted is excluded, exactly as Theorem 11 only
      speaks about non-orphan transactions;
    - every logical read must have returned the value the serial
      witness assigns; final replicated state must match the witness'
      final store; and the replication invariant (a write-quorum at
      the highest version number holding that value) must hold in the
      final committed DM states. *)

open Ioa
module Item = Quorum.Item
module Config = Quorum.Config
module Description = Quorum.Description

type mismatch = {
  what : string;
  detail : string;
}

let fail what fmt = Fmt.kstr (fun detail -> Error { what; detail }) fmt

(* Every ancestor of [t] (up to, excluding, the root) committed. *)
let non_orphan (log : Engine.run_log) (t : Txn.t) =
  let rec go anc =
    if Txn.is_root anc then true
    else
      match List.assoc_opt anc log.Engine.outcomes with
      | Some (Engine.Committed _) -> go (Txn.parent anc)
      | Some Engine.Aborted | None -> false
  in
  go t

let ( let* ) = Result.bind

let check (d : Description.t) (log : Engine.run_log) :
    (unit, mismatch) result =
  (* committed top-levels, in the witness serialization order the
     concurrency control guarantees (commit order for 2PL, timestamp
     order for MVTO) *)
  let tops = log.Engine.serial_order in
  (* serial witness stores *)
  let items = Hashtbl.create 8 and raws = Hashtbl.create 8 in
  List.iter
    (fun (i : Item.t) -> Hashtbl.replace items i.Item.name i.Item.initial)
    d.Description.items;
  List.iter
    (fun (o, v) -> Hashtbl.replace raws o v)
    d.Description.raw_objects;
  (* replay, top-level by top-level in commit order *)
  let replay_event ev =
    match ev with
    | Engine.ERead { tm; item; value; _ } ->
        if non_orphan log tm then
          let expected = Hashtbl.find items item in
          if Value.equal value expected then Ok ()
          else
            fail "logical read"
              "TM %a read %a from item %s; serial witness expects %a"
              Txn.pp tm Value.pp value item Value.pp expected
        else Ok ()
    | Engine.EWrite { tm; item; value; _ } ->
        if non_orphan log tm then Hashtbl.replace items item value;
        Ok ()
    | Engine.ERawRead { access; obj; value; _ } ->
        if non_orphan log access then
          let expected = Hashtbl.find raws obj in
          if Value.equal value expected then Ok ()
          else
            fail "raw read" "access %a read %a from %s; witness expects %a"
              Txn.pp access Value.pp value obj Value.pp expected
        else Ok ()
    | Engine.ERawWrite { access; obj; value; _ } ->
        if non_orphan log access then Hashtbl.replace raws obj value;
        Ok ()
  in
  let top_of = function
    | Engine.ERead { top; _ } | Engine.EWrite { top; _ }
    | Engine.ERawRead { top; _ } | Engine.ERawWrite { top; _ } ->
        top
  in
  let* () =
    List.fold_left
      (fun acc top ->
        let* () = acc in
        List.fold_left
          (fun acc ev ->
            let* () = acc in
            if Txn.equal (top_of ev) top then replay_event ev else Ok ())
          (Ok ()) log.Engine.events)
      (Ok ()) tops
  in
  (* final state: per item, the replicated value must match the
     witness, and a write-quorum must sit at the highest version *)
  let* () =
    List.fold_left
      (fun acc (i : Item.t) ->
        let* () = acc in
        let dm_states =
          List.map
            (fun dm ->
              match List.assoc_opt dm log.Engine.final_dms with
              | Some (Value.Versioned (vn, v)) -> (dm, (vn, v))
              | Some v -> (dm, (0, v))
              | None -> (dm, (0, i.Item.initial)))
            i.Item.dms
        in
        let max_vn = List.fold_left (fun m (_, (vn, _)) -> max m vn) 0 dm_states in
        let expected = Hashtbl.find items i.Item.name in
        let* () =
          let at_max = List.filter (fun (_, (vn, _)) -> vn = max_vn) dm_states in
          List.fold_left
            (fun acc (dm, (_, v)) ->
              let* () = acc in
              if Value.equal v expected then Ok ()
              else
                fail "final state"
                  "item %s: DM %s at version %d holds %a; witness expects %a"
                  i.Item.name dm max_vn Value.pp v Value.pp expected)
            (Ok ()) at_max
        in
        if
          List.exists
            (fun q ->
              List.for_all
                (fun dm ->
                  match List.assoc_opt dm dm_states with
                  | Some (vn, _) -> vn = max_vn
                  | None -> false)
                q)
            i.Item.config.Config.write_quorums
        then Ok ()
        else
          fail "replication invariant"
            "item %s: no write-quorum at the highest version %d" i.Item.name
            max_vn)
      (Ok ()) d.Description.items
  in
  (* raw objects must match too *)
  List.fold_left
    (fun acc (o, initial) ->
      let* () = acc in
      let actual =
        match List.assoc_opt o log.Engine.final_raws with
        | Some v -> v
        | None -> initial
      in
      let expected = Hashtbl.find raws o in
      if Value.equal actual expected then Ok ()
      else
        fail "raw final state" "object %s holds %a; witness expects %a" o
          Value.pp actual Value.pp expected)
    (Ok ()) d.Description.raw_objects
