(** Harness for the concurrent replicated system: generate a random
    description, run it concurrently with injected aborts, and
    validate one-copy serializability (Theorem 11). *)

type report = {
  seed : int;
  steps : int;
  peak_concurrency : int;
  committed_tops : int;
  aborted_nodes : int;
  events : int;
}

val run :
  ?abort_rate:float ->
  ?max_steps:int ->
  ?mode:Engine.mode ->
  seed:int ->
  Quorum.Description.t ->
  Engine.run_log

val concurrent_root :
  Qc_util.Prng.t -> Quorum.Description.t -> extra_tops:int ->
  Quorum.Description.t
(** Rebuild a description for maximal concurrency: the root requests
    all top-level transactions unordered, with [extra_tops] additional
    random ones. *)

val run_and_check :
  ?params:Quorum.Gen.params ->
  ?abort_rate:float ->
  ?max_steps:int ->
  ?extra_tops:int ->
  ?mode:Engine.mode ->
  seed:int ->
  unit ->
  (report, string) result
