(** The Theorem 11 oracle: one-copy serializability at the logical
    level.  Replays the recorded logical events against a
    non-replicated serial store in the concurrency control's witness
    order, considering only non-orphan events, and checks every read,
    the final replicated state, and the replication invariant. *)

type mismatch = { what : string; detail : string }

val check : Quorum.Description.t -> Engine.run_log -> (unit, mismatch) result
