(** A concurrent (non-serial) execution engine for replicated
    nested-transaction systems — the "system C" of Theorem 11.  Runs
    the same user scripts as the serial systems with real concurrency
    (seeded interleavings, quorum rounds against shared DMs, injected
    and deadlock-victim aborts), arbitrated at the copy level by a
    pluggable concurrency control. *)

open Ioa
module Item = Quorum.Item
module Description = Quorum.Description

type outcome = Committed of Value.t | Aborted

(** Which copy-level concurrency control arbitrates the run.  [`NoCC]
    exists for ablations and oracle mutation tests — with racing
    transactions the Theorem 11 check is then expected to fail. *)
type mode = [ `TwoPL | `Mvto | `NoCC ]

(** One logical-level event, recorded at TM (or raw access) commit
    time; [top] is the enclosing top-level transaction. *)
type event =
  | ERead of { top : Txn.t; tm : Txn.t; item : string; value : Value.t }
  | EWrite of { top : Txn.t; tm : Txn.t; item : string; value : Value.t }
  | ERawRead of { top : Txn.t; access : Txn.t; obj : string; value : Value.t }
  | ERawWrite of { top : Txn.t; access : Txn.t; obj : string; value : Value.t }

type t
(** Engine state. *)

val create : ?abort_rate:float -> ?mode:mode -> seed:int -> Description.t -> t

type run_log = {
  events : event list;  (** in execution order *)
  commit_order : Txn.t list;  (** top-level commit order *)
  serial_order : Txn.t list;
      (** the witness serialization order the CC guarantees: commit
          order for 2PL, timestamp order for MVTO *)
  outcomes : (Txn.t * outcome) list;  (** every node's final outcome *)
  final_dms : (string * Value.t) list;  (** committed DM values *)
  final_raws : (string * Value.t) list;
  steps : int;
  peak_concurrency : int;
  residual_locks : int;
}

val run : ?max_steps:int -> t -> run_log
(** Run until every top-level transaction finished (or the bound). *)
