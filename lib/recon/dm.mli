(** Reconfigurable data managers (paper Section 4): value + version
    number + configuration + generation number, with partial-update
    write accesses (data part or configuration part), expressed via
    {!Serial.Rw_object}'s merge parameter. *)

open Ioa

val merge : current:Value.t -> Value.t -> Value.t
(** [Versioned] payloads update (version, data); [Gen_config] payloads
    update (generation, config); full [Recon_state] replaces. *)

val make : item:Item.t -> name:string -> unit -> Component.t

val state_after : item:Item.t -> name:string -> Schedule.t -> Value.recon_state
(** Reconstruct the replica's state from a schedule. *)
