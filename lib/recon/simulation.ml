(** The Section 4 analogue of the Theorem 10 simulation checker:
    every schedule of the reconfigurable replicated serial system,
    with all replica accesses, coordinators, and reconfigure-TM
    subtrees erased, must replay as a schedule of the non-replicated
    serial system A — and every user transaction's view must be
    preserved.  Reconfiguration is thereby checked to be transparent:
    system A has no notion of configurations at all. *)

open Ioa

let project (d : Description.t) (sched : Schedule.t) : Schedule.t =
  Schedule.erase (Description.erased_in_projection d) sched

let ( let* ) = Result.bind

let check (d : Description.t) (beta : Schedule.t) : (unit, string) result =
  let alpha = project d beta in
  let plain = Description.to_plain d in
  let* () =
    match System.replay (Quorum.System_a.build plain) alpha with
    | Ok _ -> Ok ()
    | Error e ->
        Error
          (Fmt.str "recon simulation: projection does not replay on A: %s" e)
  in
  let views_agree =
    List.for_all
      (fun u ->
        (* the user's view must be identical modulo the erased
           reconfigure-TM returns, which the user never sees by
           construction: compare full views in alpha against
           recon-erased views in beta *)
        Schedule.equal (Schedule.view_of u alpha)
          (Schedule.project
             (fun a -> not (Description.erased_in_projection d (Action.txn a)))
             (Schedule.view_of u beta)))
      (Description.user_txns d)
  in
  if views_agree then Ok ()
  else Error "recon simulation: a user transaction's view differs"
