(** Logical data items for the reconfigurable algorithm (Section 4).

    In addition to the fixed-configuration data, a reconfigurable item
    fixes the configuration all replicas hold initially (at generation
    0) and the menu of candidate configurations the spies may install
    at run time.  Every candidate must be legal over [dm(x)]. *)

open Ioa
module Config = Quorum.Config

type t = {
  name : string;
  dms : string list;
  initial : Value.t;  (** [i_x] *)
  initial_config : Config.t;  (** generation-0 configuration *)
  candidates : Config.t list;  (** configurations reconfiguration may install *)
}

let make ~name ~dms ~initial ~initial_config ~candidates =
  let check c =
    if not (Config.legal c) then
      invalid_arg (Fmt.str "Recon.Item.make %s: illegal configuration" name);
    if not (List.for_all (fun d -> List.mem d dms) (Config.members c)) then
      invalid_arg
        (Fmt.str "Recon.Item.make %s: configuration mentions foreign DMs" name)
  in
  check initial_config;
  List.iter check candidates;
  (* deduplicate: a repeated candidate would create duplicate
     reconfigure-TM components *)
  let candidates =
    List.fold_left
      (fun acc c -> if List.exists (Config.equal c) acc then acc else acc @ [ c ])
      [] candidates
  in
  { name; dms; initial; initial_config; candidates }

(** Initial replica state: version 0, [i_x], generation 0, the
    initial configuration (Section 4: "all replicas of x initially
    hold the same configuration and generation number"). *)
let dm_initial t =
  Value.Recon_state
    { version = 0; data = t.initial; generation = 0; config = t.initial_config }
