(** Reconfigurable data managers (Section 4).

    Each replica of [x] holds a value, a version number, a
    configuration and a generation number.  Read accesses return the
    whole state.  Write accesses update {e part} of the state,
    selected by the payload carried in the access's name:
    - a [Versioned (vn, v)] payload installs new data (a logical
      write, or the data-copying phase of a reconfiguration);
    - a [Gen_config] payload installs a new configuration and
      generation (the announcement phase of a reconfiguration);
    - a full [Recon_state] payload replaces everything (unused by the
      algorithm, kept for generality).

    The partial update is expressed through {!Serial.Rw_object}'s
    [merge] parameter, so a recon-DM is still a Section 2.3 read-write
    object. *)

open Ioa

let merge ~current written =
  match (current, written) with
  | Value.Recon_state s, Value.Versioned (version, data) ->
      Value.Recon_state { s with version; data }
  | Value.Recon_state s, Value.Gen_config { gen; cfg } ->
      Value.Recon_state { s with generation = gen; config = cfg }
  | _, w -> w

let make ~(item : Item.t) ~name () : Component.t =
  Serial.Rw_object.make ~name ~initial:(Item.dm_initial item) ~merge ()

(** Reconstruct a recon-DM's state from a schedule (cf.
    {!Serial.Rw_object.data_after}). *)
let state_after ~(item : Item.t) ~name sched =
  match
    Serial.Rw_object.data_after ~name ~initial:(Item.dm_initial item) ~merge
      sched
  with
  | Value.Recon_state s -> s
  | v ->
      (* only reachable through a full-replacement write *)
      { version = 0; data = v; generation = 0; config = item.Item.initial_config }
