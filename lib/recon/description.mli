(** Descriptions of reconfigurable replicated systems (Section 4). *)

open Ioa
module Config = Quorum.Config

type t = {
  items : Item.t list;
  raw_objects : (string * Value.t) list;
  root_script : Serial.User_txn.script;
  max_recons_per_txn : int;  (** reconfigurations each spy may fire *)
}

val item : t -> string -> Item.t option
val all_dm_names : t -> string list
val raw_names : t -> string list

type role =
  | User
  | Tm of Item.t * Tm.kind
  | Coordinator of Item.t
  | Replica_access of Item.t
  | Raw_access

val role_of : t -> Txn.t -> role option

val is_access_b : t -> Txn.t -> bool
(** Accesses of the reconfigurable system: replica + raw accesses. *)

val erased_in_projection : t -> Txn.t -> bool
(** What the simulation onto system A erases: replica accesses,
    coordinators, and whole reconfigure-TM subtrees. *)

val to_plain : t -> Quorum.Description.t
(** The corresponding fixed-quorum description used to build system A. *)

val user_txns : t -> Txn.t list
val tm_names : t -> (Txn.t * Item.t * Tm.kind) list
val recon_tm_names : t -> (Txn.t * Item.t * Config.t) list
(** All statically-enumerable reconfigure-TM names (user x item
    candidate x slot). *)
