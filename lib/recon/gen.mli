(** Random generation of reconfigurable system descriptions. *)

type params = {
  max_items : int;
  max_dms : int;
  max_depth : int;
  max_children : int;
  max_candidates : int;
  max_recons_per_txn : int;
}

val default_params : params
val config : Qc_util.Prng.t -> string list -> Quorum.Config.t
val description : ?params:params -> Qc_util.Prng.t -> Description.t
