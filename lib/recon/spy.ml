(** Spy automata (Section 4).

    Reconfigure-TMs should be children of user transactions (to get
    the right atomicity: reconfiguration may happen between two of the
    user's logical accesses) but must run spontaneously and
    transparently — user programs neither invoke them nor see their
    returns.  The paper solves this modelling conflict by associating
    a {e spy} automaton with each user transaction: "the spy wakes up
    with the associated transaction and nondeterministically invokes
    reconfigure-TMs until the associated transaction requests to
    commit".

    Concretely, the spy's inputs are CREATE(U) and REQUEST_COMMIT(U,v)
    (both operations of U, shared by identification) plus the returns
    of the reconfigure-TMs it spawned; its outputs are the
    REQUEST_CREATE operations of those reconfigure-TMs.  Jointly, U
    and spy(U) behave like a single well-formed transaction automaton
    for U.  The spy stops requesting once U has requested to commit,
    preserving well-formedness of U's combined projection. *)

open Ioa
module Config = Quorum.Config

type state = {
  user : Txn.t;
  menu : (Item.t * Config.t) list;  (** reconfigurations it may fire *)
  max_recons : int;
  awake : bool;
  stopped : bool;  (** U has requested to commit *)
  requested : Txn.t list;  (** recon-TMs requested so far *)
}

let recon_children st =
  (* one candidate name per (item, config) pair and slot *)
  List.concat_map
    (fun (item, config) ->
      List.init st.max_recons (fun slot ->
          Tm.recon_name ~parent:st.user ~item:item.Item.name ~config ~slot))
    st.menu

let is_my_recon st t =
  (not (Txn.is_root t))
  && Txn.equal (Txn.parent t) st.user
  && Tm.is_recon_tm t

let transition (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when Txn.equal t st.user -> Some { st with awake = true }
  | Action.Request_commit (t, _) when Txn.equal t st.user ->
      Some { st with stopped = true }
  | Action.Request_create t when is_my_recon st t ->
      if
        st.awake && (not st.stopped)
        && (not (List.exists (Txn.equal t) st.requested))
        && List.length st.requested < st.max_recons
        && List.exists (Txn.equal t) (recon_children st)
      then Some { st with requested = t :: st.requested }
      else None
  | Action.Commit (t, _) | Action.Abort t ->
      if is_my_recon st t then Some st else None
  | _ -> None

let enabled (st : state) : Action.t list =
  if (not st.awake) || st.stopped || List.length st.requested >= st.max_recons
  then []
  else
    List.filter_map
      (fun t ->
        if List.exists (Txn.equal t) st.requested then None
        else Some (Action.Request_create t))
      (recon_children st)

(** [make ~user ~menu ()] attaches a spy to user transaction [user]
    able to fire at most [max_recons] reconfigurations drawn from
    [menu]. *)
let make ~(user : Txn.t) ~(menu : (Item.t * Config.t) list)
    ?(max_recons = 1) () : Component.t =
  let state =
    { user; menu; max_recons; awake = false; stopped = false; requested = [] }
  in
  Automaton.make
    ~name:(Fmt.str "spy:%s" (Txn.to_string user))
    ~is_input:(fun a ->
      match a with
      | Action.Create t | Action.Request_commit (t, _) -> Txn.equal t user
      | Action.Commit (t, _) | Action.Abort t -> is_my_recon state t
      | Action.Request_create _ -> false)
    ~is_output:(fun a ->
      match a with
      | Action.Request_create t -> is_my_recon state t
      | _ -> false)
    ~state ~transition ~enabled
    ~pp:(fun st ->
      Fmt.str "spy %a: awake=%b stopped=%b fired=%d" Txn.pp st.user st.awake
        st.stopped (List.length st.requested))
    ()
