(** Descriptions of reconfigurable replicated systems (Section 4). *)

open Ioa
module Config = Quorum.Config

type t = {
  items : Item.t list;
  raw_objects : (string * Value.t) list;
  root_script : Serial.User_txn.script;
  max_recons_per_txn : int;
      (** how many reconfigurations each spy may fire *)
}

let item t name = List.find_opt (fun i -> String.equal i.Item.name name) t.items
let all_dm_names t = List.concat_map (fun i -> i.Item.dms) t.items
let raw_names t = List.map fst t.raw_objects

(** How a transaction name is interpreted in the reconfigurable
    replicated system. *)
type role =
  | User
  | Tm of Item.t * Tm.kind  (** read-, write-, or reconfigure-TM *)
  | Coordinator of Item.t
  | Replica_access of Item.t
  | Raw_access

let role_of t (txn : Txn.t) : role option =
  match Tm.recon_info txn with
  | Some (item_name, config, _) -> (
      match item t item_name with
      | Some i -> Some (Tm (i, Tm.Reconfigure config))
      | None -> None)
  | None -> (
      match Txn.last_seg txn with
      | Some (Txn.Param _) when Coordinator.is_coordinator txn -> (
          (* a coordinator: its parent is a TM; find the item *)
          let parent = Txn.parent txn in
          match Txn.obj_of parent with
          | Some obj -> (
              match item t obj with
              | Some i -> Some (Coordinator i)
              | None -> None)
          | None -> (
              match Tm.recon_info parent with
              | Some (item_name, _, _) -> (
                  match item t item_name with
                  | Some i -> Some (Coordinator i)
                  | None -> None)
              | None -> None))
      | _ -> (
          match Txn.obj_of txn with
          | None -> Some User
          | Some obj -> (
              match item t obj with
              | Some i -> (
                  match Txn.kind_of txn with
                  | Some Txn.Read -> Some (Tm (i, Tm.Read))
                  | Some Txn.Write -> (
                      match Txn.data_of txn with
                      | Some v -> Some (Tm (i, Tm.Write v))
                      | None -> None)
                  | None -> None)
              | None -> (
                  match
                    List.find_opt (fun i -> List.mem obj i.Item.dms) t.items
                  with
                  | Some owner -> Some (Replica_access owner)
                  | None ->
                      if List.mem obj (raw_names t) then Some Raw_access
                      else None))))

(** Accesses of the reconfigurable system B': replica accesses (the
    coordinators' children) and raw accesses. *)
let is_access_b t txn =
  match role_of t txn with
  | Some (Replica_access _) | Some Raw_access -> true
  | _ -> false

(** Operations to erase when projecting onto the non-replicated
    system A: everything below the logical level — replica accesses,
    coordinators, and whole reconfigure-TM subtrees (their
    REQUEST_CREATE/returns included, since reconfiguration does not
    exist in A). *)
let erased_in_projection t txn =
  match role_of t txn with
  | Some (Replica_access _) | Some (Coordinator _) -> true
  | Some (Tm (_, Tm.Reconfigure _)) -> true
  | _ ->
      (* also erase descendants of reconfigure-TMs (their coordinators
         are caught above via the parent chain, but be safe) *)
      List.exists
        (fun n ->
          match Tm.recon_info (List.filteri (fun i _ -> i < n) txn) with
          | Some _ -> true
          | None -> false)
        (List.init (List.length txn) (fun i -> i + 1))

(** The corresponding fixed-quorum description of system A: each item
    becomes a single-object logical item.  Only [System_a.build] uses
    it, so the configuration recorded is irrelevant (any legal one). *)
let to_plain (t : t) : Quorum.Description.t =
  {
    Quorum.Description.items =
      List.map
        (fun (i : Item.t) ->
          Quorum.Item.make ~name:i.Item.name ~dms:i.Item.dms
            ~config:(Config.majority i.Item.dms) ~initial:i.Item.initial)
        t.items;
    raw_objects = t.raw_objects;
    root_script = t.root_script;
  }

(** All user-transaction names (root included). *)
let user_txns (t : t) : Txn.t list =
  let rec go self (s : Serial.User_txn.script) =
    self
    :: List.concat_map
         (function
           | Serial.User_txn.Access_child _ -> []
           | Serial.User_txn.Sub (name, sub) ->
               go (Txn.child self (Txn.Seg name)) sub)
         s.Serial.User_txn.children
  in
  go Txn.root t.root_script

(** Scripted logical accesses (read-/write-TM names) with their items. *)
let tm_names (t : t) : (Txn.t * Item.t * Tm.kind) list =
  Serial.User_txn.access_children ~self:Txn.root t.root_script
  |> List.filter_map (fun a ->
         match (Txn.obj_of a, Txn.kind_of a) with
         | Some obj, Some k -> (
             match item t obj with
             | Some i ->
                 let kind =
                   match k with
                   | Txn.Read -> Tm.Read
                   | Txn.Write ->
                       Tm.Write
                         (match Txn.data_of a with Some v -> v | None -> Value.Nil)
                 in
                 Some (a, i, kind)
             | None -> None)
         | _ -> None)

(** All statically-enumerable reconfigure-TM names: one per user
    transaction, item candidate, and slot. *)
let recon_tm_names (t : t) : (Txn.t * Item.t * Config.t) list =
  List.concat_map
    (fun user ->
      List.concat_map
        (fun (i : Item.t) ->
          List.concat_map
            (fun config ->
              List.init t.max_recons_per_txn (fun slot ->
                  ( Tm.recon_name ~parent:user ~item:i.Item.name ~config ~slot,
                    i,
                    config )))
            i.Item.candidates)
        t.items)
    (user_txns t)
