(** Coordinators (Section 4): "we separate the read, write, and
    reconfigure tasks of the TMs into modules called coordinators.
    This is done most naturally by introducing another level of
    nesting."

    Two coordinator shapes suffice for all three TM kinds:

    - a {e query} coordinator reads DMs, keeping the value with the
      highest version number and the configuration with the highest
      generation number, until the highest-generation configuration
      seen has a read-quorum among the DMs read; it then returns the
      collected summary as a [Recon_state] value.  This is the common
      read phase of Gifford's logical read, logical write, and
      reconfigure operations.

    - a {e push} coordinator writes a payload (either data
      [(version, value)] or a configuration announcement
      [(generation, configuration)]) to the DMs until some
      write-quorum of its {e target} configuration has acknowledged;
      it then returns [nil].  Pushing data to a write-quorum of the
      discovered configuration is the write phase of a logical write;
      a reconfiguration pushes data to a write-quorum of the {e new}
      configuration, then the configuration announcement to a
      write-quorum of the {e old} one.

    Coordinator names carry their parameters ([Param] segments):
    query coordinators are [query(k)] (attempt number), push
    coordinators [push([payload; target; slot])].  Because payloads
    are computed at run time, coordinators are hosted by an
    {!Ioa.Family} per TM. *)

open Ioa
module Config = Quorum.Config

(** {1 Name construction and parsing} *)

let query_name ~tm ~attempt =
  Txn.child tm (Txn.Param ("query", Value.Int attempt))

let push_name ~tm ~payload ~target ~slot =
  Txn.child tm
    (Txn.Param ("push", Value.List [ payload; Value.Config target; Value.Int slot ]))

type role = Query | Push of { payload : Value.t; target : Config.t }

let role_of (t : Txn.t) : role option =
  match Txn.last_seg t with
  | Some (Txn.Param ("query", _)) -> Some Query
  | Some (Txn.Param ("push", Value.List [ payload; Value.Config target; Value.Int _ ]))
    ->
      Some (Push { payload; target })
  | _ -> None

let is_coordinator t = role_of t <> None

(** {1 The member automaton} *)

type state = {
  self : Txn.t;
  item : Item.t;
  max_attempts : int;
  awake : bool;
  done_ : bool;
  requested : Txn.Set.t;
  (* query phase data *)
  best_vn : int;
  best_value : Value.t;
  best_gen : int;
  best_config : Config.t option;
  read : string list;
  (* push phase data *)
  written : string list;
}

let init ~(item : Item.t) ~max_attempts (self : Txn.t) : state =
  {
    self;
    item;
    max_attempts;
    awake = false;
    done_ = false;
    requested = Txn.Set.empty;
    best_vn = -1;
    best_value = item.Item.initial;
    best_gen = -1;
    best_config = None;
    read = [];
    written = [];
  }

let attempts_at st d =
  Txn.Set.fold
    (fun t acc ->
      match Txn.obj_of t with
      | Some o when String.equal o d -> acc + 1
      | _ -> acc)
    st.requested 0

let is_child_access st t =
  (not (Txn.is_root t))
  && Txn.equal (Txn.parent t) st.self
  && List.exists (fun d -> Txn.obj_of t = Some d) st.item.Item.dms

(* A query is complete when the highest-generation configuration seen
   has a read-quorum within the DMs already read. *)
let query_complete st =
  match st.best_config with
  | Some c -> Config.read_covered c st.read
  | None -> false

let query_summary st =
  Value.Recon_state
    {
      version = max st.best_vn 0;
      data = st.best_value;
      generation = max st.best_gen 0;
      config =
        (match st.best_config with
        | Some c -> c
        | None -> st.item.Item.initial_config);
    }

let push_complete ~target st = Config.write_covered target st.written

let transition (st : state) (a : Action.t) : state option =
  let role = role_of st.self in
  match a with
  | Action.Create t when Txn.equal t st.self -> Some { st with awake = true }
  | Action.Request_create t when is_child_access st t -> (
      if (not st.awake) || Txn.Set.mem t st.requested then None
      else
        match (role, Txn.kind_of t) with
        | Some Query, Some Txn.Read ->
            Some { st with requested = Txn.Set.add t st.requested }
        | Some (Push { payload; _ }), Some Txn.Write
          when Option.fold ~none:false
                 ~some:(fun d -> Value.equal d payload)
                 (Txn.data_of t) ->
            Some { st with requested = Txn.Set.add t st.requested }
        | _ -> None)
  | Action.Commit (t, v) when is_child_access st t -> (
      let dm = Option.get (Txn.obj_of t) in
      match role with
      | Some Query -> (
          let read = if List.mem dm st.read then st.read else dm :: st.read in
          match v with
          | Value.Recon_state { version; data; generation; config } ->
              let st = { st with read } in
              let st =
                if version > st.best_vn then
                  { st with best_vn = version; best_value = data }
                else st
              in
              let st =
                if generation > st.best_gen then
                  { st with best_gen = generation; best_config = Some config }
                else st
              in
              Some st
          | _ -> Some { st with read })
      | Some (Push _) ->
          let written =
            if List.mem dm st.written then st.written else dm :: st.written
          in
          Some { st with written }
      | None -> None)
  | Action.Abort t when is_child_access st t -> Some st
  | Action.Request_commit (t, v) when Txn.equal t st.self -> (
      match role with
      | Some Query ->
          if st.awake && (not st.done_) && query_complete st
             && Value.equal v (query_summary st)
          then Some { st with done_ = true; awake = false }
          else None
      | Some (Push { target; _ }) ->
          if st.awake && (not st.done_) && push_complete ~target st
             && Value.equal v Value.Nil
          then Some { st with done_ = true; awake = false }
          else None
      | None -> None)
  | _ -> None

let enabled (st : state) : Action.t list =
  if (not st.awake) || st.done_ then []
  else
    match role_of st.self with
    | Some Query ->
        let reqs =
          if query_complete st then []
          else
            List.filter_map
              (fun d ->
                let n = attempts_at st d in
                if n < st.max_attempts then
                  Some
                    (Action.Request_create
                       (Txn.child st.self
                          (Txn.Access
                             { obj = d; kind = Txn.Read; data = Value.Nil; seq = n })))
                else None)
              st.item.Item.dms
        in
        let finish =
          if query_complete st then
            [ Action.Request_commit (st.self, query_summary st) ]
          else []
        in
        reqs @ finish
    | Some (Push { payload; target }) ->
        let reqs =
          if push_complete ~target st then []
          else
            List.filter_map
              (fun d ->
                let n = attempts_at st d in
                if n < st.max_attempts then
                  Some
                    (Action.Request_create
                       (Txn.child st.self
                          (Txn.Access
                             { obj = d; kind = Txn.Write; data = payload; seq = n })))
                else None)
              (Config.members target)
        in
        let finish =
          if push_complete ~target st then
            [ Action.Request_commit (st.self, Value.Nil) ]
          else []
        in
        reqs @ finish
    | None -> []

(** The family of all coordinators under one TM. *)
let family ~(tm : Txn.t) ~(item : Item.t) ?(max_attempts = 3) () :
    Component.t =
  let member t =
    (not (Txn.is_root t)) && Txn.equal (Txn.parent t) tm && is_coordinator t
  in
  let spec =
    {
      Family.init = init ~item ~max_attempts;
      transition;
      enabled;
      m_is_input =
        (fun m a ->
          match a with
          | Action.Create t -> Txn.equal t m
          | Action.Commit (t, _) | Action.Abort t ->
              (not (Txn.is_root t)) && Txn.equal (Txn.parent t) m
          | Action.Request_create _ | Action.Request_commit _ -> false);
      m_is_output =
        (fun m a ->
          match a with
          | Action.Request_create t ->
              (not (Txn.is_root t)) && Txn.equal (Txn.parent t) m
          | Action.Request_commit (t, _) -> Txn.equal t m
          | Action.Create _ | Action.Commit _ | Action.Abort _ -> false);
    }
  in
  Family.make ~name:(Fmt.str "coords:%s" (Txn.to_string tm)) ~member spec
