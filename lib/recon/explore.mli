(** Exhaustive exploration of the reconfigurable system (Section 4):
    every schedule of a small instance, spy-fired reconfigurations
    included, checked against well-formedness and the invariants. *)

val check_description :
  ?budget:int -> ?include_aborts:bool -> ?max_attempts:int -> Description.t ->
  Quorum.Explore.stats
