(** Transaction managers for the reconfigurable algorithm
    (paper Section 4), built on coordinators:
    - read-TM: query, return the value;
    - write-TM: query, push (vn+1, value) to a write-quorum of the
      discovered configuration, return nil;
    - reconfigure-TM (parameterized by the new configuration): query,
      push the current data to a write-quorum of the {e new}
      configuration, push (generation+1, new-config) to a write-quorum
      of the {e old} one (the paper's footnote 6 simplification),
      return nil. *)

open Ioa
module Config = Quorum.Config

type kind = Read | Write of Value.t | Reconfigure of Config.t

val recon_name :
  parent:Txn.t -> item:string -> config:Config.t -> slot:int -> Txn.t
(** The name of a reconfigure-TM child of [parent]. *)

val recon_info : Txn.t -> (string * Config.t * int) option
(** Parse a reconfigure-TM name: (item, new config, slot). *)

val is_recon_tm : Txn.t -> bool

val make :
  self:Txn.t -> item:Item.t -> kind:kind -> ?max_attempts:int -> unit ->
  Component.t list
(** The TM component paired with its coordinator family. *)
