(** The Section 4 analogues of Lemmas 6/7/8, configuration-aware:
    after every complete logical operation, some write-quorum of the
    current (highest-generation) configuration holds the data at
    current-vn; DMs at current-vn hold logical-state; read-TMs return
    logical-state. *)

open Ioa

type state
(** Incremental checker state. *)

val init : Description.t -> state
val step : state -> Action.t -> (state, string) result

val check : Description.t -> Schedule.t -> (unit, string) result
val final_logical_states : Description.t -> Schedule.t -> (string * Value.t) list
