(** End-to-end harness for the reconfigurable system: run, then check
    well-formedness, the Section 4 invariants, and the simulation onto
    system A. *)

open Ioa
module Prng = Qc_util.Prng

let run ?(max_steps = 40_000) ?(abort_rate = 0.05) ~seed (d : Description.t) :
    System.run_result =
  let rng = Prng.create seed in
  let strategy =
    Quorum.Harness.abort_damped ~abort_rate (System.completion_biased ())
  in
  System.run ~max_steps ~strategy ~rng (System_b.build d)

type report = {
  seed : int;
  steps : int;
  quiescent : bool;
  recons_fired : int;
  logical_states : (string * Value.t) list;
}

let ( let* ) = Result.bind

let count_recons (sched : Schedule.t) =
  List.length
    (List.filter
       (function
         | Action.Request_commit (t, _) -> Tm.is_recon_tm t
         | _ -> false)
       sched)

let check_all (d : Description.t) (sched : Schedule.t) : (unit, string) result
    =
  let* () =
    Result.map_error
      (fun e -> "recon well-formedness: " ^ e)
      (System_b.check_wellformed d sched)
  in
  let* () = Invariants.check d sched in
  Simulation.check d sched

let run_and_check ?(params = Gen.default_params) ?(max_steps = 40_000)
    ?(abort_rate = 0.05) ~seed () : (report, string) result =
  let rng = Prng.create seed in
  let d = Gen.description ~params rng in
  let run_res = run ~max_steps ~abort_rate ~seed:(seed lxor 0x5eed) d in
  let* () =
    Result.map_error
      (fun e -> Fmt.str "recon seed %d: %s" seed e)
      (check_all d run_res.System.schedule)
  in
  Ok
    {
      seed;
      steps = Schedule.length run_res.System.schedule;
      quiescent = run_res.System.quiescent;
      recons_fired = count_recons run_res.System.schedule;
      logical_states = Invariants.final_logical_states d run_res.System.schedule;
    }
