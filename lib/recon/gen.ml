(** Random generation of reconfigurable system descriptions. *)

open Ioa
module Prng = Qc_util.Prng
module Config = Quorum.Config

type params = {
  max_items : int;
  max_dms : int;
  max_depth : int;
  max_children : int;
  max_candidates : int;
  max_recons_per_txn : int;
}

let default_params =
  {
    max_items = 2;
    max_dms = 4;
    max_depth = 2;
    max_children = 3;
    max_candidates = 2;
    max_recons_per_txn = 1;
  }

let config rng dms =
  match Prng.int rng 4 with
  | 0 -> Config.rowa dms
  | 1 -> Config.raow dms
  | 2 -> Config.majority dms
  | _ ->
      let core = Prng.choose rng dms in
      let quorums () =
        let n = 1 + Prng.int rng 2 in
        List.init n (fun _ ->
            core :: Prng.subset rng (List.filter (( <> ) core) dms) ~p:0.5)
      in
      Config.make ~read_quorums:(quorums ()) ~write_quorums:(quorums ())

let item rng ~params i =
  let name = Fmt.str "x%d" i in
  let n_dms = 2 + Prng.int rng (params.max_dms - 1) in
  let dms = List.init n_dms (fun j -> Fmt.str "%s_d%d" name j) in
  let n_cands = 1 + Prng.int rng params.max_candidates in
  Item.make ~name ~dms ~initial:(Value.Int (Prng.int rng 100))
    ~initial_config:(config rng dms)
    ~candidates:(List.init n_cands (fun _ -> config rng dms))

let rec script rng ~params ~items ~depth ~label : Serial.User_txn.script =
  let n = 1 + Prng.int rng params.max_children in
  let children =
    List.init n (fun idx ->
        match Prng.int rng (if depth > 0 then 3 else 2) with
        | 0 ->
            let it : Item.t = Prng.choose rng items in
            Serial.User_txn.Access_child
              (Txn.Access
                 { obj = it.Item.name; kind = Txn.Read; data = Value.Nil; seq = idx })
        | 1 ->
            let it : Item.t = Prng.choose rng items in
            Serial.User_txn.Access_child
              (Txn.Access
                 {
                   obj = it.Item.name;
                   kind = Txn.Write;
                   data = Value.Int (Prng.int rng 1_000_000);
                   seq = idx;
                 })
        | _ ->
            let sub_label = Fmt.str "%s_u%d" label idx in
            Serial.User_txn.Sub
              (sub_label, script rng ~params ~items ~depth:(depth - 1) ~label:sub_label))
  in
  {
    Serial.User_txn.children;
    ordered = Prng.bool rng;
    eager = Prng.float rng < 0.2;
    returns = Serial.User_txn.return_all;
  }

let description ?(params = default_params) rng : Description.t =
  let n_items = 1 + Prng.int rng params.max_items in
  let items = List.init n_items (fun i -> item rng ~params i) in
  let top = 1 + Prng.int rng 2 in
  let children =
    List.init top (fun idx ->
        let label = Fmt.str "top%d" idx in
        Serial.User_txn.Sub
          (label, script rng ~params ~items ~depth:params.max_depth ~label))
  in
  {
    Description.items;
    raw_objects = [];
    root_script =
      {
        Serial.User_txn.children;
        ordered = Prng.bool rng;
        eager = false;
        returns = Serial.User_txn.return_nil;
      };
    max_recons_per_txn = params.max_recons_per_txn;
  }
