(** Coordinators (paper Section 4) — the extra nesting level
    separating the read, write and reconfigure tasks of the TMs.

    A {e query} coordinator reads DMs until the highest-generation
    configuration seen has a read-quorum among the DMs read, then
    returns the collected (version, value, generation, configuration)
    summary.  A {e push} coordinator writes a payload (data or
    configuration announcement) to a write-quorum of its target
    configuration.  Coordinator names carry their run-time-computed
    parameters, so they are hosted by an {!Ioa.Family} per TM. *)

open Ioa
module Config = Quorum.Config

val query_name : tm:Txn.t -> attempt:int -> Txn.t
val push_name : tm:Txn.t -> payload:Value.t -> target:Config.t -> slot:int -> Txn.t

type role = Query | Push of { payload : Value.t; target : Config.t }

val role_of : Txn.t -> role option
val is_coordinator : Txn.t -> bool

type state
(** One coordinator's automaton state (family member). *)

val family : tm:Txn.t -> item:Item.t -> ?max_attempts:int -> unit -> Component.t
(** The family of all coordinators under one TM. *)
