(** Invariant checkers for the reconfigurable algorithm — the
    Section 4 analogues of Lemmas 6/7/8.

    Definitions carried over from the fixed case, now configuration-
    aware:
    - [current-vn(x, b)]: highest version number among the DM states;
    - [current-config(x, b)]: the configuration with the highest
      generation number among the DM states;
    - [logical-state(x, b)]: the value of the last write-TM
      REQUEST_COMMIT (reconfigure-TMs do not change logical state).

    After every complete logical operation (even access-sequence
    length, where the access sequence counts read-, write- {e and}
    reconfigure-TM operations):
    - (1a') some write-quorum of current-config has every DM at
      current-vn — reconfiguration must copy data forward to the new
      configuration before announcing it;
    - (1b') every DM at current-vn holds logical-state;
    - (2') every read-TM REQUEST_COMMIT returns logical-state. *)

open Ioa
module Config = Quorum.Config

type item_track = {
  item : Item.t;
  dm_state : (string * Value.recon_state) list;
  access_len : int;
  pending_tm : Txn.t option;
  logical : Value.t;
}

let init_track (item : Item.t) =
  {
    item;
    dm_state =
      List.map
        (fun d ->
          ( d,
            {
              Value.version = 0;
              data = item.Item.initial;
              generation = 0;
              config = item.Item.initial_config;
            } ))
        item.Item.dms;
    access_len = 0;
    pending_tm = None;
    logical = item.Item.initial;
  }

let current_vn tr =
  List.fold_left (fun m (_, s) -> max m s.Value.version) 0 tr.dm_state

let current_config tr =
  let _, best =
    List.fold_left
      (fun ((g, _) as acc) (_, s) ->
        if s.Value.generation > g then (s.Value.generation, s.Value.config)
        else acc)
      (-1, tr.item.Item.initial_config)
      tr.dm_state
  in
  best

let fail fmt = Fmt.kstr (fun s -> Error s) fmt
let ( let* ) = Result.bind

let check_even_length tr =
  let cv = current_vn tr in
  let cc = current_config tr in
  let at_cv dm =
    match List.assoc_opt dm tr.dm_state with
    | Some s -> s.Value.version = cv
    | None -> false
  in
  let* () =
    if List.exists (fun q -> List.for_all at_cv q) cc.Value.write_quorums then
      Ok ()
    else
      fail
        "recon 1a' violated for %s: no write-quorum of the current \
         configuration is at current-vn %d"
        tr.item.Item.name cv
  in
  List.fold_left
    (fun acc (dm, s) ->
      let* () = acc in
      if s.Value.version = cv && not (Value.equal s.Value.data tr.logical)
      then
        fail "recon 1b' violated for %s: DM %s at vn %d holds %a, expected %a"
          tr.item.Item.name dm cv Value.pp s.Value.data Value.pp tr.logical
      else Ok ())
    (Ok ()) tr.dm_state

(* Is [t] a TM of this item (read/write/reconfigure)? *)
let tm_kind_of tr (txn : Txn.t) : Tm.kind option =
  match Tm.recon_info txn with
  | Some (item_name, config, _) when String.equal item_name tr.item.Item.name
    ->
      Some (Tm.Reconfigure config)
  | Some _ -> None
  | None -> (
      match (Txn.obj_of txn, Txn.kind_of txn) with
      | Some obj, Some k when String.equal obj tr.item.Item.name -> (
          match k with
          | Txn.Read -> Some Tm.Read
          | Txn.Write ->
              Some
                (Tm.Write
                   (match Txn.data_of txn with Some v -> v | None -> Value.Nil)))
      | _ -> None)

(* A committed write access to one of this item's DMs. *)
let replica_write tr (txn : Txn.t) : (string * Value.t) option =
  match (Txn.obj_of txn, Txn.kind_of txn, Txn.data_of txn) with
  | Some obj, Some Txn.Write, Some payload when List.mem obj tr.item.Item.dms
    ->
      Some (obj, payload)
  | _ -> None

let step_track tr (a : Action.t) : (item_track, string) result =
  match a with
  | Action.Create t when tm_kind_of tr t <> None -> (
      match tr.pending_tm with
      | Some p ->
          fail "recon Lemma 6 violated for %s: CREATE(%a) while %a pending"
            tr.item.Item.name Txn.pp t Txn.pp p
      | None ->
          Ok { tr with pending_tm = Some t; access_len = tr.access_len + 1 })
  | Action.Request_commit (t, v) -> (
      match tm_kind_of tr t with
      | Some kind -> (
          match tr.pending_tm with
          | Some p when Txn.equal p t -> (
              let tr =
                { tr with pending_tm = None; access_len = tr.access_len + 1 }
              in
              match kind with
              | Tm.Write value -> Ok { tr with logical = value }
              | Tm.Read ->
                  if Value.equal v tr.logical then Ok tr
                  else
                    fail
                      "recon 2' violated for %s: read-TM %a returned %a, \
                       logical-state is %a"
                      tr.item.Item.name Txn.pp t Value.pp v Value.pp tr.logical
              | Tm.Reconfigure _ -> Ok tr)
          | Some p ->
              fail
                "recon Lemma 6 violated for %s: REQUEST_COMMIT(%a) while %a \
                 pending"
                tr.item.Item.name Txn.pp t Txn.pp p
          | None ->
              fail
                "recon Lemma 6 violated for %s: REQUEST_COMMIT(%a) without \
                 CREATE"
                tr.item.Item.name Txn.pp t)
      | None -> (
          match replica_write tr t with
          | Some (dm, payload) ->
              let prev =
                match List.assoc_opt dm tr.dm_state with
                | Some s -> Value.Recon_state s
                | None -> Item.dm_initial tr.item
              in
              let merged = Dm.merge ~current:prev payload in
              let s =
                match merged with
                | Value.Recon_state s -> s
                | _ ->
                    {
                      Value.version = 0;
                      data = merged;
                      generation = 0;
                      config = tr.item.Item.initial_config;
                    }
              in
              Ok
                {
                  tr with
                  dm_state = (dm, s) :: List.remove_assoc dm tr.dm_state;
                }
          | None -> Ok tr))
  | _ -> Ok tr

(** Incremental interface (shared with the exhaustive explorer). *)
type state = item_track list

let init (d : Description.t) : state =
  List.map init_track d.Description.items

let step (trs : state) (a : Action.t) : (state, string) result =
  List.fold_left
    (fun acc tr ->
      let* trs = acc in
      let* tr = step_track tr a in
      let* () =
        if tr.access_len mod 2 = 0 then check_even_length tr else Ok ()
      in
      Ok (tr :: trs))
    (Ok []) trs
  |> Result.map List.rev

(** Fold a schedule of the reconfigurable system through all item
    trackers, checking the Section 4 invariants at every prefix. *)
let check (d : Description.t) (sched : Schedule.t) : (unit, string) result =
  let rec go trs i = function
    | [] -> Ok ()
    | a :: rest -> (
        match step trs a with
        | Ok trs -> go trs (i + 1) rest
        | Error e -> Error (Fmt.str "after step %d (%a): %s" i Action.pp a e))
  in
  go (init d) 0 sched

let final_logical_states (d : Description.t) (sched : Schedule.t) =
  List.map
    (fun (i : Item.t) ->
      let tr =
        List.fold_left
          (fun tr a ->
            match step_track tr a with Ok tr -> tr | Error _ -> tr)
          (init_track i) sched
      in
      (i.Item.name, tr.logical))
    d.Description.items
