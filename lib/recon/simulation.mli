(** The Section 4 analogue of the Theorem 10 checker: with replica
    accesses, coordinators and reconfigure-TM subtrees erased, every
    schedule of the reconfigurable system replays on the
    non-replicated system A with user views preserved —
    reconfiguration is transparent. *)

open Ioa

val project : Description.t -> Schedule.t -> Schedule.t
val check : Description.t -> Schedule.t -> (unit, string) result
