(** Spy automata (paper Section 4): attached to each user transaction,
    a spy wakes with it and nondeterministically requests
    reconfigure-TM children (drawn from a menu) until the transaction
    requests to commit — reconfigurations positioned as children of
    user transactions for atomicity, yet invisible to user code. *)

open Ioa
module Config = Quorum.Config

val make :
  user:Txn.t ->
  menu:(Item.t * Config.t) list ->
  ?max_recons:int ->
  unit ->
  Component.t
