(** Exhaustive exploration of the reconfigurable system's schedule
    space (cf. {!Quorum.Explore}): every schedule of a small instance
    — spy-fired reconfigurations included — checked against
    well-formedness and the Section 4 invariants. *)

open Ioa

let check_description ?(budget = 1_000_000) ?(include_aborts = false)
    ?(max_attempts = 1) (d : Description.t) : Quorum.Explore.stats =
  let filter =
    if include_aborts then fun _ -> true else Quorum.Explore.no_aborts
  in
  let ( let* ) = Result.bind in
  let checker =
    {
      Quorum.Explore.init =
        ( Wellformed.init ~is_access:(Description.is_access_b d),
          Invariants.init d );
      step =
        (fun (wf, inv) a ->
          let* wf = Wellformed.step wf a in
          let* inv = Invariants.step inv a in
          Ok (wf, inv));
    }
  in
  Quorum.Explore.run ~budget ~filter (System_b.build ~max_attempts d) checker
