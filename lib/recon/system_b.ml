(** The reconfigurable replicated serial system (Section 4's
    redefinition of system B).

    Components: the serial scheduler; the scripted user transactions;
    one spy per user transaction; read-/write-TMs for every scripted
    logical access and reconfigure-TMs for every spy menu entry (each
    TM paired with its coordinator family); and the reconfigurable
    DMs plus any raw basic objects. *)

open Ioa

let build ?(max_attempts = 3) (d : Description.t) : System.t =
  let scheduler = Serial.Scheduler.make () in
  let txns =
    Serial.User_txn.make_tree ~no_commit:true ~self:Txn.root d.root_script
  in
  let spies =
    List.map
      (fun user ->
        let menu =
          List.concat_map
            (fun (i : Item.t) ->
              List.map (fun c -> (i, c)) i.Item.candidates)
            d.Description.items
        in
        Spy.make ~user ~menu ~max_recons:d.Description.max_recons_per_txn ())
      (Description.user_txns d)
  in
  let logical_tms =
    List.concat_map
      (fun (name, item, kind) -> Tm.make ~self:name ~item ~kind ~max_attempts ())
      (Description.tm_names d)
  in
  let recon_tms =
    List.concat_map
      (fun (name, item, config) ->
        Tm.make ~self:name ~item ~kind:(Tm.Reconfigure config) ~max_attempts ())
      (Description.recon_tm_names d)
  in
  let dms =
    List.concat_map
      (fun (i : Item.t) ->
        List.map (fun name -> Dm.make ~item:i ~name ()) i.Item.dms)
      d.Description.items
  in
  let raws =
    List.map
      (fun (name, initial) -> Serial.Rw_object.make ~name ~initial ())
      d.Description.raw_objects
  in
  System.compose
    ((scheduler :: txns) @ spies @ logical_tms @ recon_tms @ dms @ raws)

let check_wellformed (d : Description.t) sched =
  Wellformed.check ~is_access:(Description.is_access_b d) sched
