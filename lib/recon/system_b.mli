(** The reconfigurable replicated serial system (Section 4's
    redefinition of system B): scheduler, user transactions, spies,
    read-/write-/reconfigure-TMs with coordinator families,
    reconfigurable DMs, raw objects. *)

val build : ?max_attempts:int -> Description.t -> Ioa.System.t
val check_wellformed : Description.t -> Ioa.Schedule.t -> (unit, string) result
