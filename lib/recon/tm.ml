(** Transaction managers for the reconfigurable algorithm (Section 4).

    All three TM kinds share one skeleton built on coordinators:

    - a {e read-TM} runs a query coordinator and returns the value it
      reports (the one with the highest version number, read from a
      read-quorum of the highest-generation configuration);
    - a {e write-TM} runs a query coordinator to learn (t, c), then a
      push coordinator installing [(t + 1, value(T))] on a
      write-quorum of [c], and returns [nil];
    - a {e reconfigure-TM} (parameterized by the new configuration
      [c']) runs a query to learn (v, t, c, g), then pushes the
      current data [(t, v)] to a write-quorum of the {e new}
      configuration [c'], then pushes the announcement [(g + 1, c')]
      to a write-quorum of the {e old} configuration [c] — following
      Gifford as simplified by the paper's footnote 6 (writing the new
      configuration to an old write-quorum only), and returns [nil].

    If a coordinator is aborted by the scheduler before being created,
    the TM retries with a fresh coordinator name (bounded attempts). *)

open Ioa
module Config = Quorum.Config

type kind = Read | Write of Value.t | Reconfigure of Config.t

(** The name of a reconfigure-TM for [item] installing [config], as a
    child of user transaction [parent].  [slot] distinguishes repeated
    reconfigurations by the same user transaction. *)
let recon_name ~parent ~item ~config ~slot =
  Txn.child parent
    (Txn.Param ("recon:" ^ item, Value.Pair (Value.Config config, Value.Int slot)))

let recon_info (t : Txn.t) : (string * Config.t * int) option =
  match Txn.last_seg t with
  | Some (Txn.Param (tag, Value.Pair (Value.Config c, Value.Int slot)))
    when String.length tag > 6 && String.sub tag 0 6 = "recon:" ->
      Some (String.sub tag 6 (String.length tag - 6), c, slot)
  | _ -> None

let is_recon_tm t = recon_info t <> None

(* The push stages of each TM kind, given the query result. *)
let stages ~kind (r : Value.recon_state) : (Value.t * Config.t) list =
  match kind with
  | Read -> []
  | Write v -> [ (Value.Versioned (r.Value.version + 1, v), r.Value.config) ]
  | Reconfigure c' ->
      [
        (Value.Versioned (r.Value.version, r.Value.data), c');
        ( Value.Gen_config { gen = r.Value.generation + 1; cfg = c' },
          r.Value.config );
      ]

type state = {
  self : Txn.t;
  item : Item.t;
  kind : kind;
  max_attempts : int;
  awake : bool;
  done_ : bool;
  q_requested : int;
  result : Value.recon_state option;
  push_requested : (Txn.t * int) list;  (** push coordinator name, stage *)
  completed_stages : int list;
}

let is_child st t =
  (not (Txn.is_root t)) && Txn.equal (Txn.parent t) st.self

let stage_attempts st stage =
  List.length (List.filter (fun (_, s) -> s = stage) st.push_requested)

let n_stages st =
  match st.result with
  | None -> ( match st.kind with Read -> 0 | Write _ -> 1 | Reconfigure _ -> 2)
  | Some r -> List.length (stages ~kind:st.kind r)

let stage_spec st stage =
  match st.result with
  | None -> None
  | Some r -> List.nth_opt (stages ~kind:st.kind r) stage

(* The next stage that may be worked on: the smallest incomplete one,
   available only once all earlier stages completed. *)
let current_stage st =
  match st.result with
  | None -> None
  | Some _ ->
      let rec go s =
        if s >= n_stages st then None
        else if List.mem s st.completed_stages then go (s + 1)
        else Some s
      in
      go 0

let all_pushes_done st =
  match st.result with
  | None -> false
  | Some _ -> current_stage st = None

let commit_value st =
  match (st.kind, st.result) with
  | Read, Some r -> Some r.Value.data
  | (Write _ | Reconfigure _), Some _ -> Some Value.Nil
  | _, None -> None

let can_request_commit st =
  st.awake && (not st.done_) && st.result <> None && all_pushes_done st

let transition (st : state) (a : Action.t) : state option =
  match a with
  | Action.Create t when Txn.equal t st.self -> Some { st with awake = true }
  | Action.Request_create t when is_child st t -> (
      if (not st.awake) || st.done_ then None
      else
        match Coordinator.role_of t with
        | Some Coordinator.Query -> (
            match Txn.last_seg t with
            | Some (Txn.Param (_, Value.Int k))
              when k = st.q_requested && st.result = None
                   && k < st.max_attempts ->
                Some { st with q_requested = st.q_requested + 1 }
            | _ -> None)
        | Some (Coordinator.Push { payload; target }) -> (
            match current_stage st with
            | Some stage -> (
                match stage_spec st stage with
                | Some (p, tg)
                  when Value.equal p payload && Config.equal tg target
                       && stage_attempts st stage < st.max_attempts
                       && not (List.mem_assoc t st.push_requested) ->
                    Some
                      { st with push_requested = (t, stage) :: st.push_requested }
                | _ -> None)
            | None -> None)
        | None -> None)
  | Action.Commit (t, v) when is_child st t -> (
      match Coordinator.role_of t with
      | Some Coordinator.Query -> (
          match (st.result, v) with
          | None, Value.Recon_state r -> Some { st with result = Some r }
          | _ -> Some st)
      | Some (Coordinator.Push _) -> (
          match List.assoc_opt t st.push_requested with
          | Some stage when not (List.mem stage st.completed_stages) ->
              Some { st with completed_stages = stage :: st.completed_stages }
          | _ -> Some st)
      | None -> Some st)
  | Action.Abort t when is_child st t -> Some st
  | Action.Request_commit (t, v) when Txn.equal t st.self -> (
      match commit_value st with
      | Some cv when can_request_commit st && Value.equal v cv ->
          Some { st with done_ = true; awake = false }
      | _ -> None)
  | _ -> None

let enabled (st : state) : Action.t list =
  if (not st.awake) || st.done_ then []
  else
    let queries =
      if st.result = None && st.q_requested < st.max_attempts then
        [ Action.Request_create
            (Coordinator.query_name ~tm:st.self ~attempt:st.q_requested) ]
      else []
    in
    let pushes =
      match current_stage st with
      | Some stage -> (
          match stage_spec st stage with
          | Some (payload, target) ->
              let n = stage_attempts st stage in
              if n < st.max_attempts then
                [ Action.Request_create
                    (Coordinator.push_name ~tm:st.self ~payload ~target
                       ~slot:((stage * st.max_attempts) + n)) ]
              else []
          | None -> [])
      | None -> []
    in
    let commit =
      match commit_value st with
      | Some cv when can_request_commit st ->
          [ Action.Request_commit (st.self, cv) ]
      | _ -> []
    in
    queries @ pushes @ commit

(** Build a TM component (and its coordinator family). *)
let make ~(self : Txn.t) ~(item : Item.t) ~(kind : kind) ?(max_attempts = 3)
    () : Component.t list =
  let state =
    {
      self;
      item;
      kind;
      max_attempts;
      awake = false;
      done_ = false;
      q_requested = 0;
      result = None;
      push_requested = [];
      completed_stages = [];
    }
  in
  let is_coord_child t = is_child state t && Coordinator.is_coordinator t in
  let tm =
    Automaton.make
      ~name:(Fmt.str "recon-tm:%s" (Txn.to_string self))
      ~is_input:(fun a ->
        match a with
        | Action.Create t -> Txn.equal t self
        | Action.Commit (t, _) | Action.Abort t -> is_coord_child t
        | Action.Request_create _ | Action.Request_commit _ -> false)
      ~is_output:(fun a ->
        match a with
        | Action.Request_create t -> is_coord_child t
        | Action.Request_commit (t, _) -> Txn.equal t self
        | Action.Create _ | Action.Commit _ | Action.Abort _ -> false)
      ~state ~transition ~enabled
      ~pp:(fun st ->
        Fmt.str "recon-tm %a: awake=%b result=%b stages=%d/%d" Txn.pp st.self
          st.awake (st.result <> None)
          (List.length st.completed_stages)
          (n_stages st))
      ()
  in
  [ tm; Coordinator.family ~tm:self ~item ~max_attempts () ]
