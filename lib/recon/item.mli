(** Logical items for the reconfigurable algorithm (paper Section 4):
    fixed-case data plus the generation-0 configuration and the menu
    of candidate configurations spies may install. *)

open Ioa
module Config = Quorum.Config

type t = {
  name : string;
  dms : string list;
  initial : Value.t;
  initial_config : Config.t;
  candidates : Config.t list;  (** deduplicated by {!make} *)
}

val make :
  name:string ->
  dms:string list ->
  initial:Value.t ->
  initial_config:Config.t ->
  candidates:Config.t list ->
  t
(** @raise Invalid_argument on illegal or foreign-DM configurations. *)

val dm_initial : t -> Value.t
(** [Recon_state { version = 0; data = i_x; generation = 0;
    config = initial_config }]. *)
