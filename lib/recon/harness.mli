(** End-to-end harness for the reconfigurable system: run, check
    well-formedness, the Section 4 invariants, and the simulation. *)

open Ioa

val run :
  ?max_steps:int -> ?abort_rate:float -> seed:int -> Description.t ->
  System.run_result

type report = {
  seed : int;
  steps : int;
  quiescent : bool;
  recons_fired : int;
  logical_states : (string * Value.t) list;
}

val count_recons : Schedule.t -> int
(** Committed reconfigure-TMs in a schedule. *)

val check_all : Description.t -> Schedule.t -> (unit, string) result

val run_and_check :
  ?params:Gen.params ->
  ?max_steps:int ->
  ?abort_rate:float ->
  seed:int ->
  unit ->
  (report, string) result
