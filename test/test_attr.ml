(* Causal trace propagation, latency attribution, and the health
   monitor: the causal stamps survive the engine / protocol / replica
   layers (including batch coalescing), every completed operation's
   phase decomposition sums to its wall latency, enabling any of it
   changes no simulation outcome, and the live health table renders
   deterministically. *)

module Trace = Obs.Trace
module Query = Obs.Query
module Attr = Obs.Attribution
module Health = Obs.Health

(* A deliberately hostile configuration: sharded, lossy (forces
   retries and backoff), bursty (forces batch coalescing), with a
   storage device (queue / apply / fsync phases), causally stamped. *)
let attr_params seed =
  {
    Store.Cluster.default_params with
    n_replicas = 3;
    n_clients = 4;
    n_shards = 2;
    seed;
    loss = 0.2;
    trace_capacity = 262144;
    trace_ctx = true;
    batch_window = Some 1.0;
    storage_cost = 0.05;
    fsync_cost = 2.0;
    policy =
      {
        Rpc.Policy.default with
        max_attempts = 3;
        attempt_timeout = 25.0;
        backoff = 2.0;
      };
    workload =
      {
        Store.Workload.default_spec with
        ops_per_client = 40;
        read_fraction = 0.5;
        zipf_s = 1.1;
        burst = 4;
      };
  }

let run_attr seed = Store.Cluster.run (attr_params seed)

let test_phase_sums_to_wall () =
  let r = run_attr 42 in
  let events = Trace.events r.Store.Cluster.trace in
  let bs = Attr.of_events events in
  let completed =
    r.Store.Cluster.ok_reads + r.Store.Cluster.failed_reads
    + r.Store.Cluster.ok_writes + r.Store.Cluster.failed_writes
  in
  Alcotest.(check int) "every completed op attributed" completed
    (List.length bs);
  List.iter
    (fun (b : Attr.breakdown) ->
      let total = List.fold_left (fun a (_, d) -> a +. d) 0.0 b.Attr.by_phase in
      let err = Float.abs (Attr.wall b -. total) in
      Alcotest.(check bool)
        (Fmt.str "%s: |wall - sum phases| = %g" b.Attr.op err)
        true (err <= 1e-6))
    bs;
  (* the hostile config actually exercises the deep phases *)
  let some_phase p =
    List.exists (fun b -> Attr.phase_duration b p > 0.0) bs
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fmt.str "phase %s observed" (Attr.phase_label p))
        true (some_phase p))
    [ Attr.Net; Attr.Backoff; Attr.Batch; Attr.Fsync ]

let test_causal_stitching () =
  let r = run_attr 42 in
  let events = Trace.events r.Store.Cluster.trace in
  let spans = Query.spans events in
  let bs = Attr.of_events events in
  List.iter
    (fun (b : Attr.breakdown) ->
      let tree = Query.spans_of_op spans ~op:b.Attr.op in
      (match tree with
      | root :: _ ->
          Alcotest.(check bool)
            (Fmt.str "%s: first span is the root" b.Attr.op)
            true (Query.is_root root)
      | [] -> Alcotest.fail (Fmt.str "%s: empty causal tree" b.Attr.op));
      (* every stamped child's parent resolves inside the same tree *)
      let ids = List.map (fun (s : Query.span) -> s.Query.id) tree in
      List.iter
        (fun (s : Query.span) ->
          match Query.parent_of s with
          | None -> ()
          | Some p ->
              Alcotest.(check bool)
                (Fmt.str "%s: span %d's parent %d in tree" b.Attr.op s.Query.id
                   p)
                true (List.mem p ids))
        tree)
    bs;
  (* ok writes against storage reach the replica side: at least one
     op's tree carries replica.queue / replica.apply / replica.fsync *)
  let tree_has name op =
    List.exists
      (fun (s : Query.span) -> String.equal s.Query.name name)
      (Query.spans_of_op spans ~op)
  in
  let ok_write_ops =
    List.filter_map
      (fun (b : Attr.breakdown) ->
        if b.Attr.ok && String.equal b.Attr.op_name "write" then
          Some b.Attr.op
        else None)
      bs
  in
  Alcotest.(check bool) "some ok writes" true (ok_write_ops <> []);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Fmt.str "some ok write's tree has %s" name)
        true
        (List.exists (tree_has name) ok_write_ops))
    [ "replica.queue"; "replica.apply"; "replica.fsync" ]

let test_batch_coalescing_linked () =
  (* one coalesced frame carries many contexts: several distinct ops
     must own batchq spans, and distinct ops' replica.queue spans must
     share fsync groups — i.e. the Batch and Queue phases are
     attributed per-op even though the frames were shared *)
  let r = run_attr 7 in
  let events = Trace.events r.Store.Cluster.trace in
  let spans = Query.spans events in
  let batchq_ops =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (s : Query.span) ->
           if String.equal s.Query.name "batchq" then Query.op_of s else None)
         spans)
  in
  Alcotest.(check bool)
    (Fmt.str "batchq spans span several ops (%d)" (List.length batchq_ops))
    true
    (List.length batchq_ops >= 2);
  let bs = Attr.of_events events in
  let batched =
    List.filter (fun b -> Attr.phase_duration b Attr.Batch > 0.0) bs
  in
  Alcotest.(check bool) "several ops pay a batch phase" true
    (List.length batched >= 2)

let test_digest_invariance () =
  (* enabling tracing — and causal stamping on top — changes no
     simulation outcome, across seeds, on the hostile config *)
  List.iter
    (fun seed ->
      let digest_with f =
        Store.Cluster.digest (Store.Cluster.run (f (attr_params seed)))
      in
      let off =
        digest_with (fun p ->
            { p with Store.Cluster.trace_capacity = 0; trace_ctx = false })
      in
      let on =
        digest_with (fun p -> { p with Store.Cluster.trace_ctx = false })
      in
      let ctx = digest_with (fun p -> p) in
      Alcotest.(check string) (Fmt.str "seed %d: off = on" seed) off on;
      Alcotest.(check string) (Fmt.str "seed %d: on = ctx" seed) on ctx)
    [ 42; 7; 101 ]

let test_cluster_health_sampler () =
  let r =
    Store.Cluster.run
      { (attr_params 42) with Store.Cluster.health_window = Some 50.0 }
  in
  let snaps = r.Store.Cluster.health in
  Alcotest.(check bool) "samples taken" true (snaps <> []);
  List.iter
    (fun (s : Health.snapshot) ->
      Alcotest.(check bool) "shard in range" true (s.shard >= 0 && s.shard < 2);
      Alcotest.(check (float 0.0)) "window" 50.0 s.window;
      if s.ops > 0 then (
        Alcotest.(check bool) "rate positive" true (s.rate > 0.0);
        Alcotest.(check bool) "read fraction in [0,1]" true
          (s.read_fraction >= 0.0 && s.read_fraction <= 1.0)))
    snaps;
  (* chronological, and both shards eventually report load *)
  let rec ascending = function
    | (a : Health.snapshot) :: (b :: _ as rest) ->
        a.at <= b.at && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (ascending snaps);
  List.iter
    (fun shard ->
      Alcotest.(check bool)
        (Fmt.str "shard %d reports ops" shard)
        true
        (List.exists
           (fun (s : Health.snapshot) -> s.shard = shard && s.ops > 0)
           snaps))
    [ 0; 1 ]

let test_health_render_pinned () =
  (* the exact table `store_repl top` prints, pinned byte for byte *)
  let h =
    Health.create ~window:50.0 ~n_shards:2
      ~queue_depth:(fun s -> float_of_int (s + 1))
      ()
  in
  Health.record h ~at:60.0 ~shard:0 ~read:true ~ok:true ~latency:4.0;
  Health.record h ~at:70.0 ~shard:0 ~read:false ~ok:true ~latency:8.0;
  Health.record h ~at:80.0 ~shard:0 ~read:true ~ok:false ~latency:12.0;
  Health.record h ~at:90.0 ~shard:1 ~read:false ~ok:true ~latency:6.0;
  let rendered = Health.render (Health.sample h ~at:100.0) in
  let expected =
    "shard    ops     rate  read%    ok%      p99  queue\n\
    \    0      3    0.060   66.7   66.7     8.00   1.00\n\
    \    1      1    0.020    0.0  100.0     6.00   2.00\n"
  in
  Alcotest.(check string) "pinned table" expected rendered;
  (* an empty window renders dashes, never nan *)
  let later = Health.render (Health.sample h ~at:500.0) in
  Alcotest.(check bool) "no nan in empty-window render" true
    (not
       (List.exists
          (fun line ->
            List.exists (String.equal "nan") (String.split_on_char ' ' line))
          (String.split_on_char '\n' later)))

let suites =
  [
    ( "attr",
      [
        Alcotest.test_case "phases sum to wall latency" `Quick
          test_phase_sums_to_wall;
        Alcotest.test_case "causal trees stitch" `Quick test_causal_stitching;
        Alcotest.test_case "batch coalescing keeps per-op stamps" `Quick
          test_batch_coalescing_linked;
        Alcotest.test_case "tracing changes no simulation outcome" `Quick
          test_digest_invariance;
      ] );
    ( "health",
      [
        Alcotest.test_case "cluster sampler snapshots" `Quick
          test_cluster_health_sampler;
        Alcotest.test_case "render pinned" `Quick test_health_render_pinned;
      ] );
  ]
