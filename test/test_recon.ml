(* Tests for the reconfiguration algorithm (paper Section 4):
   coordinator naming, recon-DM merge semantics, spies, deterministic
   migration scenarios, invariants, and the simulation onto system A. *)

open Ioa
module Config = Quorum.Config
module Prng = Qc_util.Prng

let cfg_d0 = Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d0" ] ]
let cfg_new =
  Config.make ~read_quorums:[ [ "d1" ] ] ~write_quorums:[ [ "d1"; "d2" ] ]

let item =
  Recon.Item.make ~name:"x" ~dms:[ "d0"; "d1"; "d2" ] ~initial:(Value.Int 0)
    ~initial_config:cfg_d0 ~candidates:[ cfg_new ]

(* ---------- names ---------- *)

let test_coordinator_names () =
  let tm : Txn.t = [ Txn.Seg "u"; Txn.Access { obj = "x"; kind = Txn.Read; data = Value.Nil; seq = 0 } ] in
  let q = Recon.Coordinator.query_name ~tm ~attempt:2 in
  (match Recon.Coordinator.role_of q with
  | Some Recon.Coordinator.Query -> ()
  | _ -> Alcotest.fail "query name not recognized");
  let p =
    Recon.Coordinator.push_name ~tm ~payload:(Value.Versioned (3, Value.Int 7))
      ~target:cfg_new ~slot:1
  in
  match Recon.Coordinator.role_of p with
  | Some (Recon.Coordinator.Push { payload; target }) ->
      Alcotest.(check bool) "payload roundtrip" true
        (Value.equal payload (Value.Versioned (3, Value.Int 7)));
      Alcotest.(check bool) "target roundtrip" true (Config.equal target cfg_new)
  | _ -> Alcotest.fail "push name not recognized"

let test_recon_tm_names () =
  let u : Txn.t = [ Txn.Seg "u" ] in
  let r = Recon.Tm.recon_name ~parent:u ~item:"x" ~config:cfg_new ~slot:0 in
  match Recon.Tm.recon_info r with
  | Some (i, c, slot) ->
      Alcotest.(check string) "item" "x" i;
      Alcotest.(check bool) "config" true (Config.equal c cfg_new);
      Alcotest.(check int) "slot" 0 slot
  | None -> Alcotest.fail "recon name not recognized"

let test_candidate_dedup () =
  let it =
    Recon.Item.make ~name:"y" ~dms:[ "d0"; "d1" ] ~initial:Value.Nil
      ~initial_config:(Config.majority [ "d0"; "d1" ])
      ~candidates:
        [ Config.rowa [ "d0"; "d1" ]; Config.rowa [ "d0"; "d1" ] ]
  in
  Alcotest.(check int) "duplicates removed" 1 (List.length it.Recon.Item.candidates)

(* ---------- recon-DM merge ---------- *)

let test_dm_merge () =
  let s0 = Recon.Item.dm_initial item in
  let s1 = Recon.Dm.merge ~current:s0 (Value.Versioned (1, Value.Int 5)) in
  (match s1 with
  | Value.Recon_state s ->
      Alcotest.(check int) "data write bumps version" 1 s.Value.version;
      Alcotest.(check int) "generation untouched" 0 s.Value.generation
  | _ -> Alcotest.fail "expected recon state");
  let s2 = Recon.Dm.merge ~current:s1 (Value.Gen_config { gen = 3; cfg = cfg_new }) in
  match s2 with
  | Value.Recon_state s ->
      Alcotest.(check int) "config write bumps generation" 3 s.Value.generation;
      Alcotest.(check int) "version untouched" 1 s.Value.version;
      Alcotest.(check bool) "config installed" true (Config.equal s.Value.config cfg_new)
  | _ -> Alcotest.fail "expected recon state"

(* ---------- deterministic migration scenario ---------- *)

let scenario max_recons =
  let script =
    {
      Serial.User_txn.children =
        [
          Serial.User_txn.Sub
            ( "t1",
              {
                Serial.User_txn.children =
                  [
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Write; data = Value.Int 42; seq = 0 });
                    Serial.User_txn.Access_child
                      (Txn.Access
                         { obj = "x"; kind = Txn.Read; data = Value.Nil; seq = 1 });
                  ];
                ordered = true;
                eager = false;
                returns = Serial.User_txn.return_all;
              } );
        ];
      ordered = true;
      eager = false;
      returns = Serial.User_txn.return_nil;
    }
  in
  {
    Recon.Description.items = [ item ];
    raw_objects = [];
    root_script = script;
    max_recons_per_txn = max_recons;
  }

let test_migration_scenario () =
  (* across many seeds (spies fire at random points), all invariants
     and the simulation hold, and completed reads always return 42 *)
  let d = scenario 2 in
  let recons_total = ref 0 in
  for seed = 1 to 50 do
    let run = Recon.Harness.run ~abort_rate:0.0 ~seed d in
    (match Recon.Harness.check_all d run.System.schedule with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e);
    recons_total := !recons_total + Recon.Harness.count_recons run.System.schedule;
    List.iter
      (fun a ->
        match a with
        | Action.Request_commit (t, v)
          when Txn.obj_of t = Some "x" && Txn.kind_of t = Some Txn.Read ->
            Alcotest.(check bool) "read returns 42 across reconfigs" true
              (Value.equal v (Value.Int 42))
        | _ -> ())
      run.System.schedule
  done;
  Alcotest.(check bool) "reconfigurations actually fired" true (!recons_total > 10)

let test_generation_numbers_increase () =
  let d = scenario 2 in
  let run = Recon.Harness.run ~abort_rate:0.0 ~seed:8 d in
  (* config-write payloads must carry strictly increasing generations
     per item in a serial run *)
  let gens =
    List.filter_map
      (fun a ->
        match a with
        | Action.Request_commit (t, _) when Txn.kind_of t = Some Txn.Write -> (
            match Txn.data_of t with
            | Some (Value.Gen_config { gen; _ }) -> Some gen
            | _ -> None)
        | _ -> None)
      run.System.schedule
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  (* the same generation may be written to several DMs: dedupe runs *)
  let dedup =
    List.fold_left
      (fun acc g -> match acc with h :: _ when h = g -> acc | _ -> g :: acc)
      [] gens
    |> List.rev
  in
  Alcotest.(check bool) "generations strictly increase" true
    (strictly_increasing dedup)

(* ---------- randomized properties ---------- *)

let prop_recon_random_correct =
  QCheck.Test.make ~count:25
    ~name:"Section 4 invariants + simulation hold on random recon systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      match Recon.Harness.run_and_check ~seed () with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_report e)

(* sensitivity: dropping the data-copy phase of a genuinely
   config-changing reconfiguration must break the invariants *)
let test_mutation_datacopy_caught () =
  let d = scenario 2 in
  let under_recon_push (t : Txn.t) =
    List.length t >= 3
    && Recon.Tm.is_recon_tm (List.filteri (fun i _ -> i < List.length t - 2) t)
  in
  let caught = ref 0 and applicable = ref 0 in
  for seed = 1 to 60 do
    let run = Recon.Harness.run ~abort_rate:0.0 ~seed d in
    let beta = run.System.schedule in
    (* applicable when a recon committed after the logical write *)
    let saw_write = ref false and recon_after = ref false in
    List.iter
      (fun a ->
        match a with
        | Action.Request_commit (t, _)
          when Txn.kind_of t = Some Txn.Write && Txn.obj_of t = Some "x" ->
            saw_write := true
        | Action.Request_commit (t, _) when Recon.Tm.is_recon_tm t ->
            if !saw_write then recon_after := true
        | _ -> ())
      beta;
    if !recon_after then begin
      incr applicable;
      let mutated =
        List.filter
          (fun a ->
            match a with
            | Action.Request_commit (t, _) | Action.Create t ->
                not
                  (under_recon_push t
                  && Txn.kind_of t = Some Txn.Write
                  &&
                  match Txn.data_of t with
                  | Some (Value.Versioned _) -> true
                  | _ -> false)
            | _ -> true)
          beta
      in
      if Result.is_error (Recon.Harness.check_all d mutated) then incr caught
    end
  done;
  Alcotest.(check bool)
    (Fmt.str "data-copy mutation caught (%d/%d applicable)" !caught !applicable)
    true
    (!applicable > 0 && !caught > 0)

(* a pinned PRNG state makes the drawn cases — and therefore the whole
   suite — deterministic run to run *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "recon.names",
      [
        Alcotest.test_case "coordinator name roundtrip" `Quick
          test_coordinator_names;
        Alcotest.test_case "recon-TM name roundtrip" `Quick test_recon_tm_names;
        Alcotest.test_case "candidate dedup" `Quick test_candidate_dedup;
      ] );
    ("recon.dm", [ Alcotest.test_case "partial-update merge" `Quick test_dm_merge ]);
    ( "recon.scenario",
      [
        Alcotest.test_case "migration scenario, 50 seeds" `Slow
          test_migration_scenario;
        Alcotest.test_case "generation numbers increase" `Quick
          test_generation_numbers_increase;
      ] );
    ( "recon.checker-sensitivity",
      [
        Alcotest.test_case "skipped data copy caught" `Slow
          test_mutation_datacopy_caught;
      ] );
    ("recon.properties", [ qcheck prop_recon_random_correct ]);
  ]

(* ---------- exhaustive exploration (tiny recon instance) ---------- *)

let test_recon_exhaustive () =
  (* 2 DMs; configuration moves from {d0} to {d1}; one logical write;
     one possible reconfiguration per spy.  Every abort-free schedule
     (spy firings at every possible point included) is verified. *)
  let tiny_item =
    Recon.Item.make ~name:"x" ~dms:[ "d0"; "d1" ] ~initial:(Value.Int 0)
      ~initial_config:
        (Config.make ~read_quorums:[ [ "d0" ] ] ~write_quorums:[ [ "d0" ] ])
      ~candidates:
        [ Config.make ~read_quorums:[ [ "d1" ] ] ~write_quorums:[ [ "d1" ] ] ]
  in
  let d =
    {
      Recon.Description.items = [ tiny_item ];
      raw_objects = [];
      (* the logical write hangs directly off the root, so there is a
         single user transaction (the root) and a single spy *)
      root_script =
        {
          Serial.User_txn.children =
            [
              Serial.User_txn.Access_child
                (Txn.Access
                   { obj = "x"; kind = Txn.Write; data = Value.Int 1; seq = 0 });
            ];
          ordered = true;
          eager = false;
          returns = Serial.User_txn.return_nil;
        };
      max_recons_per_txn = 1;
    }
  in
  let s = Recon.Explore.check_description ~budget:4_000_000 d in
  (match s.Quorum.Explore.violation with
  | Some (_, e) -> Alcotest.failf "violation: %s" e
  | None -> ());
  Alcotest.(check bool)
    (Fmt.str "exhausted (schedules=%d prefixes=%d)" s.schedules s.prefixes)
    true s.exhausted;
  Alcotest.(check bool) "non-trivial space" true (s.schedules > 100)

let exhaustive_suite =
  ( "recon.exhaustive",
    [ Alcotest.test_case "tiny instance fully verified" `Slow test_recon_exhaustive ] )

let suites = suites @ [ exhaustive_suite ]

(* ---------- coordinator unit tests (component level) ---------- *)

let coord_item =
  Recon.Item.make ~name:"cx" ~dms:[ "e0"; "e1" ] ~initial:(Value.Int 0)
    ~initial_config:(Config.majority [ "e0"; "e1" ])
    ~candidates:[]

let tm_name : Txn.t =
  [ Txn.Seg "u"; Txn.Access { obj = "cx"; kind = Txn.Read; data = Value.Nil; seq = 0 } ]

let step_c c a =
  match Ioa.Component.step c a with
  | Some c -> c
  | None -> Alcotest.failf "coordinator rejected %a" Action.pp a

let test_query_coordinator_lifecycle () =
  let fam = Recon.Coordinator.family ~tm:tm_name ~item:coord_item () in
  let q = Recon.Coordinator.query_name ~tm:tm_name ~attempt:0 in
  let fam = step_c fam (Action.Create q) in
  (* it wants to read DMs *)
  let reqs = Ioa.Component.enabled fam in
  Alcotest.(check int) "read requests for both DMs" 2 (List.length reqs);
  (* feed a commit carrying a replica state: e0, vn 3, gen 1 *)
  let acc =
    match List.hd reqs with
    | Action.Request_create t -> t
    | _ -> Alcotest.fail "expected request"
  in
  let fam = step_c fam (Action.Request_create acc) in
  let state1 =
    Value.Recon_state
      {
        version = 3;
        data = Value.Int 30;
        generation = 1;
        config = Config.rowa [ "e0"; "e1" ];
      }
  in
  let fam = step_c fam (Action.Commit (acc, state1)) in
  (* gen-1 config is rowa: a single DM is a read quorum, so the query
     may now complete with the summary *)
  let commits =
    List.filter
      (function Action.Request_commit (t, _) -> Txn.equal t q | _ -> false)
      (Ioa.Component.enabled fam)
  in
  match commits with
  | [ Action.Request_commit (_, Value.Recon_state s) ] ->
      Alcotest.(check int) "summary version" 3 s.Value.version;
      Alcotest.(check int) "summary generation" 1 s.Value.generation
  | _ -> Alcotest.fail "expected a completable query"

let test_push_coordinator_lifecycle () =
  let fam = Recon.Coordinator.family ~tm:tm_name ~item:coord_item () in
  let payload = Value.Versioned (7, Value.Int 70) in
  let target = Config.majority [ "e0"; "e1" ] in
  let p = Recon.Coordinator.push_name ~tm:tm_name ~payload ~target ~slot:0 in
  let fam = step_c fam (Action.Create p) in
  let reqs = Ioa.Component.enabled fam in
  (* write accesses carrying exactly the payload *)
  Alcotest.(check int) "write requests for both DMs" 2 (List.length reqs);
  List.iter
    (fun a ->
      match a with
      | Action.Request_create t ->
          Alcotest.(check bool) "payload embedded" true
            (Txn.data_of t = Some payload)
      | _ -> Alcotest.fail "expected request")
    reqs;
  (* acknowledge both writes; then the push may commit with nil *)
  let fam =
    List.fold_left
      (fun fam a ->
        match a with
        | Action.Request_create t ->
            let fam = step_c fam (Action.Request_create t) in
            step_c fam (Action.Commit (t, Value.Nil))
        | _ -> fam)
      fam reqs
  in
  let commits =
    List.filter
      (function Action.Request_commit (t, _) -> Txn.equal t p | _ -> false)
      (Ioa.Component.enabled fam)
  in
  Alcotest.(check int) "push completable" 1 (List.length commits)

let coordinator_suite =
  ( "recon.coordinator",
    [
      Alcotest.test_case "query lifecycle" `Quick test_query_coordinator_lifecycle;
      Alcotest.test_case "push lifecycle" `Quick test_push_coordinator_lifecycle;
    ] )

let suites = suites @ [ coordinator_suite ]
