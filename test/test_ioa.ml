(* Tests for the I/O automaton framework: transaction names, actions,
   values, well-formedness, schedules, composition. *)

open Ioa

let u name = Txn.Seg name
let t1 : Txn.t = [ u "a" ]
let t11 : Txn.t = [ u "a"; u "b" ]
let t12 : Txn.t = [ u "a"; u "c" ]
let t111 : Txn.t = [ u "a"; u "b"; u "d" ]
let t2 : Txn.t = [ u "z" ]

let acc_seg =
  Txn.Access { obj = "o1"; kind = Txn.Read; data = Value.Nil; seq = 0 }

let txn_t = Alcotest.testable Txn.pp Txn.equal

(* ---------- Txn ---------- *)

let test_parent () =
  Alcotest.check txn_t "parent of child" t1 (Txn.parent t11);
  Alcotest.check txn_t "parent of grandchild" t11 (Txn.parent t111);
  Alcotest.check txn_t "parent of top-level is root" Txn.root (Txn.parent t1)

let test_parent_of_root () =
  Alcotest.check_raises "root has no parent"
    (Invalid_argument "Txn.parent: the root transaction has no parent")
    (fun () -> ignore (Txn.parent Txn.root))

let test_ancestor () =
  Alcotest.(check bool) "reflexive" true (Txn.is_ancestor t11 t11);
  Alcotest.(check bool) "parent is ancestor" true (Txn.is_ancestor t1 t111);
  Alcotest.(check bool) "root is ancestor of all" true
    (Txn.is_ancestor Txn.root t111);
  Alcotest.(check bool) "sibling is not ancestor" false
    (Txn.is_ancestor t11 t12);
  Alcotest.(check bool) "child is not ancestor of parent" false
    (Txn.is_ancestor t11 t1);
  Alcotest.(check bool) "proper excludes self" false
    (Txn.is_proper_ancestor t11 t11);
  Alcotest.(check bool) "proper includes parent" true
    (Txn.is_proper_ancestor t1 t11)

let test_lca () =
  Alcotest.check txn_t "lca of siblings" t1 (Txn.lca t11 t12);
  Alcotest.check txn_t "lca with ancestor" t1 (Txn.lca t1 t111);
  Alcotest.check txn_t "lca of unrelated" Txn.root (Txn.lca t1 t2);
  Alcotest.check txn_t "lca of equal" t11 (Txn.lca t11 t11)

let test_siblings () =
  Alcotest.(check bool) "siblings" true (Txn.are_siblings t11 t12);
  Alcotest.(check bool) "not own sibling" false (Txn.are_siblings t11 t11);
  Alcotest.(check bool) "different depth" false (Txn.are_siblings t1 t11);
  Alcotest.(check bool) "root no siblings" false (Txn.are_siblings Txn.root t1)

let test_access_info () =
  let a = Txn.child t1 acc_seg in
  Alcotest.(check (option string)) "obj" (Some "o1") (Txn.obj_of a);
  Alcotest.(check bool) "kind read" true (Txn.kind_of a = Some Txn.Read);
  Alcotest.(check bool) "non-access has no obj" true (Txn.obj_of t1 = None)

let test_depth () =
  Alcotest.(check int) "root depth" 0 (Txn.depth Txn.root);
  Alcotest.(check int) "grandchild depth" 3 (Txn.depth t111)

(* ---------- Value ---------- *)

let test_value_equal () =
  let open Value in
  Alcotest.(check bool) "ints" true (equal (Int 3) (Int 3));
  Alcotest.(check bool) "int vs str" false (equal (Int 3) (Str "3"));
  Alcotest.(check bool) "versioned" true
    (equal (Versioned (1, Int 2)) (Versioned (1, Int 2)));
  Alcotest.(check bool) "versioned vn differs" false
    (equal (Versioned (1, Int 2)) (Versioned (2, Int 2)));
  Alcotest.(check bool) "lists" true
    (equal (List [ Int 1; Nil ]) (List [ Int 1; Nil ]));
  Alcotest.(check bool) "list length differs" false
    (equal (List [ Int 1 ]) (List [ Int 1; Int 1 ]))

let test_config_equal () =
  let c1 = { Value.read_quorums = [ [ "a" ] ]; write_quorums = [ [ "a"; "b" ] ] } in
  let c2 = { Value.read_quorums = [ [ "a" ] ]; write_quorums = [ [ "a"; "b" ] ] } in
  let c3 = { Value.read_quorums = [ [ "b" ] ]; write_quorums = [ [ "a"; "b" ] ] } in
  Alcotest.(check bool) "equal" true (Value.config_equal c1 c2);
  Alcotest.(check bool) "not equal" false (Value.config_equal c1 c3)

(* ---------- Action ---------- *)

let test_action_basics () =
  let a = Action.Create t1 in
  Alcotest.check txn_t "txn of create" t1 (Action.txn a);
  Alcotest.(check bool) "commit is return" true
    (Action.is_return (Action.Commit (t1, Value.Nil)));
  Alcotest.(check bool) "abort is return" true (Action.is_return (Action.Abort t1));
  Alcotest.(check bool) "create is not return" false (Action.is_return a);
  Alcotest.(check bool) "is_return_for matches" true
    (Action.is_return_for t1 (Action.Abort t1));
  Alcotest.(check bool) "is_return_for other txn" false
    (Action.is_return_for t1 (Action.Abort t2))

(* ---------- Well-formedness ---------- *)

let step_txn_seq who ops =
  List.fold_left
    (fun acc a -> Result.bind acc (fun st -> Wellformed.Txn_check.step st a))
    (Ok (Wellformed.Txn_check.init who))
    ops

let test_wf_txn_ok () =
  let ops =
    [
      Action.Create t1;
      Action.Request_create t11;
      Action.Commit (t11, Value.Nil);
      Action.Request_commit (t1, Value.Nil);
    ]
  in
  Alcotest.(check bool) "well-formed" true (Result.is_ok (step_txn_seq t1 ops))

let test_wf_txn_double_create () =
  let ops = [ Action.Create t1; Action.Create t1 ] in
  Alcotest.(check bool) "double create rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_request_before_create () =
  let ops = [ Action.Request_create t11 ] in
  Alcotest.(check bool) "request before create rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_double_request () =
  let ops =
    [ Action.Create t1; Action.Request_create t11; Action.Request_create t11 ]
  in
  Alcotest.(check bool) "double request rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_return_unrequested () =
  let ops = [ Action.Create t1; Action.Commit (t11, Value.Nil) ] in
  Alcotest.(check bool) "return for unrequested child rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_double_return () =
  let ops =
    [
      Action.Create t1;
      Action.Request_create t11;
      Action.Commit (t11, Value.Nil);
      Action.Abort t11;
    ]
  in
  Alcotest.(check bool) "conflicting returns rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_request_after_commit () =
  let ops =
    [
      Action.Create t1;
      Action.Request_commit (t1, Value.Nil);
      Action.Request_create t11;
    ]
  in
  Alcotest.(check bool) "request after own commit rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let test_wf_txn_double_commit_request () =
  let ops =
    [
      Action.Create t1;
      Action.Request_commit (t1, Value.Nil);
      Action.Request_commit (t1, Value.Int 2);
    ]
  in
  Alcotest.(check bool) "double request-commit rejected" true
    (Result.is_error (step_txn_seq t1 ops))

let step_obj_seq obj ops =
  List.fold_left
    (fun acc a -> Result.bind acc (fun st -> Wellformed.Object_check.step st a))
    (Ok (Wellformed.Object_check.init obj))
    ops

let acc n =
  Txn.child t1 (Txn.Access { obj = "o1"; kind = Txn.Read; data = Value.Nil; seq = n })

let test_wf_obj_ok () =
  let ops =
    [
      Action.Create (acc 0);
      Action.Request_commit (acc 0, Value.Nil);
      Action.Create (acc 1);
      Action.Request_commit (acc 1, Value.Nil);
    ]
  in
  Alcotest.(check bool) "alternating ok" true (Result.is_ok (step_obj_seq "o1" ops))

let test_wf_obj_two_pending () =
  let ops = [ Action.Create (acc 0); Action.Create (acc 1) ] in
  Alcotest.(check bool) "two pending rejected" true
    (Result.is_error (step_obj_seq "o1" ops))

let test_wf_obj_commit_without_create () =
  let ops = [ Action.Request_commit (acc 0, Value.Nil) ] in
  Alcotest.(check bool) "commit without create rejected" true
    (Result.is_error (step_obj_seq "o1" ops))

let test_wf_obj_wrong_access_commit () =
  let ops = [ Action.Create (acc 0); Action.Request_commit (acc 1, Value.Nil) ] in
  Alcotest.(check bool) "mismatched commit rejected" true
    (Result.is_error (step_obj_seq "o1" ops))

let test_wf_obj_recreate () =
  let ops =
    [
      Action.Create (acc 0);
      Action.Request_commit (acc 0, Value.Nil);
      Action.Create (acc 0);
    ]
  in
  Alcotest.(check bool) "re-create rejected" true
    (Result.is_error (step_obj_seq "o1" ops))

(* ---------- Schedule ---------- *)

let test_schedule_projections () =
  let sched =
    [
      Action.Create t1;
      Action.Request_create t11;
      Action.Create t11;
      Action.Request_commit (t11, Value.Int 1);
      Action.Commit (t11, Value.Int 1);
      Action.Request_commit (t1, Value.Nil);
    ]
  in
  (* ops about t11: its request-create, create, request-commit, commit *)
  Alcotest.(check int) "project_txn t11" 4
    (List.length (Schedule.project_txn t11 sched));
  Alcotest.(check int) "subtree t1 = all" 6
    (List.length (Schedule.project_subtree t1 sched));
  (* the view of t1: its create, its request-create of t11, the commit
     of t11, its own request-commit *)
  Alcotest.(check int) "view of t1" 4 (List.length (Schedule.view_of t1 sched));
  Alcotest.(check int) "erase t11 ops" 2
    (List.length (Schedule.erase (Txn.equal t11) sched))

(* ---------- Composition ---------- *)

(* A trivial one-shot emitter: outputs a single fixed action. *)
let emitter name action =
  Automaton.make ~name
    ~is_input:(fun _ -> false)
    ~is_output:(Action.equal action)
    ~state:false
    ~transition:(fun fired a ->
      if Action.equal a action && not fired then Some true else None)
    ~enabled:(fun fired -> if fired then [] else [ action ])
    ()

let test_compose_apply () =
  let a = Action.Request_create t1 in
  let sys = System.compose [ emitter "e1" a ] in
  Alcotest.(check int) "one enabled" 1 (List.length (System.enabled sys));
  match System.apply sys a with
  | Ok sys' -> Alcotest.(check int) "quiescent" 0 (List.length (System.enabled sys'))
  | Error e -> Alcotest.fail e

let test_compose_duplicate_outputs () =
  let a = Action.Request_create t1 in
  let sys = System.compose [ emitter "e1" a; emitter "e2" a ] in
  Alcotest.(check bool) "duplicate owner rejected" true
    (Result.is_error (System.apply sys a))

let test_compose_unowned () =
  let a = Action.Request_create t1 in
  let sys = System.compose [ emitter "e1" a ] in
  Alcotest.(check bool) "unowned action rejected" true
    (Result.is_error (System.apply sys (Action.Request_create t2)))

let test_run_records_schedule () =
  let a = Action.Request_create t1 and b = Action.Request_create t2 in
  let sys = System.compose [ emitter "e1" a; emitter "e2" b ] in
  let r = System.run ~rng:(Qc_util.Prng.create 3) sys in
  Alcotest.(check bool) "quiescent" true r.System.quiescent;
  Alcotest.(check int) "two steps" 2 (List.length r.System.schedule)

let test_replay_roundtrip () =
  let a = Action.Request_create t1 and b = Action.Request_create t2 in
  let make () = System.compose [ emitter "e1" a; emitter "e2" b ] in
  let r = System.run ~rng:(Qc_util.Prng.create 5) (make ()) in
  Alcotest.(check bool) "replays" true
    (Result.is_ok (System.replay (make ()) r.System.schedule));
  (* replaying the schedule twice must fail (one-shot emitters) *)
  Alcotest.(check bool) "double replay fails" true
    (Result.is_error
       (System.replay (make ()) (r.System.schedule @ r.System.schedule)))

let suites =
  [
    ( "ioa.txn",
      [
        Alcotest.test_case "parent" `Quick test_parent;
        Alcotest.test_case "parent of root" `Quick test_parent_of_root;
        Alcotest.test_case "ancestor relations" `Quick test_ancestor;
        Alcotest.test_case "lca" `Quick test_lca;
        Alcotest.test_case "siblings" `Quick test_siblings;
        Alcotest.test_case "access attributes" `Quick test_access_info;
        Alcotest.test_case "depth" `Quick test_depth;
      ] );
    ( "ioa.value",
      [
        Alcotest.test_case "equality" `Quick test_value_equal;
        Alcotest.test_case "config equality" `Quick test_config_equal;
      ] );
    ("ioa.action", [ Alcotest.test_case "basics" `Quick test_action_basics ]);
    ( "ioa.wellformed",
      [
        Alcotest.test_case "txn: legal sequence" `Quick test_wf_txn_ok;
        Alcotest.test_case "txn: double create" `Quick test_wf_txn_double_create;
        Alcotest.test_case "txn: request before create" `Quick
          test_wf_txn_request_before_create;
        Alcotest.test_case "txn: double request" `Quick test_wf_txn_double_request;
        Alcotest.test_case "txn: return unrequested" `Quick
          test_wf_txn_return_unrequested;
        Alcotest.test_case "txn: conflicting returns" `Quick
          test_wf_txn_double_return;
        Alcotest.test_case "txn: request after commit" `Quick
          test_wf_txn_request_after_commit;
        Alcotest.test_case "txn: double commit request" `Quick
          test_wf_txn_double_commit_request;
        Alcotest.test_case "obj: alternating" `Quick test_wf_obj_ok;
        Alcotest.test_case "obj: two pending" `Quick test_wf_obj_two_pending;
        Alcotest.test_case "obj: commit without create" `Quick
          test_wf_obj_commit_without_create;
        Alcotest.test_case "obj: mismatched commit" `Quick
          test_wf_obj_wrong_access_commit;
        Alcotest.test_case "obj: re-create" `Quick test_wf_obj_recreate;
      ] );
    ( "ioa.schedule",
      [ Alcotest.test_case "projections" `Quick test_schedule_projections ] );
    ( "ioa.system",
      [
        Alcotest.test_case "compose and apply" `Quick test_compose_apply;
        Alcotest.test_case "duplicate outputs rejected" `Quick
          test_compose_duplicate_outputs;
        Alcotest.test_case "unowned action rejected" `Quick test_compose_unowned;
        Alcotest.test_case "run records schedule" `Quick test_run_records_schedule;
        Alcotest.test_case "replay roundtrip" `Quick test_replay_roundtrip;
      ] );
  ]

(* ---------- families ---------- *)

(* a family of one-shot counters: each member, once created, can emit
   its own REQUEST_COMMIT carrying how many pokes it received *)
let family_member_spec =
  {
    Family.init = (fun _ -> (false, 0));
    transition =
      (fun (created, pokes) a ->
        match a with
        | Action.Create _ -> Some (true, pokes)
        | Action.Commit (_, _) -> Some (created, pokes + 1)
        | Action.Request_commit (_, Value.Int n)
          when created && n = pokes ->
            Some (false, pokes)
        | _ -> None);
    enabled =
      (fun (created, pokes) ->
        if created then [ Action.Request_commit ([], Value.Int pokes) ] else []);
    m_is_input =
      (fun m a ->
        match a with
        | Action.Create t -> Txn.equal t m
        | Action.Commit (t, _) ->
            (not (Txn.is_root t)) && Txn.equal (Txn.parent t) m
        | _ -> false);
    m_is_output =
      (fun m a ->
        match a with Action.Request_commit (t, _) -> Txn.equal t m | _ -> false);
  }

(* fix the enabled function to name the right member *)
let family_member_spec =
  { family_member_spec with Family.enabled = (fun _ -> []) }

let fam_member name : Txn.t = [ Txn.Seg "host"; Txn.Param ("m", Value.Str name) ]

let test_family_routing () =
  let member t =
    List.length t = 2 && Txn.is_ancestor [ Txn.Seg "host" ] t
    && match Txn.last_seg t with Some (Txn.Param ("m", _)) -> true | _ -> false
  in
  let fam = Family.make ~name:"fam" ~member family_member_spec in
  (* operations of a member are in the family's signature *)
  Alcotest.(check bool) "member create is input" true
    (Component.is_input fam (Action.Create (fam_member "a")));
  Alcotest.(check bool) "child return is input" true
    (Component.is_input fam
       (Action.Commit (Txn.child (fam_member "a") (Txn.Seg "c"), Value.Nil)));
  Alcotest.(check bool) "non-member ignored" false
    (Component.has_action fam (Action.Create [ Txn.Seg "other" ]));
  (* lazy instantiation: two members evolve independently *)
  let fam = Option.get (Component.step fam (Action.Create (fam_member "a"))) in
  let fam =
    Option.get
      (Component.step fam
         (Action.Commit (Txn.child (fam_member "a") (Txn.Seg "c"), Value.Nil)))
  in
  let fam = Option.get (Component.step fam (Action.Create (fam_member "b"))) in
  (* member a saw one poke, member b zero *)
  Alcotest.(check bool) "member state independent" true
    (Component.describe fam <> "")

let test_member_of_action () =
  let member t = Txn.equal t (fam_member "a") in
  Alcotest.(check bool) "own action routes to member" true
    (Family.member_of_action ~member (Action.Create (fam_member "a"))
    = Some (fam_member "a"));
  Alcotest.(check bool) "child action routes to parent member" true
    (Family.member_of_action ~member
       (Action.Commit (Txn.child (fam_member "a") (Txn.Seg "x"), Value.Nil))
    = Some (fam_member "a"));
  Alcotest.(check bool) "unrelated action routes nowhere" true
    (Family.member_of_action ~member (Action.Create [ Txn.Seg "z" ]) = None)

let family_suite =
  ( "ioa.family",
    [
      Alcotest.test_case "signature and routing" `Quick test_family_routing;
      Alcotest.test_case "member_of_action" `Quick test_member_of_action;
    ] )

let suites = suites @ [ family_suite ]
