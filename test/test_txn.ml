(* Tests for cross-shard transactions (lib/store/txn.ml and the
   replica's prepared-state machinery): replica-level prepare / vote /
   decide mechanics, end-to-end commit and conflict behaviour over the
   cluster, the 2PC-vs-Paxos-Commit coordinator-kill ablation, a
   qcheck serializability property under partitions, and golden
   digests for a pinned 3-seed transaction workload. *)

module Core = Sim.Core
module P = Store.Protocol
module Replica = Store.Replica
module Cluster = Store.Cluster

let tr_off = Obs.Trace.create ~capacity:0 ~enabled:false ()

let handle r msg =
  match Replica.handle_one r ~tr:tr_off msg with
  | Some rep -> rep
  | None -> Alcotest.fail "expected a synchronous reply"

(* ---------- replica prepare / vote / decide mechanics ---------- *)

let test_replica_prepare_vote_decide () =
  let r = Replica.create ~name:"r0" () in
  (* seed a current version *)
  (match handle r (P.Install_req { rid = 1; key = "k0"; vn = 3; value = 30; ctx = None }) with
  | P.Install_ack _ -> ()
  | _ -> Alcotest.fail "install ack");
  let prep rid txid =
    P.Txn_prepare
      {
        rid;
        txid;
        writes = [ ("k0", 99) ];
        reads = [ "k1" ];
        acceptors = [ "r0" ];
        paxos = false;
        ctx = None;
      }
  in
  (* a yes-vote locks the footprint and snapshots versions *)
  (match handle r (prep 2 "c0#t0") with
  | P.Txn_vote { yes = true; kvs; _ } ->
      Alcotest.(check (list (triple string int int)))
        "snapshot carries footprint versions"
        [ ("k0", 3, 30); ("k1", 0, 0) ]
        kvs
  | _ -> Alcotest.fail "expected yes vote");
  Alcotest.(check (list string)) "in doubt" [ "c0#t0" ] (Replica.in_doubt r);
  Alcotest.(check (list (pair string string)))
    "locks held"
    [ ("k0", "c0#t0"); ("k1", "c0#t0") ]
    (Replica.locked_keys r);
  (* a duplicate prepare re-sends the identical vote *)
  (match handle r (prep 3 "c0#t0") with
  | P.Txn_vote { yes = true; kvs; _ } ->
      Alcotest.(check int) "same snapshot" 2 (List.length kvs)
  | _ -> Alcotest.fail "expected duplicate yes vote");
  (* a conflicting transaction is refused *)
  (match handle r (prep 4 "c1#t0") with
  | P.Txn_vote { yes = false; kvs = []; _ } -> ()
  | _ -> Alcotest.fail "expected no vote on conflict");
  (* commit installs at the decided version and releases the locks *)
  let decided = ref [] in
  Replica.set_on_decided r (fun ~txid ~commit ~writes:_ ->
      decided := (txid, commit) :: !decided);
  (match
     handle r
       (P.Txn_decide
          {
            rid = 5;
            txid = "c0#t0";
            commit = true;
            writes = [ ("k0", 4, 99) ];
            ctx = None;
          })
   with
  | P.Txn_decide_ack { applied = true; _ } -> ()
  | _ -> Alcotest.fail "expected applied ack");
  Alcotest.(check (pair int int)) "installed" (4, 99) (Replica.lookup r "k0");
  Alcotest.(check (list string)) "resolved" [] (Replica.in_doubt r);
  Alcotest.(check (list (pair string string)))
    "unlocked" [] (Replica.locked_keys r);
  Alcotest.(check (list (pair string bool)))
    "decision hook fired once" [ ("c0#t0", true) ] !decided;
  (* a retransmitted decide is idempotent and a late prepare is
     answered with the decision *)
  (match
     handle r
       (P.Txn_decide
          {
            rid = 6;
            txid = "c0#t0";
            commit = true;
            writes = [ ("k0", 4, 99) ];
            ctx = None;
          })
   with
  | P.Txn_decide_ack { applied = false; _ } -> ()
  | _ -> Alcotest.fail "expected unapplied ack on retransmission");
  (match handle r (prep 7 "c0#t0") with
  | P.Txn_decide { commit = true; _ } -> ()
  | _ -> Alcotest.fail "late prepare answered with decision");
  Alcotest.(check int) "hook fired exactly once" 1 (List.length !decided)

let test_replica_abort_releases () =
  let r = Replica.create ~name:"r0" () in
  (match
     handle r
       (P.Txn_prepare
          {
            rid = 1;
            txid = "c0#t1";
            writes = [ ("k2", 7) ];
            reads = [];
            acceptors = [ "r0" ];
            paxos = false;
            ctx = None;
          })
   with
  | P.Txn_vote { yes = true; _ } -> ()
  | _ -> Alcotest.fail "yes vote");
  (match
     handle r
       (P.Txn_decide
          { rid = 2; txid = "c0#t1"; commit = false; writes = []; ctx = None })
   with
  | P.Txn_decide_ack { applied = true; _ } -> ()
  | _ -> Alcotest.fail "abort ack");
  Alcotest.(check (pair int int)) "nothing installed" (0, 0)
    (Replica.lookup r "k2");
  Alcotest.(check (list (pair string string)))
    "unlocked" [] (Replica.locked_keys r)

(* Paxos acceptor logic on the decision register: promises are
   monotone, accepted values surface in phase 1, decided registers
   short-circuit. *)
let test_replica_acceptor_ballots () =
  let r = Replica.create ~name:"r0" () in
  (match handle r (P.Txn_p1a { rid = 1; txid = "t"; bal = 2 }) with
  | P.Txn_p1b { ok = true; accepted = None; _ } -> ()
  | _ -> Alcotest.fail "free register promises");
  (* a lower ballot is refused after the promise *)
  (match
     handle r
       (P.Txn_p2a
          { rid = 2; txid = "t"; bal = 1; commit = true; writes = []; ctx = None })
   with
  | P.Txn_p2b { ok = false; _ } -> ()
  | _ -> Alcotest.fail "lower ballot refused");
  (* the promised ballot's 2a is accepted *)
  (match
     handle r
       (P.Txn_p2a
          { rid = 3; txid = "t"; bal = 2; commit = true; writes = [ ("k", 1, 5) ]; ctx = None })
   with
  | P.Txn_p2b { ok = true; _ } -> ()
  | _ -> Alcotest.fail "promised ballot accepted");
  (* a later phase 1 reports the accepted value *)
  (match handle r (P.Txn_p1a { rid = 4; txid = "t"; bal = 7 }) with
  | P.Txn_p1b { ok = true; accepted = Some (2, true, [ ("k", 1, 5) ]); _ } -> ()
  | _ -> Alcotest.fail "accepted value reported")

(* ---------- end-to-end over the cluster ---------- *)

let txn_params ~mode ~seed ?(script = []) ?(n_clients = 3) ?(retries = 2) () =
  {
    Cluster.default_params with
    n_replicas = 3;
    n_clients;
    n_shards = 3;
    seed;
    script;
    workload =
      { Store.Workload.default_spec with n_keys = 24; think_time = 4.0 };
    txns =
      Some
        {
          Cluster.default_txn_spec with
          commit_mode = mode;
          txns_per_client = 12;
          txn_retries = retries;
        };
  }

let test_txn_cluster_smoke () =
  List.iter
    (fun mode ->
      let r = Cluster.run (txn_params ~mode ~seed:7 ()) in
      Alcotest.(check bool)
        (Fmt.str "%s: commits happened" (Store.Txn.mode_label mode))
        true (r.Cluster.ok_txns > 0);
      Alcotest.(check (list string))
        (Fmt.str "%s: audit clean" (Store.Txn.mode_label mode))
        [] r.Cluster.audit_violations;
      Alcotest.(check (list string))
        (Fmt.str "%s: nothing blocked" (Store.Txn.mode_label mode))
        [] r.Cluster.blocked_txns;
      Alcotest.(check bool)
        (Fmt.str "%s: decided covers acked" (Store.Txn.mode_label mode))
        true
        (r.Cluster.decided_txns >= r.Cluster.ok_txns))
    [ `Two_phase; `Paxos ]

(* the pinned ablation: a coordinator killed inside the commit window
   leaves 2PC with in-doubt participants forever, while Paxos Commit
   resolves them and the audit stays clean *)
let kill_script =
  [
    Harness.Script.At (30.0, Harness.Script.Crash "c0");
    Harness.Script.At (55.0, Harness.Script.Crash "c1");
    Harness.Script.At (700.0, Harness.Script.Recover "c0");
    Harness.Script.At (700.0, Harness.Script.Recover "c1");
    Harness.Script.At (701.0, Harness.Script.Heal);
  ]

let count_blocked mode seeds =
  List.fold_left
    (fun (blocked, dirty) seed ->
      let r =
        Cluster.run
          (txn_params ~mode ~seed ~script:kill_script ~n_clients:3 ())
      in
      ( blocked + List.length r.Cluster.blocked_txns,
        dirty + List.length r.Cluster.audit_violations ))
    (0, 0) seeds

let test_coordinator_kill_ablation () =
  let seeds = [ 11; 12; 13; 14; 15; 16 ] in
  let blocked_2pc, dirty_2pc = count_blocked `Two_phase seeds in
  let blocked_paxos, dirty_paxos = count_blocked `Paxos seeds in
  Alcotest.(check bool)
    "2PC blocks under coordinator kills" true (blocked_2pc > 0);
  Alcotest.(check int) "Paxos Commit leaves nothing in doubt" 0 blocked_paxos;
  Alcotest.(check int) "2PC audit stays clean (ambiguity-aware)" 0 dirty_2pc;
  Alcotest.(check int) "Paxos audit stays clean" 0 dirty_paxos

(* ---------- serializability under partitions (qcheck) ---------- *)

let prop_txn_serializable_under_partitions =
  QCheck.Test.make ~count:12
    ~name:"concurrent cross-shard txns under partitions serialize"
    QCheck.(pair (int_bound 9999) (bool))
    (fun (seed, paxos) ->
      let mode = if paxos then `Paxos else `Two_phase in
      let p =
        {
          (txn_params ~mode ~seed ()) with
          partitions = Some 60.0;
          loss = 0.02;
        }
      in
      let r = Cluster.run p in
      if r.Cluster.audit_violations <> [] then
        QCheck.Test.fail_reportf "seed %d (%s): %a" seed
          (Store.Txn.mode_label mode)
          Fmt.(list ~sep:(any "; ") string)
          r.Cluster.audit_violations;
      true)

(* under a healing script, Paxos-Commit runs must also regain
   liveness: some transaction completes successfully after the heal *)
let test_txn_liveness_after_heal () =
  let p = txn_params ~mode:`Paxos ~seed:21 ~script:kill_script () in
  let r = Cluster.run p in
  match
    Harness.Check.liveness_after_heal ~script:kill_script
      ~completions:r.Cluster.completions
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ---------- golden digests (pinned 3-seed txn workload) ---------- *)

(* The digest pins the entire simulation outcome of the transaction
   workload — commit counts, latencies, net counters, the blocked set.
   Regenerate by printing [Cluster.digest] for these seeds if a
   deliberate behaviour change lands. *)
let golden_digests =
  [
    (101, "92243b5b820d0eca83ed90b69ab9cc49");
    (102, "d8086a9d4f0227d5802d65e2d8cbd01d");
    (103, "e9bdefb3a972afbabc2bc1030d860546");
  ]

let test_txn_digest_golden () =
  List.iter
    (fun (seed, expect) ->
      let digest = Cluster.digest (Cluster.run (txn_params ~mode:`Paxos ~seed ())) in
      let again = Cluster.digest (Cluster.run (txn_params ~mode:`Paxos ~seed ())) in
      Alcotest.(check string)
        (Fmt.str "seed %d reproducible" seed)
        digest again;
      if expect <> "" then
        Alcotest.(check string) (Fmt.str "seed %d pinned" seed) expect digest)
    golden_digests

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "store.txn",
      [
        Alcotest.test_case "replica prepare/vote/decide" `Quick
          test_replica_prepare_vote_decide;
        Alcotest.test_case "abort releases locks" `Quick
          test_replica_abort_releases;
        Alcotest.test_case "acceptor ballot discipline" `Quick
          test_replica_acceptor_ballots;
        Alcotest.test_case "cluster txn smoke (both modes)" `Slow
          test_txn_cluster_smoke;
        Alcotest.test_case "coordinator-kill ablation: 2PC blocks, Paxos not"
          `Slow test_coordinator_kill_ablation;
        qcheck prop_txn_serializable_under_partitions;
        Alcotest.test_case "liveness after heal (paxos)" `Slow
          test_txn_liveness_after_heal;
        Alcotest.test_case "golden txn digests" `Slow test_txn_digest_golden;
      ] );
  ]
