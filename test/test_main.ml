let () =
  Alcotest.run "quorum_nested"
    (Test_util.suites @ Test_ioa.suites @ Test_serial.suites
   @ Test_quorum.suites @ Test_recon.suites @ Test_cc.suites
   @ Test_sim.suites @ Test_store.suites @ Test_adt.suites @ Test_vp.suites
   @ Test_obs.suites @ Test_rpc.suites @ Test_shard.suites
   @ Test_pipeline.suites @ Test_attr.suites @ Test_lint.suites
   @ Test_harness.suites @ Test_txn.suites @ Test_tune.suites)
