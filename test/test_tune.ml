(* Tests for the tuning layer (lib/tune + Store.Autotune wiring):
   EWMA semantics, the tree strategy family, the analytic model's
   closed forms, optimizer properties (qcheck: every pick is legal and
   never worse than majority under the model's own objective),
   deterministic steering, byte-identical defaults (pinned digests +
   passive-instrumentation non-interference), and an end-to-end tuned
   cluster run whose audits stay clean across committed switches. *)

module Strategy = Store.Strategy
module Autotune = Store.Autotune
module Model = Tune.Model
module Ewma = Tune.Ewma
module Steer = Tune.Steer

let feq = Alcotest.float 1e-9

(* ---------- EWMA ---------- *)

let test_ewma_seeding () =
  let e = Ewma.create ~n:3 ~alpha:0.5 () in
  Alcotest.(check bool) "unobserved is unknown" false (Ewma.known e 1);
  Alcotest.check feq "unobserved reports init" 0.0 (Ewma.value e 1);
  Ewma.observe e 1 10.0;
  Alcotest.check feq "first observation seeds directly" 10.0 (Ewma.value e 1);
  Ewma.observe e 1 20.0;
  Alcotest.check feq "then blends at alpha" 15.0 (Ewma.value e 1);
  Ewma.observe e 1 15.0;
  Alcotest.check feq "converges toward the stream" 15.0 (Ewma.value e 1);
  Alcotest.(check bool) "other indices untouched" false (Ewma.known e 0)

let test_ewma_validation () =
  let rejects f = Alcotest.check_raises "rejects" (Invalid_argument "x") f in
  let expect_invalid f =
    try
      f ();
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  ignore rejects;
  expect_invalid (fun () -> ignore (Ewma.create ~n:0 ()));
  expect_invalid (fun () -> ignore (Ewma.create ~n:2 ~alpha:0.0 ()));
  expect_invalid (fun () -> ignore (Ewma.create ~n:2 ~alpha:1.5 ()));
  let e = Ewma.create ~n:2 () in
  expect_invalid (fun () -> Ewma.observe e 2 1.0);
  expect_invalid (fun () -> ignore (Ewma.value e (-1)))

let test_ewma_custom_init () =
  let e = Ewma.create ~n:2 ~init:7.5 () in
  Alcotest.check feq "init reported before any observation" 7.5
    (Ewma.value e 0);
  Ewma.observe e 0 1.0;
  Alcotest.check feq "first observation overrides init" 1.0 (Ewma.value e 0)

(* ---------- the tree strategy family ---------- *)

let test_tree_legal () =
  List.iter
    (fun n ->
      let t = Strategy.tree n in
      Alcotest.(check bool)
        (Fmt.str "tree over %d replicas legal" n)
        true (Strategy.legal t))
    [ 4; 5; 6; 7; 9; 12 ];
  Alcotest.(check bool) "2 groups legal too" true
    (Strategy.legal (Strategy.tree ~groups:2 6))

(* independent re-derivation for the uniform 3x3 Kumar instance: a
   mask is a quorum iff at least 2 of the 3 contiguous triples
   contribute at least 2 members *)
let test_tree_9_matches_enumeration () =
  let t = Strategy.tree 9 in
  for m = 0 to 511 do
    let group g = Strategy.popcount ((m lsr (3 * g)) land 0b111) in
    let represented =
      List.length (List.filter (fun g -> group g >= 2) [ 0; 1; 2 ])
    in
    let expect = represented >= 2 in
    if not (Bool.equal expect (t.Strategy.read_ok m)) then
      Alcotest.failf "tree-3/9 disagrees with enumeration on mask %d" m;
    if not (Bool.equal expect (t.Strategy.write_ok m)) then
      Alcotest.failf "tree-3/9 write side disagrees on mask %d" m
  done;
  Alcotest.(check int) "minimal quorum size is 4 of 9" 4 t.Strategy.min_read

let test_tree_validation () =
  let expect_invalid f =
    try
      f ();
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> ignore (Strategy.tree ~groups:0 5));
  expect_invalid (fun () -> ignore (Strategy.tree ~groups:6 5))

(* ---------- the analytic model ---------- *)

let test_model_majority_closed_forms () =
  let s = Autotune.to_system (Strategy.majority 5) in
  Alcotest.(check bool) "majority-5 legal" true (Model.legal s);
  let sc = Model.score s ~read_fraction:1.0 ~p_alive:1.0 ~lat:(fun _ -> 1.0) in
  (* pure reads, smallest quorums have 3 of 5 members, uniform pick:
     every replica is touched with probability 3/5 *)
  Alcotest.check feq "pure-read peak load is 3/5" 0.6 sc.Model.peak_load;
  Alcotest.check feq "perfect availability at p=1" 1.0
    sc.Model.read_availability;
  let sc0 = Model.score s ~read_fraction:0.0 ~p_alive:1.0 ~lat:(fun _ -> 1.0) in
  (* pure writes touch a read quorum (version query) plus a write
     quorum (install): 3/5 + 3/5 *)
  Alcotest.check feq "pure-write peak load is 6/5" 1.2 sc0.Model.peak_load

let test_model_cross_legal () =
  let maj = Autotune.to_system (Strategy.majority 5) in
  let r2w4 =
    Autotune.to_system
      (Strategy.make ~name:"read-2/write-4" ~n:5
         ~read_ok:(fun m -> Strategy.popcount m >= 2)
         ~write_ok:(fun m -> Strategy.popcount m >= 4))
  in
  let reads_of s = Model.minimal_read_quorums s in
  let writes_of s = Model.minimal_write_quorums s in
  Alcotest.(check bool) "r2 reads meet w4 writes" true
    (Model.cross_legal ~reads:(reads_of r2w4) ~writes:(writes_of r2w4));
  (* the hazard the joint transition exists for: read-2 quorums do NOT
     all meet majority (write-3) quorums — switching without a
     migration would read stale data at rest *)
  Alcotest.(check bool) "r2 reads do not all meet majority writes" false
    (Model.cross_legal ~reads:(reads_of r2w4) ~writes:(writes_of maj))

let test_joint_strategy () =
  let a = Strategy.majority 5 in
  let b =
    Strategy.make ~name:"read-2/write-4" ~n:5
      ~read_ok:(fun m -> Strategy.popcount m >= 2)
      ~write_ok:(fun m -> Strategy.popcount m >= 4)
  in
  let j = Autotune.joint a b in
  Alcotest.(check bool) "joint is legal" true (Strategy.legal j);
  (* joint quorums satisfy both predicates, so they intersect the old
     strategy's quorums (covering data at rest) and the new one's *)
  let sj = Autotune.to_system j in
  let sa = Autotune.to_system a and sb = Autotune.to_system b in
  Alcotest.(check bool) "joint reads meet old writes" true
    (Model.cross_legal
       ~reads:(Model.minimal_read_quorums sj)
       ~writes:(Model.minimal_write_quorums sa));
  Alcotest.(check bool) "new reads meet joint writes" true
    (Model.cross_legal
       ~reads:(Model.minimal_read_quorums sb)
       ~writes:(Model.minimal_write_quorums sj))

(* ---------- optimizer properties ---------- *)

(* every pick is a legal strategy, and under the model's own objective
   (availability floors disabled so majority is always admissible) the
   pick is never worse than static majority *)
let prop_optimizer_sound =
  QCheck.Test.make ~count:200 ~name:"optimizer legal and >= majority"
    QCheck.(
      triple (int_range 1 9)
        (pair (int_range 0 100) (int_range 50 100))
        (int_range 0 100_000))
    (fun (n, (rf_pct, pa_pct), latseed) ->
      let read_fraction = float_of_int rf_pct /. 100.0 in
      let p_alive = float_of_int pa_pct /. 100.0 in
      let rng = Qc_util.Prng.create latseed in
      let lats =
        Array.init n (fun _ -> 0.5 +. (10.0 *. Qc_util.Prng.float rng))
      in
      let lat i = lats.(i) in
      let config =
        {
          Model.default_config with
          min_read_availability = 0.0;
          min_write_availability = 0.0;
        }
      in
      match Autotune.choose ~config ~read_fraction ~p_alive ~lat n with
      | None -> QCheck.Test.fail_report "no pick with floors disabled"
      | Some { Autotune.strategy; score } ->
          if not (Strategy.legal strategy) then
            QCheck.Test.fail_reportf "illegal pick %s" strategy.Strategy.name;
          let maj =
            Model.score
              (Autotune.to_system (Strategy.majority n))
              ~read_fraction ~p_alive ~lat
          in
          Model.objective config score
          <= Model.objective config maj +. 1e-9)

(* ---------- steering ---------- *)

let test_steer_picks_cheapest () =
  let stats =
    {
      Steer.latency = (fun i -> if i = 2 then 10.0 else 1.0);
      queue = (fun _ -> 0.0);
      queue_weight = 1.0;
    }
  in
  (* pairs over 3 replicas: {0,1} avoids the slow replica 2 *)
  Alcotest.(check (option int))
    "avoids the slow member" (Some 0b011)
    (Steer.best stats [ 0b011; 0b101; 0b110 ])

let test_steer_queue_pressure () =
  let stats =
    {
      Steer.latency = (fun _ -> 1.0);
      queue = (fun i -> if i = 0 then 5.0 else 0.0);
      queue_weight = 2.0;
    }
  in
  Alcotest.(check (option int))
    "queue depth shifts the pick" (Some 0b110)
    (Steer.best stats [ 0b011; 0b101; 0b110 ])

let test_steer_deterministic_ties () =
  let stats =
    { Steer.latency = (fun _ -> 1.0); queue = (fun _ -> 0.0); queue_weight = 0.0 }
  in
  (* all equal cost: smallest cardinality wins, then lowest mask — the
     same answer on every call, never a PRNG draw *)
  Alcotest.(check (option int))
    "cardinality then lowest mask" (Some 0b011)
    (Steer.best stats [ 0b111; 0b110; 0b011; 0b101 ]);
  Alcotest.(check (option int)) "empty is None" None (Steer.best stats []);
  Alcotest.check feq "cost is the slowest member"
    (1.0 +. 0.0)
    (Steer.cost stats 0b101)

(* ---------- byte-identical defaults ---------- *)

(* Pinned simulation digests of three seeded default runs (tune =
   None), captured when the tuning layer landed.  Any behavioural
   leak from the tuning code into default runs changes these. *)
let golden_defaults =
  [
    (42, "25ddfe8f1aa9c902ea435126cbbe708c");
    (7, "5afe86f7edc924dbedb54129d6ee9e2c");
    (101, "66e52aad7ccd23ff35e4d16ac055a098");
  ]

let default_run ?tune seed =
  Store.Cluster.run
    {
      Store.Cluster.default_params with
      n_replicas = 5;
      n_clients = 3;
      workload = { Store.Workload.default_spec with ops_per_client = 15 };
      seed;
      tune;
    }

let test_default_digest_golden () =
  List.iter
    (fun (seed, digest) ->
      Alcotest.(check string)
        (Fmt.str "seed %d default digest" seed)
        digest
        (Store.Cluster.digest (default_run seed)))
    golden_defaults

(* passive instrumentation (probes + EWMAs installed, but optimizer
   and steering both off) must not perturb the simulation: identical
   latency summaries, op counts and message counters *)
let test_passive_probes_non_interfering () =
  List.iter
    (fun (seed, _) ->
      let plain = default_run seed in
      let probed =
        default_run
          ~tune:
            {
              Store.Cluster.default_tune_spec with
              optimize = false;
              steer = false;
            }
          seed
      in
      Alcotest.(check bool) "probed run flagged" true
        probed.Store.Cluster.tune_run;
      Alcotest.(check (list string))
        "no switches without the optimizer" []
        (List.map (fun (_, _, name) -> name)
           probed.Store.Cluster.strategy_switches);
      Alcotest.check feq "read mean unchanged"
        plain.Store.Cluster.reads.Sim.Stats.mean
        probed.Store.Cluster.reads.Sim.Stats.mean;
      Alcotest.check feq "write mean unchanged"
        plain.Store.Cluster.writes.Sim.Stats.mean
        probed.Store.Cluster.writes.Sim.Stats.mean;
      Alcotest.(check int)
        "ok reads unchanged" plain.Store.Cluster.ok_reads
        probed.Store.Cluster.ok_reads;
      Alcotest.(check int)
        "messages unchanged" plain.Store.Cluster.net.Sim.Net.sent
        probed.Store.Cluster.net.Sim.Net.sent)
    golden_defaults

(* ---------- end to end: a tuned cluster run ---------- *)

let test_tuned_run_audits_clean () =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = 5;
        n_clients = 4;
        targeting = `Quorum;
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = 120;
            read_fraction = 0.9;
            think_time = 2.0;
          };
        tune = Some Store.Cluster.default_tune_spec;
        seed = 42;
      }
  in
  Alcotest.(check bool) "tune ran" true r.Store.Cluster.tune_run;
  Alcotest.(check (list string)) "audits clean" []
    r.Store.Cluster.audit_violations;
  Alcotest.(check bool)
    "optimizer committed at least one switch" true
    (r.Store.Cluster.strategy_switches <> []);
  let candidate_names =
    List.map (fun (s : Strategy.t) -> s.Strategy.name) (Autotune.candidates 5)
  in
  List.iter
    (fun (_, _, name) ->
      Alcotest.(check bool)
        (Fmt.str "switch target %s is a candidate" name)
        true
        (List.mem name candidate_names))
    r.Store.Cluster.strategy_switches;
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Fmt.str "final strategy %s is a candidate" name)
        true
        (List.mem name candidate_names))
    r.Store.Cluster.shard_strategies

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

let suites =
  [
    ( "tune.ewma",
      [
        Alcotest.test_case "seeding and blending" `Quick test_ewma_seeding;
        Alcotest.test_case "validation" `Quick test_ewma_validation;
        Alcotest.test_case "custom init" `Quick test_ewma_custom_init;
      ] );
    ( "tune.tree",
      [
        Alcotest.test_case "family legal" `Quick test_tree_legal;
        Alcotest.test_case "3x3 matches enumeration" `Quick
          test_tree_9_matches_enumeration;
        Alcotest.test_case "validation" `Quick test_tree_validation;
      ] );
    ( "tune.model",
      [
        Alcotest.test_case "majority closed forms" `Quick
          test_model_majority_closed_forms;
        Alcotest.test_case "cross-strategy intersection" `Quick
          test_model_cross_legal;
        Alcotest.test_case "joint transition strategy" `Quick
          test_joint_strategy;
        qcheck prop_optimizer_sound;
      ] );
    ( "tune.steer",
      [
        Alcotest.test_case "picks the cheapest quorum" `Quick
          test_steer_picks_cheapest;
        Alcotest.test_case "queue pressure shifts the pick" `Quick
          test_steer_queue_pressure;
        Alcotest.test_case "deterministic ties" `Quick
          test_steer_deterministic_ties;
      ] );
    ( "tune.cluster",
      [
        Alcotest.test_case "default digests pinned" `Quick
          test_default_digest_golden;
        Alcotest.test_case "passive probes non-interfering" `Quick
          test_passive_probes_non_interfering;
        Alcotest.test_case "tuned run audits clean" `Slow
          test_tuned_run_audits_clean;
      ] );
  ]
