(* The fault-schedule harness: byte-identical compilation of the
   legacy nemesis knobs onto scripts (golden digests captured before
   the refactor), the script DSL's round-trip/validate/shrink
   contracts, per-link fault filters down in Sim.Net, externally
   driven failure injectors, and the seed-swarm fuzzer finding (and
   minimizing) a planted quorum bug. *)

module Core = Sim.Core
module Net = Sim.Net
module Prng = Qc_util.Prng
module Script = Harness.Script

let qcheck t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t

(* ---------- golden digests: legacy knobs vs scripts ---------- *)

(* One nemesis scenario, either through the legacy params or through
   the equivalent script.  The shape matches the pre-refactor capture
   runs: 3 replicas/shard, 3 clients, range sharding, targeted
   quorums, retries + hedging. *)
let scenario ~seed ~n_shards ~as_script ~partitions ~shard_kill () =
  let p =
    {
      Store.Cluster.default_params with
      n_replicas = 3;
      n_clients = 3;
      n_shards;
      shard_scheme = `Range;
      targeting = `Quorum;
      policy = Rpc.Policy.with_hedge ~base:(Rpc.Policy.with_retries 2) 12.0;
      workload =
        {
          Store.Workload.default_spec with
          ops_per_client = 40;
          read_fraction = 0.5;
        };
      seed;
      trace_capacity = 262144;
    }
  in
  let p =
    if as_script then
      {
        p with
        script = Script.of_legacy ?partitions ?shard_kill ();
      }
    else { p with partitions; shard_kill }
  in
  let r = Store.Cluster.run p in
  let trace = Obs.Export.jsonl r.Store.Cluster.trace in
  (Store.Cluster.digest r, Digest.to_hex (Digest.string trace))

(* Digest + trace-digest pairs captured from the pre-refactor inline
   nemesis code.  Both the legacy params and the script expression of
   the same schedule must reproduce them byte for byte. *)
let partition_goldens =
  [
    (42, ("996422eaca9bdbce4098ccbbf4752aa2", "ce53a76fe9882f846050f3602482093e"));
    (7, ("07f93266c9ba094b265e77af4a80d6ee", "a06ae485674bb184a82d6795430d66f0"));
    (101, ("c56e6d787ef362468a3d0a42d51b417a", "e1f235cea3e57c74eb5306c924945c94"));
  ]

let shard_kill_goldens =
  [
    (42, ("41954ac462a10edb38bbf63f3b5271a3", "f842c829a3255bc20f883c4ce7b1b9f5"));
    (7, ("61e446bbb9ff87d39bb35d848ef40e90", "229359e3973594292c0579154f9e62ad"));
    (101, ("47035a312265f8e64df44e7446464ab5", "b06e472b1a8f8fae5fa9ed549885ebe8"));
  ]

let test_partition_storm_goldens () =
  List.iter
    (fun (seed, expected) ->
      List.iter
        (fun as_script ->
          let got =
            scenario ~seed ~n_shards:1 ~as_script ~partitions:(Some 150.0)
              ~shard_kill:None ()
          in
          Alcotest.(check (pair string string))
            (Fmt.str "partitions seed %d (%s)" seed
               (if as_script then "script" else "legacy"))
            expected got)
        [ false; true ])
    partition_goldens

let test_shard_kill_goldens () =
  List.iter
    (fun (seed, expected) ->
      List.iter
        (fun as_script ->
          let got =
            scenario ~seed ~n_shards:4 ~as_script ~partitions:None
              ~shard_kill:(Some (0, 200.0)) ()
          in
          Alcotest.(check (pair string string))
            (Fmt.str "shard_kill seed %d (%s)" seed
               (if as_script then "script" else "legacy"))
            expected got)
        [ false; true ])
    shard_kill_goldens

(* The crash storm runs the simulation out to the injectors' horizon,
   so the cluster-level golden lives in the capture tool, not the
   suite.  This sim-level check pins the same property cheaply: the
   legacy attach loop and the Crash_storm interpreter produce
   bit-identical health schedules. *)
let test_crash_storm_equivalence () =
  let spec = { Sim.Failure.mtbf = 300.0; mttr = 60.0 } in
  let nodes = [ "r0"; "r1"; "r2" ] in
  let run legacy =
    let sim = Core.create ~seed:11 in
    let tr = Obs.Trace.create ~capacity:65536 ~enabled:true () in
    Core.attach_tracer sim tr;
    let net = (Net.create ~sim ~nodes () : unit Net.t) in
    let injectors =
      if legacy then
        List.map
          (fun node -> Sim.Failure.attach ~sim ~net ~node ~spec ~until:1e9 ())
          nodes
      else
        Harness.Run.install
          {
            Harness.Run.sim;
            net;
            groups = [| Array.of_list nodes |];
            clients = [];
            seed = 11;
          }
          (Script.of_failures spec)
    in
    Core.run ~until:50_000.0 sim;
    ( List.map
        (fun i -> (Sim.Failure.node i, Sim.Failure.transitions i))
        injectors,
      Digest.to_hex (Digest.string (Obs.Export.jsonl tr)) )
  in
  let legacy = run true and scripted = run false in
  Alcotest.(check (pair (list (pair string int)) string))
    "identical health schedule and trace" legacy scripted

(* ---------- the script DSL ---------- *)

let test_script_round_trip () =
  let s =
    [
      Script.At (12.5, Script.Partition [ [ "r0"; "r1" ]; [ "r2" ] ]);
      Script.At (20.0, Script.Heal);
      Script.At (5.0, Script.Crash "r0");
      Script.At (9.0, Script.Recover "r0");
      Script.At
        (3.0, Script.Link_filter { src = "c0"; dst = "r1"; spec = Net.Drop_all });
      Script.At
        ( 4.0,
          Script.Link_filter
            { src = "c0"; dst = "r2"; spec = Net.Drop_first 3 } );
      Script.At
        ( 4.5,
          Script.Link_filter
            { src = "r0"; dst = "r2"; spec = Net.Drop_prob 0.25 } );
      Script.At (8.0, Script.Link_clear { src = "c0"; dst = "r1" });
      Script.At (2.0, Script.Loss 0.3);
      Script.At (100.0, Script.Pause_shard 1);
      Script.At (150.0, Script.Resume_shard 1);
      Script.At (200.0, Script.Kill_shard 0);
      Script.Bipartition_storm { mean = 150.0; cycles = 64 };
      Script.Crash_storm { Sim.Failure.mtbf = 300.0; mttr = 60.0 };
    ]
  in
  (match Script.of_string (Script.to_string s) with
  | Ok parsed ->
      Alcotest.(check string)
        "print/parse/print fixpoint" (Script.to_string s)
        (Script.to_string parsed)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check (result unit string)) "round-tripped script validates"
    (Ok ()) (Script.validate s)

let prop_generated_scripts_round_trip =
  QCheck.Test.make ~count:100 ~name:"generated scripts round-trip and validate"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let s =
        Harness.Gen.script rng
          ~groups:[| [| "r0"; "r1"; "r2" |]; [| "s1:r0"; "s1:r1" |] |]
          ~clients:[ "c0"; "c1" ] ~horizon:400.0
      in
      (match Script.validate s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid generated script: %s" e);
      match Script.of_string (Script.to_string s) with
      | Ok parsed -> Script.to_string parsed = Script.to_string s
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_script_validate_rejects () =
  let bad what s =
    match Script.validate s with
    | Ok () -> Alcotest.failf "%s: expected a validation error" what
    | Error _ -> ()
  in
  bad "negative time" [ Script.At (-1.0, Script.Heal) ];
  bad "overlapping sides"
    [ Script.At (0.0, Script.Partition [ [ "a"; "b" ]; [ "b" ] ]) ];
  bad "single side" [ Script.At (0.0, Script.Partition [ [ "a" ] ]) ];
  bad "loss out of range" [ Script.At (0.0, Script.Loss 1.5) ];
  bad "bad probability"
    [
      Script.At
        ( 0.0,
          Script.Link_filter { src = "a"; dst = "b"; spec = Net.Drop_prob 2.0 }
        );
    ];
  bad "bad storm mean" [ Script.Bipartition_storm { mean = 0.0; cycles = 4 } ];
  bad "bad mtbf" [ Script.Crash_storm { Sim.Failure.mtbf = 0.0; mttr = 1.0 } ];
  match Script.of_string "@5 warp r0" with
  | Ok _ -> Alcotest.fail "parsed an unknown action"
  | Error _ -> ()

let test_quiesces_at () =
  let parse s =
    match Script.of_string s with Ok x -> x | Error e -> Alcotest.fail e
  in
  Alcotest.(check (option (float 1e-9)))
    "crash/recover + heal settles" (Some 30.0)
    (Script.quiesces_at (parse "@10 crash r0; @20 recover r0; @30 heal"));
  Alcotest.(check (option (float 1e-9)))
    "unrecovered crash never settles" None
    (Script.quiesces_at (parse "@10 crash r0; @30 heal"));
  Alcotest.(check (option (float 1e-9)))
    "storms never settle" None
    (Script.quiesces_at (Script.of_partitions 150.0));
  Alcotest.(check (option (float 1e-9)))
    "shard kill never settles" None
    (Script.quiesces_at (Script.of_shard_kill (0, 200.0)))

(* ---------- per-link fault filters in Sim.Net ---------- *)

let test_link_filters () =
  let sim = Core.create ~seed:3 in
  let net =
    (Net.create ~sim ~nodes:[ "a"; "b" ]
       ~latency:(Net.uniform_latency ~lo:1.0 ~hi:2.0)
       ()
      : unit Net.t)
  in
  let got = ref 0 in
  Net.register net ~node:"b" (fun ~src:_ () -> incr got);
  Net.set_link_filter net ~src:"a" ~dst:"b" (Net.Drop_first 2);
  for _ = 1 to 4 do
    Net.send net ~src:"a" ~dst:"b" ()
  done;
  Core.run sim;
  Alcotest.(check int) "first:2 swallows exactly two" 2 !got;
  Alcotest.(check int) "per-link drop counter" 2
    (Net.link_filter_drops net ~src:"a" ~dst:"b");
  Net.set_link_filter net ~src:"a" ~dst:"b" Net.Drop_all;
  for _ = 1 to 3 do
    Net.send net ~src:"a" ~dst:"b" ()
  done;
  Core.run sim;
  Alcotest.(check int) "all swallows everything" 2 !got;
  Alcotest.(check int) "replacing the filter reset its counter" 3
    (Net.link_filter_drops net ~src:"a" ~dst:"b");
  Alcotest.(check int) "filtered is a first-class drop reason" 5
    (Net.counters net).Net.drop_filtered;
  Alcotest.(check int) "filtered drops count toward the total" 5
    (Net.counters net).Net.dropped;
  Alcotest.(check bool) "filters are directional: b -> a still delivers" true
    (Net.link_filter net ~src:"b" ~dst:"a" = None);
  Net.clear_link_filter net ~src:"a" ~dst:"b";
  Net.send net ~src:"a" ~dst:"b" ();
  Core.run sim;
  Alcotest.(check int) "cleared filter delivers again" 3 !got

(* a Drop_all filter on part of the quorum must make fire-once clients
   time out (with the pending request draining, not wedging the run),
   while bounded retries punch through a Drop_first filter *)
let filtered_write_run ~policy ~specs =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = 3;
        n_clients = 1;
        strategy = Store.Strategy.majority;
        policy;
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = 1;
            read_fraction = 0.0;
          };
        seed = 9;
        script =
          List.map
            (fun (dst, spec) ->
              Script.At
                (0.0, Script.Link_filter { src = "c0"; dst; spec }))
            specs;
      }
  in
  (r.Store.Cluster.ok_writes, r.Store.Cluster.failed_writes, r)

let test_filter_vs_engine () =
  (* two of three replicas unreachable: no write quorum, fire-once
     fails cleanly *)
  let ok, failed, r =
    filtered_write_run ~policy:Rpc.Policy.default
      ~specs:[ ("r0", Net.Drop_all); ("r1", Net.Drop_all) ]
  in
  Alcotest.(check (pair int int)) "fire-once times out" (0, 1) (ok, failed);
  Alcotest.(check bool) "the filters did the damage" true
    (r.Store.Cluster.net.Net.drop_filtered > 0);
  (* the same links swallowing only the first message each: fire-once
     still fails, retries resend and punch through *)
  let ok_once, failed_once, _ =
    filtered_write_run ~policy:Rpc.Policy.default
      ~specs:[ ("r0", Net.Drop_first 1); ("r1", Net.Drop_first 1) ]
  in
  Alcotest.(check (pair int int)) "fire-once loses the first wave" (0, 1)
    (ok_once, failed_once);
  let ok_retry, failed_retry, _ =
    filtered_write_run
      ~policy:(Rpc.Policy.with_retries 2)
      ~specs:[ ("r0", Net.Drop_first 1); ("r1", Net.Drop_first 1) ]
  in
  Alcotest.(check (pair int int)) "retries punch through" (1, 0)
    (ok_retry, failed_retry)

(* ---------- externally driven injectors ---------- *)

let injector_run seed mtbf mttr =
  let sim = Core.create ~seed in
  let net = (Net.create ~sim ~nodes:[ "n" ] () : unit Net.t) in
  let inj =
    Sim.Failure.attach ~sim ~net ~node:"n"
      ~spec:{ Sim.Failure.mtbf; mttr }
      ~until:200_000.0 ()
  in
  Core.run sim;
  (Sim.Failure.up_fraction inj ~now:(Core.now sim), Sim.Failure.transitions inj)

let prop_injector_up_fraction_converges =
  QCheck.Test.make ~count:10
    ~name:"injector up-fraction converges to mtbf/(mtbf+mttr)"
    QCheck.(triple (int_range 0 1_000_000) (int_range 20 200) (int_range 5 50))
    (fun (seed, mtbf_i, mttr_i) ->
      let mtbf = float_of_int mtbf_i and mttr = float_of_int mttr_i in
      let frac, _ = injector_run seed mtbf mttr in
      let analytic = Sim.Failure.availability { Sim.Failure.mtbf; mttr } in
      if abs_float (frac -. analytic) < 0.05 then true
      else
        QCheck.Test.fail_reportf "up-fraction %.4f vs analytic %.4f" frac
          analytic)

let prop_injector_deterministic =
  QCheck.Test.make ~count:10 ~name:"injector schedule is seed-deterministic"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      injector_run seed 90.0 10.0 = injector_run seed 90.0 10.0)

let test_set_health_accounting () =
  let sim = Core.create ~seed:1 in
  let net = (Net.create ~sim ~nodes:[ "n" ] () : unit Net.t) in
  let inj = Sim.Failure.create ~node:"n" ~now:0.0 () in
  Core.schedule sim ~delay:10.0 (fun () ->
      Sim.Failure.set_health inj ~net ~now:10.0 ~up:false);
  Core.schedule sim ~delay:30.0 (fun () ->
      Sim.Failure.set_health inj ~net ~now:30.0 ~up:true;
      (* idempotent: repeating the state is not a transition *)
      Sim.Failure.set_health inj ~net ~now:30.0 ~up:true);
  Core.run sim;
  Alcotest.(check int) "two transitions" 2 (Sim.Failure.transitions inj);
  Alcotest.(check bool) "node is back up" true (Net.is_up net "n");
  Alcotest.(check (float 1e-9)) "up 20 of 40 time units" 0.5
    (Sim.Failure.up_fraction inj ~now:40.0)

(* A Recover in a script installed *after* the script that crashed the
   node must still bring it back: the fresh injector mirrors the
   node's real network state, so set_health ~up:true is a transition,
   not an idempotent no-op. *)
let test_recover_across_installs () =
  let sim = Core.create ~seed:1 in
  let net = (Net.create ~sim ~nodes:[ "r0"; "c0" ] () : unit Net.t) in
  let env =
    { Harness.Run.sim; net; groups = [| [| "r0" |] |]; clients = [ "c0" ];
      seed = 1 }
  in
  let parse s =
    match Script.of_string s with Ok s -> s | Error e -> Alcotest.fail e
  in
  ignore (Harness.Run.install env (parse "@5 crash r0") : Sim.Failure.t list);
  Core.run sim;
  Alcotest.(check bool) "down after first install" false (Net.is_up net "r0");
  let injs = Harness.Run.install env (parse "@5 recover r0") in
  Core.run sim;
  Alcotest.(check bool) "up after second install" true (Net.is_up net "r0");
  match injs with
  | [ inj ] ->
      Alcotest.(check int) "the recover was a real transition" 1
        (Sim.Failure.transitions inj)
  | _ -> Alcotest.failf "expected one injector, got %d" (List.length injs)

(* ---------- check predicates ---------- *)

let test_quorum_ok () =
  (match
     Harness.Check.quorum_ok ~name:"majority-3"
       (Quorum.Config.majority [ "a"; "b"; "c" ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "majority should pass: %s" e);
  match
    Harness.Check.quorum_ok ~name:"disjoint"
      (Quorum.Config.make
         ~read_quorums:[ [ "a" ] ]
         ~write_quorums:[ [ "b" ] ])
  with
  | Ok () -> Alcotest.fail "disjoint quorums should fail the static gate"
  | Error _ -> ()

let test_liveness_after_heal () =
  let script =
    match Script.of_string "@10 crash r0; @20 recover r0; @30 heal" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let check_ok what completions =
    match Harness.Check.liveness_after_heal ~script ~completions with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: unexpected liveness failure: %s" what e
  in
  check_ok "success after heal" [ (25.0, false); (40.0, true) ];
  check_ok "nothing completes after heal" [ (25.0, true) ];
  (match
     Harness.Check.liveness_after_heal ~script
       ~completions:[ (25.0, true); (40.0, false); (50.0, false) ]
   with
  | Ok () -> Alcotest.fail "all-failed tail should violate liveness"
  | Error _ -> ());
  match
    Harness.Check.liveness_after_heal ~script:(Script.of_partitions 150.0)
      ~completions:[ (40.0, false) ]
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "non-settling scripts are vacuous: %s" e

(* ---------- the seed swarm ---------- *)

(* A deliberately broken strategy: read-1/write-1 quorums do not
   intersect, so the audit must catch stale reads — the planted bug
   the swarm exists to find. *)
let unsafe_strategy _n =
  Store.Strategy.make ~name:"unsafe-1/1" ~n:3
    ~read_ok:(fun m -> Store.Strategy.popcount m >= 1)
    ~write_ok:(fun m -> Store.Strategy.popcount m >= 1)

let swarm_groups = [| [| "r0"; "r1"; "r2" |] |]
let swarm_clients = [ "c0"; "c1" ]

let swarm_run ~unsafe ~seed script =
  let r =
    Store.Cluster.run
      {
        Store.Cluster.default_params with
        n_replicas = 3;
        n_clients = 2;
        strategy =
          (if unsafe then unsafe_strategy else Store.Strategy.majority);
        targeting = `Quorum;
        workload =
          {
            Store.Workload.default_spec with
            ops_per_client = 30;
            read_fraction = 0.5;
          };
        seed;
        script;
      }
  in
  r.Store.Cluster.audit_violations

let swarm_gen ~seed =
  Harness.Gen.script (Prng.create seed) ~groups:swarm_groups
    ~clients:swarm_clients ~horizon:300.0

let test_swarm_clean_on_safe_strategy () =
  (* randomized fault scripts must not break a legal configuration:
     quorum intersection keeps the audit clean under any schedule *)
  let failures =
    Harness.Swarm.sweep
      ~run:(fun ~seed script -> swarm_run ~unsafe:false ~seed script)
      ~gen:swarm_gen ~seeds:6 ~seed0:5000 ()
  in
  Alcotest.(check int) "no violations under majority quorums" 0
    (List.length failures)

let test_swarm_finds_and_minimizes_planted_bug () =
  let run ~seed script = swarm_run ~unsafe:true ~seed script in
  let failures =
    Harness.Swarm.sweep ~run ~gen:swarm_gen ~seeds:6 ~seed0:5000
      ~max_failures:1 ()
  in
  match failures with
  | [] -> Alcotest.fail "swarm failed to find the planted 1/1-quorum bug"
  | o :: _ ->
      let m = Harness.Swarm.minimize ~run o in
      Alcotest.(check bool)
        (Fmt.str "minimized script is strictly shorter (%d -> %d steps)"
           (List.length o.Harness.Swarm.script)
           (List.length m.Harness.Swarm.script))
        true
        (List.length m.Harness.Swarm.script
        < List.length o.Harness.Swarm.script);
      (* the minimized repro must replay to the same violations *)
      Alcotest.(check (list string))
        "minimized repro replays deterministically" m.Harness.Swarm.violations
        (run ~seed:m.Harness.Swarm.seed m.Harness.Swarm.script);
      Alcotest.(check bool) "repro line is replayable syntax" true
        (String.length (Harness.Swarm.repro_line m) > 0
        && String.sub (Harness.Swarm.repro_line m) 0 17 = "swarm repro --see")

let test_bisect_seed_range () =
  Alcotest.(check (option int))
    "finds the failing seed" (Some 13)
    (Harness.Swarm.bisect_seed_range ~fails:(fun s -> s = 13) ~lo:0 ~hi:100);
  Alcotest.(check (option int))
    "none when nothing fails" None
    (Harness.Swarm.bisect_seed_range ~fails:(fun _ -> false) ~lo:0 ~hi:64)

let suites =
  [
    ( "harness.goldens",
      [
        Alcotest.test_case "partition storm: legacy = script = golden" `Slow
          test_partition_storm_goldens;
        Alcotest.test_case "shard kill: legacy = script = golden" `Slow
          test_shard_kill_goldens;
        Alcotest.test_case "crash storm: legacy = script (sim level)" `Quick
          test_crash_storm_equivalence;
      ] );
    ( "harness.script",
      [
        Alcotest.test_case "round-trip" `Quick test_script_round_trip;
        qcheck prop_generated_scripts_round_trip;
        Alcotest.test_case "validate rejects" `Quick
          test_script_validate_rejects;
        Alcotest.test_case "quiesces_at" `Quick test_quiesces_at;
      ] );
    ( "harness.filters",
      [
        Alcotest.test_case "per-link drop specs" `Quick test_link_filters;
        Alcotest.test_case "filters vs the rpc engine" `Quick
          test_filter_vs_engine;
      ] );
    ( "harness.failure",
      [
        qcheck prop_injector_up_fraction_converges;
        qcheck prop_injector_deterministic;
        Alcotest.test_case "set_health accounting" `Quick
          test_set_health_accounting;
        Alcotest.test_case "recover across installs" `Quick
          test_recover_across_installs;
      ] );
    ( "harness.check",
      [
        Alcotest.test_case "static quorum gate" `Quick test_quorum_ok;
        Alcotest.test_case "liveness after heal" `Quick
          test_liveness_after_heal;
      ] );
    ( "harness.swarm",
      [
        Alcotest.test_case "safe strategy stays clean" `Slow
          test_swarm_clean_on_safe_strategy;
        Alcotest.test_case "finds + minimizes the planted bug" `Slow
          test_swarm_finds_and_minimizes_planted_bug;
        Alcotest.test_case "seed-range bisection" `Quick
          test_bisect_seed_range;
      ] );
  ]
